// uuq_cli — correct an aggregate query over a CSV of observations.
//
// Usage:
//   uuq_cli <observations.csv> "<SQL>" [options]
//   uuq_cli --demo "<SQL>" [options]
//
// The CSV needs 'source', 'entity' and 'value' columns (any order, extra
// columns ignored). SQL has the paper's shape:
//   SELECT SUM|COUNT|AVG|MIN|MAX(value) FROM <table>
//       [WHERE <pred over entity/value/observations/category>]
//       [GROUP BY category]
//
// Options:
//   --estimator=auto|bucket|mc|naive|freq   (default auto: §6.5 advisor)
//   --bootstrap[=N]                         percentile CI over N replicates
//   --fusion=average|first|last|majority    value-fusion policy
//   --demo                                  run on a built-in demo stream
//
// Server mode:
//   uuq_cli --serve <observations.csv>|--demo [--workers=N] [--queue=N]
//           [--deadline-ms=N]
// reads one SQL query per stdin line and serves it through the
// deadline-aware QueryService (admission control, cooperative cancellation,
// graceful degradation — serving/query_service.h). A line may carry a
// precision target before the SQL:
//   epsilon=250 confidence=0.99 SELECT SUM(value) FROM integrated
// which runs the pilot-then-refine adaptive replicate budget (stop as soon
// as the replicate-mean Monte Carlo half-width — the resolution of the
// replicate ensemble, not the reported interval's own width, see
// core/adaptive_budget.h — meets ±epsilon, escalate up to the configured
// cap otherwise); UUQ_SERVE_EPSILON / UUQ_SERVE_CONFIDENCE set defaults for
// lines that carry none. A malformed target (unparseable number, or a
// target token with no SQL after it) rejects the LINE with a usage
// message; out-of-range values the service refuses (epsilon < 0,
// confidence >= 1) come back as typed kInvalidArgument statuses. Failures
// print as typed statuses; EOF or "quit" shuts down and prints the serving
// counters. The UUQ_FAULT_SEED / UUQ_FAULT_SPEC env knobs inject
// deterministic faults.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/query_correction.h"
#include "db/csv.h"
#include "db/sql_parser.h"
#include "serving/query_service.h"
#include "simulation/scenarios.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "uuq_cli: %s\n", message.c_str());
  return 1;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: uuq_cli <observations.csv>|--demo \"<SQL>\" "
      "[--estimator=auto|bucket|mc|naive|freq] [--bootstrap[=N]] "
      "[--fusion=average|first|last|majority]\n"
      "       uuq_cli --serve <observations.csv>|--demo [--workers=N] "
      "[--queue=N] [--deadline-ms=N]\n");
}

uuq::Result<std::vector<uuq::Observation>> LoadStream(
    const std::string& input) {
  using namespace uuq;
  if (input == "--demo") {
    const Scenario scenario = scenarios::UsTechEmployment();
    std::printf("demo stream: %zu crowd answers about US tech companies "
                "(hidden ground-truth SUM = %.0f)\n\n",
                scenario.stream.size(), scenario.ground_truth_sum);
    return scenario.stream;
  }
  std::ifstream file(input);
  if (!file) return Status::NotFound("cannot open '" + input + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ReadObservationsCsv(buffer.str());
}

// One attempt to strip a leading `key=<double>` token off *line.
enum class TokenParse {
  kNoMatch,  ///< line does not start with `key=`; nothing consumed
  kBad,      ///< starts with `key=` but the number fails to parse
  kOk,       ///< token consumed (with any following spaces), *value set
};

TokenParse TakeDoubleToken(std::string* line, const char* key,
                           double* value) {
  const std::string prefix = std::string(key) + "=";
  if (line->rfind(prefix, 0) != 0) return TokenParse::kNoMatch;
  const size_t end = line->find(' ', prefix.size());
  const size_t value_end = end == std::string::npos ? line->size() : end;
  const std::string text =
      line->substr(prefix.size(), value_end - prefix.size());
  try {
    size_t parsed = 0;
    *value = std::stod(text, &parsed);
    // Trailing garbage ("epsilon=250x") is as malformed as no number.
    if (parsed != text.size()) return TokenParse::kBad;
  } catch (...) {
    return TokenParse::kBad;
  }
  const size_t rest = line->find_first_not_of(' ', value_end);
  // A token at end-of-line leaves the line EMPTY (not erased-to-npos
  // garbage); the caller rejects target-only lines with no SQL.
  line->erase(0, rest == std::string::npos ? line->size() : rest);
  return TokenParse::kOk;
}

// --serve: one SQL query per stdin line through the QueryService.
int RunServeMode(int argc, char** argv) {
  using namespace uuq;
  if (argc < 3) {
    PrintUsage();
    return 1;
  }
  ServingOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::atoi(arg.c_str() + 10);
      if (options.workers <= 0) return Fail("bad --workers count");
    } else if (arg.rfind("--queue=", 0) == 0) {
      options.max_queue = std::atoi(arg.c_str() + 8);
      if (options.max_queue <= 0) return Fail("bad --queue size");
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      const int ms = std::atoi(arg.c_str() + 14);
      if (ms <= 0) return Fail("bad --deadline-ms value");
      options.default_deadline = std::chrono::milliseconds(ms);
    } else {
      PrintUsage();
      return Fail("unknown --serve option '" + arg + "'");
    }
  }

  auto stream = LoadStream(argv[2]);
  if (!stream.ok()) return Fail(stream.status().ToString());
  auto sample = std::make_shared<IntegratedSample>();
  for (const Observation& obs : stream.value()) sample->Add(obs);
  std::printf("serving %lld observations -> %lld entities as sample "
              "'main' (%d workers, queue %d, default deadline %lld ms)\n",
              static_cast<long long>(sample->n()),
              static_cast<long long>(sample->c()), options.workers,
              options.max_queue,
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      options.default_deadline)
                      .count()));

  // Env defaults for lines without explicit epsilon=/confidence= tokens
  // (0 = no target: the fixed full_replicates budget).
  double default_epsilon = 0.0;
  double default_confidence = 0.0;
  if (const char* env = std::getenv("UUQ_SERVE_EPSILON")) {
    default_epsilon = std::atof(env);
  }
  if (const char* env = std::getenv("UUQ_SERVE_CONFIDENCE")) {
    default_confidence = std::atof(env);
  }

  QueryService service(options);
  service.RegisterSample("main", sample);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    double epsilon = default_epsilon;
    double confidence = default_confidence;
    // Request-level precision target: leading `epsilon=` / `confidence=`
    // tokens (either order) ahead of the SQL. A token that matches but
    // does not parse poisons the LINE — executing the remainder as SQL
    // would silently drop the caller's precision intent.
    bool malformed_target = false;
    for (bool consumed = true; consumed && !malformed_target;) {
      consumed = false;
      for (const auto& token :
           {std::pair<const char*, double*>{"epsilon", &epsilon},
            std::pair<const char*, double*>{"confidence", &confidence}}) {
        const TokenParse parse =
            TakeDoubleToken(&line, token.first, token.second);
        if (parse == TokenParse::kBad) malformed_target = true;
        if (parse == TokenParse::kOk) consumed = true;
      }
    }
    if (malformed_target || line.empty()) {
      std::printf("bad query line (%s); expected: [epsilon=<number>] "
                  "[confidence=<number>] <SQL>\n",
                  malformed_target ? "unparseable precision target"
                                   : "precision target without SQL");
      continue;
    }
    const ServedResult result =
        service.Execute("main", line, std::chrono::nanoseconds(0),
                        /*want_interval=*/true, epsilon, confidence);
    if (!result.status.ok()) {
      std::printf("[query %llu] %s\n",
                  static_cast<unsigned long long>(result.query_id),
                  result.status.ToString().c_str());
      continue;
    }
    std::string degraded_note;
    if (result.degraded != DegradeLevel::kNone) {
      degraded_note =
          std::string("DEGRADED to ") + DegradeLevelName(result.degraded) +
          "\n";
    }
    if (result.precision_degraded) {
      degraded_note += "PRECISION TARGET MISSED (replicate cap/deadline)\n";
    }
    // The adaptive note reports what actually ran: a precision-targeted
    // query the deadline ladder degraded below level 0 (or whose interval
    // was abandoned mid-run) never entered the adaptive path, and labelling
    // its fixed/absent budget "adaptive" would hide that the target was
    // ignored.
    std::string budget_note;
    const bool adaptive_ran = result.answer.bootstrap_valid &&
                              result.answer.bootstrap.adaptive.enabled;
    if (adaptive_ran) {
      budget_note = ", adaptive budget used " +
                    std::to_string(result.replicates_used) + " replicates";
    } else if (epsilon > 0.0) {
      budget_note = ", precision target ignored (degraded run)";
    }
    std::printf("[query %llu] %s%s  (queue %.1f ms, run %.1f ms%s)\n",
                static_cast<unsigned long long>(result.query_id),
                degraded_note.c_str(), result.answer.ToString().c_str(),
                result.queue_ms, result.run_ms, budget_note.c_str());
  }
  service.Shutdown();
  const QueryService::Stats stats = service.stats();
  std::printf("served: %lld admitted, %lld completed, %lld degraded, "
              "%lld failed, %lld shed\n",
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.degraded),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.shed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uuq;
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    return RunServeMode(argc, argv);
  }
  if (argc < 3) {
    PrintUsage();
    return 1;
  }
  const std::string input = argv[1];
  const std::string sql = argv[2];

  CorrectionEstimator estimator = CorrectionEstimator::kAuto;
  FusionPolicy fusion = FusionPolicy::kAverage;
  int bootstrap_replicates = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--estimator=", 0) == 0) {
      const std::string which = arg.substr(12);
      if (which == "auto") estimator = CorrectionEstimator::kAuto;
      else if (which == "bucket") estimator = CorrectionEstimator::kBucket;
      else if (which == "mc") estimator = CorrectionEstimator::kMonteCarlo;
      else if (which == "naive") estimator = CorrectionEstimator::kNaive;
      else if (which == "freq") estimator = CorrectionEstimator::kFreq;
      else return Fail("unknown estimator '" + which + "'");
    } else if (arg == "--bootstrap") {
      bootstrap_replicates = 200;
    } else if (arg.rfind("--bootstrap=", 0) == 0) {
      bootstrap_replicates = std::atoi(arg.c_str() + 12);
      if (bootstrap_replicates <= 0) return Fail("bad --bootstrap count");
    } else if (arg.rfind("--fusion=", 0) == 0) {
      const std::string which = arg.substr(9);
      if (which == "average") fusion = FusionPolicy::kAverage;
      else if (which == "first") fusion = FusionPolicy::kFirst;
      else if (which == "last") fusion = FusionPolicy::kLast;
      else if (which == "majority") fusion = FusionPolicy::kMajority;
      else return Fail("unknown fusion policy '" + which + "'");
    } else {
      PrintUsage();
      return Fail("unknown option '" + arg + "'");
    }
  }

  // Load the observation stream.
  auto loaded = LoadStream(input);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const std::vector<Observation> stream = std::move(loaded).value();

  IntegratedSample sample(fusion);
  for (const Observation& obs : stream) sample.Add(obs);
  std::printf("integrated %lld observations -> %lld distinct entities from "
              "%lld sources\n\n",
              static_cast<long long>(sample.n()),
              static_cast<long long>(sample.c()),
              static_cast<long long>(sample.num_sources()));

  QueryCorrector::Options options;
  options.estimator = estimator;
  const QueryCorrector corrector(options);

  // Grouped or plain?
  auto parsed_query = ParseQuery(sql);
  if (!parsed_query.ok()) return Fail(parsed_query.status().ToString());
  if (!parsed_query.value().group_by.empty()) {
    auto grouped = corrector.CorrectGroupedSql(sample, sql);
    if (!grouped.ok()) return Fail(grouped.status().ToString());
    std::printf("%s", grouped.value().ToString().c_str());
    return 0;
  }

  auto answer = corrector.CorrectSql(sample, sql);
  if (!answer.ok()) return Fail(answer.status().ToString());
  std::printf("%s", answer.value().ToString().c_str());

  if (bootstrap_replicates > 0 &&
      parsed_query.value().aggregate == AggregateKind::kSum) {
    const BucketSumEstimator bucket;
    BootstrapOptions boot;
    boot.replicates = bootstrap_replicates;
    const BootstrapInterval ci = BootstrapCorrectedSum(sample, bucket, boot);
    std::printf("  bootstrap variability (bucket, %d replicates, skews low "
                "by construction): [%.2f, %.2f]\n",
                ci.finite_replicates, ci.lo, ci.hi);
    const JackknifeInterval jk = JackknifeCorrectedSum(sample, bucket);
    std::printf("  95%% jackknife interval (delete-one-source): "
                "[%.2f, %.2f]  (se %.2f)\n",
                jk.lo, jk.hi, jk.standard_error);
  }
  return 0;
}
