// uuq_cli — correct an aggregate query over a CSV of observations.
//
// Usage:
//   uuq_cli <observations.csv> "<SQL>" [options]
//   uuq_cli --demo "<SQL>" [options]
//
// The CSV needs 'source', 'entity' and 'value' columns (any order, extra
// columns ignored). SQL has the paper's shape:
//   SELECT SUM|COUNT|AVG|MIN|MAX(value) FROM <table>
//       [WHERE <pred over entity/value/observations/category>]
//       [GROUP BY category]
//
// Options:
//   --estimator=auto|bucket|mc|naive|freq   (default auto: §6.5 advisor)
//   --bootstrap[=N]                         percentile CI over N replicates
//   --fusion=average|first|last|majority    value-fusion policy
//   --demo                                  run on a built-in demo stream
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/query_correction.h"
#include "db/csv.h"
#include "db/sql_parser.h"
#include "simulation/scenarios.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "uuq_cli: %s\n", message.c_str());
  return 1;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: uuq_cli <observations.csv>|--demo \"<SQL>\" "
      "[--estimator=auto|bucket|mc|naive|freq] [--bootstrap[=N]] "
      "[--fusion=average|first|last|majority]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uuq;
  if (argc < 3) {
    PrintUsage();
    return 1;
  }
  const std::string input = argv[1];
  const std::string sql = argv[2];

  CorrectionEstimator estimator = CorrectionEstimator::kAuto;
  FusionPolicy fusion = FusionPolicy::kAverage;
  int bootstrap_replicates = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--estimator=", 0) == 0) {
      const std::string which = arg.substr(12);
      if (which == "auto") estimator = CorrectionEstimator::kAuto;
      else if (which == "bucket") estimator = CorrectionEstimator::kBucket;
      else if (which == "mc") estimator = CorrectionEstimator::kMonteCarlo;
      else if (which == "naive") estimator = CorrectionEstimator::kNaive;
      else if (which == "freq") estimator = CorrectionEstimator::kFreq;
      else return Fail("unknown estimator '" + which + "'");
    } else if (arg == "--bootstrap") {
      bootstrap_replicates = 200;
    } else if (arg.rfind("--bootstrap=", 0) == 0) {
      bootstrap_replicates = std::atoi(arg.c_str() + 12);
      if (bootstrap_replicates <= 0) return Fail("bad --bootstrap count");
    } else if (arg.rfind("--fusion=", 0) == 0) {
      const std::string which = arg.substr(9);
      if (which == "average") fusion = FusionPolicy::kAverage;
      else if (which == "first") fusion = FusionPolicy::kFirst;
      else if (which == "last") fusion = FusionPolicy::kLast;
      else if (which == "majority") fusion = FusionPolicy::kMajority;
      else return Fail("unknown fusion policy '" + which + "'");
    } else {
      PrintUsage();
      return Fail("unknown option '" + arg + "'");
    }
  }

  // Load the observation stream.
  std::vector<Observation> stream;
  if (input == "--demo") {
    const Scenario scenario = scenarios::UsTechEmployment();
    stream = scenario.stream;
    std::printf("demo stream: %zu crowd answers about US tech companies "
                "(hidden ground-truth SUM = %.0f)\n\n",
                stream.size(), scenario.ground_truth_sum);
  } else {
    std::ifstream file(input);
    if (!file) return Fail("cannot open '" + input + "'");
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto parsed = ReadObservationsCsv(buffer.str());
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    stream = std::move(parsed).value();
  }

  IntegratedSample sample(fusion);
  for (const Observation& obs : stream) sample.Add(obs);
  std::printf("integrated %lld observations -> %lld distinct entities from "
              "%lld sources\n\n",
              static_cast<long long>(sample.n()),
              static_cast<long long>(sample.c()),
              static_cast<long long>(sample.num_sources()));

  QueryCorrector::Options options;
  options.estimator = estimator;
  const QueryCorrector corrector(options);

  // Grouped or plain?
  auto parsed_query = ParseQuery(sql);
  if (!parsed_query.ok()) return Fail(parsed_query.status().ToString());
  if (!parsed_query.value().group_by.empty()) {
    auto grouped = corrector.CorrectGroupedSql(sample, sql);
    if (!grouped.ok()) return Fail(grouped.status().ToString());
    std::printf("%s", grouped.value().ToString().c_str());
    return 0;
  }

  auto answer = corrector.CorrectSql(sample, sql);
  if (!answer.ok()) return Fail(answer.status().ToString());
  std::printf("%s", answer.value().ToString().c_str());

  if (bootstrap_replicates > 0 &&
      parsed_query.value().aggregate == AggregateKind::kSum) {
    const BucketSumEstimator bucket;
    BootstrapOptions boot;
    boot.replicates = bootstrap_replicates;
    const BootstrapInterval ci = BootstrapCorrectedSum(sample, bucket, boot);
    std::printf("  bootstrap variability (bucket, %d replicates, skews low "
                "by construction): [%.2f, %.2f]\n",
                ci.finite_replicates, ci.lo, ci.hi);
    const JackknifeInterval jk = JackknifeCorrectedSum(sample, bucket);
    std::printf("  95%% jackknife interval (delete-one-source): "
                "[%.2f, %.2f]  (se %.2f)\n",
                jk.lo, jk.hi, jk.standard_error);
  }
  return 0;
}
