// Cumulative perf-trajectory merger for CI.
//
// Reads the committed per-PR measurement files (bench/history/BENCH_PR<N>.json,
// each a bench_out.json-format row array) plus the current run's
// bench_out.json and splices them into ONE artifact:
//
//   [
//     {"source": "BENCH_PR4", "rows": [ ...bench rows... ]},
//     {"source": "BENCH_PR5", "rows": [ ... ]},
//     {"source": "run",       "rows": [ ... ]}
//   ]
//
// CI uploads the result as the bench_history.json artifact, so a regression
// is visible against the WHOLE trajectory of committed measurements, not
// just the single committed baseline file the ratio gates use.
//
//   uuq_bench_history --out build/bench_history.json \
//       [--run build/bench_out.json] bench/history/*.json
//
// Inputs are embedded at the string level via the SAME splice helpers
// AppendBenchJson uses (bench/bench_json_splice.h, including the
// truncated-file guard — one shared copy, so the merger and the artifact
// writer can never drift apart), and the tool cannot reinterpret the rows
// it carries. No other dependencies.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json_splice.h"

namespace {

using uuq::bench::ExtractJsonArrayBody;
using uuq::bench::ReadFileInto;

std::string SourceLabel(const std::string& path) {
  const size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.rfind('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  std::string escaped;
  for (char ch : base) {
    if (ch == '"' || ch == '\\') escaped.push_back('\\');
    escaped.push_back(ch);
  }
  return escaped;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string run_path;
  std::vector<std::string> history_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      run_path = argv[++i];
    } else {
      history_paths.push_back(argv[i]);
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: uuq_bench_history --out <path> [--run "
                 "<bench_out.json>] <history.json>...\n");
    return 2;
  }

  struct Entry {
    std::string source;
    std::string body;
  };
  std::vector<Entry> entries;
  for (const std::string& path : history_paths) {
    std::string content;
    std::string body;
    if (!ReadFileInto(path, &content) ||
        !ExtractJsonArrayBody(content, &body)) {
      std::fprintf(stderr, "ERROR: cannot read history file %s\n",
                   path.c_str());
      return 1;
    }
    entries.push_back({SourceLabel(path), body});
  }
  if (!run_path.empty()) {
    std::string content;
    std::string body;
    if (!ReadFileInto(run_path, &content) ||
        !ExtractJsonArrayBody(content, &body)) {
      std::fprintf(stderr, "ERROR: cannot read run file %s\n",
                   run_path.c_str());
      return 1;
    }
    entries.push_back({"run", body});
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs("[\n", out);
  for (size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "{\"source\": \"%s\", \"rows\": [%s\n]}%s\n",
                 entries[i].source.c_str(), entries[i].body.c_str(),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("wrote %zu sources to %s\n", entries.size(), out_path.c_str());
  return 0;
}
