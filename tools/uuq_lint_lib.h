// uuq_lint — token/regex enforcement of the repo's determinism contracts.
//
// The runtime suites prove bit-identity at every thread count; this linter
// is the STATIC half of that promise (README "Static analysis"): it stops
// the classes of change that would erode determinism or the replicate
// path's allocation-free contract before they compile, with no libclang
// dependency — a comment/string-aware scan over src/ that runs as a tier-1
// ctest in well under a second.
//
// Rules (ids are stable; the allowlist and tests key on them):
//
//   random-source    rand()/srand()/std::random_device/std::chrono::
//                    system_clock/time(NULL)-style entropy anywhere in src/
//                    outside common/random.* — every random draw must flow
//                    from the seeded, splittable uuq::Rng, or replicates
//                    stop being reproducible.
//   unordered-hot-path
//                    std::unordered_map / std::unordered_set mentioned in
//                    src/core or src/stats — hash iteration order is
//                    implementation-defined, so a container that today is
//                    only probed is one refactor away from nondeterministic
//                    fold order on a replicate path. Use sorted/vector
//                    structures (SortedEntityIndex, SoA columns) instead.
//   atomic-order     an atomic load/store/RMW/CAS that does not name an
//                    explicit std::memory_order — defaulted seq_cst on a
//                    hot counter is an accidental fence, and an implicit
//                    order hides whether the site's contract was thought
//                    through (every uuq site documents why its order holds).
//   naked-new        `new` in a replicate-path file — the warm replicate
//                    loop is allocation-free by contract (operator-new
//                    counter tests pin it); allocation belongs in scratch /
//                    arena construction, not on the path.
//   thread-local-justification
//                    `thread_local` without an adjacent `// thread_local:`
//                    comment explaining the per-thread ownership argument —
//                    unexplained thread_locals are where state leaks
//                    between queries in a long-lived server.
//   env-doc          a getenv() read of a `UUQ_*` variable with no row in
//                    README.md's environment-variable table — undocumented
//                    knobs are how deployments drift from what the docs
//                    promise. This rule runs OUTSIDE LintFile (it needs the
//                    README's documented-var set) via LintEnvDocFile, and
//                    scans bench/ and tools/ in addition to src/.
//
// Allowlist: `rule|path-suffix|line-substring` entries (tools/
// uuq_lint_allowlist.txt) suppress grandfathered sites; `#` starts a
// comment. An entry that matches nothing is reported as stale (warning,
// not failure) so the file cannot rot.
#ifndef UUQ_TOOLS_UUQ_LINT_LIB_H_
#define UUQ_TOOLS_UUQ_LINT_LIB_H_

#include <algorithm>
#include <cctype>
#include <regex>
#include <string>
#include <vector>

namespace uuq_lint {

struct Finding {
  std::string rule;
  std::string file;  // path as scanned (repo-relative for tree scans)
  int line = 0;      // 1-based
  std::string raw;   // the raw source line (allowlist needles match this)
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string needle;
  bool used = false;  // set by ApplyAllowlist; unused entries are stale
};

// ---------------------------------------------------------------------------
// Source preprocessing: split into lines, with a parallel "code" view whose
// comments and string/char-literal contents are blanked (same length, so
// columns line up). Rules match the code view; messages and allowlist
// needles use the raw view. Handles //, /* */ across lines, escapes inside
// literals, and R"delim( ... )delim" raw strings.
// ---------------------------------------------------------------------------
struct SourceLine {
  std::string raw;
  std::string code;
};

inline std::vector<SourceLine> SplitAndStrip(const std::string& content) {
  enum class State { kNormal, kBlockComment, kString, kChar, kRawString };
  State state = State::kNormal;
  std::string raw_delim;  // for kRawString: the )delim" terminator
  std::string code = content;

  const size_t n = content.size();
  size_t i = 0;
  while (i < n) {
    const char c = content[i];
    switch (state) {
      case State::kNormal:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          // Line comment: blank to end of line.
          while (i < n && content[i] != '\n') code[i++] = ' ';
          continue;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          code[i++] = ' ';
          code[i++] = ' ';
          continue;
        }
        if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
            (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                            content[i - 1])) &&
                        content[i - 1] != '_'))) {
          size_t j = i + 2;
          while (j < n && content[j] != '(') ++j;
          raw_delim = ")" + content.substr(i + 2, j - (i + 2)) + "\"";
          state = State::kRawString;
          i = j + 1;  // keep the R"delim( prefix visible; contents blank
          continue;
        }
        if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        ++i;
        continue;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          code[i++] = ' ';
          code[i++] = ' ';
          state = State::kNormal;
          continue;
        }
        if (c != '\n') code[i] = ' ';
        ++i;
        continue;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          code[i] = ' ';
          if (content[i + 1] != '\n') code[i + 1] = ' ';
          i += 2;
          continue;
        }
        if (c == quote) {
          state = State::kNormal;
          ++i;
          continue;
        }
        if (c != '\n') code[i] = ' ';
        ++i;
        continue;
      }
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size();
          state = State::kNormal;
          continue;
        }
        if (c != '\n') code[i] = ' ';
        ++i;
        continue;
    }
  }

  std::vector<SourceLine> lines;
  size_t start = 0;
  for (size_t pos = 0; pos <= n; ++pos) {
    if (pos == n || content[pos] == '\n') {
      lines.push_back(SourceLine{content.substr(start, pos - start),
                                 code.substr(start, pos - start)});
      start = pos + 1;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Path predicates. Paths are '/'-separated and repo-relative ("src/...").
// ---------------------------------------------------------------------------
inline bool PathStartsWith(const std::string& path, const std::string& pre) {
  return path.size() >= pre.size() && path.compare(0, pre.size(), pre) == 0;
}
inline bool PathEndsWith(const std::string& path, const std::string& suf) {
  return path.size() >= suf.size() &&
         path.compare(path.size() - suf.size(), suf.size(), suf) == 0;
}

/// The RNG implementation itself — the ONE place entropy primitives and the
/// generator algebra may live.
inline bool IsRandomImplFile(const std::string& path) {
  return PathEndsWith(path, "src/common/random.cc") ||
         PathEndsWith(path, "src/common/random.h") ||
         PathStartsWith(path, "src/common/random.");
}

/// Hot-path directories for the unordered-container rule.
inline bool IsHotPathDir(const std::string& path) {
  return PathStartsWith(path, "src/core/") ||
         PathStartsWith(path, "src/stats/");
}

/// The replicate-path files bound by the allocation-free contract
/// (naked-new rule). Kept in sync with the operator-new-counter tests.
inline const std::vector<std::string>& ReplicatePathFiles() {
  static const std::vector<std::string> kFiles = {
      "src/core/bootstrap.cc",       "src/core/bootstrap.h",
      "src/core/bucket.cc",          "src/core/bucket.h",
      "src/core/estimate.cc",        "src/core/estimate.h",
      "src/core/naive.cc",           "src/core/frequency.cc",
      "src/core/chao92.cc",          "src/core/monte_carlo.cc",
      "src/core/adaptive_budget.cc", "src/core/adaptive_budget.h",
      "src/integration/sample_view.cc", "src/integration/sample_view.h",
  };
  return kFiles;
}

inline bool IsReplicatePathFile(const std::string& path) {
  for (const std::string& f : ReplicatePathFiles()) {
    if (PathEndsWith(path, f)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule implementations
// ---------------------------------------------------------------------------
namespace internal {

inline void AddFinding(std::vector<Finding>* out, const std::string& rule,
                       const std::string& file, int line,
                       const std::string& raw, const std::string& message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.raw = raw;
  f.message = message;
  out->push_back(std::move(f));
}

inline void LintRandomSource(const std::string& path,
                             const std::vector<SourceLine>& lines,
                             std::vector<Finding>* out) {
  if (IsRandomImplFile(path)) return;
  static const std::regex kPattern(
      R"(std::random_device|\bsrand\s*\(|\brand\s*\(|\bsystem_clock\b|\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kPattern)) {
      AddFinding(out, "random-source", path, static_cast<int>(i + 1),
                 lines[i].raw,
                 "nondeterministic entropy source outside src/common/random.* "
                 "— draw from the seeded uuq::Rng (Split() per task) instead");
    }
  }
}

inline void LintUnorderedHotPath(const std::string& path,
                                 const std::vector<SourceLine>& lines,
                                 std::vector<Finding>* out) {
  if (!IsHotPathDir(path)) return;
  static const std::regex kPattern(R"(\bunordered_(map|set)\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kPattern)) {
      AddFinding(out, "unordered-hot-path", path, static_cast<int>(i + 1),
                 lines[i].raw,
                 "std::unordered_{map,set} in a hot-path dir (src/core, "
                 "src/stats): hash iteration order is nondeterministic — use "
                 "a sorted index / SoA column, or allowlist with a "
                 "justification that it is never iterated");
    }
  }
}

inline void LintAtomicOrder(const std::string& path,
                            const std::vector<SourceLine>& lines,
                            std::vector<Finding>* out) {
  static const std::regex kPattern(
      R"((\.|->)(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    for (std::sregex_iterator it(lines[i].code.begin(), lines[i].code.end(),
                                 kPattern),
         end;
         it != end; ++it) {
      // Scan the (possibly multi-line) argument list for an explicit
      // std::memory_order token, tracking paren depth from the call's '('.
      const size_t open =
          static_cast<size_t>(it->position()) + it->length() - 1;
      int depth = 0;
      bool found_order = false;
      bool closed = false;
      std::string window;
      size_t line_idx = i;
      size_t pos = open;
      for (int scanned_lines = 0; line_idx < lines.size() && scanned_lines < 12;
           ++line_idx, ++scanned_lines, pos = 0) {
        const std::string& code = lines[line_idx].code;
        for (; pos < code.size(); ++pos) {
          const char c = code[pos];
          if (c == '(') ++depth;
          if (c == ')') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
          window.push_back(c);
        }
        if (closed) break;
        window.push_back('\n');
      }
      if (window.find("memory_order") == std::string::npos) {
        AddFinding(
            out, "atomic-order", path, static_cast<int>(i + 1), lines[i].raw,
            "atomic " + (*it)[2].str() +
                " without an explicit std::memory_order — defaulted seq_cst "
                "hides whether the ordering contract was considered; name "
                "the order and document why it holds");
        (void)found_order;
      }
    }
  }
}

inline void LintNakedNew(const std::string& path,
                         const std::vector<SourceLine>& lines,
                         std::vector<Finding>* out) {
  if (!IsReplicatePathFile(path)) return;
  static const std::regex kPattern(R"(\bnew\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kPattern)) {
      AddFinding(out, "naked-new", path, static_cast<int>(i + 1),
                 lines[i].raw,
                 "`new` in a replicate-path file — the warm replicate loop "
                 "is allocation-free by contract; allocate in scratch/arena "
                 "construction instead");
    }
  }
}

inline void LintThreadLocalJustification(const std::string& path,
                                         const std::vector<SourceLine>& lines,
                                         std::vector<Finding>* out) {
  static const std::regex kPattern(R"(\bthread_local\b)");
  constexpr size_t kLookback = 6;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code, kPattern)) continue;
    bool justified =
        lines[i].raw.find("// thread_local:") != std::string::npos;
    // A declaration directly following another thread_local declaration
    // shares its group's justification (scratch/rep pairs).
    if (!justified && i > 0 &&
        std::regex_search(lines[i - 1].code, kPattern)) {
      continue;
    }
    for (size_t back = 1; !justified && back <= kLookback && back <= i;
         ++back) {
      justified = lines[i - back].raw.find("// thread_local:") !=
                  std::string::npos;
    }
    if (!justified) {
      AddFinding(out, "thread-local-justification", path,
                 static_cast<int>(i + 1), lines[i].raw,
                 "thread_local without an adjacent `// thread_local:` "
                 "justification comment — state that persists across queries "
                 "on a worker thread must explain its ownership/reset story");
    }
  }
}

/// env-doc: every same-line (or next-line, for a wrapped call) `UUQ_*`
/// token of a getenv() read must appear in `documented` — the set parsed
/// from README.md's env table by DocumentedEnvVars below. The variable name
/// lives in a string literal, which the code view blanks, so the token is
/// extracted from the RAW line while the getenv call itself is matched on
/// the code view (a getenv in a comment or string never fires).
inline void LintEnvDoc(const std::string& path,
                       const std::vector<SourceLine>& lines,
                       const std::vector<std::string>& documented,
                       std::vector<Finding>* out) {
  static const std::regex kGetenv(R"(\bgetenv\s*\()");
  static const std::regex kVar(R"(UUQ_[A-Z0-9_]+)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code, kGetenv)) continue;
    const bool same_line = std::regex_search(lines[i].raw, kVar);
    const std::string& haystack = same_line || i + 1 >= lines.size()
                                      ? lines[i].raw
                                      : lines[i + 1].raw;
    for (std::sregex_iterator it(haystack.begin(), haystack.end(), kVar),
         end;
         it != end; ++it) {
      const std::string var = it->str();
      if (std::find(documented.begin(), documented.end(), var) ==
          documented.end()) {
        AddFinding(out, "env-doc", path, static_cast<int>(i + 1),
                   lines[i].raw,
                   "getenv of " + var +
                       " has no row in README.md's environment-variable "
                       "table — document the knob (or fix the name)");
      }
    }
  }
}

}  // namespace internal

/// Parses README.md's environment-variable table: every markdown table row
/// (first non-space character '|') contributes each backticked `UUQ_*`
/// token it names. Prose mentions outside table rows do NOT count — a knob
/// is documented when it has a table row, not when it is name-dropped.
inline std::vector<std::string> DocumentedEnvVars(const std::string& readme) {
  std::vector<std::string> vars;
  static const std::regex kVar(R"(`(UUQ_[A-Z0-9_]+))");
  size_t start = 0;
  while (start <= readme.size()) {
    size_t end = readme.find('\n', start);
    if (end == std::string::npos) end = readme.size();
    const std::string line = readme.substr(start, end - start);
    start = end + 1;
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '|') continue;
    for (std::sregex_iterator it(line.begin(), line.end(), kVar), e;
         it != e; ++it) {
      const std::string var = (*it)[1].str();
      if (std::find(vars.begin(), vars.end(), var) == vars.end()) {
        vars.push_back(var);
      }
    }
  }
  return vars;
}

/// Lints one file's content under its repo-relative path. Pure function of
/// (path, content) — no filesystem access, so tests feed fixtures directly.
inline std::vector<Finding> LintFile(const std::string& path,
                                     const std::string& content) {
  std::vector<Finding> findings;
  if (!(PathEndsWith(path, ".h") || PathEndsWith(path, ".cc"))) {
    return findings;
  }
  const std::vector<SourceLine> lines = SplitAndStrip(content);
  internal::LintRandomSource(path, lines, &findings);
  internal::LintUnorderedHotPath(path, lines, &findings);
  internal::LintAtomicOrder(path, lines, &findings);
  internal::LintNakedNew(path, lines, &findings);
  internal::LintThreadLocalJustification(path, lines, &findings);
  return findings;
}

/// Runs only the env-doc rule (see the header comment): separate from
/// LintFile because it needs the README's documented-var set, which the
/// (path, content) signature cannot carry — and because it scans a wider
/// tree (bench/, tools/) than the determinism rules.
inline std::vector<Finding> LintEnvDocFile(
    const std::string& path, const std::string& content,
    const std::vector<std::string>& documented) {
  std::vector<Finding> findings;
  if (!(PathEndsWith(path, ".h") || PathEndsWith(path, ".cc"))) {
    return findings;
  }
  const std::vector<SourceLine> lines = SplitAndStrip(content);
  internal::LintEnvDoc(path, lines, documented, &findings);
  return findings;
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------
inline std::vector<AllowEntry> ParseAllowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    if (line.empty()) continue;
    const size_t p1 = line.find('|');
    const size_t p2 = p1 == std::string::npos ? std::string::npos
                                              : line.find('|', p1 + 1);
    if (p2 == std::string::npos) continue;  // malformed; ignore
    AllowEntry entry;
    entry.rule = line.substr(0, p1);
    entry.path_suffix = line.substr(p1 + 1, p2 - p1 - 1);
    entry.needle = line.substr(p2 + 1);
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Removes allowlisted findings; marks matched entries used. Returns the
/// surviving findings.
inline std::vector<Finding> ApplyAllowlist(std::vector<Finding> findings,
                                           std::vector<AllowEntry>* allow) {
  std::vector<Finding> out;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (AllowEntry& entry : *allow) {
      if (entry.rule == f.rule && PathEndsWith(f.file, entry.path_suffix) &&
          f.raw.find(entry.needle) != std::string::npos) {
        entry.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Self-test corpus: one minimal violating snippet per rule (must fire) and
// one clean counterpart (must pass). The uuq_lint_selftest ctest runs these
// so a rule that silently stops matching fails the build — the same
// negative-test pattern as the accuracy gate.
// ---------------------------------------------------------------------------
struct SelfTestCase {
  const char* rule;
  const char* path;  // synthetic repo-relative path that puts it in scope
  const char* bad;
  const char* good;
};

inline const std::vector<SelfTestCase>& SelfTestCases() {
  static const std::vector<SelfTestCase> kCases = {
      {"random-source", "src/core/fixture.cc",
       "#include <random>\n"
       "int Entropy() { std::random_device rd; return (int)rd(); }\n",
       "#include \"common/random.h\"\n"
       "// std::random_device only in this comment, and in a string below.\n"
       "const char* kDoc = \"std::random_device\";\n"
       "double Draw(uuq::Rng* rng) { return rng->NextDouble(); }\n"},
      {"unordered-hot-path", "src/stats/fixture.cc",
       "#include <unordered_map>\n"
       "int Count(const std::unordered_map<int, int>& m) {\n"
       "  int total = 0;\n"
       "  for (const auto& kv : m) total += kv.second;\n"
       "  return total;\n"
       "}\n",
       "#include <map>\n"
       "int Count(const std::map<int, int>& m) {\n"
       "  int total = 0;\n"
       "  for (const auto& kv : m) total += kv.second;\n"
       "  return total;\n"
       "}\n"},
      {"atomic-order", "src/serving/fixture.cc",
       "#include <atomic>\n"
       "std::atomic<int> g{0};\n"
       "int Bump() { return g.fetch_add(1); }\n",
       "#include <atomic>\n"
       "std::atomic<int> g{0};\n"
       "// Relaxed: pure counter, nothing ordered through it.\n"
       "int Bump() { return g.fetch_add(1, std::memory_order_relaxed); }\n"
       "int Get() {\n"
       "  return g.load(\n"
       "      std::memory_order_relaxed);  // multi-line arg list\n"
       "}\n"},
      {"naked-new", "src/core/bootstrap.cc",
       "struct Buf { double* p; };\n"
       "Buf Make() { return Buf{new double[8]}; }\n",
       "#include <vector>\n"
       "std::vector<double> Make() { return std::vector<double>(8, 0.0); }\n"},
      {"thread-local-justification", "src/core/fixture.cc",
       "int Hot() {\n"
       "  thread_local int calls = 0;\n"
       "  return ++calls;\n"
       "}\n",
       "int Hot() {\n"
       "  // thread_local: per-thread call counter; never read cross-thread.\n"
       "  thread_local int calls = 0;\n"
       "  thread_local int spare = 0;  // grouped: inherits the line above\n"
       "  return ++calls + spare;\n"
       "}\n"},
  };
  return kCases;
}

/// Runs the embedded corpus. Appends human-readable failures to `errors`;
/// returns true when every bad snippet fires exactly its own rule and every
/// good snippet is clean.
inline bool RunSelfTest(std::vector<std::string>* errors) {
  bool ok = true;
  for (const SelfTestCase& c : SelfTestCases()) {
    const std::vector<Finding> bad = LintFile(c.path, c.bad);
    const bool fired = std::any_of(
        bad.begin(), bad.end(),
        [&](const Finding& f) { return f.rule == c.rule; });
    if (!fired) {
      ok = false;
      errors->push_back(std::string("rule '") + c.rule +
                        "' did NOT fire on its violating snippet");
    }
    const std::vector<Finding> good = LintFile(c.path, c.good);
    if (!good.empty()) {
      ok = false;
      errors->push_back(std::string("rule '") + c.rule +
                        "' clean snippet unexpectedly flagged: " +
                        good.front().rule + " at line " +
                        std::to_string(good.front().line));
    }
  }
  // env-doc runs outside LintFile (it needs the README's documented-var
  // set), so its corpus lives here: parse a one-row table, then pin that an
  // undocumented read fires, a documented one is clean, and prose mentions
  // do not count as documentation.
  {
    const std::vector<std::string> documented = DocumentedEnvVars(
        "| `UUQ_DOCUMENTED_KNOB` | a documented knob |\n"
        "prose naming `UUQ_PROSE_ONLY` is not a table row\n");
    if (documented != std::vector<std::string>{"UUQ_DOCUMENTED_KNOB"}) {
      ok = false;
      errors->push_back(
          "env-doc: DocumentedEnvVars mis-parsed the corpus table "
          "(missed the row, or counted a prose mention)");
    }
    const std::vector<Finding> bad = LintEnvDocFile(
        "src/core/fixture.cc",
        "#include <cstdlib>\n"
        "bool On() { return std::getenv(\"UUQ_SECRET_KNOB\") != nullptr; }\n",
        documented);
    if (bad.size() != 1 || bad.front().rule != "env-doc") {
      ok = false;
      errors->push_back("rule 'env-doc' did NOT fire on its violating snippet");
    }
    const std::vector<Finding> good = LintEnvDocFile(
        "src/core/fixture.cc",
        "#include <cstdlib>\n"
        "bool On() {\n"
        "  // getenv in this comment never fires.\n"
        "  return std::getenv(\"UUQ_DOCUMENTED_KNOB\") != nullptr;\n"
        "}\n",
        documented);
    if (!good.empty()) {
      ok = false;
      errors->push_back("rule 'env-doc' clean snippet unexpectedly flagged");
    }
  }
  return ok;
}

}  // namespace uuq_lint

#endif  // UUQ_TOOLS_UUQ_LINT_LIB_H_
