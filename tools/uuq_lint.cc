// uuq_lint CLI — see tools/uuq_lint_lib.h for the rules.
//
//   uuq_lint --root <repo>            lint src/**/*.{h,cc} (tier-1 ctest);
//                                     the env-doc rule additionally scans
//                                     bench/ and tools/
//   uuq_lint --self-test              run the embedded rule corpus
//   uuq_lint --extra <file> ...       lint additional files (CI negative test)
//   uuq_lint --allowlist <file>       override <root>/tools/uuq_lint_allowlist.txt
//   uuq_lint --readme <file>          env-doc documented-var source
//                                     (default <root>/README.md; env-doc is
//                                     skipped when neither is available)
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error. Output is
// deterministic (sorted file walk, line-ordered findings) so CI diffs are
// stable.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "uuq_lint_lib.h"

namespace fs = std::filesystem;

namespace {

bool ReadFileOrDie(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "uuq_lint: cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string RelativeLabel(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  const fs::path& chosen = (ec || rel.empty()) ? file : rel;
  return chosen.generic_string();
}

void PrintFindings(const std::vector<uuq_lint::Finding>& findings) {
  for (const uuq_lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n    %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str(), f.raw.c_str());
  }
}

int RunSelfTest() {
  std::vector<std::string> errors;
  const bool ok = uuq_lint::RunSelfTest(&errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "uuq_lint self-test FAIL: %s\n", e.c_str());
  }
  if (ok) {
    std::fprintf(stderr,
                 "uuq_lint self-test: all %zu rules fire on violations and "
                 "pass clean snippets\n",
                 uuq_lint::SelfTestCases().size());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist_path;
  std::string readme_path;
  std::vector<std::string> extra_files;
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "uuq_lint: %s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--allowlist") {
      allowlist_path = next("--allowlist");
    } else if (arg == "--readme") {
      readme_path = next("--readme");
    } else if (arg == "--extra") {
      extra_files.push_back(next("--extra"));
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: uuq_lint [--root DIR] [--allowlist FILE] "
                   "[--readme FILE] [--extra FILE]... [--self-test]\n");
      return 0;
    } else {
      std::fprintf(stderr, "uuq_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (self_test) return RunSelfTest();
  if (root.empty() && extra_files.empty()) {
    std::fprintf(stderr,
                 "uuq_lint: nothing to do (pass --root, --extra, or "
                 "--self-test)\n");
    return 2;
  }

  // Collect (label, disk path) pairs: the tree scan plus any --extra files.
  std::vector<std::pair<std::string, fs::path>> files;
  const fs::path root_path = root.empty() ? fs::path(".") : fs::path(root);
  if (!root.empty()) {
    const fs::path src = root_path / "src";
    if (!fs::is_directory(src)) {
      std::fprintf(stderr, "uuq_lint: no src/ directory under %s\n",
                   root.c_str());
      return 2;
    }
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      files.emplace_back(RelativeLabel(entry.path(), root_path), entry.path());
    }
    std::sort(files.begin(), files.end());
  }
  for (const std::string& extra : extra_files) {
    files.emplace_back(fs::path(extra).generic_string(), fs::path(extra));
  }

  // env-doc scans a wider tree than the determinism rules: bench/ and
  // tools/ are where run-time knobs (bench gates, fault injection) are
  // read, and their getenv sites must be documented too. These files skip
  // the determinism rules — they are not replicate-path code.
  std::vector<std::pair<std::string, fs::path>> env_only_files;
  if (!root.empty()) {
    for (const char* dir : {"bench", "tools"}) {
      const fs::path sub = root_path / dir;
      if (!fs::is_directory(sub)) continue;
      for (const fs::directory_entry& entry :
           fs::recursive_directory_iterator(sub)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cc") continue;
        env_only_files.emplace_back(RelativeLabel(entry.path(), root_path),
                                    entry.path());
      }
    }
    std::sort(env_only_files.begin(), env_only_files.end());
  }

  // Documented-var set for env-doc: --readme wins, else <root>/README.md.
  // Without either (e.g. a bare --extra run), env-doc is skipped — the
  // other rules still apply.
  std::vector<std::string> documented;
  bool have_readme = false;
  const fs::path readme_file =
      !readme_path.empty()
          ? fs::path(readme_path)
          : (root.empty() ? fs::path() : root_path / "README.md");
  if (!readme_file.empty() && fs::exists(readme_file)) {
    std::string text;
    if (!ReadFileOrDie(readme_file, &text)) return 2;
    documented = uuq_lint::DocumentedEnvVars(text);
    have_readme = true;
  } else if (!readme_path.empty()) {
    std::fprintf(stderr, "uuq_lint: readme %s not found\n",
                 readme_path.c_str());
    return 2;
  }

  std::vector<uuq_lint::AllowEntry> allow;
  fs::path allow_file =
      allowlist_path.empty()
          ? root_path / "tools" / "uuq_lint_allowlist.txt"
          : fs::path(allowlist_path);
  if (fs::exists(allow_file)) {
    std::string text;
    if (!ReadFileOrDie(allow_file, &text)) return 2;
    allow = uuq_lint::ParseAllowlist(text);
  } else if (!allowlist_path.empty()) {
    std::fprintf(stderr, "uuq_lint: allowlist %s not found\n",
                 allowlist_path.c_str());
    return 2;
  }

  std::vector<uuq_lint::Finding> findings;
  size_t scanned = 0;
  for (const auto& [label, disk_path] : files) {
    std::string content;
    if (!ReadFileOrDie(disk_path, &content)) return 2;
    ++scanned;
    std::vector<uuq_lint::Finding> file_findings =
        uuq_lint::LintFile(label, content);
    if (have_readme) {
      std::vector<uuq_lint::Finding> env_findings =
          uuq_lint::LintEnvDocFile(label, content, documented);
      file_findings.insert(file_findings.end(),
                           std::make_move_iterator(env_findings.begin()),
                           std::make_move_iterator(env_findings.end()));
    }
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  if (have_readme) {
    for (const auto& [label, disk_path] : env_only_files) {
      std::string content;
      if (!ReadFileOrDie(disk_path, &content)) return 2;
      ++scanned;
      std::vector<uuq_lint::Finding> env_findings =
          uuq_lint::LintEnvDocFile(label, content, documented);
      findings.insert(findings.end(),
                      std::make_move_iterator(env_findings.begin()),
                      std::make_move_iterator(env_findings.end()));
    }
  }

  findings = uuq_lint::ApplyAllowlist(std::move(findings), &allow);

  for (const uuq_lint::AllowEntry& entry : allow) {
    if (!entry.used) {
      std::fprintf(stderr,
                   "uuq_lint: warning: stale allowlist entry matched nothing: "
                   "%s|%s|%s\n",
                   entry.rule.c_str(), entry.path_suffix.c_str(),
                   entry.needle.c_str());
    }
  }

  if (!findings.empty()) {
    PrintFindings(findings);
    std::fprintf(stderr, "uuq_lint: %zu finding(s) across %zu file(s)\n",
                 findings.size(), scanned);
    return 1;
  }
  std::fprintf(stderr, "uuq_lint: clean (%zu files scanned)\n", scanned);
  return 0;
}
