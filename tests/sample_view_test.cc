// Property/fuzz tests for the columnar SampleView: random IntegratedSamples
// must round-trip losslessly, and every columnar replicate must match the
// materialized IntegratedSample of the same draws entity for entity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/estimate.h"
#include "integration/sample.h"
#include "integration/sample_view.h"

namespace uuq {
namespace {

/// A random sample: up to `max_sources` sources reporting entities from a
/// shared pool (heavy overlap so multiplicities and fusion get exercised),
/// values spanning sign and magnitude.
IntegratedSample RandomSample(Rng* rng, FusionPolicy policy,
                              int max_sources = 8, int max_entities = 40,
                              int max_observations = 200) {
  IntegratedSample sample(policy);
  const int num_sources = 1 + static_cast<int>(rng->NextBounded(max_sources));
  const int pool = 1 + static_cast<int>(rng->NextBounded(max_entities));
  const int n = 1 + static_cast<int>(rng->NextBounded(max_observations));
  for (int i = 0; i < n; ++i) {
    const int s = static_cast<int>(rng->NextBounded(num_sources));
    const int e = static_cast<int>(rng->NextBounded(pool));
    const double value = rng->NextUniform(-1e3, 1e3);
    // Occasionally categorized, to exercise the materialized LOO replay.
    const std::string category =
        rng->NextBernoulli(0.2) ? "cat" + std::to_string(e % 3) : "";
    sample.Add("src-" + std::to_string(s), "entity " + std::to_string(e),
               value, category);
  }
  return sample;
}

void ExpectReplicateMatchesMaterialized(const ReplicateSample& rep,
                                        const IntegratedSample& mat) {
  // Entity-by-entity: the columnar replicate must list the same entities in
  // the same (first-touch) order with bitwise-equal fused values.
  ASSERT_EQ(rep.entities.size(), static_cast<size_t>(mat.c()));
  const std::vector<EntityStat>& entities = mat.entities();
  for (size_t i = 0; i < rep.entities.size(); ++i) {
    EXPECT_EQ(rep.entities[i].multiplicity, entities[i].multiplicity)
        << "entity " << i;
    EXPECT_DOUBLE_EQ(rep.entities[i].value, entities[i].value)
        << "entity " << i;
  }
  // Source sizes in the materialized sample's id-sorted order.
  EXPECT_EQ(rep.source_sizes, mat.SourceSizeVector());
  // Sufficient statistics, folded in the same order.
  const SampleStats a = SampleStats::FromReplicate(rep);
  const SampleStats b = SampleStats::FromSample(mat);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.c, b.c);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.sum_mm1, b.sum_mm1);
  EXPECT_DOUBLE_EQ(a.value_sum, b.value_sum);
  EXPECT_DOUBLE_EQ(a.value_sum_sq, b.value_sum_sq);
  EXPECT_DOUBLE_EQ(a.singleton_sum, b.singleton_sum);
}

TEST(SampleViewRoundTrip, LosslessFlattening) {
  Rng rng(0xF1A7);
  const FusionPolicy policies[] = {FusionPolicy::kAverage, FusionPolicy::kFirst,
                                   FusionPolicy::kLast,
                                   FusionPolicy::kMajority};
  for (int trial = 0; trial < 40; ++trial) {
    const FusionPolicy policy = policies[trial % 4];
    const IntegratedSample sample = RandomSample(&rng, policy);
    const SampleView view(sample);
    EXPECT_EQ(view.num_observations(), sample.n());
    EXPECT_EQ(view.num_entities(), sample.c());
    EXPECT_EQ(view.num_sources(), sample.num_sources());
    EXPECT_EQ(view.policy(), sample.policy());
    // Sources come back sorted by id with their original sizes.
    ASSERT_TRUE(std::is_sorted(view.source_ids().begin(),
                               view.source_ids().end()));
    int64_t total = 0;
    for (int32_t s = 0; s < static_cast<int32_t>(view.num_sources()); ++s) {
      const auto it = sample.source_sizes().find(view.source_ids()[s]);
      ASSERT_NE(it, sample.source_sizes().end());
      EXPECT_EQ(view.source_size(s), it->second);
      total += view.source_size(s);
    }
    EXPECT_EQ(total, sample.n());
  }
}

TEST(SampleViewProperty, BootstrapReplicateMatchesMaterialized) {
  Rng rng(0xB00);
  const FusionPolicy policies[] = {FusionPolicy::kAverage, FusionPolicy::kFirst,
                                   FusionPolicy::kLast,
                                   FusionPolicy::kMajority};
  ReplicateScratch scratch;  // shared across all trials: reuse must be safe
  ReplicateSample rep;
  for (int trial = 0; trial < 60; ++trial) {
    const FusionPolicy policy = policies[trial % 4];
    // Up to 16 sources so the "bs10" lexicographic source-size ordering
    // regime (draws >= 11) is exercised directly, not just numerically.
    const IntegratedSample sample =
        RandomSample(&rng, policy, /*max_sources=*/16, /*max_entities=*/40,
                     /*max_observations=*/300);
    const SampleView view(sample);

    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);
    ASSERT_EQ(draws.size(), static_cast<size_t>(view.num_sources()));
    for (int32_t d : draws) {
      ASSERT_GE(d, 0);
      ASSERT_LT(d, static_cast<int32_t>(view.num_sources()));
    }

    view.BuildReplicate(draws, &scratch, &rep);
    ExpectReplicateMatchesMaterialized(rep, view.MaterializeReplicate(draws));

    // Per-source multiplicity conservation: the replicate holds exactly the
    // drawn sources' observations, nothing more, nothing less.
    int64_t expected_n = 0;
    for (int32_t d : draws) expected_n += view.source_size(d);
    int64_t actual_n = 0;
    for (const EntityPoint& point : rep.entities) {
      actual_n += point.multiplicity;
    }
    EXPECT_EQ(actual_n, expected_n);
    int64_t sizes_n = 0;
    for (int64_t s : rep.source_sizes) sizes_n += s;
    EXPECT_EQ(sizes_n, expected_n);
  }
}

TEST(SampleViewProperty, LeaveOneOutMatchesMaterialized) {
  Rng rng(0x100);
  const FusionPolicy policies[] = {FusionPolicy::kAverage, FusionPolicy::kFirst,
                                   FusionPolicy::kLast,
                                   FusionPolicy::kMajority};
  ReplicateScratch scratch;
  ReplicateSample rep;
  for (int trial = 0; trial < 30; ++trial) {
    const FusionPolicy policy = policies[trial % 4];
    const IntegratedSample sample = RandomSample(&rng, policy);
    const SampleView view(sample);
    for (int32_t excluded = 0;
         excluded < static_cast<int32_t>(view.num_sources()); ++excluded) {
      view.BuildLeaveOneOut(excluded, &scratch, &rep);
      ExpectReplicateMatchesMaterialized(
          rep, view.MaterializeLeaveOneOut(excluded));
      EXPECT_EQ(rep.source_sizes.size(),
                static_cast<size_t>(view.num_sources()) - 1);
    }
  }
}

TEST(SampleViewProperty, MaterializedLeaveOneOutMatchesLegacyReplay) {
  // The materialized LOO must equal replaying the arrival-order observation
  // log minus the excluded source — the exact pre-columnar jackknife body.
  Rng rng(0x3E11);
  const IntegratedSample sample = RandomSample(&rng, FusionPolicy::kAverage);
  const SampleView view(sample);
  const std::vector<Observation> log = sample.ObservationLog();
  for (int32_t excluded = 0;
       excluded < static_cast<int32_t>(view.num_sources()); ++excluded) {
    const std::string& excluded_id =
        view.source_ids()[static_cast<size_t>(excluded)];
    IntegratedSample legacy(sample.policy());
    for (const Observation& obs : log) {
      if (obs.source_id == excluded_id) continue;
      legacy.Add(obs);
    }
    const IntegratedSample loo = view.MaterializeLeaveOneOut(excluded);
    ASSERT_EQ(loo.n(), legacy.n());
    ASSERT_EQ(loo.c(), legacy.c());
    EXPECT_DOUBLE_EQ(loo.ObservedSum(), legacy.ObservedSum());
    EXPECT_DOUBLE_EQ(loo.SingletonValueSum(), legacy.SingletonValueSum());
    for (int64_t i = 0; i < loo.c(); ++i) {
      EXPECT_EQ(loo.entities()[i].key, legacy.entities()[i].key);
      EXPECT_DOUBLE_EQ(loo.entities()[i].value, legacy.entities()[i].value);
    }
  }
}

TEST(SampleViewProperty, ScratchReuseIsDeterministic) {
  Rng rng(0x5C);
  const IntegratedSample a = RandomSample(&rng, FusionPolicy::kAverage);
  const IntegratedSample b = RandomSample(&rng, FusionPolicy::kLast);
  const SampleView view_a(a);
  const SampleView view_b(b);
  std::vector<int32_t> draws_a, draws_b;
  Rng draw_rng(7);
  view_a.DrawBootstrapSources(&draw_rng, &draws_a);
  view_b.DrawBootstrapSources(&draw_rng, &draws_b);

  ReplicateScratch scratch;
  ReplicateSample first, again;
  // Interleave two views through ONE scratch; rebuilding the same draws must
  // reproduce the same replicate bit for bit (the resting-state invariant).
  view_a.BuildReplicate(draws_a, &scratch, &first);
  view_b.BuildReplicate(draws_b, &scratch, &again);
  view_a.BuildReplicate(draws_a, &scratch, &again);
  ASSERT_EQ(first.entities.size(), again.entities.size());
  for (size_t i = 0; i < first.entities.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.entities[i].value, again.entities[i].value);
    EXPECT_EQ(first.entities[i].multiplicity, again.entities[i].multiplicity);
  }
  EXPECT_EQ(first.source_sizes, again.source_sizes);
}

TEST(SampleViewProperty, DrawConsumesRngLikeLegacyResampler) {
  // The legacy map-based body drew l times with NextBounded(l); seed
  // compatibility requires the exact same consumption.
  Rng rng(0xD1CE);
  const IntegratedSample sample = RandomSample(&rng, FusionPolicy::kAverage);
  const SampleView view(sample);
  const uint64_t l = static_cast<uint64_t>(view.num_sources());

  Rng a(42), b(42);
  std::vector<int32_t> draws;
  view.DrawBootstrapSources(&a, &draws);
  for (size_t i = 0; i < draws.size(); ++i) {
    EXPECT_EQ(static_cast<uint64_t>(draws[i]), b.NextBounded(l)) << i;
  }
  // Both generators must now be in the same state.
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(SampleViewProperty, EmptySample) {
  IntegratedSample empty;
  const SampleView view(empty);
  EXPECT_EQ(view.num_sources(), 0);
  EXPECT_EQ(view.num_observations(), 0);
  Rng rng(1);
  std::vector<int32_t> draws;
  view.DrawBootstrapSources(&rng, &draws);
  EXPECT_TRUE(draws.empty());
  ReplicateScratch scratch;
  ReplicateSample rep;
  view.BuildReplicate(draws, &scratch, &rep);
  EXPECT_TRUE(rep.entities.empty());
  EXPECT_TRUE(rep.source_sizes.empty());
  EXPECT_TRUE(view.MaterializeReplicate(draws).empty());
}

TEST(SampleViewProperty, MajorityPolicyBuildsColumnar) {
  // kMajority folds columnar through the report-slot histogram; the tiny
  // deterministic case pins the mode and the first-occurrence tie-break
  // (the fuzz suite in majority_columnar_test.cc covers the general case).
  IntegratedSample sample(FusionPolicy::kMajority);
  sample.Add("a", "x", 1.0);
  sample.Add("b", "x", 2.0);
  sample.Add("c", "x", 2.0);
  const SampleView view(sample);
  EXPECT_TRUE(SampleView::PolicySupportsColumnar(FusionPolicy::kMajority));
  ReplicateScratch scratch;
  ReplicateSample rep;

  // Draws {a, b, c}: reports 1, 2, 2 — the mode is 2.
  view.BuildReplicate({0, 1, 2}, &scratch, &rep);
  ASSERT_EQ(rep.entities.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.entities[0].value, 2.0);
  EXPECT_EQ(rep.entities[0].multiplicity, 3);

  // Draws {a, b}: 1 and 2 tie — the first occurrence in replay order wins.
  view.BuildReplicate({0, 1}, &scratch, &rep);
  ASSERT_EQ(rep.entities.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.entities[0].value, 1.0);
  view.BuildReplicate({1, 0}, &scratch, &rep);
  EXPECT_DOUBLE_EQ(rep.entities[0].value, 2.0);

  // Each build matches the materialized reference exactly.
  ExpectReplicateMatchesMaterialized(rep, view.MaterializeReplicate({1, 0}));
}

// ---------------------------------------------------------------------------
// Pooled materialization (IntegratedSample::Reset + SampleArena): a reused
// shell must be indistinguishable from a freshly built sample through every
// public accessor — no stale entities, reports, histograms, or source state
// may survive a Reset.
// ---------------------------------------------------------------------------

void ExpectSamplesIdentical(const IntegratedSample& a,
                            const IntegratedSample& b) {
  EXPECT_EQ(a.policy(), b.policy());
  EXPECT_EQ(a.n(), b.n());
  EXPECT_EQ(a.c(), b.c());
  EXPECT_EQ(a.ObservedSum(), b.ObservedSum());
  EXPECT_EQ(a.SingletonValueSum(), b.SingletonValueSum());
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].key, b.entities()[i].key) << i;
    EXPECT_EQ(a.entities()[i].value, b.entities()[i].value) << i;
    EXPECT_EQ(a.entities()[i].multiplicity, b.entities()[i].multiplicity)
        << i;
    EXPECT_EQ(a.entities()[i].category, b.entities()[i].category) << i;
  }
  EXPECT_EQ(a.source_sizes(), b.source_sizes());
  EXPECT_EQ(a.source_names(), b.source_names());
  EXPECT_EQ(a.Fstats().histogram(), b.Fstats().histogram());
  ASSERT_EQ(a.raw_log().size(), b.raw_log().size());
  for (size_t i = 0; i < a.raw_log().size(); ++i) {
    EXPECT_EQ(a.raw_log()[i].source_index, b.raw_log()[i].source_index) << i;
    EXPECT_EQ(a.raw_log()[i].entity_index, b.raw_log()[i].entity_index) << i;
    EXPECT_EQ(a.raw_log()[i].value, b.raw_log()[i].value) << i;
  }
}

TEST(SampleArena, PooledMaterializationMatchesFreshAcrossViewsAndPolicies) {
  Rng rng(0xA7E);
  SampleArena arena;
  // Shrinking and growing fills through ONE pooled shell, across different
  // samples and fusion policies (kMajority included: its re-fusing Fuse()
  // reads the pooled report buffers).
  const FusionPolicy policies[] = {FusionPolicy::kAverage, FusionPolicy::kLast,
                                   FusionPolicy::kMajority,
                                   FusionPolicy::kFirst};
  for (int round = 0; round < 12; ++round) {
    const IntegratedSample sample =
        RandomSample(&rng, policies[round % 4], 6, 30, round % 3 == 0 ? 15 : 150);
    const SampleView view(sample);
    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);

    const SampleArena::Lease lease = arena.Acquire(sample.policy());
    view.MaterializeReplicateInto(draws, lease.get());
    ExpectSamplesIdentical(*lease, view.MaterializeReplicate(draws));

    if (view.num_sources() > 0) {
      const int32_t excluded =
          static_cast<int32_t>(rng.NextBounded(view.num_sources()));
      const SampleArena::Lease loo = arena.Acquire(sample.policy());
      view.MaterializeLeaveOneOutInto(excluded, loo.get());
      ExpectSamplesIdentical(*loo, view.MaterializeLeaveOneOut(excluded));
    }
  }
}

TEST(SampleArena, LeasesRecycleInsteadOfGrowing) {
  SampleArena arena;
  IntegratedSample* first = nullptr;
  {
    const SampleArena::Lease lease = arena.Acquire(FusionPolicy::kAverage);
    lease->Add("s", "a", 1.0);
    first = lease.get();
    EXPECT_EQ(arena.pooled(), 0u);
  }
  EXPECT_EQ(arena.pooled(), 1u);
  {
    // LIFO reuse: the same shell comes back, Reset to the new policy.
    const SampleArena::Lease lease = arena.Acquire(FusionPolicy::kLast);
    EXPECT_EQ(lease.get(), first);
    EXPECT_TRUE(lease->empty());
    EXPECT_EQ(lease->policy(), FusionPolicy::kLast);
    EXPECT_EQ(lease->c(), 0);
    EXPECT_EQ(lease->num_sources(), 0);
    // Nested acquire while the first lease is out gets a DIFFERENT sample.
    const SampleArena::Lease nested = arena.Acquire(FusionPolicy::kAverage);
    EXPECT_NE(nested.get(), lease.get());
  }
  EXPECT_EQ(arena.pooled(), 2u);
}

TEST(SampleArena, ResetSampleRebuildsKMajorityExactly) {
  // The report buffers are the one piece of state Reset keeps allocated;
  // kMajority's Fuse() re-scans them on every Add, so stale report values
  // would corrupt the mode. Fill, reset, refill with fewer reports.
  IntegratedSample sample(FusionPolicy::kMajority);
  sample.Add("s0", "x", 5.0);
  sample.Add("s1", "x", 5.0);
  sample.Add("s2", "x", 9.0);
  EXPECT_EQ(sample.entities()[0].value, 5.0);

  sample.Reset(FusionPolicy::kMajority);
  EXPECT_TRUE(sample.empty());
  sample.Add("s0", "x", 9.0);
  sample.Add("s1", "x", 7.0);
  // A stale {5.0, 5.0} report tail would out-vote the fresh 9.0 here.
  EXPECT_EQ(sample.entities()[0].value, 9.0);
  EXPECT_EQ(sample.c(), 1);
  EXPECT_EQ(sample.n(), 2);
}

}  // namespace
}  // namespace uuq
