#include "core/bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/naive.h"

namespace uuq {
namespace {

SampleStats MakeStats(const std::vector<std::pair<double, int64_t>>& entities) {
  SampleStats stats;
  int i = 0;
  for (const auto& [value, mult] : entities) {
    stats.Add({"e" + std::to_string(i++), value, mult});
  }
  return stats;
}

// A large, well-covered sample (few singletons, large n).
SampleStats BigCoveredStats() {
  std::vector<std::pair<double, int64_t>> entities;
  for (int i = 0; i < 300; ++i) {
    entities.push_back({100.0 + (i % 50), 3 + (i % 4)});
  }
  entities.push_back({90.0, 1});
  return MakeStats(entities);
}

TEST(ComputeSumUpperBound, EmptySampleUnbounded) {
  const auto bound = ComputeSumUpperBound(SampleStats{});
  EXPECT_FALSE(bound.finite);
  EXPECT_TRUE(std::isinf(bound.phi_upper));
}

TEST(ComputeSumUpperBound, TinySampleUnbounded) {
  // With n small the tail term alone exceeds 1.
  const auto bound = ComputeSumUpperBound(MakeStats({{10, 1}, {20, 2}}));
  EXPECT_FALSE(bound.finite);
}

TEST(ComputeSumUpperBound, LargeSampleFinite) {
  const auto bound = ComputeSumUpperBound(BigCoveredStats());
  EXPECT_TRUE(bound.finite);
  EXPECT_GT(bound.phi_upper, 0.0);
}

TEST(ComputeSumUpperBound, M0MatchesFormula) {
  const SampleStats stats = BigCoveredStats();
  const BoundOptions options;
  const auto bound = ComputeSumUpperBound(stats, options);
  const double n = static_cast<double>(stats.n);
  const double expected =
      static_cast<double>(stats.f1) / n +
      (2.0 * std::sqrt(2.0) + std::sqrt(3.0)) *
          std::sqrt(std::log(3.0 / options.failure_probability) / n);
  EXPECT_NEAR(bound.m0_upper, expected, 1e-12);
}

TEST(ComputeSumUpperBound, BoundsDominateNaiveEstimate) {
  // The worst case must sit above the point estimate.
  const SampleStats stats = BigCoveredStats();
  const auto bound = ComputeSumUpperBound(stats);
  const Estimate naive = NaiveEstimator().FromStats(stats);
  ASSERT_TRUE(bound.finite);
  EXPECT_GT(bound.n_hat_upper, naive.n_hat);
  EXPECT_GT(bound.phi_upper, naive.corrected_sum);
  EXPECT_GT(bound.delta_upper, naive.delta);
}

TEST(ComputeSumUpperBound, TightensWithMoreData) {
  // Same shape, 4x the sample size: the bound must come down relative to
  // the observed sum.
  std::vector<std::pair<double, int64_t>> small_entities, large_entities;
  for (int i = 0; i < 100; ++i) small_entities.push_back({50.0, 3});
  for (int i = 0; i < 400; ++i) large_entities.push_back({50.0, 3});
  const SampleStats small = MakeStats(small_entities);
  const SampleStats large = MakeStats(large_entities);
  const auto bound_small = ComputeSumUpperBound(small);
  const auto bound_large = ComputeSumUpperBound(large);
  ASSERT_TRUE(bound_small.finite);
  ASSERT_TRUE(bound_large.finite);
  EXPECT_LT(bound_large.phi_upper / large.value_sum,
            bound_small.phi_upper / small.value_sum);
}

TEST(ComputeSumUpperBound, HigherConfidenceIsLooser) {
  const SampleStats stats = BigCoveredStats();
  BoundOptions strict;
  strict.failure_probability = 0.001;  // 99.9%
  BoundOptions loose;
  loose.failure_probability = 0.1;  // 90%
  const auto strict_bound = ComputeSumUpperBound(stats, strict);
  const auto loose_bound = ComputeSumUpperBound(stats, loose);
  EXPECT_GT(strict_bound.m0_upper, loose_bound.m0_upper);
  EXPECT_GT(strict_bound.phi_upper, loose_bound.phi_upper);
}

TEST(ComputeSumUpperBound, SigmaZWidensValueBound) {
  const SampleStats stats =
      MakeStats({{10, 3}, {20, 3}, {30, 3}, {40, 3}, {50, 3}});
  BoundOptions z1;
  z1.sigma_z = 1.0;
  BoundOptions z3;
  z3.sigma_z = 3.0;
  EXPECT_LT(ComputeSumUpperBound(stats, z1).value_upper,
            ComputeSumUpperBound(stats, z3).value_upper);
}

TEST(ComputeSumUpperBound, ValueUpperIsMeanPlusZSigma) {
  const SampleStats stats = MakeStats({{10, 2}, {20, 2}, {30, 2}});
  const auto bound = ComputeSumUpperBound(stats);
  EXPECT_NEAR(bound.value_upper, stats.ValueMean() + 3.0 * stats.ValueStdDev(),
              1e-12);
}

TEST(ComputeSumUpperBound, SampleOverloadAgrees) {
  IntegratedSample sample;
  for (int e = 0; e < 100; ++e) {
    for (int w = 0; w < 3; ++w) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), e);
    }
  }
  const auto a = ComputeSumUpperBound(sample);
  const auto b = ComputeSumUpperBound(SampleStats::FromSample(sample));
  EXPECT_DOUBLE_EQ(a.phi_upper, b.phi_upper);
}

TEST(ComputeSumUpperBoundDeathTest, BadFailureProbabilityAborts) {
  EXPECT_DEATH(
      ComputeSumUpperBound(SampleStats{}, BoundOptions{.failure_probability = 0.0,
                                                        .sigma_z = 3.0}),
      "probability");
}

}  // namespace
}  // namespace uuq
