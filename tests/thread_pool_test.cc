#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace uuq {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](int64_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroItemRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 0, [&](int64_t) { ++calls; });
  pool.ParallelFor(7, 7, [&](int64_t) { ++calls; });
  pool.ParallelFor(5, 3, [&](int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NonZeroBeginPassesAbsoluteIndices) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 20, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&](int64_t i) {
    order.push_back(static_cast<int>(i));  // safe: no concurrency
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](int64_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, PoolIsUsableAfterAnException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(0, 8, [](int64_t) { throw std::logic_error("x"); });
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
  }
  std::atomic<int> count{0};
  pool.ParallelFor(0, 64, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ExceptionAbandonsRemainingIndicesLikeASerialLoop) {
  ThreadPool pool(1);  // inline: deterministic claim order
  std::vector<int> visited;
  try {
    pool.ParallelFor(0, 100, [&](int64_t i) {
      visited.push_back(static_cast<int>(i));
      if (i == 3) throw std::runtime_error("stop");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(visited, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, NestedParallelForOnTheSamePoolDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> cells(64);
  pool.ParallelFor(0, 8, [&](int64_t outer) {
    pool.ParallelFor(0, 8, [&](int64_t inner) {
      cells[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& cell : cells) EXPECT_EQ(cell.load(), 1);
}

TEST(ThreadPool, NestedUseAcrossDifferentPools) {
  ThreadPool outer_pool(3);
  ThreadPool inner_pool(3);
  std::atomic<int> count{0};
  outer_pool.ParallelFor(0, 6, [&](int64_t) {
    inner_pool.ParallelFor(0, 6, [&](int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 36);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  const std::vector<int64_t> squares =
      pool.ParallelMap(100, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ParallelMapOfZeroItems) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.ParallelMap(0, [](int64_t i) { return i; }).empty());
}

TEST(ThreadPool, NumThreadsClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPool, DefaultNumThreadsHonoursEnvOverride) {
  const char* saved = std::getenv("UUQ_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("UUQ_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  setenv("UUQ_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
  setenv("UUQ_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);  // falls back to hardware

  if (saved != nullptr) {
    setenv("UUQ_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("UUQ_THREADS");
  }
}

TEST(ThreadPool, OrDefaultPrefersTheGivenPool) {
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::OrDefault(&pool), &pool);
  EXPECT_EQ(ThreadPool::OrDefault(nullptr), ThreadPool::Default());
  EXPECT_NE(ThreadPool::Default(), nullptr);
}

TEST(ThreadPool, ManySmallLoopsBackToBack) {
  // Exercises the queue/wakeup path under churn.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 5, [&](int64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 5);
  }
}

// --- Serving-motivated stress: many submitter threads sharing one pool
// (the QueryService worker pattern) and exception propagation when loops
// nest and inline on pool workers. ---------------------------------------

TEST(ThreadPoolStress, ConcurrentSubmittersShareOnePool) {
  ThreadPool pool(4);
  static constexpr int kSubmitters = 8;
  static constexpr int kRounds = 50;
  static constexpr int kItems = 64;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &total] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int> local{0};
        pool.ParallelFor(0, kItems, [&](int64_t) { local.fetch_add(1); });
        ASSERT_EQ(local.load(), kItems);
        total.fetch_add(local.load());
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(),
            static_cast<int64_t>(kSubmitters) * kRounds * kItems);
}

TEST(ThreadPoolStress, ExceptionInNestedInlinedLoopReachesOuterCaller) {
  // An inner ParallelFor issued from a pool worker runs inline; its
  // exception must cross both loop boundaries to the original caller and
  // leave the pool reusable.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    bool caught = false;
    try {
      pool.ParallelFor(0, 8, [&](int64_t outer) {
        pool.ParallelFor(0, 8, [&](int64_t inner) {
          if (outer == 5 && inner == 3) {
            throw std::runtime_error("nested boom");
          }
        });
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "nested boom");
    }
    EXPECT_TRUE(caught);
    std::atomic<int> count{0};
    pool.ParallelFor(0, 32, [&](int64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 32);
  }
}

TEST(ThreadPoolStress, ConcurrentSubmittersSurviveExceptions) {
  // Half the submitters throw every round; the other half must keep
  // completing correctly — one caller's failure can never poison another's
  // loop or wedge a worker.
  ThreadPool pool(4);
  constexpr int kRounds = 30;
  std::atomic<int64_t> clean_total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 6; ++s) {
    submitters.emplace_back([&pool, &clean_total, s] {
      for (int round = 0; round < kRounds; ++round) {
        if (s % 2 == 0) {
          std::atomic<int> local{0};
          pool.ParallelFor(0, 16, [&](int64_t) { local.fetch_add(1); });
          ASSERT_EQ(local.load(), 16);
          clean_total.fetch_add(1);
        } else {
          EXPECT_THROW(pool.ParallelFor(0, 16,
                                        [](int64_t i) {
                                          if (i == 7) {
                                            throw std::logic_error("x");
                                          }
                                        }),
                       std::logic_error);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(clean_total.load(), 3 * kRounds);
}

}  // namespace
}  // namespace uuq
