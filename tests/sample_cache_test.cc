// Unit tests for the cross-query sample-artifact cache: artifact
// construction matches the from-scratch equivalents bit for bit, snapshot
// replacement semantics (evict for new lookups, pinned snapshots survive),
// and the capacity-capped answer memo.
#include "serving/sample_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/advisor.h"
#include "core/bucket.h"

namespace uuq {
namespace {

std::shared_ptr<const IntegratedSample> SmallSample(double scale) {
  auto sample = std::make_shared<IntegratedSample>();
  for (int e = 0; e < 24; ++e) {
    const int copies = 1 + (e % 3);
    for (int k = 0; k < copies; ++k) {
      sample->Add("w" + std::to_string((e + k) % 6), "e" + std::to_string(e),
                  scale * (e + 1));
    }
  }
  return sample;
}

TEST(SampleArtifacts, MatchFromScratchConstruction) {
  const auto sample = SmallSample(10.0);
  const EstimatorAdvisor::Options advisor_options;
  const SampleArtifacts artifacts(sample, advisor_options);

  // View: same flattening as a fresh SampleView.
  const SampleView fresh_view(*sample);
  EXPECT_EQ(artifacts.view.num_sources(), fresh_view.num_sources());
  EXPECT_EQ(artifacts.view.num_entities(), fresh_view.num_entities());
  EXPECT_EQ(artifacts.view.num_observations(), fresh_view.num_observations());
  ASSERT_EQ(artifacts.view.entity_rank_order().size(),
            fresh_view.entity_rank_order().size());
  for (size_t i = 0; i < fresh_view.entity_rank_order().size(); ++i) {
    EXPECT_EQ(artifacts.view.entity_rank_order()[i],
              fresh_view.entity_rank_order()[i]);
  }

  // Index: same canonical sorted content as a fresh SortedEntityIndex.
  const SortedEntityIndex fresh_index(sample->entities());
  ASSERT_EQ(artifacts.index.size(), fresh_index.size());
  for (size_t i = 0; i < fresh_index.size(); ++i) {
    EXPECT_EQ(artifacts.index.entities()[i].value,
              fresh_index.entities()[i].value);
    EXPECT_EQ(artifacts.index.entities()[i].multiplicity,
              fresh_index.entities()[i].multiplicity);
  }

  // Stats + advice: same folds and the same verdict.
  const SampleStats fresh_stats = SampleStats::FromSample(*sample);
  EXPECT_EQ(artifacts.stats.n, fresh_stats.n);
  EXPECT_EQ(artifacts.stats.f1, fresh_stats.f1);
  EXPECT_EQ(artifacts.stats.value_sum, fresh_stats.value_sum);
  const Advice fresh_advice =
      EstimatorAdvisor(advisor_options).Advise(*sample);
  EXPECT_EQ(artifacts.advice.choice, fresh_advice.choice);
  EXPECT_EQ(artifacts.advice.coverage, fresh_advice.coverage);

  // precomp() wires exactly this bundle's artifacts.
  const SamplePrecomp pre = artifacts.precomp();
  EXPECT_EQ(pre.view, &artifacts.view);
  EXPECT_EQ(pre.index, &artifacts.index);
  EXPECT_EQ(pre.stats, &artifacts.stats);
  EXPECT_EQ(pre.advice, &artifacts.advice);
}

TEST(SampleCache, PutGetEraseAndReplacementKeepsPinnedSnapshot) {
  SampleCache cache{EstimatorAdvisor::Options{}};
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("s"), nullptr);

  const auto first = cache.Put("s", SmallSample(10.0));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("s"), first);

  // Replacement: new lookups see the new snapshot; the old one stays fully
  // usable for whoever pinned it (refcount is the mechanism).
  const auto second = cache.Put("s", SmallSample(3.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("s"), second);
  EXPECT_NE(first, second);
  EXPECT_GT(first->stats.value_sum, second->stats.value_sum);

  cache.Erase("s");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("s"), nullptr);
  // first/second still alive here — destruction order is refcounted.
}

TEST(SampleCache, InstallPublishesPrebuiltSnapshot) {
  SampleCache cache{EstimatorAdvisor::Options{}};
  auto artifacts = std::make_shared<const SampleArtifacts>(
      SmallSample(2.0), EstimatorAdvisor::Options{});
  cache.Install("s", artifacts);
  EXPECT_EQ(cache.Get("s"), artifacts);
}

TEST(SampleArtifactsMemo, KeyNormalizesPointOnlyReplicates) {
  // Point-only answers do not depend on the replicate count.
  EXPECT_EQ(SampleArtifacts::AnswerKey("SELECT 1", 24, false),
            SampleArtifacts::AnswerKey("SELECT 1", 6, false));
  EXPECT_NE(SampleArtifacts::AnswerKey("SELECT 1", 24, true),
            SampleArtifacts::AnswerKey("SELECT 1", 6, true));
  EXPECT_NE(SampleArtifacts::AnswerKey("SELECT 1", 24, true),
            SampleArtifacts::AnswerKey("SELECT 1", 24, false));
  EXPECT_NE(SampleArtifacts::AnswerKey("SELECT 1", 24, true),
            SampleArtifacts::AnswerKey("SELECT 2", 24, true));
}

TEST(SampleArtifactsMemo, LookupAfterMemoizeRoundTrips) {
  const SampleArtifacts artifacts(SmallSample(1.0),
                                  EstimatorAdvisor::Options{});
  const std::string key = SampleArtifacts::AnswerKey("SELECT 1", 24, true);
  CorrectedAnswer out;
  EXPECT_FALSE(artifacts.LookupAnswer(key, &out));

  CorrectedAnswer answer;
  answer.observed = 123.5;
  answer.corrected = 456.25;
  answer.bootstrap_valid = true;
  answer.bootstrap.lo = 400.0;
  answer.bootstrap.hi = 500.0;
  artifacts.MemoizeAnswer(key, answer);

  ASSERT_TRUE(artifacts.LookupAnswer(key, &out));
  EXPECT_EQ(out.observed, 123.5);
  EXPECT_EQ(out.corrected, 456.25);
  EXPECT_TRUE(out.bootstrap_valid);
  EXPECT_EQ(out.bootstrap.lo, 400.0);
  EXPECT_EQ(out.bootstrap.hi, 500.0);
  EXPECT_FALSE(artifacts.LookupAnswer(
      SampleArtifacts::AnswerKey("SELECT 1", 6, true), &out));
}

TEST(SampleArtifactsMemo, CapacityCapDropsNewKeysNotOldOnes) {
  const SampleArtifacts artifacts(SmallSample(1.0),
                                  EstimatorAdvisor::Options{});
  CorrectedAnswer answer;
  // Fill to capacity (64) plus change; the overflow keys must be dropped
  // while every pre-cap key stays resident.
  for (int i = 0; i < 80; ++i) {
    answer.observed = static_cast<double>(i);
    artifacts.MemoizeAnswer(
        SampleArtifacts::AnswerKey("Q" + std::to_string(i), 24, true),
        answer);
  }
  CorrectedAnswer out;
  int resident = 0;
  for (int i = 0; i < 80; ++i) {
    if (artifacts.LookupAnswer(
            SampleArtifacts::AnswerKey("Q" + std::to_string(i), 24, true),
            &out)) {
      ++resident;
      EXPECT_EQ(out.observed, static_cast<double>(i));
      EXPECT_LT(i, 64);  // only pre-cap keys survive
    }
  }
  EXPECT_EQ(resident, 64);
}

}  // namespace
}  // namespace uuq
