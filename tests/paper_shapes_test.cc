// Reproduction regression suite: the paper's headline qualitative claims,
// pinned as fast automated assertions so future changes cannot silently
// break the reproduction. Each test mirrors one bench binary (which prints
// the full series); see EXPERIMENTS.md for the complete record.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "core/bucket.h"
#include "core/frequency.h"
#include "core/monte_carlo.h"
#include "core/naive.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

MonteCarloOptions FastMc() {
  MonteCarloOptions options;
  options.runs_per_point = 2;
  options.n_grid_steps = 6;
  return options;
}

IntegratedSample Ingest(const std::vector<Observation>& stream,
                        size_t prefix = SIZE_MAX) {
  IntegratedSample sample;
  for (size_t i = 0; i < std::min(prefix, stream.size()); ++i) {
    sample.Add(stream[i]);
  }
  return sample;
}

// Figure 2: the observed sum shows diminishing returns and a persistent gap.
TEST(PaperShapes, Fig2DiminishingReturnsAndGap) {
  const Scenario s = scenarios::UsTechEmployment();
  const auto half = Ingest(s.stream, s.stream.size() / 2);
  const auto full = Ingest(s.stream);
  const double first_half_gain = half.ObservedSum();
  const double second_half_gain = full.ObservedSum() - half.ObservedSum();
  EXPECT_GT(first_half_gain, 2.0 * second_half_gain);
  EXPECT_LT(full.ObservedSum(), 0.85 * s.ground_truth_sum);
}

// Figure 4: naive > freq > truth; bucket closest to truth and below naive.
TEST(PaperShapes, Fig4EstimatorOrdering) {
  const Scenario s = scenarios::UsTechEmployment();
  const auto sample = Ingest(s.stream);
  const double truth = s.ground_truth_sum;
  const double naive =
      NaiveEstimator().EstimateImpact(sample).corrected_sum;
  const double freq =
      FrequencyEstimator().EstimateImpact(sample).corrected_sum;
  const double bucket =
      BucketSumEstimator().EstimateImpact(sample).corrected_sum;

  EXPECT_GT(naive, 1.3 * truth);   // heavy overestimation
  EXPECT_GT(freq, truth);          // overestimates too...
  EXPECT_LT(freq, naive);          // ...but less than naive
  EXPECT_LT(std::fabs(bucket - truth), std::fabs(naive - truth));
  EXPECT_LT(std::fabs(bucket - truth), std::fabs(freq - truth));
  EXPECT_LT(std::fabs(bucket / truth - 1.0), 0.15);  // within 15%
}

// Figure 5(b): under the GDP streaker, Chao92-based estimators are
// unusable early while Monte-Carlo equals the observed sum.
TEST(PaperShapes, Fig5bStreakerBreaksChaoOnlyMcSurvives) {
  const Scenario s = scenarios::UsGdp();
  const auto early = Ingest(s.stream, 45);  // streaker-only prefix
  EXPECT_FALSE(std::isfinite(
      NaiveEstimator().EstimateImpact(early).corrected_sum));
  EXPECT_FALSE(std::isfinite(
      BucketSumEstimator().EstimateImpact(early).corrected_sum));
  const double mc =
      MonteCarloEstimator(FastMc()).EstimateImpact(early).corrected_sum;
  EXPECT_NEAR(mc, early.ObservedSum(), 1e-6);

  // Everyone recovers with the honest workers' answers.
  const auto late = Ingest(s.stream);
  const double naive_late =
      NaiveEstimator().EstimateImpact(late).corrected_sum;
  EXPECT_TRUE(std::isfinite(naive_late));
  EXPECT_LT(naive_late / s.ground_truth_sum, 1.6);
}

// Figure 5(c): bucket converges near the paper's ~95k reference.
TEST(PaperShapes, Fig5cProtonBeamBucketNearReference) {
  const Scenario s = scenarios::ProtonBeam();
  const auto sample = Ingest(s.stream);
  const double bucket =
      BucketSumEstimator().EstimateImpact(sample).corrected_sum;
  EXPECT_GT(bucket, 85000.0);
  EXPECT_LT(bucket, 110000.0);
}

// Figure 6 "rare events" row: with skew but NO correlation, everyone
// underestimates (black swans hide in the tail).
TEST(PaperShapes, Fig6RareEventsEveryoneUnderestimates) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 4.0;
  pop.rho = 0.0;
  pop.seed = 31;
  CrowdConfig crowd;
  crowd.num_workers = 10;
  crowd.answers_per_worker = 30;
  crowd.seed = 32;
  const Scenario s = scenarios::Synthetic(pop, crowd);
  const auto sample = Ingest(s.stream);
  constexpr double kTruth = 50500.0;
  for (const SumEstimator* est :
       std::initializer_list<const SumEstimator*>{
           new NaiveEstimator(), new FrequencyEstimator(),
           new BucketSumEstimator()}) {
    const Estimate e = est->EstimateImpact(sample);
    if (e.finite) EXPECT_LT(e.corrected_sum, kTruth) << e.estimator;
    delete est;
  }
}

// Figure 6 "realistic" row: bucket does not overestimate.
TEST(PaperShapes, Fig6RealisticBucketDoesNotOverestimate) {
  constexpr double kTruth = 50500.0;
  int overshoots = 0;
  for (uint64_t seed = 41; seed < 49; ++seed) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = 4.0;
    pop.rho = 1.0;
    pop.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = 10;
    crowd.answers_per_worker = 40;
    crowd.seed = seed + 100;
    const Scenario s = scenarios::Synthetic(pop, crowd);
    const double bucket =
        BucketSumEstimator().EstimateImpact(Ingest(s.stream)).corrected_sum;
    if (bucket > kTruth * 1.05) ++overshoots;
  }
  EXPECT_LE(overshoots, 1);  // "does not over-estimate" (allow seed noise)
}

// Figure 7(b): an injected streaker breaks Chao-based estimators but not MC.
TEST(PaperShapes, Fig7bInjectedStreakerMcRobust) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 51;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.streaker_at = 160;
  crowd.streaker_items = 100;
  crowd.seed = 52;
  const Scenario s = scenarios::Synthetic(pop, crowd);
  // Right after the streaker finished (n = 260).
  const auto sample = Ingest(s.stream, 260);
  constexpr double kTruth = 50500.0;
  const double mc =
      MonteCarloEstimator(FastMc()).EstimateImpact(sample).corrected_sum;
  const double naive =
      NaiveEstimator().EstimateImpact(sample).corrected_sum;
  EXPECT_LT(std::fabs(mc - kTruth), std::fabs(naive - kTruth));
  EXPECT_NEAR(mc / kTruth, 1.0, 0.10);
}

// §6.1.5: Monte-Carlo is orders of magnitude slower than bucket.
TEST(PaperShapes, RuntimeOrderingMcSlowerThanBucket) {
  const Scenario s = scenarios::UsTechEmployment();
  const auto sample = Ingest(s.stream, 250);
  const BucketSumEstimator bucket;
  const MonteCarloEstimator mc(FastMc());

  const auto time = [](auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // One warmup each, then measure.
  (void)bucket.EstimateImpact(sample);
  (void)mc.EstimateImpact(sample);
  const double bucket_seconds =
      time([&] { (void)bucket.EstimateImpact(sample); });
  const double mc_seconds = time([&] { (void)mc.EstimateImpact(sample); });
  EXPECT_GT(mc_seconds, 10.0 * bucket_seconds);
}

// Table 2: the exact toy-example values (already unit-tested in
// toy_example_test; here as a one-line reproduction invariant).
TEST(PaperShapes, Table2BucketValues) {
  IntegratedSample sample;
  sample.Add("s1", "A", 1000);
  sample.Add("s1", "B", 2000);
  sample.Add("s1", "D", 10000);
  sample.Add("s2", "B", 2000);
  sample.Add("s2", "D", 10000);
  sample.Add("s3", "D", 10000);
  sample.Add("s4", "D", 10000);
  EXPECT_NEAR(BucketSumEstimator().EstimateImpact(sample).corrected_sum,
              14500.0, 1e-6);
}

}  // namespace
}  // namespace uuq
