#include "db/query.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/query_correction.h"

namespace uuq {
namespace {

Table CompaniesFixture() {
  Table table("companies", Schema({{"name", ValueType::kString},
                                   {"employees", ValueType::kDouble}}));
  EXPECT_TRUE(table.Append({Value("ibm"), Value(1000.0)}).ok());
  EXPECT_TRUE(table.Append({Value("tiny"), Value(3.0)}).ok());
  EXPECT_TRUE(table.Append({Value("mid"), Value(100.0)}).ok());
  EXPECT_TRUE(table.Append({Value("ghost"), Value::Null()}).ok());
  return table;
}

AggregateQuery MakeQuery(AggregateKind kind, std::string attr,
                         PredicatePtr pred = nullptr) {
  AggregateQuery q;
  q.aggregate = kind;
  q.attribute = std::move(attr);
  q.table_name = "companies";
  q.predicate = pred != nullptr ? pred : MakeTrue();
  return q;
}

TEST(ExecuteAggregateQuery, SumAll) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kSum, "employees"), CompaniesFixture());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().value.AsDouble(), 1103.0);
  EXPECT_EQ(result.value().rows_matched, 4);  // ghost matched, null skipped
  EXPECT_EQ(result.value().matched_values.size(), 3u);
}

TEST(ExecuteAggregateQuery, SumWithPredicate) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kSum, "employees",
                MakeComparison("employees", CompareOp::kGt, Value(50.0))),
      CompaniesFixture());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().value.AsDouble(), 1100.0);
  EXPECT_EQ(result.value().rows_matched, 2);
}

TEST(ExecuteAggregateQuery, CountStar) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kCount, "*"), CompaniesFixture());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().value.AsInt64(), 4);
}

TEST(ExecuteAggregateQuery, CountColumnSkipsNulls) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kCount, "employees"), CompaniesFixture());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().value.AsInt64(), 3);
}

TEST(ExecuteAggregateQuery, Avg) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kAvg, "employees"), CompaniesFixture());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().value.AsDouble(), 1103.0 / 3.0, 1e-12);
}

TEST(ExecuteAggregateQuery, MinAndMax) {
  const auto min_result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kMin, "employees"), CompaniesFixture());
  ASSERT_TRUE(min_result.ok());
  EXPECT_DOUBLE_EQ(min_result.value().value.AsDouble(), 3.0);

  const auto max_result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kMax, "employees"), CompaniesFixture());
  ASSERT_TRUE(max_result.ok());
  EXPECT_DOUBLE_EQ(max_result.value().value.AsDouble(), 1000.0);
}

TEST(ExecuteAggregateQuery, EmptyMatchIsNull) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kSum, "employees",
                MakeComparison("employees", CompareOp::kGt, Value(1e9))),
      CompaniesFixture());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().value.is_null());
  EXPECT_TRUE(std::isnan(result.value().AsDoubleOrNan()));
}

TEST(ExecuteAggregateQuery, UnknownAttributeFails) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kSum, "revenue"), CompaniesFixture());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ExecuteAggregateQuery, BadPredicateColumnFails) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kSum, "employees",
                MakeComparison("ghost_col", CompareOp::kGt, Value(0.0))),
      CompaniesFixture());
  EXPECT_FALSE(result.ok());
}

TEST(ExecuteAggregateQuery, SumOverStringColumnFails) {
  const auto result = ExecuteAggregateQuery(
      MakeQuery(AggregateKind::kSum, "name"), CompaniesFixture());
  EXPECT_FALSE(result.ok());
}

// An all-singleton sample degenerates Chao92 (coverage 0, N̂ → ∞): the
// corrector clamps to the observed answer and flags it. The flag must
// survive the whole SQL result path — per-answer, per-group, and in the
// rendered report the CLI prints.
TEST(SqlResultPath, UnconstrainedClampPropagates) {
  IntegratedSample sample;
  for (int e = 0; e < 12; ++e) {
    sample.Add("w" + std::to_string(e % 3), "e" + std::to_string(e),
               10.0 * (e + 1), e % 2 == 0 ? "even" : "odd");
  }
  const QueryCorrector corrector;

  auto answer =
      corrector.CorrectSql(sample, "SELECT SUM(value) FROM integrated");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer.value().unconstrained);
  EXPECT_DOUBLE_EQ(answer.value().corrected, answer.value().observed);
  EXPECT_NE(answer.value().ToString().find("UNCONSTRAINED"),
            std::string::npos);

  auto grouped = corrector.CorrectGroupedSql(
      sample, "SELECT SUM(value) FROM integrated GROUP BY category");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  ASSERT_EQ(grouped.value().groups.size(), 2u);
  for (const auto& [category, group_answer] : grouped.value().groups) {
    EXPECT_TRUE(group_answer.unconstrained) << category;
  }
  // The rendered grouped report marks every clamped group line.
  const std::string report = grouped.value().ToString();
  size_t markers = 0;
  for (size_t pos = report.find("UNCONSTRAINED"); pos != std::string::npos;
       pos = report.find("UNCONSTRAINED", pos + 1)) {
    ++markers;
  }
  EXPECT_EQ(markers, 2u);
}

TEST(AggregateQuery, ToStringRendering) {
  const auto q = MakeQuery(
      AggregateKind::kSum, "employees",
      MakeComparison("employees", CompareOp::kGt, Value(int64_t{10})));
  EXPECT_EQ(q.ToString(),
            "SELECT SUM(employees) FROM companies WHERE (employees > 10)");
  const auto bare = MakeQuery(AggregateKind::kCount, "*");
  EXPECT_EQ(bare.ToString(), "SELECT COUNT(*) FROM companies");
}

}  // namespace
}  // namespace uuq
