#include "common/strings.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(AsciiToLower, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC dEf"), "abc def");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("123!@#"), "123!@#");
}

TEST(StripWhitespace, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("\t\nabc"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StripWhitespace, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StripWhitespace, PreservesInnerWhitespace) {
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(Split, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(EqualsIgnoreCase, Matches) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "sElEcT"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(EqualsIgnoreCase, Rejects) {
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELECT "));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("a", ""));
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(FormatDouble, IntegersHaveNoDecimals) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-42.0), "-42");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(3.50000, 6), "3.5");
  EXPECT_EQ(FormatDouble(0.25, 6), "0.25");
}

TEST(FormatDouble, HandlesSpecials) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Padding, PadRightAndLeft) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");  // never truncates below content
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

}  // namespace
}  // namespace uuq
