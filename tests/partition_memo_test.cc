// Fuzz suite for the memoized + pruned dynamic split scan (PR 4).
//
// The reference below is a straight port of the PR 3 scan: every bucket
// re-walks its cut list and evaluates BOTH |Δ| halves of every candidate,
// no memo arena, no pruning. The production DynamicPartitioner must produce
// bit-identical bucket boundaries — and, through the bootstrap, bit-identical
// interval endpoints — on every input we can throw at it: tie-heavy,
// constant-value, single-entity, all-singleton (infinite deltas), negative
// values, and random bootstrap replicates through the scratch path, at every
// thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/frequency.h"
#include "core/naive.h"
#include "integration/sample.h"
#include "integration/sample_view.h"

namespace uuq {
namespace {

/// |Δ| exactly as the production scan's AbsDelta (bucket.cc).
double RefAbsDelta(const StatsSumEstimator& inner, const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  const double delta = inner.DeltaFromStats(stats);
  if (!std::isfinite(delta)) return std::numeric_limits<double>::infinity();
  return std::fabs(delta);
}

/// The PR 3 dynamic scan, verbatim: FIFO worklist, fresh per-bucket delta,
/// full two-half evaluation of every candidate, first-minimum tie-break.
std::vector<size_t> ReferenceDynamicPartition(const SortedEntityIndex& index,
                                              const StatsSumEstimator& inner) {
  const size_t size = index.size();
  std::vector<size_t> bounds;
  if (size == 0) {
    bounds = {0, 0};
    return bounds;
  }

  std::vector<std::pair<size_t, size_t>> todo;
  std::vector<std::pair<size_t, size_t>> done;
  double delta_min = RefAbsDelta(inner, index.Slice(0, size));
  todo.push_back({0, size});

  for (size_t head = 0; head < todo.size(); ++head) {
    const auto [b_begin, b_end] = todo[head];
    const double b_delta = RefAbsDelta(inner, index.Slice(b_begin, b_end));
    double delta_rest;
    if (std::isinf(b_delta) || std::isinf(delta_min)) {
      delta_rest = 0.0;
      for (const auto& r : done) {
        delta_rest += RefAbsDelta(inner, index.Slice(r.first, r.second));
      }
      for (size_t i = head + 1; i < todo.size(); ++i) {
        delta_rest +=
            RefAbsDelta(inner, index.Slice(todo[i].first, todo[i].second));
      }
      delta_min = delta_rest + b_delta;
    } else {
      delta_rest = delta_min - b_delta;
    }

    std::vector<size_t> cuts;
    {
      size_t cut = b_begin < size ? index.UpperBoundOfValueAt(b_begin) : b_end;
      while (cut < b_end) {
        cuts.push_back(cut);
        cut = index.UpperBoundOfValueAt(cut);
      }
    }
    bool found = false;
    size_t best_cut = 0;
    for (size_t cut : cuts) {
      const double candidate = delta_rest +
                               RefAbsDelta(inner, index.Slice(b_begin, cut)) +
                               RefAbsDelta(inner, index.Slice(cut, b_end));
      if (candidate < delta_min) {
        delta_min = candidate;
        best_cut = cut;
        found = true;
      }
    }
    if (found) {
      todo.push_back({b_begin, best_cut});
      todo.push_back({best_cut, b_end});
    } else {
      done.push_back({b_begin, b_end});
    }
  }

  std::sort(done.begin(), done.end());
  bounds.push_back(0);
  for (const auto& r : done) bounds.push_back(r.second);
  return bounds;
}

void ExpectSamePartition(const SortedEntityIndex& index,
                         const StatsSumEstimator& inner,
                         const std::string& what) {
  const std::vector<size_t> expected = ReferenceDynamicPartition(index, inner);
  // Batched SoA scan (the default mode since PR 5).
  const DynamicPartitioner batched;
  const std::vector<size_t> serial_batched = batched.Partition(index, inner);
  ASSERT_EQ(serial_batched, expected) << what << " [batched]";

  // Scalar per-candidate scan (the PR 4 path, kept as the same-process
  // reference mode): must agree with both.
  const DynamicPartitioner scalar(SplitScanMode::kScalar);
  ASSERT_EQ(scalar.Partition(index, inner), expected) << what << " [scalar]";

  // And again through a parallel pool for both modes (the fan-out paths
  // prune against the scan-start δmin instead of the running one, and the
  // batched fan-out additionally runs the kernel's pre-filter — the
  // boundaries must not care).
  ThreadPool pool(4);
  const DynamicPartitioner parallel_batched(&pool);
  EXPECT_EQ(parallel_batched.Partition(index, inner), expected)
      << what << " [batched pool]";
  const DynamicPartitioner parallel_scalar(&pool, SplitScanMode::kScalar);
  EXPECT_EQ(parallel_scalar.Partition(index, inner), expected)
      << what << " [scalar pool]";
}

SortedEntityIndex IndexOf(const std::vector<EntityPoint>& points) {
  return SortedEntityIndex(std::vector<EntityPoint>(points));
}

TEST(PartitionMemoFuzz, RandomSamplesMatchUnmemoizedScan) {
  Rng rng(0xF42);
  const NaiveEstimator naive;
  const FrequencyEstimator freq;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(400));
    std::vector<EntityPoint> points;
    points.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      points.push_back({rng.NextUniform(-100.0, 1000.0),
                        1 + static_cast<int64_t>(rng.NextBounded(5))});
    }
    const SortedEntityIndex index = IndexOf(points);
    ExpectSamePartition(index, naive, "random/naive trial " +
                                          std::to_string(trial));
    ExpectSamePartition(index, freq,
                        "random/freq trial " + std::to_string(trial));
  }
}

TEST(PartitionMemoFuzz, TieHeavySamplesMatchUnmemoizedScan) {
  // Few distinct values, many multiplicity ties: stresses the equal-value
  // run boundaries the child cut lists inherit and the first-minimum
  // tie-break among equal candidate totals.
  Rng rng(0xF43);
  const NaiveEstimator naive;
  for (int trial = 0; trial < 40; ++trial) {
    const int distinct = 2 + static_cast<int>(rng.NextBounded(6));
    const int n = 20 + static_cast<int>(rng.NextBounded(300));
    std::vector<EntityPoint> points;
    for (int i = 0; i < n; ++i) {
      points.push_back(
          {static_cast<double>(rng.NextBounded(distinct)) * 10.0,
           1 + static_cast<int64_t>(rng.NextBounded(3))});
    }
    ExpectSamePartition(IndexOf(points), naive,
                        "tie-heavy trial " + std::to_string(trial));
  }
}

TEST(PartitionMemoFuzz, ConstantValueSampleIsOneBucket) {
  const NaiveEstimator naive;
  std::vector<EntityPoint> points(50, EntityPoint{7.5, 2});
  points[10].multiplicity = 1;
  const SortedEntityIndex index = IndexOf(points);
  ExpectSamePartition(index, naive, "constant-value");
  // No legal cut exists inside a single equal-value run.
  const std::vector<size_t> bounds =
      DynamicPartitioner().Partition(index, naive);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 50}));
}

TEST(PartitionMemoFuzz, SingleEntityAndEmptySamples) {
  const NaiveEstimator naive;
  ExpectSamePartition(IndexOf({{3.0, 4}}), naive, "single entity");
  ExpectSamePartition(IndexOf({{3.0, 1}}), naive, "single singleton");
  ExpectSamePartition(SortedEntityIndex(std::vector<EntityPoint>{}), naive,
                      "empty");
}

TEST(PartitionMemoFuzz, AllSingletonSamplesExerciseInfiniteDeltas) {
  // Every slice is all-singletons, so every |Δ| is +inf: the scan must take
  // the infinity-aware delta_rest recomputation on every bucket and still
  // match the reference (including through the memoized child deltas).
  Rng rng(0xF44);
  const NaiveEstimator naive;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(60));
    std::vector<EntityPoint> points;
    for (int i = 0; i < n; ++i) {
      points.push_back({rng.NextUniform(0.0, 50.0), 1});
    }
    ExpectSamePartition(IndexOf(points), naive,
                        "all-singleton trial " + std::to_string(trial));
  }
}

TEST(PartitionMemoFuzz, BootstrapReplicatesThroughScratchMatchReference) {
  // The replicate path: indexes rebuilt through IndexScratch (incremental
  // re-sort) and partitioned through the scratch-owned memo arena, many
  // replicates through ONE scratch — each must match the reference scan on
  // its own index.
  Rng rng(0xF45);
  IntegratedSample sample;
  for (int i = 0; i < 400; ++i) {
    sample.Add("s" + std::to_string(rng.NextBounded(12)),
               "e" + std::to_string(rng.NextBounded(150)),
               rng.NextUniform(-50.0, 500.0));
  }
  const SampleView view(sample);
  const NaiveEstimator naive;
  const DynamicPartitioner dynamic;
  ReplicateScratch rscratch;
  ReplicateSample rep;
  IndexScratch iscratch;
  // ONE partition scratch shared across every round: its cross-call
  // root_cut_hint goes warm after round 0, so this also pins that the
  // probe-seeded pruning never changes boundaries.
  PartitionScratch pscratch;
  std::vector<size_t> bounds;
  for (int round = 0; round < 25; ++round) {
    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);
    view.BuildReplicate(draws, &rscratch, &rep);
    const SortedEntityIndex& index = iscratch.RebuildIndex(rep);
    dynamic.PartitionInto(index, naive, &pscratch, &bounds);
    EXPECT_EQ(bounds, ReferenceDynamicPartition(index, naive))
        << "replicate round " << round;
    EXPECT_EQ(dynamic.Partition(index, naive), bounds)
        << "warm-hint scratch vs fresh scratch, round " << round;
  }
}

TEST(PartitionMemoFuzz, IntervalEndpointsBitIdenticalAcrossPathsAndThreads) {
  // End to end: the memoized scan feeds both evaluation modes, so columnar,
  // materialized, 1-thread, and 8-thread bootstrap intervals must all agree
  // bit for bit.
  Rng rng(0xF46);
  IntegratedSample sample;
  for (int i = 0; i < 500; ++i) {
    sample.Add("s" + std::to_string(rng.NextBounded(15)),
               "e" + std::to_string(rng.NextBounded(200)),
               rng.NextUniform(0.0, 300.0));
  }
  const BucketSumEstimator bucket;
  ThreadPool serial(1);
  ThreadPool wide(8);
  BootstrapOptions options;
  options.replicates = 32;

  options.pool = &serial;
  options.evaluation = ReplicateEvaluation::kColumnar;
  const BootstrapInterval col1 = BootstrapCorrectedSum(sample, bucket, options);
  options.pool = &wide;
  const BootstrapInterval col8 = BootstrapCorrectedSum(sample, bucket, options);
  options.evaluation = ReplicateEvaluation::kMaterialized;
  const BootstrapInterval mat8 = BootstrapCorrectedSum(sample, bucket, options);

  EXPECT_EQ(col1.lo, col8.lo);
  EXPECT_EQ(col1.hi, col8.hi);
  EXPECT_EQ(col1.median, col8.median);
  EXPECT_EQ(col1.lo, mat8.lo);
  EXPECT_EQ(col1.hi, mat8.hi);
  EXPECT_EQ(col1.median, mat8.median);
  ASSERT_EQ(col1.replicates.size(), mat8.replicates.size());
  for (size_t i = 0; i < col1.replicates.size(); ++i) {
    EXPECT_EQ(col1.replicates[i], mat8.replicates[i]) << i;
  }
}

}  // namespace
}  // namespace uuq
