// Pins the pilot-then-refine adaptive replicate budget (core/
// adaptive_budget.h + the bootstrap engine's escalation loop) and the
// cross-replicate mega-batch evaluator:
//
//  * the pilot is a bit-exact PREFIX of any larger run (same Rng::Split
//    stream per replicate index, whatever the round schedule);
//  * an adaptive run is bit-identical to a fixed-budget run at the settled
//    replicate count — for every thread count and block size;
//  * easy targets stop early, impossible targets trip the cap as
//    precision_degraded (never as an abort);
//  * a deadline firing MID-escalation returns the completed prefix's
//    interval, typed as precision degradation — the answer a fixed run at
//    that prefix would have produced, not a degenerate abort;
//  * BucketSumEstimator::EstimateReplicateBatch (the root-scan mega-batch)
//    is bit-identical to the one-at-a-time replicate path.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "core/adaptive_budget.h"
#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/naive.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

IntegratedSample HealthySample(uint64_t seed = 3) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.seed = seed + 1;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  return sample;
}

BootstrapOptions BaseOptions(int replicates) {
  BootstrapOptions options;
  options.replicates = replicates;
  return options;
}

void ExpectBitIdentical(const BootstrapInterval& a,
                        const BootstrapInterval& b) {
  EXPECT_EQ(a.point, b.point);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.finite_replicates, b.finite_replicates);
  EXPECT_EQ(a.replicates, b.replicates);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.90), 1.644854, 1e-4);
}

TEST(EstimatedHalfWidth, DegenerateInputs) {
  const double one[] = {5.0};
  EXPECT_TRUE(std::isinf(EstimatedHalfWidth(one, 1, 0.95)));
  const double flat[] = {5.0, 5.0, 5.0};
  EXPECT_EQ(EstimatedHalfWidth(flat, 3, 0.95), 0.0);
  const double with_inf[] = {5.0, std::numeric_limits<double>::infinity()};
  EXPECT_TRUE(std::isinf(EstimatedHalfWidth(with_inf, 2, 0.95)));
}

TEST(PlannedReplicates, GrowsWithTighterEpsilon) {
  // sd = 1 over these values; planned B = ceil((z/eps)^2), never < count.
  std::vector<double> values;
  for (int i = 0; i < 16; ++i) values.push_back((i % 2 == 0) ? 1.0 : -1.0);
  const int loose = PlannedReplicates(values.data(), 16, /*epsilon=*/10.0,
                                      /*confidence=*/0.95);
  const int tight = PlannedReplicates(values.data(), 16, /*epsilon=*/0.1,
                                      /*confidence=*/0.95);
  EXPECT_EQ(loose, 16);  // already met -> stay at the observed count
  EXPECT_GT(tight, 100);
}

// An unmeetable target (epsilon ~ 0) escalates to the cap and reports
// precision_degraded; the result is still a full, valid interval.
TEST(AdaptiveBudget, CapTripsAsPrecisionDegraded) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;
  BootstrapOptions options = BaseOptions(64);
  options.adaptive.enabled = true;
  options.adaptive.epsilon = 1e-9;
  options.adaptive.max_replicates = 64;
  const BootstrapInterval adaptive =
      BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_FALSE(adaptive.aborted);
  EXPECT_TRUE(adaptive.adaptive.enabled);
  EXPECT_TRUE(adaptive.adaptive.precision_degraded);
  EXPECT_FALSE(adaptive.adaptive.target_met);
  EXPECT_EQ(adaptive.adaptive.replicates_used, 64);
  EXPECT_GT(adaptive.adaptive.escalations, 0);

  const BootstrapInterval fixed =
      BootstrapCorrectedSum(sample, bucket, BaseOptions(64));
  ExpectBitIdentical(adaptive, fixed);
}

// A trivially generous target stops at the pilot — strictly fewer
// replicates than the fixed default — and the pilot IS a fixed run at
// pilot size, bit for bit.
TEST(AdaptiveBudget, EasyTargetStopsAtPilotPrefix) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;
  BootstrapOptions options = BaseOptions(48);
  options.adaptive.enabled = true;
  options.adaptive.epsilon = std::numeric_limits<double>::max();
  const BootstrapInterval adaptive =
      BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_TRUE(adaptive.adaptive.target_met);
  EXPECT_FALSE(adaptive.adaptive.precision_degraded);
  EXPECT_EQ(adaptive.adaptive.replicates_used, 16);
  EXPECT_EQ(adaptive.adaptive.pilot_replicates, 16);
  EXPECT_EQ(adaptive.adaptive.escalations, 0);
  EXPECT_LT(adaptive.adaptive.replicates_used, 48);

  const BootstrapInterval fixed =
      BootstrapCorrectedSum(sample, bucket, BaseOptions(16));
  ExpectBitIdentical(adaptive, fixed);
}

// The tentpole contract: whatever budget the adaptive loop settles on, the
// interval equals a fixed run at that budget — across thread counts and
// block sizes. The epsilon is chosen (from the pilot's own half-width) so
// the loop must escalate at least once before meeting it.
TEST(AdaptiveBudget, BitIdenticalToFixedAcrossThreadsAndBlocks) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;

  // Probe the pilot's half-width once (huge epsilon -> stop at pilot).
  BootstrapOptions probe = BaseOptions(200);
  probe.adaptive.enabled = true;
  probe.adaptive.epsilon = std::numeric_limits<double>::max();
  const BootstrapInterval pilot =
      BootstrapCorrectedSum(sample, bucket, probe);
  ASSERT_TRUE(std::isfinite(pilot.adaptive.half_width));
  ASSERT_GT(pilot.adaptive.half_width, 0.0);
  // Tighter than the pilot delivers, loose enough to meet well under the
  // cap: forces the escalation path without tripping precision_degraded.
  const double epsilon = pilot.adaptive.half_width * 0.7;

  int settled = -1;
  for (const int threads : {1, 2, 4}) {
    for (const int block : {1, 8, 32}) {
      ThreadPool pool(threads);
      BootstrapOptions options = BaseOptions(200);
      options.pool = &pool;
      options.replicate_block = block;
      options.adaptive.enabled = true;
      options.adaptive.epsilon = epsilon;
      const BootstrapInterval adaptive =
          BootstrapCorrectedSum(sample, bucket, options);
      EXPECT_TRUE(adaptive.adaptive.target_met)
          << "threads=" << threads << " block=" << block;
      EXPECT_GT(adaptive.adaptive.escalations, 0);
      EXPECT_GT(adaptive.adaptive.replicates_used, 16);
      EXPECT_LT(adaptive.adaptive.replicates_used, 200);
      // Every configuration settles on the same budget (the decision is a
      // pure function of the replicate values, which are config-invariant).
      if (settled < 0) settled = adaptive.adaptive.replicates_used;
      EXPECT_EQ(adaptive.adaptive.replicates_used, settled)
          << "threads=" << threads << " block=" << block;

      BootstrapOptions fixed_options = BaseOptions(settled);
      fixed_options.pool = &pool;
      fixed_options.replicate_block = block;
      const BootstrapInterval fixed =
          BootstrapCorrectedSum(sample, bucket, fixed_options);
      ExpectBitIdentical(adaptive, fixed);
    }
  }
}

// Cancellation during an escalation round (after the pilot completed)
// returns the completed prefix's interval — bit-identical to a fixed run
// at the prefix — typed as precision degradation, NOT as an abort.
TEST(AdaptiveBudget, DeadlineMidEscalationDegradesTyped) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;
  CancelSource cancel;
  BootstrapOptions options = BaseOptions(200);
  options.adaptive.enabled = true;
  options.adaptive.epsilon = 1e-9;  // never met -> would escalate to cap
  options.cancel = cancel.token();
  options.replicate_probe = [&cancel](int64_t b) {
    // Fires on the first replicate past the pilot: the pilot round runs to
    // completion, the first escalation round aborts immediately.
    if (b >= 16) cancel.RequestCancel();
  };
  const BootstrapInterval adaptive =
      BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_FALSE(adaptive.aborted);
  EXPECT_TRUE(adaptive.adaptive.precision_degraded);
  EXPECT_FALSE(adaptive.adaptive.target_met);
  EXPECT_EQ(adaptive.adaptive.replicates_used, 16);
  EXPECT_EQ(adaptive.finite_replicates, 16);

  const BootstrapInterval fixed =
      BootstrapCorrectedSum(sample, bucket, BaseOptions(16));
  ExpectBitIdentical(adaptive, fixed);
}

// Cancellation INSIDE the pilot (no completed prefix) degrades exactly like
// a cancelled fixed run: the degenerate aborted interval.
TEST(AdaptiveBudget, CancelInsidePilotAborts) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;
  CancelSource cancel;
  cancel.RequestCancel();
  BootstrapOptions options = BaseOptions(200);
  options.adaptive.enabled = true;
  options.adaptive.epsilon = 1.0;
  options.cancel = cancel.token();
  const BootstrapInterval interval =
      BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_TRUE(interval.aborted);
  EXPECT_EQ(interval.finite_replicates, 0);
  EXPECT_TRUE(interval.adaptive.precision_degraded);
  EXPECT_EQ(interval.adaptive.replicates_used, 0);
}

// Out-of-range adaptive confidence follows the AdaptiveBudgetOptions
// contract — fall back to 0.95 — instead of CHECK-aborting: the field can
// carry a request-supplied value, so an abort here would let one request
// kill a serving process. The fallback run is bit-identical to an explicit
// confidence=0.95 run.
TEST(AdaptiveBudget, OutOfRangeConfidenceFallsBackTo095) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;
  BootstrapOptions reference = BaseOptions(64);
  reference.adaptive.enabled = true;
  reference.adaptive.epsilon = 100.0;
  reference.adaptive.confidence = 0.95;
  const BootstrapInterval expected =
      BootstrapCorrectedSum(sample, bucket, reference);
  for (const double confidence :
       {1.0, 1.5, 0.0, -0.5, std::numeric_limits<double>::quiet_NaN()}) {
    BootstrapOptions options = reference;
    options.adaptive.confidence = confidence;
    const BootstrapInterval interval =
        BootstrapCorrectedSum(sample, bucket, options);
    EXPECT_EQ(interval.adaptive.replicates_used,
              expected.adaptive.replicates_used)
        << "confidence=" << confidence;
    EXPECT_EQ(interval.adaptive.half_width, expected.adaptive.half_width)
        << "confidence=" << confidence;
    ExpectBitIdentical(interval, expected);
  }
}

// The mega-batch evaluator must equal the one-at-a-time replicate path bit
// for bit on the same built replicates (the engine mixes the two freely).
TEST(MegaBatch, BatchMatchesScalarBitForBit) {
  const IntegratedSample sample = HealthySample();
  const BucketSumEstimator bucket;
  ASSERT_TRUE(bucket.SupportsReplicateBatch());

  const SampleView view(sample);
  Rng root(0xB007ull);
  const std::vector<Rng> streams = root.SplitStreams(12);
  std::deque<ReplicateScratch> scratches;
  std::deque<ReplicateSample> reps;
  std::vector<const ReplicateSample*> ptrs;
  for (int b = 0; b < 12; ++b) {
    scratches.emplace_back();
    reps.emplace_back();
    Rng rng = streams[static_cast<size_t>(b)];
    view.DrawBootstrapSources(&rng, &scratches.back().draws());
    view.BuildReplicate(scratches.back().draws(), &scratches.back(),
                        &reps.back());
    ptrs.push_back(&reps.back());
  }

  std::vector<double> batched(ptrs.size());
  bucket.EstimateReplicateBatch(ptrs.data(), ptrs.size(), batched.data());
  for (size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(batched[i], bucket.EstimateReplicate(*ptrs[i]).corrected_sum)
        << "replicate " << i;
  }
}

}  // namespace
}  // namespace uuq
