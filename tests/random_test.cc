#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace uuq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoundedRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(19);
  const int buckets = 10, draws = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBounded(buckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, draws / buckets, draws / buckets * 0.1);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(23);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, NextIntDegenerateRange) {
  Rng rng(29);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(Rng, NextUniformRange) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-2.5, 4.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.5);
  }
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(41);
  const int n = 200000;
  const double lambda = 2.5;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(43);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng rng(59);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Split();
  // The child stream should not replicate the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace uuq
