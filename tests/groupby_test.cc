// GROUP BY support: parser, executor, and grouped unknown-unknowns
// correction (the library's extension of the paper's §5 machinery).
#include <gtest/gtest.h>

#include "core/query_correction.h"
#include "db/query.h"
#include "db/sql_parser.h"

namespace uuq {
namespace {

Table SalesFixture() {
  Table table("sales", Schema({{"region", ValueType::kString},
                               {"amount", ValueType::kDouble}}));
  EXPECT_TRUE(table.Append({Value("east"), Value(10.0)}).ok());
  EXPECT_TRUE(table.Append({Value("east"), Value(20.0)}).ok());
  EXPECT_TRUE(table.Append({Value("west"), Value(5.0)}).ok());
  EXPECT_TRUE(table.Append({Value::Null(), Value(100.0)}).ok());
  return table;
}

TEST(ParseQuery, GroupByClause) {
  auto q = ParseQuery("SELECT SUM(amount) FROM sales GROUP BY region");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().group_by, "region");
  EXPECT_EQ(q.value().ToString(),
            "SELECT SUM(amount) FROM sales GROUP BY region");
}

TEST(ParseQuery, GroupByAfterWhere) {
  auto q = ParseQuery(
      "SELECT AVG(amount) FROM sales WHERE amount > 1 GROUP BY region");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().group_by, "region");
  EXPECT_NE(q.value().predicate->ToString(), "TRUE");
}

TEST(ParseQuery, GroupByRequiresColumn) {
  EXPECT_FALSE(ParseQuery("SELECT SUM(a) FROM t GROUP BY").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(a) FROM t GROUP region").ok());
}

TEST(ExecuteGroupedAggregateQuery, SumPerGroup) {
  AggregateQuery query;
  query.aggregate = AggregateKind::kSum;
  query.attribute = "amount";
  query.table_name = "sales";
  query.predicate = MakeTrue();
  query.group_by = "region";

  auto result = ExecuteGroupedAggregateQuery(query, SalesFixture());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& groups = result.value().groups;
  ASSERT_EQ(groups.size(), 3u);
  // Sorted: NULL < "east" < "west".
  EXPECT_TRUE(groups[0].first.is_null());
  EXPECT_DOUBLE_EQ(groups[0].second.value.AsDouble(), 100.0);
  EXPECT_EQ(groups[1].first.AsString(), "east");
  EXPECT_DOUBLE_EQ(groups[1].second.value.AsDouble(), 30.0);
  EXPECT_EQ(groups[2].first.AsString(), "west");
  EXPECT_DOUBLE_EQ(groups[2].second.value.AsDouble(), 5.0);
}

TEST(ExecuteGroupedAggregateQuery, PredicateAppliesBeforeGrouping) {
  AggregateQuery query;
  query.aggregate = AggregateKind::kCount;
  query.attribute = "amount";
  query.table_name = "sales";
  query.predicate = MakeComparison("amount", CompareOp::kLt, Value(50.0));
  query.group_by = "region";

  auto result = ExecuteGroupedAggregateQuery(query, SalesFixture());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().groups.size(), 2u);  // NULL row filtered out
}

TEST(ExecuteGroupedAggregateQuery, UnknownGroupColumnFails) {
  AggregateQuery query;
  query.aggregate = AggregateKind::kSum;
  query.attribute = "amount";
  query.predicate = MakeTrue();
  query.group_by = "ghost";
  EXPECT_FALSE(ExecuteGroupedAggregateQuery(query, SalesFixture()).ok());
}

TEST(ExecuteAggregateQuery, RejectsGroupedQuery) {
  AggregateQuery query;
  query.aggregate = AggregateKind::kSum;
  query.attribute = "amount";
  query.predicate = MakeTrue();
  query.group_by = "region";
  EXPECT_FALSE(ExecuteAggregateQuery(query, SalesFixture()).ok());
}

// --- corrected grouped queries over an integrated sample ---

IntegratedSample CategorizedSample() {
  IntegratedSample sample;
  // Two sectors; each entity seen 1-4 times across 6 sources.
  for (int e = 0; e < 12; ++e) {
    const std::string sector = e % 2 == 0 ? "hardware" : "software";
    const int copies = 1 + (e % 4);
    for (int k = 0; k < copies; ++k) {
      sample.Add("w" + std::to_string((e + k) % 6), "e" + std::to_string(e),
                 10.0 * (e + 1), sector);
    }
  }
  return sample;
}

TEST(IntegratedSample, CategoriesAreTracked) {
  const auto sample = CategorizedSample();
  EXPECT_EQ(sample.Categories(),
            (std::vector<std::string>{"hardware", "software"}));
  EXPECT_EQ(sample.entities()[0].category, "hardware");
}

TEST(IntegratedSample, FirstNonEmptyCategoryWins) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1.0, "");
  sample.Add("w2", "a", 1.0, "late-category");
  sample.Add("w3", "a", 1.0, "even-later");
  EXPECT_EQ(sample.entities()[0].category, "late-category");
}

TEST(IntegratedSample, ToTableIncludesCategory) {
  const auto sample = CategorizedSample();
  const Table table = sample.ToTable("t", "value");
  ASSERT_TRUE(table.schema().HasField("category"));
  EXPECT_EQ(table.row(0)[3].AsString(), "hardware");
}

TEST(QueryCorrector, GroupedSqlCorrectsPerCategory) {
  const QueryCorrector corrector;
  auto result = corrector.CorrectGroupedSql(
      CategorizedSample(), "SELECT SUM(value) FROM t GROUP BY category");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& groups = result.value().groups;
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, "hardware");
  EXPECT_EQ(groups[1].first, "software");
  // Observed per-group sums: hardware = 10+30+50+...= Σ 10(e+1) even e;
  const double hw_observed = 10 + 30 + 50 + 70 + 90 + 110;
  const double sw_observed = 20 + 40 + 60 + 80 + 100 + 120;
  EXPECT_DOUBLE_EQ(groups[0].second.observed, hw_observed);
  EXPECT_DOUBLE_EQ(groups[1].second.observed, sw_observed);
  // Corrections are attached per group.
  EXPECT_GE(groups[0].second.corrected, groups[0].second.observed);
  EXPECT_GE(groups[1].second.corrected, groups[1].second.observed);
}

TEST(QueryCorrector, GroupedSqlWithPredicate) {
  const QueryCorrector corrector;
  auto result = corrector.CorrectGroupedSql(
      CategorizedSample(),
      "SELECT COUNT(value) FROM t WHERE value > 60 GROUP BY category");
  ASSERT_TRUE(result.ok());
  // Entities with value > 60: e6..e11 -> 3 hardware, 3 software.
  ASSERT_EQ(result.value().groups.size(), 2u);
  EXPECT_DOUBLE_EQ(result.value().groups[0].second.observed, 3.0);
  EXPECT_DOUBLE_EQ(result.value().groups[1].second.observed, 3.0);
}

TEST(QueryCorrector, GroupedSqlUncategorizedGroup) {
  IntegratedSample sample = CategorizedSample();
  sample.Add("w1", "uncategorized-entity", 999.0);
  const QueryCorrector corrector;
  auto result = corrector.CorrectGroupedSql(
      sample, "SELECT SUM(value) FROM t GROUP BY category");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().groups.size(), 3u);
  EXPECT_EQ(result.value().groups.back().first, "");
  EXPECT_DOUBLE_EQ(result.value().groups.back().second.observed, 999.0);
}

TEST(QueryCorrector, GroupedSqlRejectsNonCategoryColumn) {
  const QueryCorrector corrector;
  EXPECT_FALSE(corrector
                   .CorrectGroupedSql(CategorizedSample(),
                                      "SELECT SUM(value) FROM t GROUP BY value")
                   .ok());
}

TEST(QueryCorrector, UngroupedSqlThroughGroupedApiFails) {
  const QueryCorrector corrector;
  EXPECT_FALSE(corrector
                   .CorrectGroupedSql(CategorizedSample(),
                                      "SELECT SUM(value) FROM t")
                   .ok());
}

TEST(QueryCorrector, GroupedSqlThroughUngroupedApiFails) {
  const QueryCorrector corrector;
  EXPECT_FALSE(corrector
                   .CorrectSql(CategorizedSample(),
                               "SELECT SUM(value) FROM t GROUP BY category")
                   .ok());
}

TEST(QueryCorrector, GroupedAnswerToStringListsGroups) {
  const QueryCorrector corrector;
  auto result = corrector.CorrectGroupedSql(
      CategorizedSample(), "SELECT SUM(value) FROM t GROUP BY category");
  ASSERT_TRUE(result.ok());
  const std::string report = result.value().ToString();
  EXPECT_NE(report.find("hardware"), std::string::npos);
  EXPECT_NE(report.find("software"), std::string::npos);
  EXPECT_NE(report.find("corrected"), std::string::npos);
}

TEST(QueryCorrector, PredicateOnCategoryColumn) {
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(
      CategorizedSample(),
      "SELECT SUM(value) FROM t WHERE category = 'hardware'");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_DOUBLE_EQ(answer.value().observed, 10 + 30 + 50 + 70 + 90 + 110);
}

}  // namespace
}  // namespace uuq
