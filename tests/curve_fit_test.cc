#include "stats/curve_fit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace uuq {
namespace {

// Samples a known surface on a grid and checks coefficient recovery.
TEST(FitQuadraticSurface, RecoversKnownCoefficients) {
  QuadraticSurface truth{1.0, -2.0, 3.0, 0.5, -0.25, 0.75};
  std::vector<double> xs, ys, zs;
  for (double x = -2; x <= 2; x += 0.5) {
    for (double y = -2; y <= 2; y += 0.5) {
      xs.push_back(x);
      ys.push_back(y);
      zs.push_back(truth.Eval(x, y));
    }
  }
  auto fit = FitQuadraticSurface(xs, ys, zs);
  ASSERT_TRUE(fit.ok());
  for (double x = -1.7; x <= 1.7; x += 0.31) {
    for (double y = -1.7; y <= 1.7; y += 0.31) {
      EXPECT_NEAR(fit.value().Eval(x, y), truth.Eval(x, y), 1e-6);
    }
  }
}

TEST(FitQuadraticSurface, HandlesLargeCoordinateScales) {
  // θN-like coordinates in the hundreds with λ in [-0.4, 0.4]; internal
  // normalization must keep the normal equations solvable.
  QuadraticSurface truth{5.0, -0.01, 2.0, 1e-5, 4.0, -0.005};
  std::vector<double> xs, ys, zs;
  for (double x = 100; x <= 1000; x += 100) {
    for (double y = -0.4; y <= 0.41; y += 0.1) {
      xs.push_back(x);
      ys.push_back(y);
      zs.push_back(truth.Eval(x, y));
    }
  }
  auto fit = FitQuadraticSurface(xs, ys, zs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().Eval(550, 0.05), truth.Eval(550, 0.05),
              1e-6 * std::fabs(truth.Eval(550, 0.05)) + 1e-6);
}

TEST(FitQuadraticSurface, SkipsNonFiniteSamples) {
  QuadraticSurface truth{0.0, 1.0, 1.0, 1.0, 1.0, 0.0};
  std::vector<double> xs, ys, zs;
  for (double x = 0; x <= 3; x += 1) {
    for (double y = 0; y <= 3; y += 1) {
      xs.push_back(x);
      ys.push_back(y);
      zs.push_back(truth.Eval(x, y));
    }
  }
  // Poison two samples with infinities; fit should still succeed.
  zs[3] = std::numeric_limits<double>::infinity();
  zs[7] = std::numeric_limits<double>::quiet_NaN();
  auto fit = FitQuadraticSurface(xs, ys, zs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().Eval(1.5, 1.5), truth.Eval(1.5, 1.5), 1e-6);
}

TEST(FitQuadraticSurface, RejectsTooFewPoints) {
  auto fit = FitQuadraticSurface({0, 1, 2}, {0, 1, 2}, {0, 1, 2});
  EXPECT_FALSE(fit.ok());
}

TEST(FitQuadraticSurface, RejectsLengthMismatch) {
  auto fit = FitQuadraticSurface({0, 1}, {0, 1, 2}, {0, 1, 2});
  EXPECT_FALSE(fit.ok());
}

TEST(FitQuadraticSurface, ToleratesNoise) {
  QuadraticSurface truth{2.0, 0.0, 0.0, 1.0, 1.0, 0.0};  // bowl at origin
  Rng rng(5);
  std::vector<double> xs, ys, zs;
  for (double x = -2; x <= 2; x += 0.25) {
    for (double y = -2; y <= 2; y += 0.25) {
      xs.push_back(x);
      ys.push_back(y);
      zs.push_back(truth.Eval(x, y) + rng.NextUniform(-0.05, 0.05));
    }
  }
  auto fit = FitQuadraticSurface(xs, ys, zs);
  ASSERT_TRUE(fit.ok());
  auto [x_min, y_min] = MinimizeOnBox(fit.value(), -2, 2, -2, 2);
  EXPECT_NEAR(x_min, 0.0, 0.15);
  EXPECT_NEAR(y_min, 0.0, 0.15);
}

TEST(MinimizeOnBox, FindsInteriorMinimum) {
  // (x−1)² + (y+0.5)²: minimum at (1, −0.5).
  QuadraticSurface s{1.25, -2.0, 1.0, 1.0, 1.0, 0.0};
  auto [x, y] = MinimizeOnBox(s, -3, 3, -3, 3);
  EXPECT_NEAR(x, 1.0, 0.02);
  EXPECT_NEAR(y, -0.5, 0.02);
}

TEST(MinimizeOnBox, ClampsToBoundary) {
  // Plane decreasing in x: minimum at the right edge.
  QuadraticSurface s{0.0, -1.0, 0.0, 0.0, 0.0, 0.0};
  auto [x, y] = MinimizeOnBox(s, 0, 10, -1, 1);
  EXPECT_NEAR(x, 10.0, 1e-9);
  (void)y;
}

TEST(MinimizeOnBox, HandlesSwappedBounds) {
  QuadraticSurface s{0.0, 0.0, 0.0, 1.0, 1.0, 0.0};
  auto [x, y] = MinimizeOnBox(s, 2, -2, 2, -2);
  EXPECT_NEAR(x, 0.0, 0.05);
  EXPECT_NEAR(y, 0.0, 0.05);
}

TEST(MinimizeOnBox, DegenerateBoxReturnsThePoint) {
  QuadraticSurface s{0.0, 1.0, 1.0, 0.0, 0.0, 0.0};
  auto [x, y] = MinimizeOnBox(s, 3, 3, 4, 4);
  EXPECT_DOUBLE_EQ(x, 3.0);
  EXPECT_DOUBLE_EQ(y, 4.0);
}

}  // namespace
}  // namespace uuq
