#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.h"
#include "core/chao92.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

IntegratedSample SampleFromStream(const std::vector<Observation>& stream,
                                  size_t prefix) {
  IntegratedSample sample;
  for (size_t i = 0; i < std::min(prefix, stream.size()); ++i) {
    sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
  }
  return sample;
}

MonteCarloOptions FastOptions() {
  MonteCarloOptions options;
  options.runs_per_point = 2;
  options.n_grid_steps = 6;
  return options;
}

TEST(MonteCarloEstimator, EmptySample) {
  const MonteCarloEstimator mc(FastOptions());
  IntegratedSample sample;
  const Estimate est = mc.EstimateImpact(sample);
  EXPECT_DOUBLE_EQ(est.delta, 0.0);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(MonteCarloEstimator, NhatBetweenCAndChao92) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 5;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 15;
  crowd.seed = 6;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  const auto sample = SampleFromStream(stream, 300);

  const MonteCarloEstimator mc(FastOptions());
  const double n_mc = mc.EstimateNhat(sample);
  const SampleStats stats = SampleStats::FromSample(sample);
  double chao = Chao92Nhat(stats);
  if (!std::isinf(chao)) {
    EXPECT_GE(n_mc, static_cast<double>(stats.c) - 1e-9);
    EXPECT_LE(n_mc, chao + 1e-9);
  }
}

TEST(MonteCarloEstimator, DeterministicForSameSeed) {
  SyntheticPopulationConfig pop;
  pop.num_items = 50;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 7;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 10;
  crowd.answers_per_worker = 10;
  crowd.seed = 8;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  const auto sample = SampleFromStream(stream, 100);

  const MonteCarloEstimator mc(FastOptions());
  EXPECT_DOUBLE_EQ(mc.EstimateNhat(sample), mc.EstimateNhat(sample));
}

TEST(MonteCarloEstimator, CompleteLookingSampleReturnsC) {
  // Every entity observed many times: Chao92 ≈ c, grid degenerates.
  IntegratedSample sample;
  for (int e = 0; e < 10; ++e) {
    for (int w = 0; w < 6; ++w) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), 10.0 * e);
    }
  }
  const MonteCarloEstimator mc(FastOptions());
  EXPECT_DOUBLE_EQ(mc.EstimateNhat(sample), 10.0);
  const Estimate est = mc.EstimateImpact(sample);
  EXPECT_NEAR(est.delta, 0.0, 1e-9);
}

TEST(MonteCarloEstimator, SimulatedDistanceLowerNearTruth) {
  // Observed sample drawn from N = 60 moderately skewed items; the
  // objective at (θN = 60, mild skew) should beat (θN = 600, heavy skew).
  SyntheticPopulationConfig pop;
  pop.num_items = 60;
  pop.lambda = 1.0;
  pop.rho = 0.0;
  pop.seed = 9;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 15;
  crowd.answers_per_worker = 20;
  crowd.seed = 10;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  const auto sample = SampleFromStream(stream, 300);

  std::vector<int64_t> multiplicities;
  for (const EntityStat& e : sample.entities()) {
    multiplicities.push_back(e.multiplicity);
  }
  const MonteCarloEstimator mc(FastOptions());
  Rng rng(42);
  const double near_truth = mc.SimulatedDistance(
      60, 0.1, multiplicities, sample.SourceSizeVector(), &rng);
  const double far_off = mc.SimulatedDistance(
      600, 0.4, multiplicities, sample.SourceSizeVector(), &rng);
  EXPECT_LT(near_truth, far_off);
}

TEST(MonteCarloEstimator, RobustToStreakerUnlikeChao) {
  // One source dumps the entire population: Chao92 sees a huge f1 and
  // overestimates badly; Monte-Carlo should stay closer to N (= c here).
  SyntheticPopulationConfig pop;
  pop.num_items = 50;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 11;
  const Population population = MakeSyntheticPopulation(pop);

  IntegratedSample sample;
  for (const PopulationItem& item : population.items()) {
    sample.Add("streaker", item.key, item.value);
  }
  // A couple of small honest workers.
  CrowdConfig crowd;
  crowd.num_workers = 2;
  crowd.answers_per_worker = 5;
  crowd.seed = 12;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }

  const SampleStats stats = SampleStats::FromSample(sample);
  const double chao = Chao92Nhat(stats);
  const MonteCarloEstimator mc(FastOptions());
  const double n_mc = mc.EstimateNhat(sample);
  // True N = 50 = c (streaker saw everything). Chao92 blows up; MC must cut
  // the overshoot at least in half.
  ASSERT_EQ(stats.c, 50);
  if (std::isfinite(chao)) {
    EXPECT_LT(n_mc - 50.0, (chao - 50.0) * 0.5 + 1e-9);
  } else {
    EXPECT_LT(n_mc, 500.0);
  }
}

TEST(MonteCarloEstimator, UsesMeanSubstitutionForDelta) {
  IntegratedSample sample;
  sample.Add("w1", "a", 10);
  sample.Add("w2", "a", 10);
  sample.Add("w1", "b", 30);
  sample.Add("w3", "b", 30);
  sample.Add("w2", "c", 20);
  const MonteCarloEstimator mc(FastOptions());
  const Estimate est = mc.EstimateImpact(sample);
  EXPECT_DOUBLE_EQ(est.missing_value, 20.0);  // mean of {10, 30, 20}
  EXPECT_NEAR(est.delta, est.missing_value * est.missing_count, 1e-9);
}

TEST(MonteCarloEstimator, NameIsStable) {
  EXPECT_EQ(MonteCarloEstimator().name(), "monte-carlo");
}

TEST(MonteCarloEstimator, ParallelIsBitIdenticalToSerial) {
  // The determinism contract: for a fixed seed, the Estimate is the same for
  // EVERY thread count, because each grid point evaluates on its own
  // pre-derived Rng stream (UUQ_THREADS=1 therefore changes nothing but
  // wall-clock time).
  SyntheticPopulationConfig pop;
  pop.num_items = 80;
  pop.lambda = 1.5;
  pop.rho = 1.0;
  pop.seed = 21;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 15;
  crowd.answers_per_worker = 15;
  crowd.seed = 22;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  const auto sample = SampleFromStream(stream, 200);

  ThreadPool serial(1);
  ThreadPool two(2);
  ThreadPool eight(8);

  MonteCarloOptions options = FastOptions();
  options.pool = &serial;
  const MonteCarloEstimator mc_serial(options);
  options.pool = &two;
  const MonteCarloEstimator mc_two(options);
  options.pool = &eight;
  const MonteCarloEstimator mc_eight(options);

  const double serial_nhat = mc_serial.EstimateNhat(sample);
  EXPECT_DOUBLE_EQ(serial_nhat, mc_two.EstimateNhat(sample));
  EXPECT_DOUBLE_EQ(serial_nhat, mc_eight.EstimateNhat(sample));

  const Estimate serial_est = mc_serial.EstimateImpact(sample);
  const Estimate parallel_est = mc_eight.EstimateImpact(sample);
  EXPECT_DOUBLE_EQ(serial_est.delta, parallel_est.delta);
  EXPECT_DOUBLE_EQ(serial_est.corrected_sum, parallel_est.corrected_sum);
  EXPECT_DOUBLE_EQ(serial_est.n_hat, parallel_est.n_hat);
}

TEST(MonteCarloEstimator, RepeatedParallelRunsAreStable) {
  // Thread-local scratch reuse across calls must not leak state between
  // estimates: back-to-back runs on a shared pool give identical answers.
  SyntheticPopulationConfig pop;
  pop.num_items = 60;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 31;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 12;
  crowd.answers_per_worker = 12;
  crowd.seed = 32;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  const auto sample = SampleFromStream(stream, 144);

  ThreadPool pool(4);
  MonteCarloOptions options = FastOptions();
  options.pool = &pool;
  const MonteCarloEstimator mc(options);
  const double first = mc.EstimateNhat(sample);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(first, mc.EstimateNhat(sample));
  }
}

}  // namespace
}  // namespace uuq
