#include "integration/source.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(NormalizeEntityKey, LowercasesAndTrims) {
  EXPECT_EQ(NormalizeEntityKey("  IBM  "), "ibm");
  EXPECT_EQ(NormalizeEntityKey("Google"), "google");
}

TEST(NormalizeEntityKey, CollapsesInnerWhitespace) {
  EXPECT_EQ(NormalizeEntityKey("IBM   Corp"), "ibm corp");
  EXPECT_EQ(NormalizeEntityKey("a\t b\n c"), "a b c");
}

TEST(NormalizeEntityKey, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(NormalizeEntityKey(""), "");
  EXPECT_EQ(NormalizeEntityKey("   "), "");
}

TEST(NormalizeEntityKey, EquivalentSpellingsCollide) {
  EXPECT_EQ(NormalizeEntityKey("IBM Corp"), NormalizeEntityKey(" ibm   CORP "));
}

TEST(DataSource, AddsClaims) {
  DataSource source("w1");
  EXPECT_TRUE(source.Add("IBM", 1000).ok());
  EXPECT_TRUE(source.Add("Google", 2000).ok());
  EXPECT_EQ(source.size(), 2u);
  EXPECT_EQ(source.claims()[0].entity_key, "ibm");
}

TEST(DataSource, RejectsDuplicateEntity) {
  // A source samples without replacement: one mention per entity.
  DataSource source("w1");
  ASSERT_TRUE(source.Add("IBM", 1000).ok());
  Status s = source.Add("ibm ", 999);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(source.size(), 1u);
}

TEST(DataSource, RejectsEmptyKey) {
  DataSource source("w1");
  EXPECT_FALSE(source.Add("   ", 5).ok());
}

TEST(DataSource, KeepsId) {
  DataSource source("crowd-worker-17");
  EXPECT_EQ(source.id(), "crowd-worker-17");
}

}  // namespace
}  // namespace uuq
