#include "integration/resolution.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(JaroSimilarity, IdenticalAndEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroSimilarity, ClassicTextbookValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822222, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
}

TEST(JaroSimilarity, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroSimilarity, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("kitten", "sitting"),
                   JaroSimilarity("sitting", "kitten"));
}

TEST(JaroWinklerSimilarity, ClassicTextbookValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DWAYNE", "DUANE"), 0.84, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
}

TEST(JaroWinklerSimilarity, PrefixBoostsScore) {
  // Same Jaro, different shared prefix.
  const double with_prefix = JaroWinklerSimilarity("prefixed", "prefixes");
  const double jaro_only = JaroSimilarity("prefixed", "prefixes");
  EXPECT_GT(with_prefix, jaro_only);
}

TEST(JaroWinklerSimilarity, PrefixCappedAtFour) {
  // Identical 10-char prefix must not boost more than 4 chars' worth.
  const double a = JaroWinklerSimilarity("abcdefghij-x", "abcdefghij-y");
  const double jaro = JaroSimilarity("abcdefghij-x", "abcdefghij-y");
  EXPECT_NEAR(a, jaro + 4 * 0.1 * (1 - jaro), 1e-12);
}

TEST(JaroWinklerSimilarityDeathTest, BadScaleAborts) {
  EXPECT_DEATH(JaroWinklerSimilarity("a", "b", 0.5), "prefix scale");
}

TEST(TokenJaccardSimilarity, SetSemantics) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("acme robotics", "robotics acme"),
                   1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b", "a c"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("x", "y"), 0.0);
}

TEST(TokenJaccardSimilarity, NormalizesCase) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("ACME Robotics", "acme robotics"),
                   1.0);
}

TEST(FuzzyResolver, ExactRepeatsShareCanonicalKey) {
  FuzzyResolver resolver;
  const std::string a = resolver.Resolve("IBM");
  const std::string b = resolver.Resolve(" ibm ");
  EXPECT_EQ(a, b);
  EXPECT_EQ(resolver.num_entities(), 1u);
}

TEST(FuzzyResolver, CorporateSuffixesIgnored) {
  FuzzyResolver resolver;
  const std::string a = resolver.Resolve("Acme Robotics Inc.");
  const std::string b = resolver.Resolve("Acme Robotics");
  const std::string c = resolver.Resolve("ACME ROBOTICS CORP");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(resolver.num_entities(), 1u);
}

TEST(FuzzyResolver, PunctuationIgnored) {
  FuzzyResolver resolver;
  EXPECT_EQ(resolver.Resolve("I.B.M."), resolver.Resolve("IBM"));
}

TEST(FuzzyResolver, TypoMapsToKnownEntity) {
  FuzzyResolver resolver;
  const std::string canonical = resolver.Resolve("Microsoft");
  EXPECT_EQ(resolver.Resolve("Microsfot"), canonical);  // transposition
  EXPECT_EQ(resolver.num_entities(), 1u);
}

TEST(FuzzyResolver, DistinctEntitiesStayDistinct) {
  FuzzyResolver resolver;
  const std::string apple = resolver.Resolve("Apple");
  const std::string amazon = resolver.Resolve("Amazon");
  EXPECT_NE(apple, amazon);
  EXPECT_EQ(resolver.num_entities(), 2u);
}

TEST(FuzzyResolver, FirstMentionBecomesCanonical) {
  FuzzyResolver resolver;
  EXPECT_EQ(resolver.Resolve("Acme Robotics Inc"), "acme robotics inc");
  // Later variant maps to the FIRST mention's normalized key.
  EXPECT_EQ(resolver.Resolve("Acme Robotics"), "acme robotics inc");
}

TEST(FuzzyResolver, ThresholdControlsAggressiveness) {
  FuzzyResolver::Options strict;
  strict.threshold = 0.999;
  strict.use_token_jaccard = false;
  strict.strip_corporate_suffixes = false;
  FuzzyResolver resolver(strict);
  (void)resolver.Resolve("Microsoft");
  (void)resolver.Resolve("Microsfot");
  EXPECT_EQ(resolver.num_entities(), 2u);  // typo NOT merged under 0.999
}

TEST(FuzzyResolver, ComparisonFormExposed) {
  FuzzyResolver resolver;
  EXPECT_EQ(resolver.ComparisonForm("  I.B.M. Corp. "), "ibm");
  EXPECT_EQ(resolver.ComparisonForm("Solo"), "solo");
  // The lone-token guard: a bare suffix word is kept.
  EXPECT_EQ(resolver.ComparisonForm("Inc"), "inc");
}

TEST(FuzzyResolver, WordReorderMergesViaTokenJaccard) {
  FuzzyResolver resolver;
  const std::string a = resolver.Resolve("Robotics Acme");
  const std::string b = resolver.Resolve("Acme Robotics");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace uuq
