#include "core/advisor.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

IntegratedSample EvenWellCoveredSample() {
  IntegratedSample sample;
  // 8 sources contributing evenly, every entity seen several times.
  for (int w = 0; w < 8; ++w) {
    for (int e = 0; e < 10; ++e) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), e * 10.0);
    }
  }
  return sample;
}

TEST(EstimatorAdvisor, RecommendsBucketForHealthySample) {
  const Advice advice = EstimatorAdvisor().Advise(EvenWellCoveredSample());
  EXPECT_EQ(advice.choice, EstimatorChoice::kBucket);
  EXPECT_GE(advice.coverage, 0.4);
  EXPECT_FALSE(advice.streaker_suspected);
  EXPECT_FALSE(advice.rationale.empty());
}

TEST(EstimatorAdvisor, LowCoverageAsksForMoreData) {
  IntegratedSample sample;
  for (int w = 0; w < 8; ++w) {
    for (int e = 0; e < 5; ++e) {
      sample.Add("w" + std::to_string(w),
                 "e" + std::to_string(w * 100 + e),  // all distinct
                 1.0);
    }
  }
  const Advice advice = EstimatorAdvisor().Advise(sample);
  EXPECT_EQ(advice.choice, EstimatorChoice::kCollectMoreData);
  EXPECT_LT(advice.coverage, 0.4);
}

TEST(EstimatorAdvisor, StreakerTriggersMonteCarlo) {
  IntegratedSample sample = EvenWellCoveredSample();
  // One source floods the sample.
  for (int e = 0; e < 200; ++e) {
    sample.Add("streaker", "e" + std::to_string(e % 10), (e % 10) * 10.0);
  }
  const Advice advice = EstimatorAdvisor().Advise(sample);
  EXPECT_EQ(advice.choice, EstimatorChoice::kMonteCarlo);
  EXPECT_TRUE(advice.streaker_suspected);
}

TEST(EstimatorAdvisor, TooFewSourcesTriggersMonteCarlo) {
  IntegratedSample sample;
  for (int w = 0; w < 3; ++w) {
    for (int e = 0; e < 10; ++e) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), 1.0);
    }
  }
  const Advice advice = EstimatorAdvisor().Advise(sample);
  EXPECT_EQ(advice.choice, EstimatorChoice::kMonteCarlo);
  EXPECT_EQ(advice.num_sources, 3);
}

TEST(EstimatorAdvisor, MakeRecommendedMatchesAdvice) {
  const EstimatorAdvisor advisor;
  const auto healthy = EvenWellCoveredSample();
  EXPECT_EQ(advisor.MakeRecommended(healthy)->name(), "bucket[dynamic]");

  IntegratedSample few_sources;
  for (int w = 0; w < 2; ++w) {
    for (int e = 0; e < 10; ++e) {
      few_sources.Add("w" + std::to_string(w), "e" + std::to_string(e), 1.0);
    }
  }
  EXPECT_EQ(advisor.MakeRecommended(few_sources)->name(), "monte-carlo");
}

TEST(EstimatorAdvisor, CustomThresholds) {
  EstimatorAdvisor::Options options;
  options.min_sources = 2;  // relax Appendix E gate
  const EstimatorAdvisor advisor(options);
  IntegratedSample sample;
  for (int w = 0; w < 3; ++w) {
    for (int e = 0; e < 10; ++e) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), 1.0);
    }
  }
  EXPECT_EQ(advisor.Advise(sample).choice, EstimatorChoice::kBucket);
}

TEST(EstimatorAdvisor, EmptySampleCollectsMore) {
  IntegratedSample sample;
  EXPECT_EQ(EstimatorAdvisor().Advise(sample).choice,
            EstimatorChoice::kCollectMoreData);
}

TEST(EstimatorChoiceName, Names) {
  EXPECT_STREQ(EstimatorChoiceName(EstimatorChoice::kBucket), "bucket");
  EXPECT_STREQ(EstimatorChoiceName(EstimatorChoice::kMonteCarlo),
               "monte-carlo");
  EXPECT_STREQ(EstimatorChoiceName(EstimatorChoice::kCollectMoreData),
               "collect-more-data");
}

}  // namespace
}  // namespace uuq
