#include "integration/sample.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(IntegratedSample, EmptyInitially) {
  IntegratedSample sample;
  EXPECT_TRUE(sample.empty());
  EXPECT_EQ(sample.n(), 0);
  EXPECT_EQ(sample.c(), 0);
  EXPECT_DOUBLE_EQ(sample.ObservedSum(), 0.0);
}

TEST(IntegratedSample, CountsDistinctAndTotal) {
  IntegratedSample sample;
  sample.Add("w1", "a", 10);
  sample.Add("w1", "b", 20);
  sample.Add("w2", "a", 10);
  EXPECT_EQ(sample.n(), 3);
  EXPECT_EQ(sample.c(), 2);
}

TEST(IntegratedSample, NormalizesEntityKeys) {
  IntegratedSample sample;
  sample.Add("w1", "IBM  Corp", 10);
  sample.Add("w2", " ibm corp", 10);
  EXPECT_EQ(sample.c(), 1);
  EXPECT_EQ(sample.entities()[0].multiplicity, 2);
}

TEST(IntegratedSample, FstatsTrackMultiplicities) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1);   // a: 1
  sample.Add("w2", "a", 1);   // a: 2
  sample.Add("w1", "b", 2);   // b: 1
  sample.Add("w3", "a", 1);   // a: 3
  const auto stats = sample.Fstats();
  EXPECT_EQ(stats.f(1), 1);  // b
  EXPECT_EQ(stats.f(3), 1);  // a
  EXPECT_EQ(stats.n(), 4);
  EXPECT_EQ(stats.c(), 2);
}

TEST(IntegratedSample, ObservedSumWithAverageFusion) {
  IntegratedSample sample(FusionPolicy::kAverage);
  sample.Add("w1", "a", 10);
  EXPECT_DOUBLE_EQ(sample.ObservedSum(), 10.0);
  sample.Add("w2", "a", 20);  // fused value becomes 15
  EXPECT_DOUBLE_EQ(sample.ObservedSum(), 15.0);
  sample.Add("w3", "b", 5);
  EXPECT_DOUBLE_EQ(sample.ObservedSum(), 20.0);
}

TEST(IntegratedSample, FirstFusionKeepsFirstReport) {
  IntegratedSample sample(FusionPolicy::kFirst);
  sample.Add("w1", "a", 10);
  sample.Add("w2", "a", 99);
  EXPECT_DOUBLE_EQ(sample.entities()[0].value, 10.0);
}

TEST(IntegratedSample, LastFusionKeepsLatestReport) {
  IntegratedSample sample(FusionPolicy::kLast);
  sample.Add("w1", "a", 10);
  sample.Add("w2", "a", 99);
  EXPECT_DOUBLE_EQ(sample.entities()[0].value, 99.0);
}

TEST(IntegratedSample, MajorityFusionPicksMode) {
  IntegratedSample sample(FusionPolicy::kMajority);
  sample.Add("w1", "a", 7);
  sample.Add("w2", "a", 9);
  sample.Add("w3", "a", 9);
  EXPECT_DOUBLE_EQ(sample.entities()[0].value, 9.0);
}

TEST(IntegratedSample, MajorityTieBreaksToFirstSeen) {
  IntegratedSample sample(FusionPolicy::kMajority);
  sample.Add("w1", "a", 7);
  sample.Add("w2", "a", 9);
  EXPECT_DOUBLE_EQ(sample.entities()[0].value, 7.0);
}

TEST(IntegratedSample, SingletonSumTracksFusionChanges) {
  IntegratedSample sample(FusionPolicy::kAverage);
  sample.Add("w1", "a", 10);
  sample.Add("w1", "b", 30);
  EXPECT_DOUBLE_EQ(sample.SingletonValueSum(), 40.0);
  sample.Add("w2", "a", 20);  // a leaves singleton set
  EXPECT_DOUBLE_EQ(sample.SingletonValueSum(), 30.0);
  sample.Add("w2", "b", 50);  // b leaves too
  EXPECT_DOUBLE_EQ(sample.SingletonValueSum(), 0.0);
}

TEST(IntegratedSample, SourceSizes) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1);
  sample.Add("w1", "b", 1);
  sample.Add("w2", "a", 1);
  EXPECT_EQ(sample.num_sources(), 2);
  EXPECT_EQ(sample.source_sizes().at("w1"), 2);
  EXPECT_EQ(sample.source_sizes().at("w2"), 1);
  const auto sizes = sample.SourceSizeVector();
  EXPECT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 3);
}

TEST(IntegratedSample, ValuesFollowEntityOrder) {
  IntegratedSample sample;
  sample.Add("w1", "x", 5);
  sample.Add("w1", "y", 7);
  EXPECT_EQ(sample.Values(), (std::vector<double>{5, 7}));
}

TEST(IntegratedSample, ToTableMaterializesK) {
  IntegratedSample sample;
  sample.Add("w1", "a", 10);
  sample.Add("w2", "a", 10);
  sample.Add("w2", "b", 20);
  const Table table = sample.ToTable("integrated", "employees");
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(table.schema().HasField("employees"));
  EXPECT_TRUE(table.schema().HasField("observations"));
  // Row for 'a' has multiplicity 2.
  EXPECT_EQ(table.row(0)[2].AsInt64(), 2);
}

TEST(IntegratedSample, FilterKeepsMatchingEntitiesExactly) {
  IntegratedSample sample;
  sample.Add("w1", "big", 100);
  sample.Add("w2", "big", 100);
  sample.Add("w1", "small", 1);
  sample.Add("w3", "small", 3);

  const IntegratedSample filtered = sample.Filter(
      [](const EntityStat& e) { return e.value >= 50.0; });
  EXPECT_EQ(filtered.c(), 1);
  EXPECT_EQ(filtered.n(), 2);
  EXPECT_EQ(filtered.entities()[0].key, "big");
  EXPECT_EQ(filtered.entities()[0].multiplicity, 2);
}

TEST(IntegratedSample, FilterRecomputesSourceSizes) {
  IntegratedSample sample;
  sample.Add("w1", "big", 100);
  sample.Add("w1", "small", 1);
  sample.Add("w2", "small", 1);

  const IntegratedSample filtered = sample.Filter(
      [](const EntityStat& e) { return e.value < 50.0; });
  EXPECT_EQ(filtered.num_sources(), 2);
  EXPECT_EQ(filtered.source_sizes().at("w1"), 1);
  EXPECT_EQ(filtered.source_sizes().at("w2"), 1);
}

TEST(IntegratedSample, FilterJudgesOnFusedValue) {
  // Entity 'a' reports 10 and 30 -> fused 20; predicate >= 15 keeps it,
  // replaying BOTH raw observations.
  IntegratedSample sample(FusionPolicy::kAverage);
  sample.Add("w1", "a", 10);
  sample.Add("w2", "a", 30);
  const IntegratedSample filtered =
      sample.Filter([](const EntityStat& e) { return e.value >= 15.0; });
  EXPECT_EQ(filtered.c(), 1);
  EXPECT_EQ(filtered.n(), 2);
  EXPECT_DOUBLE_EQ(filtered.entities()[0].value, 20.0);
}

TEST(IntegratedSample, FilterAllOutYieldsEmpty) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1);
  const IntegratedSample filtered =
      sample.Filter([](const EntityStat&) { return false; });
  EXPECT_TRUE(filtered.empty());
}

TEST(IntegratedSampleDeathTest, EmptyKeyAborts) {
  IntegratedSample sample;
  EXPECT_DEATH(sample.Add("w1", "  ", 1), "empty entity key");
}

}  // namespace
}  // namespace uuq
