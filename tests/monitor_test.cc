#include "core/monitor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uuq {
namespace {

TEST(ConvergenceMonitor, NotStableUntilWindowFills) {
  ConvergenceMonitor monitor(MonitorOptions{.window = 3,
                                            .stability_threshold = 0.05});
  monitor.Record(100.0);
  EXPECT_FALSE(monitor.IsStable());
  monitor.Record(100.0);
  EXPECT_FALSE(monitor.IsStable());
  monitor.Record(100.0);
  EXPECT_TRUE(monitor.IsStable());
}

TEST(ConvergenceMonitor, SpreadComputedOverWindow) {
  ConvergenceMonitor monitor(MonitorOptions{.window = 3,
                                            .stability_threshold = 0.05});
  monitor.Record(100.0);
  monitor.Record(102.0);
  monitor.Record(98.0);
  EXPECT_NEAR(monitor.RelativeSpread(), 4.0 / 100.0, 1e-12);
  EXPECT_TRUE(monitor.IsStable());
}

TEST(ConvergenceMonitor, UnstableWhenEstimatesJump) {
  ConvergenceMonitor monitor(MonitorOptions{.window = 3,
                                            .stability_threshold = 0.05});
  monitor.Record(100.0);
  monitor.Record(150.0);
  monitor.Record(100.0);
  EXPECT_FALSE(monitor.IsStable());
}

TEST(ConvergenceMonitor, OldPointsSlideOut) {
  ConvergenceMonitor monitor(MonitorOptions{.window = 3,
                                            .stability_threshold = 0.05});
  monitor.Record(500.0);  // will slide out
  monitor.Record(100.0);
  monitor.Record(100.0);
  monitor.Record(101.0);
  EXPECT_TRUE(monitor.IsStable());
}

TEST(ConvergenceMonitor, NonFiniteClearsWindow) {
  ConvergenceMonitor monitor(MonitorOptions{.window = 2,
                                            .stability_threshold = 0.05});
  monitor.Record(100.0);
  monitor.Record(100.0);
  EXPECT_TRUE(monitor.IsStable());
  monitor.Record(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(monitor.IsStable());
  monitor.Record(100.0);
  monitor.Record(100.0);
  EXPECT_TRUE(monitor.IsStable());
}

TEST(ConvergenceMonitor, ResetClears) {
  ConvergenceMonitor monitor(MonitorOptions{.window = 2,
                                            .stability_threshold = 0.05});
  monitor.Record(1.0);
  monitor.Record(1.0);
  monitor.Reset();
  EXPECT_FALSE(monitor.IsStable());
  EXPECT_EQ(monitor.recorded(), 0);
}

TEST(ConvergenceMonitor, CountsRecordedPoints) {
  ConvergenceMonitor monitor;
  for (int i = 0; i < 7; ++i) monitor.Record(1.0);
  EXPECT_EQ(monitor.recorded(), 7);
}

TEST(ConvergenceMonitorDeathTest, BadOptionsAbort) {
  EXPECT_DEATH(ConvergenceMonitor(MonitorOptions{.window = 1,
                                                 .stability_threshold = 0.05}),
               "window");
  EXPECT_DEATH(ConvergenceMonitor(MonitorOptions{.window = 3,
                                                 .stability_threshold = 0.0}),
               "threshold");
}

TEST(MarginalNewEntityRate, EmptySampleIsCertainlyNew) {
  IntegratedSample sample;
  EXPECT_DOUBLE_EQ(ConvergenceMonitor::MarginalNewEntityRate(sample), 1.0);
}

TEST(MarginalNewEntityRate, IsGoodTuringUnseenMass) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1);
  sample.Add("w2", "a", 1);
  sample.Add("w1", "b", 1);  // f1 = 1, n = 3
  EXPECT_NEAR(ConvergenceMonitor::MarginalNewEntityRate(sample), 1.0 / 3.0,
              1e-12);
}

TEST(MarginalNewEntityRate, ZeroWhenNoSingletons) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1);
  sample.Add("w2", "a", 1);
  EXPECT_DOUBLE_EQ(ConvergenceMonitor::MarginalNewEntityRate(sample), 0.0);
  EXPECT_TRUE(
      std::isinf(ConvergenceMonitor::AnswersPerNewEntity(sample)));
}

TEST(AnswersPerNewEntity, InverseOfRate) {
  IntegratedSample sample;
  sample.Add("w1", "a", 1);
  sample.Add("w2", "a", 1);
  sample.Add("w1", "b", 1);
  sample.Add("w2", "c", 1);  // f1 = 2, n = 4 -> rate 0.5
  EXPECT_DOUBLE_EQ(ConvergenceMonitor::AnswersPerNewEntity(sample), 2.0);
}

TEST(MarginalNewEntityRate, DecreasesAsSampleSaturates) {
  IntegratedSample sample;
  for (int e = 0; e < 10; ++e) {
    sample.Add("w1", "e" + std::to_string(e), 1.0);
  }
  const double early = ConvergenceMonitor::MarginalNewEntityRate(sample);
  for (int w = 2; w < 6; ++w) {
    for (int e = 0; e < 10; ++e) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), 1.0);
    }
  }
  const double late = ConvergenceMonitor::MarginalNewEntityRate(sample);
  EXPECT_LT(late, early);
}

}  // namespace
}  // namespace uuq
