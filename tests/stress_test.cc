// Scale / robustness stress tests: the library must stay correct and
// tractable well beyond the paper's 500-answer experiments.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "core/bucket.h"
#include "core/chao92.h"
#include "core/naive.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedSeconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(Stress, IntegrateOneHundredThousandObservations) {
  SyntheticPopulationConfig pop;
  pop.num_items = 5000;
  pop.lambda = 2.0;
  pop.rho = 1.0;
  pop.seed = 1;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 50;
  crowd.answers_per_worker = 2000;
  crowd.seed = 2;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  ASSERT_EQ(stream.size(), 100000u);

  const auto start = Clock::now();
  IntegratedSample sample;
  for (const Observation& obs : stream) sample.Add(obs);
  EXPECT_LT(ElapsedSeconds(start), 5.0);  // generous CI budget

  EXPECT_EQ(sample.n(), 100000);
  EXPECT_LE(sample.c(), 5000);
  EXPECT_GT(sample.c(), 3000);  // 50 workers × 2000 draws cover most items
  const SampleStats stats = SampleStats::FromSample(sample);
  EXPECT_GT(stats.Coverage(), 0.9);
}

TEST(Stress, BucketEstimatorScalesToThousandsOfEntities) {
  SyntheticPopulationConfig pop;
  pop.num_items = 4000;
  pop.lambda = 2.0;
  pop.rho = 1.0;
  pop.seed = 3;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 30;
  crowd.answers_per_worker = 1000;
  crowd.seed = 4;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  ASSERT_GT(sample.c(), 2000);

  const auto start = Clock::now();
  const Estimate est = BucketSumEstimator().EstimateImpact(sample);
  EXPECT_LT(ElapsedSeconds(start), 10.0);
  EXPECT_TRUE(std::isfinite(est.corrected_sum));
  EXPECT_GE(est.corrected_sum, sample.ObservedSum() - 1e-6);
}

TEST(Stress, ChaoEstimateStaysSaneAtScale) {
  // A near-complete giant sample: N̂ must be close to the true N, not blow
  // up from accumulated floating-point error.
  std::vector<int64_t> counts(20000);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = 2 + static_cast<int64_t>(i % 7);
  }
  counts[0] = 1;  // one singleton
  const auto stats = FrequencyStatistics::FromCounts(counts);
  const double n_hat = Chao92Nhat(stats);
  EXPECT_GT(n_hat, 20000.0);
  EXPECT_LT(n_hat, 20100.0);
}

TEST(Stress, FilterOnLargeSampleIsLinear) {
  IntegratedSample sample;
  for (int i = 0; i < 50000; ++i) {
    sample.Add("w" + std::to_string(i % 20), "e" + std::to_string(i % 8000),
               static_cast<double>(i % 1000));
  }
  const auto start = Clock::now();
  const IntegratedSample filtered =
      sample.Filter([](const EntityStat& e) { return e.value < 500.0; });
  EXPECT_LT(ElapsedSeconds(start), 3.0);
  EXPECT_GT(filtered.c(), 0);
  EXPECT_LT(filtered.c(), sample.c());
}

TEST(Stress, ManySmallSources) {
  // 2000 sources of 3 answers each — the "web pages" regime.
  SyntheticPopulationConfig pop;
  pop.num_items = 500;
  pop.lambda = 3.0;
  pop.rho = 1.0;
  pop.seed = 5;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 2000;
  crowd.answers_per_worker = 3;
  crowd.seed = 6;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  EXPECT_EQ(sample.num_sources(), 2000);
  const Estimate est = NaiveEstimator().EstimateImpact(sample);
  EXPECT_TRUE(std::isfinite(est.corrected_sum));
  // Many overlapping sources: with-replacement approximation is excellent,
  // so the estimate should be within a factor of 2 of the truth.
  EXPECT_NEAR(est.corrected_sum / population.TrueSum(), 1.0, 1.0);
}

}  // namespace
}  // namespace uuq
