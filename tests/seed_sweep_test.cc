// Pins the documented seed-sweep claim on the calibrated UsTechEmployment
// workload (simulation/scenarios.h): "Across 20 seeds, 17 reproduce the
// paper's estimator ordering; the default picks a representative one."
//
// "Reproduces the paper's ordering" here is the Figure 2/4 shape made
// precise: at the full 500-answer stream,
//   * naive > freq > bucket   (the §6.1.1 overestimation ordering),
//   * bucket is strictly closest to the ground truth of the three, and
//   * bucket lands within 10% of truth (the "within a few percent"
//     narrative of Figure 4).
// Exactly seeds {7, 13, 20} fail — 7 and 20 break the ordering (freq lands
// too close to bucket), 13 leaves bucket 11.9% under truth — and the
// documented default seed (14) is one of the 17. A calibration change to
// the population or crowd generator that silently shifts which seeds
// reproduce the paper shape fails here, next to the header that makes the
// claim.
#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "core/bucket.h"
#include "core/frequency.h"
#include "core/naive.h"
#include "integration/sample.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

bool ReproducesPaperOrdering(uint64_t seed) {
  const Scenario scenario = scenarios::UsTechEmployment(seed);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) sample.Add(obs);

  const double truth = scenario.ground_truth_sum;
  const double naive = NaiveEstimator().EstimateImpact(sample).corrected_sum;
  const double freq =
      FrequencyEstimator().EstimateImpact(sample).corrected_sum;
  const double bucket =
      BucketSumEstimator().EstimateImpact(sample).corrected_sum;

  const bool ordered = naive > freq && freq > bucket;
  const bool bucket_closest =
      std::fabs(bucket - truth) < std::fabs(freq - truth) &&
      std::fabs(bucket - truth) < std::fabs(naive - truth);
  const bool bucket_close = std::fabs(bucket / truth - 1.0) < 0.10;
  return ordered && bucket_closest && bucket_close;
}

TEST(SeedSweep, SeventeenOfTwentySeedsReproduceThePaperOrdering) {
  std::set<uint64_t> failing;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    if (!ReproducesPaperOrdering(seed)) failing.insert(seed);
  }
  EXPECT_EQ(failing, (std::set<uint64_t>{7, 13, 20}))
      << "the 17/20 claim in simulation/scenarios.h no longer holds — "
         "update the header AND this test together with the calibration "
         "change that moved it";
}

TEST(SeedSweep, DocumentedDefaultSeedIsRepresentative) {
  // scenarios.h promises the default (seed 14) is one of the 17.
  EXPECT_TRUE(ReproducesPaperOrdering(14));
}

}  // namespace
}  // namespace uuq
