#include "serving/fault_injector.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace uuq {
namespace {

std::array<FaultSpec, kNumFaultSites> OneSite(FaultSite site, double p) {
  std::array<FaultSpec, kNumFaultSites> specs{};
  specs[static_cast<size_t>(site)].probability = p;
  return specs;
}

TEST(FaultInjector, DefaultIsInert) {
  FaultInjector injector;
  EXPECT_TRUE(injector.inert());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kSourceLoad));
  }
  EXPECT_EQ(injector.fired_count(FaultSite::kSourceLoad), 0);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultInjector a(42, OneSite(FaultSite::kSourceLoad, 0.3));
  FaultInjector b(42, OneSite(FaultSite::kSourceLoad, 0.3));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.ShouldFire(FaultSite::kSourceLoad),
              b.ShouldFire(FaultSite::kSourceLoad))
        << "probe " << i;
  }
  EXPECT_EQ(a.fired_count(FaultSite::kSourceLoad),
            b.fired_count(FaultSite::kSourceLoad));
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultInjector a(1, OneSite(FaultSite::kSourceLoad, 0.5));
  FaultInjector b(2, OneSite(FaultSite::kSourceLoad, 0.5));
  int differences = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.ShouldFire(FaultSite::kSourceLoad) !=
        b.ShouldFire(FaultSite::kSourceLoad)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, FireRateTracksProbability) {
  FaultInjector injector(7, OneSite(FaultSite::kArenaAlloc, 0.25));
  const int probes = 4000;
  for (int i = 0; i < probes; ++i) {
    injector.ShouldFire(FaultSite::kArenaAlloc);
  }
  const double rate =
      static_cast<double>(injector.fired_count(FaultSite::kArenaAlloc)) /
      probes;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(FaultInjector, SitesAreIndependentStreams) {
  // Probing one site must not perturb another's schedule: interleaved and
  // isolated runs agree per site.
  FaultInjector interleaved(9, {FaultSpec{0.4, {}}, FaultSpec{0.4, {}},
                                FaultSpec{0.4, {}}, FaultSpec{0.4, {}}});
  FaultInjector isolated(9, {FaultSpec{0.4, {}}, FaultSpec{0.4, {}},
                             FaultSpec{0.4, {}}, FaultSpec{0.4, {}}});
  std::vector<bool> from_interleaved;
  for (int i = 0; i < 100; ++i) {
    from_interleaved.push_back(interleaved.ShouldFire(FaultSite::kSourceLoad));
    interleaved.ShouldFire(FaultSite::kQueueStall);  // noise on another site
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(isolated.ShouldFire(FaultSite::kSourceLoad),
              from_interleaved[static_cast<size_t>(i)])
        << "probe " << i;
  }
}

TEST(FaultInjector, ParseFullSpec) {
  auto injector = FaultInjector::Parse(
      11, "source_load=0.1, slow_replicate=0.05:2ms, queue_stall=0.01:500us,"
          "arena_alloc=1");
  ASSERT_TRUE(injector.ok()) << injector.status().ToString();
  EXPECT_FALSE(injector.value().inert());
  EXPECT_EQ(injector.value().delay(FaultSite::kSlowReplicate),
            std::chrono::milliseconds(2));
  EXPECT_EQ(injector.value().delay(FaultSite::kQueueStall),
            std::chrono::microseconds(500));
  EXPECT_EQ(injector.value().delay(FaultSite::kSourceLoad),
            std::chrono::nanoseconds(0));
  // arena_alloc=1 fires every probe.
  EXPECT_TRUE(injector.value().ShouldFire(FaultSite::kArenaAlloc));
}

TEST(FaultInjector, ParseEmptyIsInert) {
  auto injector = FaultInjector::Parse(0, "");
  ASSERT_TRUE(injector.ok());
  EXPECT_TRUE(injector.value().inert());
}

TEST(FaultInjector, ParseRejectsMalformedSpecs) {
  EXPECT_EQ(FaultInjector::Parse(0, "bogus_site=0.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse(0, "source_load").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse(0, "source_load=1.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse(0, "source_load=-0.1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Parse(0, "source_load=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      FaultInjector::Parse(0, "slow_replicate=0.5:10parsecs").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(FaultInjector, ConcurrentProbesAreSafeAndCounted) {
  FaultInjector injector(3, OneSite(FaultSite::kQueueStall, 0.5));
  constexpr int kThreads = 4;
  constexpr int kProbesPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector] {
      for (int i = 0; i < kProbesPerThread; ++i) {
        injector.ShouldFire(FaultSite::kQueueStall);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every probe consumed exactly one counter slot; the fired total is the
  // sum over a permutation of the same probe indices, so it matches a
  // serial run of the same volume.
  FaultInjector serial(3, OneSite(FaultSite::kQueueStall, 0.5));
  for (int i = 0; i < kThreads * kProbesPerThread; ++i) {
    serial.ShouldFire(FaultSite::kQueueStall);
  }
  EXPECT_EQ(injector.fired_count(FaultSite::kQueueStall),
            serial.fired_count(FaultSite::kQueueStall));
}

}  // namespace
}  // namespace uuq
