#include "core/chao92.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uuq {
namespace {

SampleStats StatsFromCounts(const std::vector<int64_t>& counts) {
  SampleStats stats;
  for (int64_t m : counts) {
    EntityStat e{"k" + std::to_string(stats.c), 1.0, m};
    stats.Add(e);
  }
  return stats;
}

TEST(Chao92Nhat, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(Chao92Nhat(SampleStats{}), 0.0);
}

TEST(Chao92Nhat, AllSingletonsIsInfinite) {
  EXPECT_TRUE(std::isinf(Chao92Nhat(StatsFromCounts({1, 1, 1}))));
}

TEST(Chao92Nhat, CompleteSampleEstimatesC) {
  // No singletons, uniform multiplicities: Ĉ = 1, γ̂² = 0 -> N̂ = c.
  const auto stats = StatsFromCounts({3, 3, 3, 3});
  EXPECT_DOUBLE_EQ(Chao92Nhat(stats), 4.0);
}

TEST(Chao92Nhat, ToyExampleBeforeFifthSource) {
  // Appendix F: counts {1,2,4} -> N̂ = 3.5 + 1.1667·0.1667 ≈ 3.694.
  const auto stats = StatsFromCounts({1, 2, 4});
  EXPECT_NEAR(Chao92Nhat(stats), 3.6944, 1e-3);
}

TEST(Chao92Nhat, ToyExampleAfterFifthSource) {
  // counts {2,2,4,1}: Ĉ = 8/9, γ̂² = 0 -> N̂ = 4.5.
  const auto stats = StatsFromCounts({2, 2, 4, 1});
  EXPECT_NEAR(Chao92Nhat(stats), 4.5, 1e-12);
}

TEST(Chao92Nhat, NeverBelowObservedDistinctCount) {
  const std::vector<std::vector<int64_t>> cases = {
      {2, 2, 2}, {1, 2, 3}, {1, 1, 5, 5}, {4}, {1, 10, 10, 10}};
  for (const auto& counts : cases) {
    const auto stats = StatsFromCounts(counts);
    EXPECT_GE(Chao92Nhat(stats), static_cast<double>(stats.c));
  }
}

TEST(Chao92Nhat, MoreSingletonsMeansLargerEstimate) {
  // Fixing c and adding singleton pressure raises N̂.
  const double low = Chao92Nhat(StatsFromCounts({3, 3, 3, 1}));
  const double high = Chao92Nhat(StatsFromCounts({3, 1, 1, 1}));
  EXPECT_GT(high, low);
}

TEST(Chao92Nhat, MatchesHandComputedSkewCase) {
  // counts {1,1,3,5}: n=10, c=4, f1=2, Ĉ=0.8, Σm(m−1)=0+0+6+20=26.
  // γ̂² = max(4/0.8·26/90 − 1, 0) = max(1.4444−1,0)=0.4444
  // N̂ = 4/0.8 + 10·0.2/0.8·0.4444 = 5 + 1.1111 = 6.1111.
  const auto stats = StatsFromCounts({1, 1, 3, 5});
  EXPECT_NEAR(Chao92Nhat(stats), 6.1111, 1e-3);
}

TEST(GoodTuringNhat, IgnoresSkewCorrection) {
  // Same case as above: c/Ĉ = 5 exactly.
  const auto stats = StatsFromCounts({1, 1, 3, 5});
  EXPECT_NEAR(GoodTuringNhat(stats), 5.0, 1e-12);
  EXPECT_LE(GoodTuringNhat(stats), Chao92Nhat(stats));
}

TEST(GoodTuringNhat, EmptyAndAllSingletonEdgeCases) {
  EXPECT_DOUBLE_EQ(GoodTuringNhat(SampleStats{}), 0.0);
  EXPECT_TRUE(std::isinf(GoodTuringNhat(StatsFromCounts({1, 1}))));
}

TEST(Chao92Nhat, FstatsOverloadAgrees) {
  const auto counts = std::vector<int64_t>{1, 2, 2, 3, 7};
  const auto from_scalar = Chao92Nhat(StatsFromCounts(counts));
  const auto from_fstats =
      Chao92Nhat(FrequencyStatistics::FromCounts(counts));
  EXPECT_DOUBLE_EQ(from_scalar, from_fstats);
}

TEST(Chao92Nhat, ZeroCoverageIsPositiveInfinityNotNan) {
  // Regression companion to the correction-layer clamp: the coverage <= 0
  // branch must yield a clean +inf (never NaN, never negative) so the
  // layers above can detect "unconstrained" with std::isfinite and the
  // estimators can mark finite = false. All-singleton stats of any size hit
  // the branch.
  for (int k = 1; k <= 6; ++k) {
    const auto stats = StatsFromCounts(std::vector<int64_t>(k, 1));
    const double chao = Chao92Nhat(stats);
    const double gt = GoodTuringNhat(stats);
    EXPECT_TRUE(std::isinf(chao) && chao > 0.0) << k;
    EXPECT_TRUE(std::isinf(gt) && gt > 0.0) << k;
    EXPECT_FALSE(std::isnan(chao)) << k;
  }
}

TEST(Chao92Nhat, ConvergesToTruthOnUniformResampling) {
  // Sanity: sampling 100 items uniformly with replacement 2000 times gives a
  // near-complete sample; Chao92 should estimate ≈ 100.
  // Multiplicities are deterministic here: each item seen 20 times.
  std::vector<int64_t> counts(100, 20);
  EXPECT_NEAR(Chao92Nhat(StatsFromCounts(counts)), 100.0, 1e-9);
}

}  // namespace
}  // namespace uuq
