#include "stats/kl_divergence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace uuq {
namespace {

TEST(KlDivergence, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
}

TEST(KlDivergence, IsNonNegative) {
  const std::vector<double> p{0.7, 0.2, 0.1};
  const std::vector<double> q{0.1, 0.2, 0.7};
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_GT(KlDivergence(q, p), 0.0);
}

TEST(KlDivergence, Asymmetric) {
  const std::vector<double> p{0.9, 0.1};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlDivergence, KnownValue) {
  // KL({1,0} || {0.5,0.5}) = 1·ln(2) = ln 2.
  EXPECT_NEAR(KlDivergence({1.0, 0.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(KlDivergence, InfiniteWhenSupportMismatch) {
  EXPECT_TRUE(std::isinf(KlDivergence({0.5, 0.5}, {1.0, 0.0})));
}

TEST(KlDivergence, ZeroPTermContributesNothing) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(KlDivergenceDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH(KlDivergence({1.0}, {0.5, 0.5}), "equal supports");
}

TEST(AlignMultiplicities, SortsDescendingAndPads) {
  std::vector<double> observed{1, 3, 2};
  std::vector<double> simulated{5, 4, 3, 2, 1};
  AlignMultiplicities(&observed, &simulated);
  EXPECT_EQ(observed.size(), 5u);
  EXPECT_EQ(simulated.size(), 5u);
  EXPECT_EQ(observed[0], 3);
  EXPECT_EQ(observed[2], 1);
  EXPECT_EQ(observed[3], 0);  // padded
  EXPECT_EQ(observed[4], 0);
}

TEST(SmoothAndNormalize, SumsToOne) {
  const auto p = SmoothAndNormalize({3, 0, 1, 0}, 1e-6);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (double v : p) EXPECT_GT(v, 0.0);
}

TEST(SmoothAndNormalize, ZeroCellsGetEpsilonMass) {
  const auto p = SmoothAndNormalize({1, 0}, 0.5);
  // masses 1 and 0.5 -> normalized {2/3, 1/3}.
  EXPECT_NEAR(p[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0 / 3.0, 1e-12);
}

TEST(AlignedKlDivergence, IdenticalHistogramsNearZero) {
  EXPECT_NEAR(AlignedKlDivergence({4, 3, 2, 1}, {4, 3, 2, 1}), 0.0, 1e-9);
}

TEST(AlignedKlDivergence, OrderInsensitive) {
  // Rank alignment: only the multiset of multiplicities matters.
  const double a = AlignedKlDivergence({1, 2, 3}, {3, 1, 2});
  EXPECT_NEAR(a, 0.0, 1e-9);
}

TEST(AlignedKlDivergence, PenalizesExtraSimulatedUniques) {
  // Simulation hypothesizes far more unique items than observed.
  const double close = AlignedKlDivergence({5, 5, 5}, {5, 5, 5});
  const double far = AlignedKlDivergence({5, 5, 5}, {2, 2, 2, 2, 2, 2, 1, 1});
  EXPECT_GT(far, close);
}

TEST(AlignedKlDivergence, MoreSimilarShapesScoreLower) {
  const std::vector<double> observed{10, 5, 2, 1, 1};
  const double near = AlignedKlDivergence(observed, {9, 6, 2, 1, 1});
  const double far = AlignedKlDivergence(observed, {4, 4, 4, 4, 3});
  EXPECT_LT(near, far);
}

TEST(AlignedKlDivergence, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(AlignedKlDivergence({}, {}), 0.0);
}

TEST(AlignedKlDivergence, FiniteDespiteZeroCells) {
  EXPECT_TRUE(std::isfinite(AlignedKlDivergence({3, 2}, {1, 1, 1, 1})));
  EXPECT_TRUE(std::isfinite(AlignedKlDivergence({3, 2, 1, 1}, {5})));
}

// The allocation-free variant must agree with the reference implementation:
// simulate its calling convention (positive counts sorted descending, zero
// cells implied up to `support`) and compare against AlignedKlDivergence on
// the materialized vectors.
double SortedDescReference(std::vector<double> observed,
                           std::vector<double> simulated, size_t support,
                           double epsilon) {
  // Materialize the implied zero cells, then run the allocating pipeline.
  std::vector<double> simulated_padded = simulated;
  simulated_padded.resize(support, 0.0);
  return AlignedKlDivergence(std::move(observed), std::move(simulated_padded),
                             epsilon);
}

TEST(AlignedKlDivergenceSortedDesc, MatchesAllocatingReference) {
  const std::vector<std::pair<std::vector<double>, std::vector<double>>>
      cases = {
          {{5, 3, 2, 1, 1}, {4, 2, 2}},
          {{3, 2}, {1, 1, 1, 1}},
          {{9, 1, 1}, {3, 3, 3, 1}},
          {{2, 1}, {}},
          {{4, 4, 2, 1, 1, 1}, {6, 2, 1, 1}},
      };
  for (const auto& [observed, simulated] : cases) {
    const size_t support = std::max(observed.size(), simulated.size() + 7);
    double observed_sum = 0.0, simulated_sum = 0.0;
    for (double v : observed) observed_sum += v;
    for (double v : simulated) simulated_sum += v;
    const double fast = AlignedKlDivergenceSortedDesc(
        observed.data(), observed.size(), observed_sum, simulated.data(),
        simulated.size(), simulated_sum, support, 1e-6);
    const double reference =
        SortedDescReference(observed, simulated, support, 1e-6);
    EXPECT_NEAR(fast, reference, 1e-12) << "support " << support;
  }
}

TEST(AlignedKlDivergenceSortedDesc, EmptySupportIsZero) {
  EXPECT_DOUBLE_EQ(
      AlignedKlDivergenceSortedDesc(nullptr, 0, 0.0, nullptr, 0, 0.0, 0, 1e-6),
      0.0);
}

TEST(AlignedKlDivergenceSortedDesc, LargeSupportStaysFinite) {
  // θN far larger than either histogram: the closed-form tail must not blow
  // up or produce NaN.
  const std::vector<double> observed{7, 3, 2, 1};
  const std::vector<double> simulated{5, 4, 1};
  const double kl = AlignedKlDivergenceSortedDesc(
      observed.data(), observed.size(), 13.0, simulated.data(),
      simulated.size(), 10.0, 100000, 1e-6);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GE(kl, 0.0);
}

}  // namespace
}  // namespace uuq
