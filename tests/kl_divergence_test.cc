#include "stats/kl_divergence.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uuq {
namespace {

TEST(KlDivergence, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
}

TEST(KlDivergence, IsNonNegative) {
  const std::vector<double> p{0.7, 0.2, 0.1};
  const std::vector<double> q{0.1, 0.2, 0.7};
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_GT(KlDivergence(q, p), 0.0);
}

TEST(KlDivergence, Asymmetric) {
  const std::vector<double> p{0.9, 0.1};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlDivergence, KnownValue) {
  // KL({1,0} || {0.5,0.5}) = 1·ln(2) = ln 2.
  EXPECT_NEAR(KlDivergence({1.0, 0.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(KlDivergence, InfiniteWhenSupportMismatch) {
  EXPECT_TRUE(std::isinf(KlDivergence({0.5, 0.5}, {1.0, 0.0})));
}

TEST(KlDivergence, ZeroPTermContributesNothing) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(KlDivergenceDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH(KlDivergence({1.0}, {0.5, 0.5}), "equal supports");
}

TEST(AlignMultiplicities, SortsDescendingAndPads) {
  std::vector<double> observed{1, 3, 2};
  std::vector<double> simulated{5, 4, 3, 2, 1};
  AlignMultiplicities(&observed, &simulated);
  EXPECT_EQ(observed.size(), 5u);
  EXPECT_EQ(simulated.size(), 5u);
  EXPECT_EQ(observed[0], 3);
  EXPECT_EQ(observed[2], 1);
  EXPECT_EQ(observed[3], 0);  // padded
  EXPECT_EQ(observed[4], 0);
}

TEST(SmoothAndNormalize, SumsToOne) {
  const auto p = SmoothAndNormalize({3, 0, 1, 0}, 1e-6);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (double v : p) EXPECT_GT(v, 0.0);
}

TEST(SmoothAndNormalize, ZeroCellsGetEpsilonMass) {
  const auto p = SmoothAndNormalize({1, 0}, 0.5);
  // masses 1 and 0.5 -> normalized {2/3, 1/3}.
  EXPECT_NEAR(p[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0 / 3.0, 1e-12);
}

TEST(AlignedKlDivergence, IdenticalHistogramsNearZero) {
  EXPECT_NEAR(AlignedKlDivergence({4, 3, 2, 1}, {4, 3, 2, 1}), 0.0, 1e-9);
}

TEST(AlignedKlDivergence, OrderInsensitive) {
  // Rank alignment: only the multiset of multiplicities matters.
  const double a = AlignedKlDivergence({1, 2, 3}, {3, 1, 2});
  EXPECT_NEAR(a, 0.0, 1e-9);
}

TEST(AlignedKlDivergence, PenalizesExtraSimulatedUniques) {
  // Simulation hypothesizes far more unique items than observed.
  const double close = AlignedKlDivergence({5, 5, 5}, {5, 5, 5});
  const double far = AlignedKlDivergence({5, 5, 5}, {2, 2, 2, 2, 2, 2, 1, 1});
  EXPECT_GT(far, close);
}

TEST(AlignedKlDivergence, MoreSimilarShapesScoreLower) {
  const std::vector<double> observed{10, 5, 2, 1, 1};
  const double near = AlignedKlDivergence(observed, {9, 6, 2, 1, 1});
  const double far = AlignedKlDivergence(observed, {4, 4, 4, 4, 3});
  EXPECT_LT(near, far);
}

TEST(AlignedKlDivergence, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(AlignedKlDivergence({}, {}), 0.0);
}

TEST(AlignedKlDivergence, FiniteDespiteZeroCells) {
  EXPECT_TRUE(std::isfinite(AlignedKlDivergence({3, 2}, {1, 1, 1, 1})));
  EXPECT_TRUE(std::isfinite(AlignedKlDivergence({3, 2, 1, 1}, {5})));
}

}  // namespace
}  // namespace uuq
