#include "core/bucket.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/chao92.h"
#include "core/frequency.h"
#include "core/naive.h"

namespace uuq {
namespace {

std::vector<EntityStat> MakeEntities(
    const std::vector<std::pair<double, int64_t>>& pairs) {
  std::vector<EntityStat> out;
  int i = 0;
  for (const auto& [value, mult] : pairs) {
    out.push_back({"e" + std::to_string(i++), value, mult});
  }
  return out;
}

IntegratedSample SampleFromEntities(
    const std::vector<std::pair<double, int64_t>>& pairs) {
  IntegratedSample sample;
  int entity = 0;
  for (const auto& [value, mult] : pairs) {
    for (int64_t m = 0; m < mult; ++m) {
      sample.Add("w" + std::to_string(m), "e" + std::to_string(entity), value);
    }
    ++entity;
  }
  return sample;
}

TEST(SortedEntityIndex, SortsByValue) {
  SortedEntityIndex index(MakeEntities({{30, 1}, {10, 2}, {20, 3}}));
  EXPECT_DOUBLE_EQ(index.entities()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(index.entities()[2].value, 30.0);
}

TEST(SortedEntityIndex, SliceMatchesDirectComputation) {
  Rng rng(3);
  std::vector<std::pair<double, int64_t>> pairs;
  for (int i = 0; i < 50; ++i) {
    pairs.push_back({rng.NextUniform(0, 100),
                     1 + static_cast<int64_t>(rng.NextBounded(5))});
  }
  SortedEntityIndex index(MakeEntities(pairs));
  for (int trial = 0; trial < 30; ++trial) {
    size_t a = rng.NextBounded(51);
    size_t b = rng.NextBounded(51);
    if (a > b) std::swap(a, b);
    const SampleStats sliced = index.Slice(a, b);
    SampleStats direct;
    for (size_t i = a; i < b; ++i) direct.Add(index.entities()[i]);
    EXPECT_EQ(sliced.n, direct.n);
    EXPECT_EQ(sliced.c, direct.c);
    EXPECT_EQ(sliced.f1, direct.f1);
    EXPECT_EQ(sliced.sum_mm1, direct.sum_mm1);
    EXPECT_NEAR(sliced.value_sum, direct.value_sum, 1e-9);
    EXPECT_NEAR(sliced.singleton_sum, direct.singleton_sum, 1e-9);
  }
}

TEST(SortedEntityIndex, UpperBoundOfValueSkipsTies) {
  SortedEntityIndex index(
      MakeEntities({{10, 1}, {10, 2}, {10, 3}, {20, 1}, {30, 1}}));
  EXPECT_EQ(index.UpperBoundOfValueAt(0), 3u);
  EXPECT_EQ(index.UpperBoundOfValueAt(3), 4u);
  EXPECT_EQ(index.UpperBoundOfValueAt(4), 5u);
}

TEST(EquiWidthPartitioner, SplitsValueRange) {
  // Values 0..99, 2 buckets: boundary at 49.5.
  std::vector<std::pair<double, int64_t>> pairs;
  for (int i = 0; i < 100; ++i) pairs.push_back({static_cast<double>(i), 2});
  SortedEntityIndex index(MakeEntities(pairs));
  NaiveEstimator inner;
  const auto bounds = EquiWidthPartitioner(2).Partition(index, inner);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 50u);
  EXPECT_EQ(bounds[2], 100u);
}

TEST(EquiWidthPartitioner, EmptyBucketsCollapse) {
  // All mass at the extremes: middle buckets vanish instead of appearing
  // as empty ranges.
  SortedEntityIndex index(MakeEntities({{0, 2}, {1, 1}, {99, 1}, {100, 2}}));
  NaiveEstimator inner;
  const auto bounds = EquiWidthPartitioner(10).Partition(index, inner);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
  EXPECT_EQ(bounds.back(), 4u);
}

TEST(EquiWidthPartitioner, SingleValuedDataYieldsOneBucket) {
  SortedEntityIndex index(MakeEntities({{5, 1}, {5, 2}, {5, 3}}));
  NaiveEstimator inner;
  const auto bounds = EquiWidthPartitioner(4).Partition(index, inner);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 3}));
}

TEST(EquiHeightPartitioner, EqualCardinalityBuckets) {
  std::vector<std::pair<double, int64_t>> pairs;
  for (int i = 0; i < 12; ++i) pairs.push_back({static_cast<double>(i), 1});
  SortedEntityIndex index(MakeEntities(pairs));
  NaiveEstimator inner;
  const auto bounds = EquiHeightPartitioner(3).Partition(index, inner);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 4, 8, 12}));
}

TEST(EquiHeightPartitioner, TiedValuesStayTogether) {
  // 6 entities all value 7 except the last: a boundary can't cut the tie
  // run.
  SortedEntityIndex index(MakeEntities(
      {{7, 1}, {7, 1}, {7, 2}, {7, 1}, {7, 3}, {9, 1}}));
  NaiveEstimator inner;
  const auto bounds = EquiHeightPartitioner(2).Partition(index, inner);
  // Tie run covers [0,5); the only legal interior boundary is 5.
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 5, 6}));
}

TEST(EquiHeightPartitioner, MoreBucketsThanEntitiesClamps) {
  SortedEntityIndex index(MakeEntities({{1, 1}, {2, 1}}));
  NaiveEstimator inner;
  const auto bounds = EquiHeightPartitioner(10).Partition(index, inner);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 2u);
}

TEST(DynamicPartitioner, ToyExampleSplitsOffBigCompany) {
  // Appendix F before s5: A(1000,×1) B(2000,×2) D(10000,×4) splits into
  // {A,B} | {D}.
  SortedEntityIndex index(
      MakeEntities({{1000, 1}, {2000, 2}, {10000, 4}}));
  NaiveEstimator inner;
  const auto bounds = DynamicPartitioner().Partition(index, inner);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 2, 3}));
}

TEST(DynamicPartitioner, DoesNotSplitWhenNoImprovement) {
  // Uniform values and multiplicities: any split only raises N̂ (Eq. 13),
  // value means are equal, so no split lowers |Δ|.
  std::vector<std::pair<double, int64_t>> pairs;
  for (int i = 0; i < 10; ++i) pairs.push_back({100.0 + i, 3});
  SortedEntityIndex index(MakeEntities(pairs));
  NaiveEstimator inner;
  const auto bounds = DynamicPartitioner().Partition(index, inner);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 10}));
}

TEST(DynamicPartitioner, NeverCreatesSingletonOnlyBucket) {
  Rng rng(11);
  std::vector<std::pair<double, int64_t>> pairs;
  for (int i = 0; i < 60; ++i) {
    pairs.push_back({rng.NextUniform(0, 1000),
                     1 + static_cast<int64_t>(rng.NextBounded(4))});
  }
  SortedEntityIndex index(MakeEntities(pairs));
  NaiveEstimator inner;
  const auto bounds = DynamicPartitioner().Partition(index, inner);
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    const SampleStats stats = index.Slice(bounds[i], bounds[i + 1]);
    // A singleton-only bucket has an infinite Δ; the split rule must never
    // produce one (it can only keep the initial full-range bucket if that
    // is itself all singletons).
    if (bounds.size() > 2) {
      EXPECT_LT(stats.f1, stats.c == 0 ? 1 : stats.n) << "bucket " << i;
    }
  }
}

TEST(DynamicPartitioner, ParallelScanMatchesSerial) {
  // Wide bucket (hundreds of distinct values, crossing the parallel-scan
  // threshold): the pooled candidate evaluation must reproduce the serial
  // partition exactly, for any thread count.
  Rng rng(23);
  std::vector<std::pair<double, int64_t>> pairs;
  for (int i = 0; i < 400; ++i) {
    pairs.push_back({rng.NextUniform(0, 100000),
                     1 + static_cast<int64_t>(rng.NextBounded(5))});
  }
  SortedEntityIndex index(MakeEntities(pairs));
  NaiveEstimator inner;

  ThreadPool serial(1);
  ThreadPool parallel(8);
  const auto serial_bounds =
      DynamicPartitioner(&serial).Partition(index, inner);
  const auto parallel_bounds =
      DynamicPartitioner(&parallel).Partition(index, inner);
  EXPECT_EQ(serial_bounds, parallel_bounds);
  EXPECT_EQ(serial_bounds, DynamicPartitioner().Partition(index, inner));
}

TEST(DynamicPartitioner, EmptyInput) {
  SortedEntityIndex index(std::vector<EntityPoint>{});
  NaiveEstimator inner;
  const auto bounds = DynamicPartitioner().Partition(index, inner);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 0}));
}

TEST(BucketSumEstimator, SumsBucketDeltas) {
  const auto sample =
      SampleFromEntities({{1000, 1}, {2000, 2}, {10000, 4}});
  const Estimate est = BucketSumEstimator().EstimateImpact(sample);
  EXPECT_NEAR(est.delta, 1500.0, 1e-9);
  EXPECT_NEAR(est.corrected_sum, 14500.0, 1e-9);
}

TEST(BucketSumEstimator, ComputeBucketsExposesPerBucketStats) {
  const auto sample =
      SampleFromEntities({{1000, 1}, {2000, 2}, {10000, 4}});
  const auto buckets = BucketSumEstimator().ComputeBuckets(sample);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].lo, 1000.0);
  EXPECT_DOUBLE_EQ(buckets[0].hi, 2000.0);
  EXPECT_EQ(buckets[0].stats.c, 2);
  EXPECT_DOUBLE_EQ(buckets[1].lo, 10000.0);
  EXPECT_EQ(buckets[1].stats.n, 4);
}

TEST(BucketSumEstimator, EmptySample) {
  IntegratedSample sample;
  const Estimate est = BucketSumEstimator().EstimateImpact(sample);
  EXPECT_DOUBLE_EQ(est.delta, 0.0);
  EXPECT_EQ(est.num_buckets, 0);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(BucketSumEstimator, NameReflectsConfiguration) {
  EXPECT_EQ(BucketSumEstimator().name(), "bucket[dynamic]");
  const BucketSumEstimator eq_width(
      std::make_shared<EquiWidthPartitioner>(6),
      std::make_shared<NaiveEstimator>());
  EXPECT_EQ(eq_width.name(), "bucket[eq-width-6]");
  const BucketSumEstimator freq_inner(
      std::make_shared<DynamicPartitioner>(),
      std::make_shared<FrequencyEstimator>());
  EXPECT_EQ(freq_inner.name(), "bucket[dynamic,freq]");
}

TEST(BucketSumEstimator, DynamicNeverWorseThanWholeSampleObjective) {
  // The split rule only accepts strict improvements of Σ|Δ|, so the final
  // objective is ≤ the single-bucket |Δ|.
  Rng rng(29);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::pair<double, int64_t>> pairs;
    const int c = 5 + static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < c; ++i) {
      pairs.push_back({rng.NextUniform(1, 1000),
                       1 + static_cast<int64_t>(rng.NextBounded(5))});
    }
    const auto sample = SampleFromEntities(pairs);
    const SampleStats whole = SampleStats::FromSample(sample);
    const Estimate single = NaiveEstimator().FromStats(whole);
    const Estimate bucketed = BucketSumEstimator().EstimateImpact(sample);
    if (std::isfinite(single.delta)) {
      EXPECT_LE(std::fabs(bucketed.delta), std::fabs(single.delta) + 1e-6);
    }
  }
}

// Appendix C: the count estimate is minimized by the even singleton split
// (α = 0.5) and splitting never lowers the (uniform-case) Chao92 estimate.
TEST(AppendixC, SplitInequalityHolds) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const double n = 10.0 + rng.NextBounded(1000);
    const double c = 2.0 + rng.NextBounded(static_cast<uint64_t>(n) - 2);
    // Keep denominators positive: f1 < n/2.
    const double f1 = rng.NextBounded(static_cast<uint64_t>(n / 2));
    const double before = n * c / (n - f1);
    for (double alpha : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      const double after = (n / 2) * (c / 2) / (n / 2 - alpha * f1) +
                           (n / 2) * (c / 2) / (n / 2 - (1 - alpha) * f1);
      EXPECT_GE(after, before - 1e-9)
          << "n=" << n << " c=" << c << " f1=" << f1 << " alpha=" << alpha;
    }
    // Minimum at α = 0.5 equals the pre-split estimate.
    const double at_half =
        (n / 2) * (c / 2) / (n / 2 - 0.5 * f1) * 2.0;
    EXPECT_NEAR(at_half, before, 1e-6 * before);
  }
}

}  // namespace
}  // namespace uuq
