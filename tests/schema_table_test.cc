#include <gtest/gtest.h>

#include "db/schema.h"
#include "db/table.h"

namespace uuq {
namespace {

Schema CompanySchema() {
  return Schema({{"name", ValueType::kString},
                 {"employees", ValueType::kDouble},
                 {"public", ValueType::kBool}});
}

TEST(Schema, IndexOfIsCaseInsensitive) {
  const Schema schema = CompanySchema();
  EXPECT_EQ(schema.IndexOf("name").value(), 0u);
  EXPECT_EQ(schema.IndexOf("EMPLOYEES").value(), 1u);
  EXPECT_EQ(schema.IndexOf("Public").value(), 2u);
}

TEST(Schema, IndexOfMissingIsNotFound) {
  const Schema schema = CompanySchema();
  auto idx = schema.IndexOf("revenue");
  EXPECT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kNotFound);
}

TEST(Schema, HasField) {
  const Schema schema = CompanySchema();
  EXPECT_TRUE(schema.HasField("name"));
  EXPECT_FALSE(schema.HasField("missing"));
}

TEST(Schema, ToStringListsFields) {
  const Schema schema({{"a", ValueType::kInt64}});
  EXPECT_EQ(schema.ToString(), "(a:INT64)");
}

TEST(Schema, EqualityComparesNamesAndTypes) {
  EXPECT_EQ(CompanySchema(), CompanySchema());
  const Schema other({{"name", ValueType::kString}});
  EXPECT_FALSE(CompanySchema() == other);
}

TEST(SchemaDeathTest, DuplicateNamesAbort) {
  EXPECT_DEATH(Schema({{"x", ValueType::kInt64}, {"X", ValueType::kDouble}}),
               "duplicate");
}

TEST(Table, AppendValidatesArity) {
  Table table("t", CompanySchema());
  EXPECT_FALSE(table.Append({Value("ibm")}).ok());
  EXPECT_TRUE(
      table.Append({Value("ibm"), Value(100.0), Value(true)}).ok());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(Table, AppendValidatesTypes) {
  Table table("t", CompanySchema());
  Status s = table.Append({Value("ibm"), Value("many"), Value(true)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Table, AppendAcceptsIntForDoubleColumn) {
  Table table("t", CompanySchema());
  EXPECT_TRUE(
      table.Append({Value("ibm"), Value(int64_t{100}), Value(true)}).ok());
}

TEST(Table, AppendAcceptsNullAnywhere) {
  Table table("t", CompanySchema());
  EXPECT_TRUE(
      table.Append({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(Table, ColumnExtraction) {
  Table table("t", CompanySchema());
  ASSERT_TRUE(table.Append({Value("a"), Value(1.0), Value(true)}).ok());
  ASSERT_TRUE(table.Append({Value("b"), Value(2.0), Value(false)}).ok());
  const auto names = table.Column(0);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0].AsString(), "a");
  EXPECT_EQ(names[1].AsString(), "b");
}

TEST(Table, NumericColumnSkipsNulls) {
  Table table("t", CompanySchema());
  ASSERT_TRUE(table.Append({Value("a"), Value(1.5), Value(true)}).ok());
  ASSERT_TRUE(table.Append({Value("b"), Value::Null(), Value(true)}).ok());
  ASSERT_TRUE(table.Append({Value("c"), Value(2.5), Value(true)}).ok());
  const auto xs = table.NumericColumn("employees");
  ASSERT_TRUE(xs.ok());
  EXPECT_EQ(xs.value(), (std::vector<double>{1.5, 2.5}));
}

TEST(Table, NumericColumnRejectsNonNumeric) {
  Table table("t", CompanySchema());
  ASSERT_TRUE(table.Append({Value("a"), Value(1.0), Value(true)}).ok());
  EXPECT_FALSE(table.NumericColumn("name").ok());
  EXPECT_FALSE(table.NumericColumn("nope").ok());
}

TEST(Table, ToStringIncludesHeaderAndRows) {
  Table table("companies", CompanySchema());
  ASSERT_TRUE(table.Append({Value("ibm"), Value(100.0), Value(true)}).ok());
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("companies"), std::string::npos);
  EXPECT_NE(rendered.find("employees"), std::string::npos);
  EXPECT_NE(rendered.find("ibm"), std::string::npos);
}

TEST(Table, ToStringTruncatesLongTables) {
  Table table("t", Schema({{"x", ValueType::kInt64}}));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(table.Append({Value(static_cast<int64_t>(i))}).ok());
  }
  const std::string rendered = table.ToString(5);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
}

TEST(Table, EmptyTable) {
  Table table("t", CompanySchema());
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.num_rows(), 0u);
}

}  // namespace
}  // namespace uuq
