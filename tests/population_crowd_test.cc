#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

TEST(MakeSyntheticPopulation, MatchesPaperSection62Defaults) {
  SyntheticPopulationConfig config;  // N=100, values 10..1000
  const Population pop = MakeSyntheticPopulation(config);
  ASSERT_EQ(pop.size(), 100u);
  EXPECT_DOUBLE_EQ(pop.TrueMin(), 10.0);
  EXPECT_DOUBLE_EQ(pop.TrueMax(), 1000.0);
  EXPECT_DOUBLE_EQ(pop.TrueSum(), 50500.0);  // Σ 10..1000 step 10
  EXPECT_DOUBLE_EQ(pop.TrueAvg(), 505.0);
}

TEST(MakeSyntheticPopulation, PublicitiesNormalized) {
  SyntheticPopulationConfig config;
  config.lambda = 4.0;
  const Population pop = MakeSyntheticPopulation(config);
  const double total = std::accumulate(pop.publicities().begin(),
                                       pop.publicities().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MakeSyntheticPopulation, RhoOnePerfectlyCorrelates) {
  SyntheticPopulationConfig config;
  config.lambda = 2.0;
  config.rho = 1.0;
  const Population pop = MakeSyntheticPopulation(config);
  EXPECT_NEAR(pop.PublicityValueCorrelation(), 1.0, 1e-9);
  // The most public item (index 0) carries the largest value.
  EXPECT_DOUBLE_EQ(pop.item(0).value, 1000.0);
}

TEST(MakeSyntheticPopulation, RhoZeroUncorrelated) {
  SyntheticPopulationConfig config;
  config.lambda = 2.0;
  config.rho = 0.0;
  config.seed = 99;
  const Population pop = MakeSyntheticPopulation(config);
  EXPECT_LT(std::fabs(pop.PublicityValueCorrelation()), 0.3);
}

TEST(MakeSyntheticPopulation, IntermediateRhoBetween) {
  SyntheticPopulationConfig config;
  config.lambda = 2.0;
  config.rho = 0.9;
  config.seed = 7;
  const double high =
      MakeSyntheticPopulation(config).PublicityValueCorrelation();
  config.rho = 0.2;
  const double low =
      MakeSyntheticPopulation(config).PublicityValueCorrelation();
  EXPECT_GT(high, low);
}

TEST(MakeSyntheticPopulation, ValuesAreAPermutationOfTheGrid) {
  SyntheticPopulationConfig config;
  config.rho = 0.5;
  config.seed = 13;
  const Population pop = MakeSyntheticPopulation(config);
  std::multiset<double> values;
  for (const auto& item : pop.items()) values.insert(item.value);
  std::multiset<double> expected;
  for (int k = 0; k < 100; ++k) expected.insert(10.0 + 10.0 * k);
  EXPECT_EQ(values, expected);
}

TEST(MakeHeavyTailPopulation, HitsTargetSum) {
  HeavyTailPopulationConfig config;
  config.num_items = 500;
  config.target_sum = 1000000.0;
  config.seed = 3;
  const Population pop = MakeHeavyTailPopulation(config);
  // Rounding and the min-value floor allow a small deviation.
  EXPECT_NEAR(pop.TrueSum(), 1000000.0, 10000.0);
}

TEST(MakeHeavyTailPopulation, PublicityCorrelatesWithValue) {
  HeavyTailPopulationConfig config;
  config.num_items = 1000;
  config.publicity_exponent = 0.8;
  config.publicity_noise_sigma = 0.2;
  config.seed = 4;
  const Population pop = MakeHeavyTailPopulation(config);
  EXPECT_GT(pop.PublicityValueCorrelation(), 0.7);
}

TEST(Population, EmptyPopulationAggregates) {
  Population pop;
  EXPECT_DOUBLE_EQ(pop.TrueSum(), 0.0);
  EXPECT_DOUBLE_EQ(pop.TrueAvg(), 0.0);
}

TEST(CrowdSimulator, QuotasAreRespected) {
  SyntheticPopulationConfig config;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 7;
  crowd.answers_per_worker = 9;
  crowd.seed = 5;
  const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
  EXPECT_EQ(stream.size(), 63u);
  std::map<std::string, int> per_source;
  for (const auto& obs : stream) ++per_source[obs.source_id];
  EXPECT_EQ(per_source.size(), 7u);
  for (const auto& [id, count] : per_source) EXPECT_EQ(count, 9);
}

TEST(CrowdSimulator, WorkersSampleWithoutReplacement) {
  SyntheticPopulationConfig config;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 5;
  crowd.answers_per_worker = 40;
  crowd.seed = 6;
  const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
  std::map<std::string, std::set<std::string>> seen;
  for (const auto& obs : stream) {
    EXPECT_TRUE(seen[obs.source_id].insert(obs.entity_key).second)
        << obs.source_id << " repeated " << obs.entity_key;
  }
}

TEST(CrowdSimulator, RoundRobinInterleaves) {
  SyntheticPopulationConfig config;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 3;
  crowd.answers_per_worker = 2;
  crowd.order = ArrivalOrder::kRoundRobin;
  crowd.seed = 7;
  const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
  ASSERT_EQ(stream.size(), 6u);
  EXPECT_EQ(stream[0].source_id, "w0");
  EXPECT_EQ(stream[1].source_id, "w1");
  EXPECT_EQ(stream[2].source_id, "w2");
  EXPECT_EQ(stream[3].source_id, "w0");
}

TEST(CrowdSimulator, SequentialOrderGroupsWorkers) {
  SyntheticPopulationConfig config;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 2;
  crowd.answers_per_worker = 3;
  crowd.order = ArrivalOrder::kSequential;
  crowd.seed = 8;
  const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
  ASSERT_EQ(stream.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(stream[i].source_id, "w0");
  for (int i = 3; i < 6; ++i) EXPECT_EQ(stream[i].source_id, "w1");
}

TEST(CrowdSimulator, SequentialFullDumpCoversPopulationRepeatedly) {
  SyntheticPopulationConfig config;
  config.num_items = 20;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 3;
  crowd.sequential_full_dump = true;
  crowd.seed = 9;
  const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
  EXPECT_EQ(stream.size(), 60u);  // 3 workers × all 20 items
  std::set<std::string> first_dump;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(stream[i].source_id, "w0");
    first_dump.insert(stream[i].entity_key);
  }
  EXPECT_EQ(first_dump.size(), 20u);
}

TEST(CrowdSimulator, StreakerInjectedAtPosition) {
  SyntheticPopulationConfig config;
  config.num_items = 30;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 4;
  crowd.answers_per_worker = 10;
  crowd.streaker_at = 12;
  crowd.streaker_items = 30;
  crowd.seed = 10;
  const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
  EXPECT_EQ(stream.size(), 70u);  // 40 worker answers + 30 streaker answers
  for (int i = 12; i < 42; ++i) {
    EXPECT_EQ(stream[i].source_id, "streaker");
  }
  EXPECT_NE(stream[11].source_id, "streaker");
  EXPECT_NE(stream[42].source_id, "streaker");
}

TEST(CrowdSimulator, DeterministicForSeed) {
  SyntheticPopulationConfig config;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.seed = 11;
  const auto a = CrowdSimulator(&pop, crowd).GenerateStream();
  const auto b = CrowdSimulator(&pop, crowd).GenerateStream();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entity_key, b[i].entity_key);
  }
}

TEST(CrowdSimulator, PublicityBiasShowsInArrivalOrder) {
  // With heavy skew the most public item arrives (on average, across full
  // permutation draws) far earlier than the least public one.
  SyntheticPopulationConfig config;
  config.lambda = 6.0;
  config.rho = 1.0;
  const Population pop = MakeSyntheticPopulation(config);
  CrowdConfig crowd;
  crowd.num_workers = 1;
  crowd.answers_per_worker = 100;  // full draw = weighted permutation
  double top_position_sum = 0.0, bottom_position_sum = 0.0;
  const int trials = 50;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    crowd.seed = seed;
    const auto stream = CrowdSimulator(&pop, crowd).GenerateStream();
    for (size_t i = 0; i < stream.size(); ++i) {
      if (stream[i].entity_key == pop.item(0).key) {
        top_position_sum += static_cast<double>(i);
      }
      if (stream[i].entity_key == pop.item(99).key) {
        bottom_position_sum += static_cast<double>(i);
      }
    }
  }
  EXPECT_LT(top_position_sum / trials, bottom_position_sum / trials - 20.0);
}

}  // namespace
}  // namespace uuq
