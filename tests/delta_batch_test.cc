// Fuzz suite for the batched SoA Δ kernels (PR 5).
//
// StatsSumEstimator::DeltaFromStatsBatch must be BIT-IDENTICAL to the
// scalar chain — NormalizedAbsDelta(DeltaFromStats(stats)) — on every
// evaluated lane, for every estimator with a specialized kernel (naive,
// frequency, freq-gt) and for the base-class fallback. With per-lane
// `min_needed` thresholds the multiplication-form pre-filter
// (Chao92PreFilterCertifies) may blend NaN over a lane ONLY when the true
// normalized |Δ| really is at or above the lane's threshold — a wrong
// certificate would change partitions, so the fuzz hammers thresholds
// placed exactly at, just below, and just above the true value, across
// random / tie-heavy / all-singleton / constant-value slice populations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/bucket.h"
#include "core/chao92.h"
#include "core/estimate.h"
#include "core/frequency.h"
#include "core/naive.h"

namespace uuq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// SoA columns built from a vector of SampleStats via the StatsBatchView
/// cast convention (static_cast<double> of every count field).
struct Columns {
  std::vector<double> n, c, f1, mm1, value_sum, singleton_sum;

  explicit Columns(const std::vector<SampleStats>& stats) {
    for (const SampleStats& s : stats) {
      n.push_back(static_cast<double>(s.n));
      c.push_back(static_cast<double>(s.c));
      f1.push_back(static_cast<double>(s.f1));
      mm1.push_back(static_cast<double>(s.sum_mm1));
      value_sum.push_back(s.value_sum);
      singleton_sum.push_back(s.singleton_sum);
    }
  }

  StatsBatchView View() const {
    StatsBatchView view;
    view.size = n.size();
    view.n = n.data();
    view.c = c.data();
    view.f1 = f1.data();
    view.sum_mm1 = mm1.data();
    view.value_sum = value_sum.data();
    view.singleton_sum = singleton_sum.data();
    return view;
  }
};

/// The scalar reference for one lane: exactly what the split scan's AbsDelta
/// computes (0.0 for empty stats, fabs-or-inf otherwise).
double ScalarReference(const StatsSumEstimator& est, const SampleStats& s) {
  if (s.empty()) return 0.0;
  return NormalizedAbsDelta(est.DeltaFromStats(s));
}

void ExpectBatchMatchesScalar(const StatsSumEstimator& est,
                              const std::vector<SampleStats>& stats,
                              const std::string& what) {
  const Columns cols(stats);
  std::vector<double> out(stats.size(),
                          std::numeric_limits<double>::quiet_NaN());
  est.DeltaFromStatsBatch(cols.View(), /*min_needed=*/nullptr, out.data());
  for (size_t i = 0; i < stats.size(); ++i) {
    const double expected = ScalarReference(est, stats[i]);
    // Bit-identical: exact double equality (NaN never legal without
    // min_needed — non-finite deltas normalize to +inf, not NaN).
    EXPECT_FALSE(std::isnan(out[i])) << what << " lane " << i;
    EXPECT_EQ(expected, out[i]) << what << " lane " << i << " of "
                                << stats.size();
  }
}

/// With thresholds: every non-NaN lane must still be bit-identical, and
/// every NaN (certified) lane's TRUE value must be >= its threshold.
void ExpectFilteredBatchSound(const StatsSumEstimator& est,
                              const std::vector<SampleStats>& stats,
                              const std::vector<double>& needed,
                              const std::string& what) {
  const Columns cols(stats);
  std::vector<double> out(stats.size(), 0.0);
  est.DeltaFromStatsBatch(cols.View(), needed.data(), out.data());
  for (size_t i = 0; i < stats.size(); ++i) {
    const double expected = ScalarReference(est, stats[i]);
    if (std::isnan(out[i])) {
      // Certified prunable: must be a TRUE statement about the exact value.
      EXPECT_GE(expected, needed[i])
          << what << ": pre-filter certified lane " << i
          << " below its threshold (|delta|=" << expected << ")";
    } else {
      EXPECT_EQ(expected, out[i]) << what << " lane " << i;
    }
  }
}

std::vector<SampleStats> RandomSliceStats(Rng* rng, int lanes,
                                          bool tie_heavy, bool all_singleton,
                                          bool constant_value) {
  // Build each lane's stats by folding a random entity slice — realistic,
  // internally consistent sufficient statistics (the only kind the scan
  // ever produces).
  std::vector<SampleStats> out;
  for (int lane = 0; lane < lanes; ++lane) {
    SampleStats s;
    const int entities = 1 + static_cast<int>(rng->NextBounded(40));
    const double constant = rng->NextUniform(-50.0, 50.0);
    for (int e = 0; e < entities; ++e) {
      const double value =
          constant_value ? constant
                         : rng->NextUniform(-100.0, 1000.0);
      int64_t mult = 1;
      if (!all_singleton) {
        mult = tie_heavy ? 1 + static_cast<int64_t>(rng->NextBounded(2))
                         : 1 + static_cast<int64_t>(rng->NextBounded(6));
      }
      s.Add(EntityPoint{value, mult});
    }
    out.push_back(s);
  }
  // A few hand-built degenerates per batch: empty lanes, inconsistent
  // hand-assembled lanes (n > 0, c == 0), and huge counts near the
  // pre-filter's refuse-to-certify domain edge.
  out.push_back(SampleStats{});
  SampleStats inconsistent;
  inconsistent.n = 7;
  inconsistent.f1 = 2;
  inconsistent.value_sum = 123.5;
  out.push_back(inconsistent);
  SampleStats huge;
  huge.n = (int64_t{1} << 31);
  huge.c = (int64_t{1} << 30);
  huge.f1 = 12345;
  huge.sum_mm1 = (int64_t{1} << 33);
  huge.value_sum = 1e18;
  huge.singleton_sum = 1e12;
  out.push_back(huge);
  return out;
}

class DeltaBatchFuzz : public ::testing::Test {
 protected:
  NaiveEstimator naive_;
  FrequencyEstimator freq_;
  FrequencyEstimator freq_gt_{/*assume_uniform=*/true};

  std::vector<const StatsSumEstimator*> All() const {
    return {&naive_, &freq_, &freq_gt_};
  }
};

TEST_F(DeltaBatchFuzz, RandomSlicesBitIdentical) {
  Rng rng(0xBA7C4);
  for (int trial = 0; trial < 40; ++trial) {
    const auto stats = RandomSliceStats(&rng, 64, false, false, false);
    for (const StatsSumEstimator* est : All()) {
      ExpectBatchMatchesScalar(*est, stats,
                               est->name() + " random trial " +
                                   std::to_string(trial));
    }
  }
}

TEST_F(DeltaBatchFuzz, TieHeavySlicesBitIdentical) {
  Rng rng(0xBA7C5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto stats = RandomSliceStats(&rng, 48, true, false, false);
    for (const StatsSumEstimator* est : All()) {
      ExpectBatchMatchesScalar(*est, stats,
                               est->name() + " tie-heavy trial " +
                                   std::to_string(trial));
    }
  }
}

TEST_F(DeltaBatchFuzz, AllSingletonSlicesNormalizeToInfinity) {
  // Every slice all-singletons: Chao92 diverges, the scalar chain returns a
  // non-finite delta, and both paths must normalize it to exactly +inf.
  Rng rng(0xBA7C6);
  const auto stats = RandomSliceStats(&rng, 48, false, true, false);
  for (const StatsSumEstimator* est : All()) {
    ExpectBatchMatchesScalar(*est, stats, est->name() + " all-singleton");
  }
  const Columns cols(stats);
  std::vector<double> out(stats.size());
  naive_.DeltaFromStatsBatch(cols.View(), nullptr, out.data());
  int infinities = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].n > 0 && stats[i].n == stats[i].f1 && out[i] == kInf) {
      ++infinities;
    }
  }
  EXPECT_GT(infinities, 0) << "fuzz population never exercised the "
                              "all-singleton divergence";
}

TEST_F(DeltaBatchFuzz, ConstantValueSlicesBitIdentical) {
  Rng rng(0xBA7C7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto stats = RandomSliceStats(&rng, 32, false, false, true);
    for (const StatsSumEstimator* est : All()) {
      ExpectBatchMatchesScalar(*est, stats,
                               est->name() + " constant-value trial " +
                                   std::to_string(trial));
    }
  }
}

TEST_F(DeltaBatchFuzz, BaseClassFallbackMatchesScalar) {
  // An estimator without a specialized kernel: the semantics-defining
  // default loop must satisfy the same contract (and ignore min_needed).
  struct Halved final : public StatsSumEstimator {
    std::string name() const override { return "halved"; }
    Estimate FromStats(const SampleStats& stats) const override {
      Estimate est;
      est.estimator = name();
      est.delta = stats.value_sum * 0.5;
      return est;
    }
  } halved;
  Rng rng(0xBA7C8);
  const auto stats = RandomSliceStats(&rng, 48, false, false, false);
  ExpectBatchMatchesScalar(halved, stats, "fallback");
  const Columns cols(stats);
  std::vector<double> needed(stats.size(), 1e-30);  // trivially certifiable
  std::vector<double> out(stats.size());
  halved.DeltaFromStatsBatch(cols.View(), needed.data(), out.data());
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_FALSE(std::isnan(out[i]))
        << "fallback may not certify (it has no pre-filter)";
  }
}

TEST_F(DeltaBatchFuzz, PreFilterNeverCertifiesBelowThreshold) {
  // Thresholds planted around the true value — equal, a hair below, a hair
  // above, far below, far above, zero, negative, inf, NaN — across all
  // slice populations. A NaN output whose true |Δ| is below the threshold
  // is the one bug class that would silently change partitions.
  Rng rng(0xBA7C9);
  for (int trial = 0; trial < 30; ++trial) {
    const bool ties = (trial % 3) == 1;
    const bool singletons = (trial % 3) == 2;
    const auto stats = RandomSliceStats(&rng, 48, ties, singletons, false);
    for (const StatsSumEstimator* est : All()) {
      std::vector<double> needed;
      for (const SampleStats& s : stats) {
        const double truth = ScalarReference(*est, s);
        switch (rng.NextBounded(9)) {
          case 0: needed.push_back(truth); break;
          case 1: needed.push_back(truth * (1.0 - 1e-12)); break;
          case 2: needed.push_back(truth * (1.0 + 1e-12)); break;
          case 3: needed.push_back(truth * 0.25); break;
          case 4: needed.push_back(truth * 4.0); break;
          case 5: needed.push_back(0.0); break;
          case 6: needed.push_back(-1.0); break;
          case 7: needed.push_back(kInf); break;
          default:
            needed.push_back(std::numeric_limits<double>::quiet_NaN());
        }
      }
      ExpectFilteredBatchSound(*est, stats, needed,
                               est->name() + " threshold trial " +
                                   std::to_string(trial));
    }
  }
}

TEST_F(DeltaBatchFuzz, PreFilterNeverRejectsTheTrueMinimum) {
  // The scan-shaped property: gather a batch of candidate slices from a
  // real sorted index with per-lane thresholds derived from a pruning
  // reference (as DynamicPartitioner would), and pin that the lane holding
  // the batch's true minimum is never masked when its value is below the
  // reference — so a pre-filtering scan can always still find the argmin.
  Rng rng(0xBA7CA);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<EntityPoint> points;
    const int n = 30 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < n; ++i) {
      points.push_back({rng.NextUniform(-100.0, 500.0),
                        1 + static_cast<int64_t>(rng.NextBounded(4))});
    }
    const SortedEntityIndex index{std::vector<EntityPoint>(points)};
    std::vector<SampleStats> stats;
    for (size_t cut = 1; cut < index.size(); ++cut) {
      stats.push_back(index.Slice(0, cut));
      stats.push_back(index.Slice(cut, index.size()));
    }
    for (const StatsSumEstimator* est : All()) {
      double truth_min = kInf;
      size_t min_lane = 0;
      std::vector<double> truth;
      for (size_t i = 0; i < stats.size(); ++i) {
        truth.push_back(ScalarReference(*est, stats[i]));
        if (truth.back() < truth_min) {
          truth_min = truth.back();
          min_lane = i;
        }
      }
      // Reference strictly above the minimum: the minimum lane must come
      // back exact; lanes certified away must truly clear the reference.
      const double reference = truth_min * 1.5 + 1.0;
      std::vector<double> needed(stats.size(), reference);
      const Columns cols(stats);
      std::vector<double> out(stats.size());
      est->DeltaFromStatsBatch(cols.View(), needed.data(), out.data());
      EXPECT_FALSE(std::isnan(out[min_lane]))
          << est->name() << " trial " << trial
          << ": pre-filter rejected the true minimum";
      if (!std::isnan(out[min_lane])) {
        EXPECT_EQ(truth_min, out[min_lane]) << est->name();
      }
      for (size_t i = 0; i < stats.size(); ++i) {
        if (std::isnan(out[i])) {
          EXPECT_GE(truth[i], reference) << est->name() << " lane " << i;
        }
      }
    }
  }
}

TEST_F(DeltaBatchFuzz, HelperRefusesOutOfDomainCertificates) {
  // The branch-free helper must reject non-positive, non-finite, and
  // beyond-2^30-n inputs outright (the conservatism contract's hard edges).
  EXPECT_FALSE(Chao92PreFilterCertifies(1e30, 100.0, 5.0, 0.0));
  EXPECT_FALSE(Chao92PreFilterCertifies(1e30, 100.0, 5.0, -1.0));
  EXPECT_FALSE(Chao92PreFilterCertifies(1e30, 100.0, 5.0, kInf));
  EXPECT_FALSE(Chao92PreFilterCertifies(
      1e30, 100.0, 5.0, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(Chao92PreFilterCertifies(kInf, 100.0, 5.0, 1.0));
  EXPECT_FALSE(Chao92PreFilterCertifies(1e30, 2e9, 5.0, 1.0));
  // And a plainly-in-domain certificate still works.
  EXPECT_TRUE(Chao92PreFilterCertifies(1e6, 100.0, 5.0, 1.0));
}

}  // namespace
}  // namespace uuq
