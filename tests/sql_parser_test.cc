#include "db/sql_parser.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "db/predicate.h"

namespace uuq {
namespace {

TEST(ParseQuery, MinimalSum) {
  auto q = ParseQuery("SELECT SUM(employees) FROM companies");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().aggregate, AggregateKind::kSum);
  EXPECT_EQ(q.value().attribute, "employees");
  EXPECT_EQ(q.value().table_name, "companies");
  EXPECT_EQ(q.value().predicate->ToString(), "TRUE");
}

TEST(ParseQuery, CaseInsensitiveKeywords) {
  auto q = ParseQuery("select avg(x) from t where x > 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().aggregate, AggregateKind::kAvg);
}

TEST(ParseQuery, AllAggregates) {
  for (const auto& [sql, kind] :
       std::vector<std::pair<std::string, AggregateKind>>{
           {"SELECT SUM(a) FROM t", AggregateKind::kSum},
           {"SELECT COUNT(a) FROM t", AggregateKind::kCount},
           {"SELECT AVG(a) FROM t", AggregateKind::kAvg},
           {"SELECT MIN(a) FROM t", AggregateKind::kMin},
           {"SELECT MAX(a) FROM t", AggregateKind::kMax}}) {
    auto q = ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << sql;
    EXPECT_EQ(q.value().aggregate, kind) << sql;
  }
}

TEST(ParseQuery, CountStar) {
  auto q = ParseQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().attribute, "*");
}

TEST(ParseQuery, StarOnlyForCount) {
  EXPECT_FALSE(ParseQuery("SELECT SUM(*) FROM t").ok());
}

TEST(ParseQuery, SimpleComparisonPredicate) {
  auto q = ParseQuery("SELECT SUM(v) FROM t WHERE v >= 10");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(), "(v >= 10)");
}

TEST(ParseQuery, AllComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    const std::string sql =
        std::string("SELECT SUM(v) FROM t WHERE v ") + op + " 5";
    EXPECT_TRUE(ParseQuery(sql).ok()) << sql;
  }
}

TEST(ParseQuery, StringLiteralWithEscapes) {
  auto q = ParseQuery("SELECT COUNT(v) FROM t WHERE name = 'O''Brien & Co'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(), "(name = 'O'Brien & Co')");
}

TEST(ParseQuery, NumericLiteralForms) {
  EXPECT_TRUE(ParseQuery("SELECT SUM(v) FROM t WHERE v > -5").ok());
  EXPECT_TRUE(ParseQuery("SELECT SUM(v) FROM t WHERE v > 2.5").ok());
  EXPECT_TRUE(ParseQuery("SELECT SUM(v) FROM t WHERE v > 1e3").ok());
  EXPECT_TRUE(ParseQuery("SELECT SUM(v) FROM t WHERE v > .5").ok());
  EXPECT_TRUE(ParseQuery("SELECT SUM(v) FROM t WHERE v > -1.5e-2").ok());
}

TEST(ParseQuery, BooleanLiterals) {
  auto q = ParseQuery("SELECT COUNT(v) FROM t WHERE active = true");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(), "(active = true)");
}

TEST(ParseQuery, AndOrNotPrecedence) {
  // AND binds tighter than OR.
  auto q = ParseQuery(
      "SELECT SUM(v) FROM t WHERE a > 1 OR b > 2 AND c > 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(),
            "((a > 1) OR ((b > 2) AND (c > 3)))");
}

TEST(ParseQuery, ParenthesesOverridePrecedence) {
  auto q = ParseQuery(
      "SELECT SUM(v) FROM t WHERE (a > 1 OR b > 2) AND c > 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(),
            "(((a > 1) OR (b > 2)) AND (c > 3))");
}

TEST(ParseQuery, NotPredicate) {
  auto q = ParseQuery("SELECT SUM(v) FROM t WHERE NOT v < 0");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(), "(NOT (v < 0))");
}

TEST(ParseQuery, NestedNotAndParens) {
  auto q = ParseQuery("SELECT SUM(v) FROM t WHERE NOT (a = 1 AND b = 2)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate->ToString(),
            "(NOT ((a = 1) AND (b = 2)))");
}

TEST(ParseQuery, ErrorsReportOffsets) {
  auto q = ParseQuery("SELECT SUM(v FROM t");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

TEST(ParseQuery, RejectsMalformedInputs) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT MEDIAN(x) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(x) companies").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(x) FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(x) FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(x) FROM t WHERE x >").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(x) FROM t trailing junk").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(x) FROM t WHERE x ~ 3").ok());
}

TEST(ParseQuery, RejectsUnterminatedString) {
  auto q = ParseQuery("SELECT SUM(x) FROM t WHERE name = 'oops");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("unterminated"), std::string::npos);
}

TEST(ParseQuery, UnderscoredIdentifiers) {
  auto q = ParseQuery(
      "SELECT SUM(num_employees) FROM us_tech_companies WHERE "
      "_region = 'silicon valley'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().attribute, "num_employees");
  EXPECT_EQ(q.value().table_name, "us_tech_companies");
}

TEST(ParseQuery, RoundTripThroughToString) {
  const std::string sql =
      "SELECT SUM(employees) FROM companies WHERE (employees > 10)";
  auto q1 = ParseQuery(sql);
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseQuery(q1.value().ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1.value().ToString(), q2.value().ToString());
}

// Randomized round-trip fuzzing: generate random (valid) queries, render
// them, re-parse, and require a fixed point. Exercises operator precedence,
// literal forms, nesting and GROUP BY together.
class RandomQueryGenerator {
 public:
  explicit RandomQueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Query() {
    static const char* kAggs[] = {"SUM", "COUNT", "AVG", "MIN", "MAX"};
    std::string sql = std::string("SELECT ") +
                      kAggs[rng_.NextBounded(5)] + "(col" +
                      std::to_string(rng_.NextBounded(4)) + ") FROM t" +
                      std::to_string(rng_.NextBounded(3));
    if (rng_.NextBernoulli(0.8)) sql += " WHERE " + Predicate(0);
    if (rng_.NextBernoulli(0.3)) sql += " GROUP BY category";
    return sql;
  }

 private:
  std::string Predicate(int depth) {
    if (depth >= 3 || rng_.NextBernoulli(0.4)) return Comparison();
    switch (rng_.NextBounded(3)) {
      case 0:
        return "(" + Predicate(depth + 1) + " AND " + Predicate(depth + 1) +
               ")";
      case 1:
        return "(" + Predicate(depth + 1) + " OR " + Predicate(depth + 1) +
               ")";
      default:
        return "NOT (" + Predicate(depth + 1) + ")";
    }
  }

  std::string Comparison() {
    static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
    std::string lhs = "col" + std::to_string(rng_.NextBounded(4));
    std::string op = kOps[rng_.NextBounded(6)];
    std::string rhs;
    switch (rng_.NextBounded(3)) {
      case 0:
        rhs = std::to_string(rng_.NextInt(-1000, 1000));
        break;
      case 1:
        rhs = std::to_string(rng_.NextInt(-100, 100)) + "." +
              std::to_string(rng_.NextBounded(99));
        break;
      default:
        rhs = "'s" + std::to_string(rng_.NextBounded(50)) + "'";
        break;
    }
    return lhs + " " + op + " " + rhs;
  }

  Rng rng_;
};

TEST(ParseQuery, FuzzRoundTripFixedPoint) {
  RandomQueryGenerator generator(0xF00D);
  for (int i = 0; i < 500; ++i) {
    const std::string sql = generator.Query();
    auto q1 = ParseQuery(sql);
    ASSERT_TRUE(q1.ok()) << sql << " -> " << q1.status().ToString();
    const std::string rendered = q1.value().ToString();
    auto q2 = ParseQuery(rendered);
    ASSERT_TRUE(q2.ok()) << rendered;
    EXPECT_EQ(rendered, q2.value().ToString()) << sql;
  }
}

TEST(ParseQuery, FuzzGarbageNeverCrashes) {
  Rng rng(0xBAD);
  const std::string alphabet =
      "SELECT FROM WHERE AND OR NOT()*,<>=!'\"0123456789abcxyz_. \n";
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const int len = 1 + static_cast<int>(rng.NextBounded(60));
    for (int k = 0; k < len; ++k) {
      garbage += alphabet[rng.NextBounded(alphabet.size())];
    }
    // Must never crash; ok() or error are both acceptable.
    (void)ParseQuery(garbage);
  }
}

}  // namespace
}  // namespace uuq
