// Negative attribute values (paper §3.3.2: the dynamic bucket strategy takes
// |Δ| "to underestimate the impact of unknown unknowns even for the case of
// having negative attribute values (e.g., net losses of companies)").
#include <gtest/gtest.h>

#include <cmath>

#include "core/bound.h"
#include "core/bucket.h"
#include "core/frequency.h"
#include "core/minmax.h"
#include "core/naive.h"
#include "core/query_correction.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

// Companies with profits AND losses: values −500..+500.
IntegratedSample MixedSignSample(uint64_t seed = 3) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.value_min = -500.0;
  pop.value_step = 10.0;  // −500, −490, ..., 490
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.seed = seed + 1;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  return sample;
}

TEST(NegativeValues, SyntheticPopulationSupportsNegativeRange) {
  SyntheticPopulationConfig pop;
  pop.value_min = -500.0;
  pop.value_step = 10.0;
  const Population population = MakeSyntheticPopulation(pop);
  EXPECT_DOUBLE_EQ(population.TrueMin(), -500.0);
  EXPECT_DOUBLE_EQ(population.TrueMax(), 490.0);
  EXPECT_DOUBLE_EQ(population.TrueSum(), -500.0);  // Σ of −500..490 step 10
}

TEST(NegativeValues, EstimatorsStayFinite) {
  const auto sample = MixedSignSample();
  for (const SumEstimator* est :
       std::initializer_list<const SumEstimator*>{
           new NaiveEstimator(), new FrequencyEstimator(),
           new BucketSumEstimator()}) {
    const Estimate e = est->EstimateImpact(sample);
    EXPECT_TRUE(std::isfinite(e.corrected_sum)) << e.estimator;
    delete est;
  }
}

TEST(NegativeValues, DeltaCanBeNegative) {
  // With mean substitution over a mostly-negative sample the correction
  // itself goes negative — the unknown unknowns REDUCE the sum.
  IntegratedSample sample;
  for (int e = 0; e < 20; ++e) {
    const int copies = 1 + (e % 3);
    for (int k = 0; k < copies; ++k) {
      sample.Add("w" + std::to_string(k), "e" + std::to_string(e),
                 -100.0 - e);
    }
  }
  const Estimate est = NaiveEstimator().EstimateImpact(sample);
  EXPECT_LT(est.missing_value, 0.0);
  EXPECT_LT(est.delta, 0.0);
  EXPECT_LT(est.corrected_sum, sample.ObservedSum());
}

TEST(NegativeValues, BucketPartitionCoversNegativeRange) {
  const auto sample = MixedSignSample();
  const auto buckets = BucketSumEstimator().ComputeBuckets(sample);
  ASSERT_FALSE(buckets.empty());
  EXPECT_LT(buckets.front().lo, 0.0);  // negative values present
  SampleStats merged;
  for (const ValueBucket& b : buckets) merged.Merge(b.stats);
  EXPECT_EQ(merged.c, sample.c());
}

TEST(NegativeValues, DynamicObjectiveStillBounded) {
  // Σ|Δ(b)| over the final partition never exceeds |Δ| of one bucket.
  const auto sample = MixedSignSample(7);
  const SampleStats whole = SampleStats::FromSample(sample);
  const Estimate single = NaiveEstimator().FromStats(whole);
  const auto buckets = BucketSumEstimator().ComputeBuckets(sample);
  double objective = 0.0;
  for (const ValueBucket& b : buckets) {
    objective += std::fabs(b.estimate.delta);
  }
  if (std::isfinite(single.delta)) {
    EXPECT_LE(objective, std::fabs(single.delta) + 1e-6);
  }
}

TEST(NegativeValues, MinMaxHandlesNegativeExtremes) {
  IntegratedSample sample;
  for (int e = 0; e < 15; ++e) {
    for (int w = 0; w < 4; ++w) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e),
                 -10.0 * e);
    }
  }
  const MinMaxEstimator minmax;
  const ExtremeEstimate min_est = minmax.EstimateMin(sample);
  EXPECT_TRUE(min_est.has_data);
  EXPECT_DOUBLE_EQ(min_est.observed_extreme, -140.0);
  EXPECT_TRUE(min_est.claim_true_extreme);  // fully saturated sample
}

TEST(NegativeValues, QueryCorrectorEndToEnd) {
  const auto sample = MixedSignSample(11);
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(
      sample, "SELECT SUM(value) FROM companies WHERE value < 0");
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(answer.value().observed, 0.0);
  // Correcting a negative-only class must push the sum further down.
  EXPECT_LE(answer.value().corrected, answer.value().observed + 1e-9);
}

TEST(NegativeValues, BoundValueTermCanStayPositive) {
  // φK/c + 3σ can be positive even when the mean is negative; the bound
  // machinery must not produce NaN.
  const auto sample = MixedSignSample(13);
  const SumUpperBound bound = ComputeSumUpperBound(sample);
  EXPECT_FALSE(std::isnan(bound.phi_upper));
  EXPECT_FALSE(std::isnan(bound.value_upper));
}

TEST(BucketedBound, TighterUnderCorrelation) {
  // Positive-valued correlated workload: per-bucket σ is small, so the
  // bucketed bound should beat (or match) the global §4 bound.
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 17;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 30;
  crowd.seed = 18;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  const SumUpperBound global = ComputeSumUpperBound(sample);
  const SumUpperBound bucketed = ComputeBucketedSumUpperBound(sample);
  ASSERT_TRUE(global.finite);
  ASSERT_TRUE(bucketed.finite);
  EXPECT_LE(bucketed.phi_upper, global.phi_upper + 1e-6);
  // Still a bound: above the truth.
  EXPECT_GE(bucketed.phi_upper, population.TrueSum());
}

TEST(BucketedBound, SingleBucketFallsBackToGlobal) {
  IntegratedSample sample;
  for (int e = 0; e < 50; ++e) {
    for (int w = 0; w < 4; ++w) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e), 100.0);
    }
  }
  const SumUpperBound global = ComputeSumUpperBound(sample);
  const SumUpperBound bucketed = ComputeBucketedSumUpperBound(sample);
  EXPECT_DOUBLE_EQ(global.phi_upper, bucketed.phi_upper);
}

TEST(BucketedBound, NeverLooserThanGlobal) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const auto sample = MixedSignSample(seed);
    const SumUpperBound global = ComputeSumUpperBound(sample);
    const SumUpperBound bucketed = ComputeBucketedSumUpperBound(sample);
    if (global.finite && bucketed.finite) {
      EXPECT_LE(bucketed.phi_upper, global.phi_upper + 1e-6) << seed;
    }
  }
}

}  // namespace
}  // namespace uuq
