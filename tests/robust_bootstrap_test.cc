#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/naive.h"
#include "core/robust.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

IntegratedSample HealthySample(uint64_t seed = 3) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.seed = seed + 1;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  return sample;
}

IntegratedSample StreakerSample() {
  // The streaker must dominate: >50% of all observations (§6.3 heuristics).
  IntegratedSample sample = HealthySample(5);
  for (int i = 0; i < 500; ++i) {
    sample.Add("streaker", "extra-" + std::to_string(i % 150), 50.0 + i % 150);
  }
  return sample;
}

TEST(RobustSumEstimator, DelegatesToBucketWhenHealthy) {
  const RobustSumEstimator robust;
  const auto sample = HealthySample();
  const Estimate est = robust.EstimateImpact(sample);
  EXPECT_EQ(est.estimator, "robust[bucket[dynamic]]");
  EXPECT_EQ(robust.LastAdviceFor(sample).choice, EstimatorChoice::kBucket);
}

TEST(RobustSumEstimator, DelegatesToMonteCarloUnderStreaker) {
  EstimatorAdvisor::Options options;
  options.mc_options.runs_per_point = 2;
  options.mc_options.n_grid_steps = 5;
  const RobustSumEstimator robust(options);
  const auto sample = StreakerSample();
  const Estimate est = robust.EstimateImpact(sample);
  EXPECT_EQ(est.estimator, "robust[monte-carlo]");
}

TEST(RobustSumEstimator, FlagsLowCoverage) {
  IntegratedSample sparse;
  for (int w = 0; w < 8; ++w) {
    for (int e = 0; e < 4; ++e) {
      sparse.Add("w" + std::to_string(w), "e" + std::to_string(w * 10 + e),
                 1.0);
    }
  }
  const RobustSumEstimator robust;
  const Estimate est = robust.EstimateImpact(sparse);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(RobustSumEstimator, MatchesDelegateNumerically) {
  const auto sample = HealthySample();
  const Estimate robust = RobustSumEstimator().EstimateImpact(sample);
  const Estimate bucket = BucketSumEstimator().EstimateImpact(sample);
  EXPECT_DOUBLE_EQ(robust.delta, bucket.delta);
}

TEST(ResampleSources, PreservesSourceCountAndPolicy) {
  const auto sample = HealthySample();
  Rng rng(9);
  const IntegratedSample resampled = ResampleSources(sample, &rng);
  EXPECT_EQ(resampled.num_sources(), sample.num_sources());
  EXPECT_EQ(resampled.policy(), sample.policy());
  EXPECT_GT(resampled.n(), 0);
}

TEST(ResampleSources, EmptySampleStaysEmpty) {
  IntegratedSample empty;
  Rng rng(1);
  EXPECT_TRUE(ResampleSources(empty, &rng).empty());
}

TEST(ResampleSources, DrawsWithReplacement) {
  // With 20 sources, P(no duplicate draw) is ~ 20!/20^20 ≈ 2e-8 per trial;
  // across trials the resampled n must differ from the original sometimes.
  const auto sample = HealthySample();
  Rng rng(11);
  bool saw_difference = false;
  for (int t = 0; t < 10 && !saw_difference; ++t) {
    const IntegratedSample resampled = ResampleSources(sample, &rng);
    // n can only differ if some source was drawn twice AND collides with
    // itself on an entity (duplicate within the merged stream collapses in
    // c but not n)... n is actually preserved: every draw replays a full
    // source. c differs when the multiset of sources differs.
    if (resampled.c() != sample.c()) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(BootstrapCorrectedSum, IntervalCoversPointEstimate) {
  const auto sample = HealthySample();
  const BucketSumEstimator bucket;
  BootstrapOptions options;
  options.replicates = 60;
  const BootstrapInterval interval =
      BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_GT(interval.finite_replicates, 40);
  EXPECT_LE(interval.lo, interval.hi);
  // The point estimate should fall inside (or at least very near) the CI.
  EXPECT_GE(interval.point, interval.lo * 0.9);
  EXPECT_LE(interval.point, interval.hi * 1.1);
}

TEST(BootstrapCorrectedSum, DeterministicForSeed) {
  const auto sample = HealthySample();
  const NaiveEstimator naive;
  BootstrapOptions options;
  options.replicates = 30;
  const auto a = BootstrapCorrectedSum(sample, naive, options);
  const auto b = BootstrapCorrectedSum(sample, naive, options);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCorrectedSum, WiderIntervalAtHigherConfidence) {
  const auto sample = HealthySample();
  const NaiveEstimator naive;
  BootstrapOptions narrow;
  narrow.replicates = 100;
  narrow.confidence = 0.5;
  BootstrapOptions wide;
  wide.replicates = 100;
  wide.confidence = 0.99;
  const auto narrow_ci = BootstrapCorrectedSum(sample, naive, narrow);
  const auto wide_ci = BootstrapCorrectedSum(sample, naive, wide);
  EXPECT_GE(wide_ci.hi - wide_ci.lo, narrow_ci.hi - narrow_ci.lo);
}

TEST(BootstrapCorrectedSum, MedianBetweenBounds) {
  const auto sample = HealthySample();
  const BucketSumEstimator bucket;
  BootstrapOptions options;
  options.replicates = 50;
  const auto interval = BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_GE(interval.median, interval.lo);
  EXPECT_LE(interval.median, interval.hi);
}

TEST(BootstrapCorrectedSumDeathTest, BadOptionsAbort) {
  IntegratedSample sample;
  const NaiveEstimator naive;
  BootstrapOptions zero;
  zero.replicates = 0;
  EXPECT_DEATH(BootstrapCorrectedSum(sample, naive, zero), "replicate");
}

TEST(JackknifeCorrectedSum, IntervalCentersOnPoint) {
  const auto sample = HealthySample();
  const BucketSumEstimator bucket;
  const JackknifeInterval jk = JackknifeCorrectedSum(sample, bucket);
  EXPECT_EQ(jk.sources, 20);
  EXPECT_EQ(jk.finite_replicates, 20);
  EXPECT_GT(jk.standard_error, 0.0);
  EXPECT_LT(jk.lo, jk.point);
  EXPECT_GT(jk.hi, jk.point);
  EXPECT_NEAR((jk.lo + jk.hi) / 2.0, jk.point, 1e-6);
}

TEST(JackknifeCorrectedSum, Deterministic) {
  const auto sample = HealthySample();
  const NaiveEstimator naive;
  const JackknifeInterval a = JackknifeCorrectedSum(sample, naive);
  const JackknifeInterval b = JackknifeCorrectedSum(sample, naive);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(JackknifeCorrectedSum, WiderWithLargerZ) {
  const auto sample = HealthySample();
  const NaiveEstimator naive;
  const JackknifeInterval narrow = JackknifeCorrectedSum(sample, naive, 1.0);
  const JackknifeInterval wide = JackknifeCorrectedSum(sample, naive, 3.0);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(JackknifeCorrectedSum, DegenerateSingleSource) {
  IntegratedSample sample;
  sample.Add("only", "a", 1.0);
  const NaiveEstimator naive;
  const JackknifeInterval jk = JackknifeCorrectedSum(sample, naive);
  EXPECT_EQ(jk.sources, 1);
  EXPECT_DOUBLE_EQ(jk.lo, jk.point);
  EXPECT_DOUBLE_EQ(jk.hi, jk.point);
}

TEST(JackknifeCorrectedSum, SingleSourceNeverEvaluatesTheEmptyView) {
  // Regression: with one source the only leave-one-out replicate is the
  // EMPTY sample. The num_sources() <= 1 guard must return the degenerate
  // [point, point] interval before any replicate machinery runs — for every
  // estimator and both forced evaluation modes (the columnar force would
  // otherwise build and evaluate an empty view).
  IntegratedSample sample;
  sample.Add("only", "a", 10.0);
  sample.Add("only", "b", 20.0);
  sample.Add("only", "a", 10.0);
  const BucketSumEstimator bucket;
  for (const ReplicateEvaluation evaluation :
       {ReplicateEvaluation::kAuto, ReplicateEvaluation::kColumnar,
        ReplicateEvaluation::kMaterialized}) {
    const JackknifeInterval jk =
        JackknifeCorrectedSum(sample, bucket, 1.96, nullptr, evaluation);
    EXPECT_EQ(jk.sources, 1);
    EXPECT_EQ(jk.finite_replicates, 0);
    EXPECT_DOUBLE_EQ(jk.standard_error, 0.0);
    EXPECT_DOUBLE_EQ(jk.lo, jk.point);
    EXPECT_DOUBLE_EQ(jk.hi, jk.point);
  }
}

TEST(JackknifeCorrectedSum, ZeroSourcesIsDegenerateToo) {
  IntegratedSample empty;
  const BucketSumEstimator bucket;
  const JackknifeInterval jk = JackknifeCorrectedSum(empty, bucket);
  EXPECT_EQ(jk.sources, 0);
  EXPECT_EQ(jk.finite_replicates, 0);
  EXPECT_DOUBLE_EQ(jk.lo, jk.point);
  EXPECT_DOUBLE_EQ(jk.hi, jk.point);
}

/// Estimator whose corrected sum is NaN on every input — the all-non-finite
/// replicate worst case for PercentileInterval.
class AlwaysNanEstimator final : public SumEstimator {
 public:
  std::string name() const override { return "always-nan"; }
  Estimate EstimateImpact(const IntegratedSample& sample) const override {
    UUQ_UNUSED(sample);
    Estimate est;
    est.estimator = name();
    est.finite = false;
    est.delta = std::numeric_limits<double>::quiet_NaN();
    est.corrected_sum = std::numeric_limits<double>::quiet_NaN();
    return est;
  }
};

TEST(BootstrapCorrectedSum, AllNonFiniteReplicatesDegradeToPointInterval) {
  // Regression: when every replicate estimate filters out as non-finite the
  // percentile step has an EMPTY vector — it must return the degenerate
  // [point, point] interval with `replicates` empty instead of indexing
  // into nothing.
  const auto sample = HealthySample();
  const AlwaysNanEstimator always_nan;
  BootstrapOptions options;
  options.replicates = 16;
  const BootstrapInterval interval =
      BootstrapCorrectedSum(sample, always_nan, options);
  EXPECT_EQ(interval.finite_replicates, 0);
  EXPECT_TRUE(interval.replicates.empty());
  EXPECT_TRUE(std::isnan(interval.point));
  EXPECT_TRUE(std::isnan(interval.lo));
  EXPECT_TRUE(std::isnan(interval.hi));
  EXPECT_TRUE(std::isnan(interval.median));
}

TEST(BootstrapCorrectedSum, AllInfiniteReplicatesDegradeToPointInterval) {
  // Same degenerate path via +inf: a single-source all-singleton sample
  // resamples to ITSELF on every draw, and Chao92's coverage-zero case
  // sends every replicate's N-hat (and corrected sum) to infinity.
  IntegratedSample singletons;
  for (int i = 0; i < 12; ++i) {
    singletons.Add("s0", "e" + std::to_string(i), 1.0 + i);
  }
  const NaiveEstimator naive;
  BootstrapOptions options;
  options.replicates = 16;
  const BootstrapInterval interval =
      BootstrapCorrectedSum(singletons, naive, options);
  EXPECT_EQ(interval.finite_replicates, 0);
  EXPECT_TRUE(interval.replicates.empty());
  EXPECT_TRUE(std::isinf(interval.point));
  EXPECT_DOUBLE_EQ(interval.lo, interval.point);
  EXPECT_DOUBLE_EQ(interval.hi, interval.point);
}

TEST(JackknifeCorrectedSum, CoversTruthOnHealthyData) {
  // Not a guarantee in general, but on a benign workload the ±3σ jackknife
  // interval should cover the known truth (50,500 here).
  const auto sample = HealthySample(21);
  const BucketSumEstimator bucket;
  const JackknifeInterval jk = JackknifeCorrectedSum(sample, bucket, 3.0);
  EXPECT_LE(jk.lo, 50500.0 * 1.05);
  EXPECT_GE(jk.hi, 50500.0 * 0.8);
}

TEST(BootstrapCorrectedSum, ParallelIsBitIdenticalToSerial) {
  // One pre-derived Rng stream per replicate ⇒ the interval is the same for
  // every thread count (including the UUQ_THREADS=1 debugging override).
  const auto sample = HealthySample();
  const BucketSumEstimator bucket;
  ThreadPool serial(1);
  ThreadPool parallel(8);

  BootstrapOptions options;
  options.replicates = 40;
  options.pool = &serial;
  const BootstrapInterval a = BootstrapCorrectedSum(sample, bucket, options);
  options.pool = &parallel;
  const BootstrapInterval b = BootstrapCorrectedSum(sample, bucket, options);

  EXPECT_DOUBLE_EQ(a.point, b.point);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  ASSERT_EQ(a.replicates.size(), b.replicates.size());
  for (size_t i = 0; i < a.replicates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.replicates[i], b.replicates[i]);
  }
}

TEST(JackknifeCorrectedSum, ParallelIsBitIdenticalToSerial) {
  const auto sample = HealthySample(17);
  const BucketSumEstimator bucket;
  ThreadPool serial(1);
  ThreadPool parallel(6);
  const JackknifeInterval a =
      JackknifeCorrectedSum(sample, bucket, 1.96, &serial);
  const JackknifeInterval b =
      JackknifeCorrectedSum(sample, bucket, 1.96, &parallel);
  EXPECT_DOUBLE_EQ(a.standard_error, b.standard_error);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_EQ(a.finite_replicates, b.finite_replicates);
}

TEST(ColumnarBootstrap, ParallelIsBitIdenticalToSerial) {
  // The columnar engine keeps the PR 1 contract: one pre-derived
  // Rng::Split() stream per replicate, one result slot per replicate, so
  // UUQ_THREADS=1 and UUQ_THREADS=4 (here: explicit 1- and 4-thread pools)
  // produce the same interval bit for bit.
  const auto sample = HealthySample();
  const BucketSumEstimator bucket;
  ThreadPool serial(1);
  ThreadPool parallel(4);

  BootstrapOptions options;
  options.replicates = 40;
  options.evaluation = ReplicateEvaluation::kColumnar;
  options.pool = &serial;
  const BootstrapInterval a = BootstrapCorrectedSum(sample, bucket, options);
  options.pool = &parallel;
  const BootstrapInterval b = BootstrapCorrectedSum(sample, bucket, options);

  EXPECT_DOUBLE_EQ(a.point, b.point);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  ASSERT_EQ(a.replicates.size(), b.replicates.size());
  for (size_t i = 0; i < a.replicates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.replicates[i], b.replicates[i]);
  }
}

TEST(ColumnarBootstrap, ColumnarMatchesMaterializedEvaluation) {
  // Quick smoke of the conformance contract at this test tier: both
  // evaluation modes, same seed, same interval (see conformance_test.cc for
  // the full matrix).
  const auto sample = HealthySample();
  const BucketSumEstimator bucket;
  BootstrapOptions options;
  options.replicates = 24;
  options.evaluation = ReplicateEvaluation::kColumnar;
  const BootstrapInterval fast = BootstrapCorrectedSum(sample, bucket, options);
  options.evaluation = ReplicateEvaluation::kMaterialized;
  const BootstrapInterval ref = BootstrapCorrectedSum(sample, bucket, options);
  EXPECT_DOUBLE_EQ(fast.lo, ref.lo);
  EXPECT_DOUBLE_EQ(fast.hi, ref.hi);
  EXPECT_DOUBLE_EQ(fast.median, ref.median);
  EXPECT_EQ(fast.finite_replicates, ref.finite_replicates);
}

TEST(ColumnarJackknife, ParallelIsBitIdenticalToSerial) {
  const auto sample = HealthySample(17);
  const BucketSumEstimator bucket;
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const JackknifeInterval a = JackknifeCorrectedSum(
      sample, bucket, 1.96, &serial, ReplicateEvaluation::kColumnar);
  const JackknifeInterval b = JackknifeCorrectedSum(
      sample, bucket, 1.96, &parallel, ReplicateEvaluation::kColumnar);
  EXPECT_DOUBLE_EQ(a.standard_error, b.standard_error);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_EQ(a.finite_replicates, b.finite_replicates);
}

TEST(ObservationLog, RoundTripsTheStream) {
  IntegratedSample sample;
  sample.Add("w1", "a", 10);
  sample.Add("w2", "a", 20);
  sample.Add("w1", "b", 5);
  const auto log = sample.ObservationLog();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].source_id, "w1");
  EXPECT_EQ(log[0].entity_key, "a");
  EXPECT_DOUBLE_EQ(log[0].value, 10.0);   // raw report, not the fused 15
  EXPECT_DOUBLE_EQ(log[1].value, 20.0);
  EXPECT_EQ(log[2].entity_key, "b");

  // Replaying the log reproduces the sample exactly.
  IntegratedSample replay;
  for (const Observation& obs : log) replay.Add(obs);
  EXPECT_EQ(replay.n(), sample.n());
  EXPECT_EQ(replay.c(), sample.c());
  EXPECT_DOUBLE_EQ(replay.ObservedSum(), sample.ObservedSum());
}

}  // namespace
}  // namespace uuq
