#include "db/value.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(Value, TypedConstruction) {
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("abc")).type(), ValueType::kString);
}

TEST(Value, Accessors) {
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(int64_t{-7}).AsInt64(), -7);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value("xyz").AsString(), "xyz");
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH(Value(1.5).AsInt64(), "not INT64");
  EXPECT_DEATH(Value("s").AsDouble(), "not DOUBLE");
}

TEST(Value, ToDoubleCoercesNumerics) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).ToDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.5).ToDouble().value(), 4.5);
}

TEST(Value, ToDoubleRejectsNonNumerics) {
  EXPECT_FALSE(Value("4").ToDouble().ok());
  EXPECT_FALSE(Value(true).ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(Value, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.0), Value(int64_t{3}));
}

TEST(Value, StringOrdering) {
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_GT(Value("b"), Value("a"));
}

TEST(Value, CrossTypeOrderingIsStable) {
  // NULL < BOOL < numeric < STRING.
  EXPECT_LT(Value::Null(), Value(false));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{999}), Value("0"));
}

TEST(Value, NullEqualsNull) { EXPECT_EQ(Value::Null(), Value::Null()); }

TEST(Value, BoolOrdering) {
  EXPECT_LT(Value(false), Value(true));
  EXPECT_EQ(Value(true), Value(true));
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(Value, EqualValuesHashEqually) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(Value, DistinctValuesUsuallyHashDifferently) {
  EXPECT_NE(Value(int64_t{3}).Hash(), Value(int64_t{4}).Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

TEST(Value, ComparisonOperatorsAgreeWithCompare) {
  const Value a(int64_t{1}), b(int64_t{2});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_FALSE(a == b);
}

TEST(ValueTypeName, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "NULL");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "INT64");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "STRING");
}

}  // namespace
}  // namespace uuq
