// Fuzz/property suite for columnar fusion — ALL four policies, kMajority
// front and center: every columnar replicate (bootstrap and leave-one-out)
// must match the materialized IntegratedSample of the same draws
// bit-identically, entity for entity, including kMajority's mode selection
// and its tie-breaking by first occurrence in replay order.
//
// The samples here are adversarial for majority fusion: report values are
// drawn from tiny per-entity pools so replicates constantly create ties,
// flip modes, and drop report values entirely.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/estimate.h"
#include "integration/sample.h"
#include "integration/sample_view.h"

namespace uuq {
namespace {

const FusionPolicy kAllPolicies[] = {FusionPolicy::kAverage,
                                     FusionPolicy::kFirst, FusionPolicy::kLast,
                                     FusionPolicy::kMajority};

/// A random sample tuned to stress fusion: few distinct report values per
/// entity (ties are the norm, not the exception), heavy entity overlap
/// across sources.
IntegratedSample TieHeavySample(Rng* rng, FusionPolicy policy,
                                int max_sources = 12, int max_entities = 30,
                                int max_observations = 240) {
  IntegratedSample sample(policy);
  const int num_sources = 2 + static_cast<int>(rng->NextBounded(max_sources));
  const int pool = 1 + static_cast<int>(rng->NextBounded(max_entities));
  const int n = 1 + static_cast<int>(rng->NextBounded(max_observations));
  for (int i = 0; i < n; ++i) {
    const int s = static_cast<int>(rng->NextBounded(num_sources));
    const int e = static_cast<int>(rng->NextBounded(pool));
    // Each entity reports one of 3 canonical values keyed off its id, so
    // multiplicity-2 ties and mode flips happen constantly under draws.
    const double value =
        10.0 * (e + 1) + static_cast<double>(rng->NextBounded(3));
    sample.Add("src-" + std::to_string(s), "entity-" + std::to_string(e),
               value);
  }
  return sample;
}

void ExpectBitIdenticalToMaterialized(const ReplicateSample& rep,
                                      const IntegratedSample& mat,
                                      const std::string& what) {
  ASSERT_EQ(rep.entities.size(), static_cast<size_t>(mat.c())) << what;
  const std::vector<EntityStat>& entities = mat.entities();
  for (size_t i = 0; i < rep.entities.size(); ++i) {
    EXPECT_EQ(rep.entities[i].multiplicity, entities[i].multiplicity)
        << what << " entity " << i;
    // Bit-identical fused value, not just approximately equal.
    EXPECT_EQ(rep.entities[i].value, entities[i].value)
        << what << " entity " << i << " (" << entities[i].key << ")";
  }
  EXPECT_EQ(rep.source_sizes, mat.SourceSizeVector()) << what;
}

TEST(MajorityColumnarFuzz, BootstrapReplicatesMatchMaterialized) {
  Rng rng(0xA11);
  ReplicateScratch scratch;  // one scratch across every policy and trial
  ReplicateSample rep;
  for (int trial = 0; trial < 80; ++trial) {
    const FusionPolicy policy = kAllPolicies[trial % 4];
    const IntegratedSample sample = TieHeavySample(&rng, policy);
    const SampleView view(sample);
    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);
    view.BuildReplicate(draws, &scratch, &rep);
    ExpectBitIdenticalToMaterialized(
        rep, view.MaterializeReplicate(draws),
        "trial " + std::to_string(trial) + " policy " +
            std::to_string(static_cast<int>(policy)));
  }
}

TEST(MajorityColumnarFuzz, LeaveOneOutMatchesMaterialized) {
  Rng rng(0xA12);
  ReplicateScratch scratch;
  ReplicateSample rep;
  for (int trial = 0; trial < 24; ++trial) {
    const FusionPolicy policy = kAllPolicies[trial % 4];
    const IntegratedSample sample = TieHeavySample(&rng, policy);
    const SampleView view(sample);
    for (int32_t excluded = 0;
         excluded < static_cast<int32_t>(view.num_sources()); ++excluded) {
      view.BuildLeaveOneOut(excluded, &scratch, &rep);
      ExpectBitIdenticalToMaterialized(
          rep, view.MaterializeLeaveOneOut(excluded),
          "trial " + std::to_string(trial) + " excluded " +
              std::to_string(excluded));
    }
  }
}

TEST(MajorityColumnar, TieBreaksByFirstOccurrenceInReplayOrder) {
  // Entity "x" gets reports 7 (source a), 9 (source b), 9 (source c),
  // 7 (source d): a global 2-2 tie. The winner must be whichever value
  // OCCURS FIRST in the replicate's replay order — exactly
  // IntegratedSample::Fuse's rule — so it flips with the draw order.
  IntegratedSample sample(FusionPolicy::kMajority);
  sample.Add("a", "x", 7.0);
  sample.Add("b", "x", 9.0);
  sample.Add("c", "x", 9.0);
  sample.Add("d", "x", 7.0);
  const SampleView view(sample);
  ReplicateScratch scratch;
  ReplicateSample rep;

  struct Case {
    std::vector<int32_t> draws;
    double expected;
  };
  // Source indices are id-sorted: a=0, b=1, c=2, d=3.
  const Case cases[] = {
      {{0, 1, 2, 3}, 7.0},  // 7 first, 2-2 tie -> 7
      {{1, 0, 2, 3}, 9.0},  // 9 first, 2-2 tie -> 9
      {{1, 2, 0, 0}, 9.0},  // 9 leads 2-1 before 7 catches up -> still 9
      {{0, 3, 1, 1}, 7.0},  // 7 reaches 2 first, then 9 ties -> 7
      {{1, 1, 1, 0}, 9.0},  // 9 outright majority
      {{0, 0, 3, 1}, 7.0},  // 7 outright majority
  };
  for (const Case& c : cases) {
    view.BuildReplicate(c.draws, &scratch, &rep);
    ASSERT_EQ(rep.entities.size(), 1u);
    EXPECT_EQ(rep.entities[0].value, c.expected);
    // And the materialized reference agrees, draw for draw.
    const IntegratedSample mat = view.MaterializeReplicate(c.draws);
    EXPECT_EQ(mat.entities()[0].value, c.expected);
  }
}

TEST(MajorityColumnar, NanReportsNeverOutvoteFiniteValues) {
  // IntegratedSample's Fuse counts occurrences with ==, so a NaN report can
  // never accumulate a count and never wins while any finite report exists;
  // with ONLY NaN reports the first occurrence survives. The columnar fold
  // must mirror both behaviours.
  IntegratedSample sample(FusionPolicy::kMajority);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  sample.Add("a", "mixed", nan);
  sample.Add("b", "mixed", 5.0);
  sample.Add("a", "allnan", nan);
  sample.Add("b", "allnan", nan);
  const SampleView view(sample);
  ReplicateScratch scratch;
  ReplicateSample rep;
  for (const std::vector<int32_t>& draws :
       {std::vector<int32_t>{0, 1}, std::vector<int32_t>{1, 0},
        std::vector<int32_t>{0, 0, 1}}) {
    view.BuildReplicate(draws, &scratch, &rep);
    const IntegratedSample mat = view.MaterializeReplicate(draws);
    ASSERT_EQ(rep.entities.size(), static_cast<size_t>(mat.c()));
    for (size_t i = 0; i < rep.entities.size(); ++i) {
      const double a = rep.entities[i].value;
      const double b = mat.entities()[i].value;
      if (std::isnan(b)) {
        EXPECT_TRUE(std::isnan(a)) << "entity " << mat.entities()[i].key;
      } else {
        EXPECT_EQ(a, b) << "entity " << mat.entities()[i].key;
      }
    }
  }
}

TEST(MajorityColumnar, StatsFoldMatchesMaterializedFold) {
  // SampleStats::FromReplicate over a kMajority replicate must equal
  // FromSample over the materialized sample — same first-touch fold order.
  Rng rng(0xA13);
  ReplicateScratch scratch;
  ReplicateSample rep;
  for (int trial = 0; trial < 20; ++trial) {
    const IntegratedSample sample =
        TieHeavySample(&rng, FusionPolicy::kMajority);
    const SampleView view(sample);
    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);
    view.BuildReplicate(draws, &scratch, &rep);
    const SampleStats a = SampleStats::FromReplicate(rep);
    const SampleStats b =
        SampleStats::FromSample(view.MaterializeReplicate(draws));
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.c, b.c);
    EXPECT_EQ(a.f1, b.f1);
    EXPECT_EQ(a.sum_mm1, b.sum_mm1);
    EXPECT_EQ(a.value_sum, b.value_sum);
    EXPECT_EQ(a.value_sum_sq, b.value_sum_sq);
    EXPECT_EQ(a.singleton_sum, b.singleton_sum);
  }
}

TEST(MajorityColumnar, BucketEstimatesMatchAcrossEvaluationModes) {
  // End to end: the bucket estimator's columnar replicate estimate equals
  // EstimateImpact on the materialized replicate, for every policy.
  Rng rng(0xA14);
  const BucketSumEstimator bucket;
  ReplicateScratch scratch;
  ReplicateSample rep;
  for (int trial = 0; trial < 32; ++trial) {
    const FusionPolicy policy = kAllPolicies[trial % 4];
    const IntegratedSample sample = TieHeavySample(&rng, policy);
    const SampleView view(sample);
    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);
    view.BuildReplicate(draws, &scratch, &rep);
    const Estimate columnar = bucket.EstimateReplicate(rep);
    const Estimate materialized =
        bucket.EstimateImpact(view.MaterializeReplicate(draws));
    EXPECT_EQ(columnar.delta, materialized.delta) << "trial " << trial;
    EXPECT_EQ(columnar.corrected_sum, materialized.corrected_sum)
        << "trial " << trial;
    EXPECT_EQ(columnar.n_hat, materialized.n_hat) << "trial " << trial;
    EXPECT_EQ(columnar.num_buckets, materialized.num_buckets)
        << "trial " << trial;
  }
}

TEST(MajorityColumnar, BootstrapIntervalsAgreeAcrossPathsAndThreads) {
  Rng rng(0xA15);
  const IntegratedSample sample =
      TieHeavySample(&rng, FusionPolicy::kMajority, /*max_sources=*/10,
                     /*max_entities=*/25, /*max_observations=*/200);
  const BucketSumEstimator bucket;
  BootstrapOptions options;
  options.replicates = 24;

  ThreadPool serial(1);
  ThreadPool quad(4);
  options.pool = &serial;
  options.evaluation = ReplicateEvaluation::kColumnar;
  const BootstrapInterval columnar = BootstrapCorrectedSum(sample, bucket,
                                                           options);
  options.evaluation = ReplicateEvaluation::kMaterialized;
  const BootstrapInterval materialized =
      BootstrapCorrectedSum(sample, bucket, options);
  options.evaluation = ReplicateEvaluation::kColumnar;
  options.pool = &quad;
  const BootstrapInterval threaded = BootstrapCorrectedSum(sample, bucket,
                                                           options);

  ASSERT_EQ(columnar.replicates.size(), materialized.replicates.size());
  for (size_t i = 0; i < columnar.replicates.size(); ++i) {
    // Columnar vs materialized: bit-identical replicate for replicate.
    EXPECT_EQ(columnar.replicates[i], materialized.replicates[i]) << i;
    // Thread count never changes a replicate value.
    EXPECT_EQ(columnar.replicates[i], threaded.replicates[i]) << i;
  }
  EXPECT_EQ(columnar.lo, threaded.lo);
  EXPECT_EQ(columnar.hi, threaded.hi);
}

}  // namespace
}  // namespace uuq
