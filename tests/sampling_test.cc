#include "stats/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace uuq {
namespace {

TEST(WeightedSampleWithoutReplacement, NoDuplicates) {
  Rng rng(1);
  const std::vector<double> weights(20, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = WeightedSampleWithoutReplacement(weights, 10, &rng);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
  }
}

TEST(WeightedSampleWithoutReplacement, ExactSizeRequested) {
  Rng rng(2);
  const std::vector<double> weights(30, 1.0);
  EXPECT_EQ(WeightedSampleWithoutReplacement(weights, 7, &rng).size(), 7u);
  EXPECT_EQ(WeightedSampleWithoutReplacement(weights, 0, &rng).size(), 0u);
}

TEST(WeightedSampleWithoutReplacement, ClampsToDrawable) {
  Rng rng(3);
  const std::vector<double> weights{1.0, 0.0, 2.0, 0.0};
  const auto sample = WeightedSampleWithoutReplacement(weights, 10, &rng);
  EXPECT_EQ(sample.size(), 2u);  // only two positive weights
  for (int idx : sample) {
    EXPECT_TRUE(idx == 0 || idx == 2);
  }
}

TEST(WeightedSampleWithoutReplacement, FullDrawIsPermutation) {
  Rng rng(4);
  const std::vector<double> weights{1, 2, 3, 4, 5};
  auto sample = WeightedSampleWithoutReplacement(weights, 5, &rng);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WeightedSampleWithoutReplacement, HeavyItemDrawnFirstMoreOften) {
  Rng rng(5);
  // Item 0 has 10x the weight of each of the others.
  std::vector<double> weights{10, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  int first_count = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const auto sample = WeightedSampleWithoutReplacement(weights, 3, &rng);
    if (!sample.empty() && sample[0] == 0) ++first_count;
  }
  // P(item 0 drawn first) = 10/20 = 0.5 under successive sampling.
  EXPECT_NEAR(static_cast<double>(first_count) / trials, 0.5, 0.04);
}

TEST(WeightedSampleWithoutReplacement, InclusionSkewsToWeight) {
  Rng rng(6);
  std::vector<double> weights{5, 1, 1, 1, 1, 1};
  int heavy_in = 0, light_in = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto sample = WeightedSampleWithoutReplacement(weights, 2, &rng);
    for (int idx : sample) {
      if (idx == 0) ++heavy_in;
      if (idx == 1) ++light_in;
    }
  }
  EXPECT_GT(heavy_in, light_in * 2);
}

TEST(WeightedSampleWithReplacement, SizeAndRange) {
  Rng rng(7);
  const std::vector<double> weights{1, 2, 3};
  const auto sample = WeightedSampleWithReplacement(weights, 100, &rng);
  EXPECT_EQ(sample.size(), 100u);
  for (int idx : sample) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
}

TEST(WeightedSampleWithReplacement, CanRepeat) {
  Rng rng(8);
  const std::vector<double> weights{1.0};
  const auto sample = WeightedSampleWithReplacement(weights, 5, &rng);
  EXPECT_EQ(sample, (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(AliasSampler, MatchesWeightsEmpirically) {
  Rng rng(9);
  const std::vector<double> weights{1, 2, 3, 4};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.Sample(&rng)];
  for (int i = 0; i < 4; ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, expected, 0.01);
  }
}

TEST(AliasSampler, HandlesZeroWeightEntries) {
  Rng rng(10);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.Sample(&rng), 1);
  }
}

TEST(AliasSampler, SingleItem) {
  Rng rng(11);
  AliasSampler sampler({3.0});
  EXPECT_EQ(sampler.Sample(&rng), 0);
}

TEST(AliasSamplerDeathTest, RejectsEmptyAndZeroTotal) {
  EXPECT_DEATH(AliasSampler({}), "at least one weight");
  EXPECT_DEATH(AliasSampler({0.0, 0.0}), "positive total");
}

TEST(WeightedSampleWithoutReplacement, UniformWeightsCoverUniformly) {
  Rng rng(12);
  const std::vector<double> weights(10, 1.0);
  std::vector<int> inclusion(10, 0);
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    for (int idx : WeightedSampleWithoutReplacement(weights, 5, &rng)) {
      ++inclusion[idx];
    }
  }
  for (int count : inclusion) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.5, 0.03);
  }
}

TEST(WeightedSampleWithoutReplacement, DeterministicGivenSeed) {
  Rng rng1(13), rng2(13);
  const std::vector<double> weights{1, 5, 2, 8, 3};
  EXPECT_EQ(WeightedSampleWithoutReplacement(weights, 3, &rng1),
            WeightedSampleWithoutReplacement(weights, 3, &rng2));
}

TEST(PartialShuffler, DrawsDistinctIndicesInRange) {
  PartialShuffler shuffler;
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<int> seen;
    shuffler.Draw(100, 20, &rng, [&](int idx) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, 100);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    });
    EXPECT_EQ(seen.size(), 20u);
  }
}

TEST(PartialShuffler, KClampsToNAndDrawsEverything) {
  PartialShuffler shuffler;
  Rng rng(4);
  std::set<int> seen;
  shuffler.Draw(7, 12, &rng, [&](int idx) { seen.insert(idx); });
  EXPECT_EQ(seen.size(), 7u);
}

TEST(PartialShuffler, ZeroItemsOrZeroDrawsVisitNothing) {
  PartialShuffler shuffler;
  Rng rng(5);
  int calls = 0;
  shuffler.Draw(0, 5, &rng, [&](int) { ++calls; });
  shuffler.Draw(5, 0, &rng, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(PartialShuffler, DrawsDependOnlyOnTheRngStream) {
  // The internal permutation is restored after every draw, so a shuffler
  // that has already served other draws (even at other n) behaves exactly
  // like a fresh one given the same Rng state.
  PartialShuffler warmed;
  Rng warmup(6);
  warmed.Draw(50, 10, &warmup, [](int) {});
  warmed.Draw(8, 8, &warmup, [](int) {});

  PartialShuffler fresh;
  Rng rng_a(7);
  Rng rng_b(7);
  std::vector<int> from_warmed, from_fresh;
  warmed.Draw(30, 12, &rng_a, [&](int idx) { from_warmed.push_back(idx); });
  fresh.Draw(30, 12, &rng_b, [&](int idx) { from_fresh.push_back(idx); });
  EXPECT_EQ(from_warmed, from_fresh);
}

TEST(PartialShuffler, UniformMarginals) {
  // Every index should be drawn with probability k/n = 1/4.
  PartialShuffler shuffler;
  Rng rng(8);
  std::vector<int> hits(40, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    shuffler.Draw(40, 10, &rng, [&](int idx) { ++hits[idx]; });
  }
  for (int idx = 0; idx < 40; ++idx) {
    EXPECT_NEAR(hits[idx] / static_cast<double>(trials), 0.25, 0.05)
        << "index " << idx;
  }
}

TEST(WeightedWorSelector, MatchesAllocatingSamplerExactly) {
  // Same Rng stream consumption as WeightedSampleWithoutReplacement ⇒ the
  // same seed must select the same index SET.
  const std::vector<double> weights{5.0, 1.0, 0.0, 2.0, 2.0, 0.5, 3.0};
  WeightedWorSelector selector;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    const std::vector<int> reference =
        WeightedSampleWithoutReplacement(weights, 3, &rng_a);
    std::set<int> selected;
    selector.Draw(weights, 3, &rng_b, [&](int idx) { selected.insert(idx); });
    EXPECT_EQ(selected, std::set<int>(reference.begin(), reference.end()))
        << "seed " << seed;
  }
}

TEST(WeightedWorSelector, SkipsZeroWeightsAndClamps) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  WeightedWorSelector selector;
  Rng rng(9);
  std::set<int> selected;
  selector.Draw(weights, 10, &rng, [&](int idx) { selected.insert(idx); });
  EXPECT_EQ(selected, (std::set<int>{1, 3}));
}

TEST(WeightedWorSelector, FullDrawIsAPermutation) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  WeightedWorSelector selector;
  Rng rng(10);
  std::set<int> selected;
  int calls = 0;
  selector.Draw(weights, 4, &rng, [&](int idx) {
    selected.insert(idx);
    ++calls;
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(selected, (std::set<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace uuq
