// Boundary contract of the streaker decision rule (integration/diagnostics.h)
// — the single definition the advisor's materialized and columnar replicate
// paths share:
//
//   StreakerSuspected = (num_sources >= 2 && max_share > max_share_th)
//                       || gini > gini_th
//
// Both inequalities are STRICT, and the max_share branch needs a second
// source (one source trivially holds 100% of its own sample). The exact
// edges matter because the accuracy matrix gates the advisor's behaviour:
// an off-by-one that flips `>` to `>=` would silently reroute whole cells
// from bucket to Monte-Carlo. Plus a fuzz check that the decision is a pure
// function of the source-size MULTISET — invariant under any permutation of
// the report stream.
#include "integration/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "integration/sample.h"

namespace uuq {
namespace {

constexpr double kMaxShareTh = 0.5;
constexpr double kGiniTh = 0.6;

// ---------------------------------------------------------------------------
// Exact threshold edges.
// ---------------------------------------------------------------------------

TEST(StreakerBoundary, MaxShareEdgeIsStrict) {
  // Exactly AT the threshold: not a streaker.
  EXPECT_FALSE(StreakerSuspected(2, kMaxShareTh, 0.0, kMaxShareTh, kGiniTh));
  // The smallest representable step above: streaker.
  const double above = std::nextafter(kMaxShareTh, 1.0);
  EXPECT_TRUE(StreakerSuspected(2, above, 0.0, kMaxShareTh, kGiniTh));
  // And just below: not.
  const double below = std::nextafter(kMaxShareTh, 0.0);
  EXPECT_FALSE(StreakerSuspected(2, below, 0.0, kMaxShareTh, kGiniTh));
}

TEST(StreakerBoundary, GiniEdgeIsStrict) {
  EXPECT_FALSE(StreakerSuspected(5, 0.2, kGiniTh, kMaxShareTh, kGiniTh));
  EXPECT_TRUE(StreakerSuspected(5, 0.2, std::nextafter(kGiniTh, 1.0),
                                kMaxShareTh, kGiniTh));
  EXPECT_FALSE(StreakerSuspected(5, 0.2, std::nextafter(kGiniTh, 0.0),
                                 kMaxShareTh, kGiniTh));
}

TEST(StreakerBoundary, SingleSourceMaxShareBranchIsInert) {
  // One source always has max_share == 1.0; that alone must not flag it.
  EXPECT_FALSE(StreakerSuspected(1, 1.0, 0.0, kMaxShareTh, kGiniTh));
  // Two sources with the same share do.
  EXPECT_TRUE(StreakerSuspected(2, 1.0, 0.0, kMaxShareTh, kGiniTh));
  // The gini branch still applies at one source (it cannot fire for a
  // real single-source sample, whose gini is 0 — but the rule itself has
  // no source-count guard there).
  EXPECT_TRUE(StreakerSuspected(1, 1.0, 0.7, kMaxShareTh, kGiniTh));
}

TEST(StreakerBoundary, NumSourcesEdge) {
  EXPECT_FALSE(StreakerSuspected(0, 0.0, 0.0, kMaxShareTh, kGiniTh));
  EXPECT_FALSE(StreakerSuspected(1, 0.9, 0.0, kMaxShareTh, kGiniTh));
  EXPECT_TRUE(StreakerSuspected(2, 0.9, 0.0, kMaxShareTh, kGiniTh));
}

TEST(StreakerBoundary, AnalyzeSourceSizesHitsTheSameEdges) {
  // 3 of 6 observations: max_share exactly 0.5 — not suspected.
  {
    const auto report = AnalyzeSourceSizes({3, 2, 1});
    EXPECT_EQ(report.num_sources, 3);
    EXPECT_DOUBLE_EQ(report.max_share, 0.5);
    EXPECT_FALSE(report.streaker_suspected);
    EXPECT_EQ(report.dominant_index, 0);
  }
  // 4 of 7: just above one half — suspected.
  {
    const auto report = AnalyzeSourceSizes({4, 2, 1});
    EXPECT_GT(report.max_share, 0.5);
    EXPECT_TRUE(report.streaker_suspected);
  }
  // A lone full dump is not a streaker.
  {
    const auto report = AnalyzeSourceSizes({100});
    EXPECT_DOUBLE_EQ(report.max_share, 1.0);
    EXPECT_FALSE(report.streaker_suspected);
  }
}

// ---------------------------------------------------------------------------
// Permutation invariance: the decision reads only per-source totals, so any
// reordering of the report stream — interleavings, streaker first or last —
// must produce the identical report.
// ---------------------------------------------------------------------------

TEST(StreakerBoundary, DecisionIsPermutationInvariantOverTheReportStream) {
  Rng rng(0x57AB1Eull);
  for (int round = 0; round < 20; ++round) {
    // A random multi-source stream: 3..8 sources with uneven quotas over a
    // shared entity space (duplicates across sources included).
    const int num_sources = static_cast<int>(rng.NextInt(3, 8));
    std::vector<Observation> stream;
    for (int s = 0; s < num_sources; ++s) {
      const int quota = static_cast<int>(rng.NextInt(1, 40));
      for (int k = 0; k < quota; ++k) {
        Observation obs;
        obs.source_id = "worker-" + std::to_string(s);
        obs.entity_key = "item-" + std::to_string(rng.NextInt(0, 60));
        obs.value = static_cast<double>(rng.NextInt(1, 1000));
        stream.push_back(obs);
      }
    }

    IntegratedSample original;
    for (const Observation& obs : stream) original.Add(obs);
    const auto reference = AnalyzeSourceImbalance(original);

    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      rng.Shuffle(&stream);
      IntegratedSample permuted;
      for (const Observation& obs : stream) permuted.Add(obs);
      const auto report = AnalyzeSourceImbalance(permuted);
      EXPECT_EQ(report.streaker_suspected, reference.streaker_suspected);
      EXPECT_EQ(report.num_sources, reference.num_sources);
      EXPECT_EQ(report.max_share, reference.max_share);  // bit-identical
      EXPECT_EQ(report.gini, reference.gini);
      EXPECT_EQ(report.dominant_source, reference.dominant_source);
    }
  }
}

}  // namespace
}  // namespace uuq
