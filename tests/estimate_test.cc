// SampleStats — the estimator currency type — plus order-invariance
// properties of the integration pipeline that the estimators rely on.
#include "core/estimate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/bucket.h"
#include "core/naive.h"
#include "integration/integrator.h"

namespace uuq {
namespace {

TEST(SampleStats, AddAccumulatesEveryField) {
  SampleStats stats;
  stats.Add({"a", 10.0, 1, ""});
  stats.Add({"b", 20.0, 3, ""});
  EXPECT_EQ(stats.n, 4);
  EXPECT_EQ(stats.c, 2);
  EXPECT_EQ(stats.f1, 1);
  EXPECT_EQ(stats.sum_mm1, 6);  // 3·2
  EXPECT_DOUBLE_EQ(stats.value_sum, 30.0);
  EXPECT_DOUBLE_EQ(stats.value_sum_sq, 500.0);
  EXPECT_DOUBLE_EQ(stats.singleton_sum, 10.0);
}

TEST(SampleStats, ZeroMultiplicityIgnored) {
  SampleStats stats;
  stats.Add({"ghost", 99.0, 0, ""});
  EXPECT_TRUE(stats.empty());
}

TEST(SampleStats, MergeEqualsSequentialAdd) {
  Rng rng(5);
  SampleStats all, left, right;
  for (int i = 0; i < 40; ++i) {
    EntityStat e{"e" + std::to_string(i), rng.NextUniform(0, 100),
                 1 + static_cast<int64_t>(rng.NextBounded(5)), ""};
    all.Add(e);
    (i % 2 == 0 ? left : right).Add(e);
  }
  left.Merge(right);
  EXPECT_EQ(left.n, all.n);
  EXPECT_EQ(left.c, all.c);
  EXPECT_EQ(left.f1, all.f1);
  EXPECT_EQ(left.sum_mm1, all.sum_mm1);
  EXPECT_NEAR(left.value_sum, all.value_sum, 1e-9);
  EXPECT_NEAR(left.value_sum_sq, all.value_sum_sq, 1e-6);
  EXPECT_NEAR(left.singleton_sum, all.singleton_sum, 1e-9);
}

TEST(SampleStats, ValueMeanAndStdDev) {
  SampleStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add({"k" + std::to_string(stats.c), v, 2, ""});
  }
  EXPECT_DOUBLE_EQ(stats.ValueMean(), 5.0);
  EXPECT_NEAR(stats.ValueStdDev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStats, StdDevDegenerateCases) {
  SampleStats empty;
  EXPECT_DOUBLE_EQ(empty.ValueStdDev(), 0.0);
  SampleStats one;
  one.Add({"a", 5.0, 1, ""});
  EXPECT_DOUBLE_EQ(one.ValueStdDev(), 0.0);
}

TEST(SampleStats, CoverageAndGamma2MatchFstatsPath) {
  IntegratedSample sample;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const int copies = 1 + static_cast<int>(rng.NextBounded(4));
    for (int k = 0; k < copies; ++k) {
      sample.Add("w" + std::to_string(k), "e" + std::to_string(i),
                 rng.NextUniform(0, 10));
    }
  }
  const SampleStats stats = SampleStats::FromSample(sample);
  const FrequencyStatistics fstats = sample.Fstats();
  EXPECT_EQ(stats.n, fstats.n());
  EXPECT_EQ(stats.c, fstats.c());
  EXPECT_EQ(stats.f1, fstats.singletons());
  EXPECT_EQ(stats.sum_mm1, fstats.SumIiMinusOneFi());
}

TEST(OrderInvariance, AverageFusionIgnoresArrivalOrder) {
  // For kAverage fusion, the final sample state must not depend on the
  // order in which observations arrive.
  std::vector<Observation> stream;
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    stream.push_back({"w" + std::to_string(rng.NextBounded(6)),
                      "e" + std::to_string(rng.NextBounded(15)),
                      rng.NextUniform(0, 100), ""});
  }
  IntegratedSample forward;
  for (const Observation& obs : stream) forward.Add(obs);
  std::vector<Observation> shuffled = stream;
  rng.Shuffle(&shuffled);
  IntegratedSample permuted;
  for (const Observation& obs : shuffled) permuted.Add(obs);

  EXPECT_EQ(forward.n(), permuted.n());
  EXPECT_EQ(forward.c(), permuted.c());
  EXPECT_NEAR(forward.ObservedSum(), permuted.ObservedSum(), 1e-6);

  // And therefore every estimator result is order-invariant too.
  const Estimate a = BucketSumEstimator().EstimateImpact(forward);
  const Estimate b = BucketSumEstimator().EstimateImpact(permuted);
  EXPECT_NEAR(a.delta, b.delta, 1e-6);
}

TEST(OrderInvariance, FirstFusionDependsOnOrderByDesign) {
  IntegratedSample forward(FusionPolicy::kFirst);
  forward.Add("w1", "a", 10);
  forward.Add("w2", "a", 99);
  IntegratedSample reversed(FusionPolicy::kFirst);
  reversed.Add("w2", "a", 99);
  reversed.Add("w1", "a", 10);
  EXPECT_NE(forward.ObservedSum(), reversed.ObservedSum());
}

TEST(OrderInvariance, FilterThenStatsEqualsStatsOfFiltered) {
  IntegratedSample sample;
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    const int copies = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < copies; ++k) {
      sample.Add("w" + std::to_string(k), "e" + std::to_string(i),
                 static_cast<double>(i));
    }
  }
  const auto keep = [](const EntityStat& e) { return e.value >= 15.0; };
  const IntegratedSample filtered = sample.Filter(keep);
  // Filter is idempotent.
  const IntegratedSample twice = filtered.Filter(keep);
  EXPECT_EQ(filtered.n(), twice.n());
  EXPECT_EQ(filtered.c(), twice.c());
  EXPECT_DOUBLE_EQ(filtered.ObservedSum(), twice.ObservedSum());
}

TEST(FuzzyIntegration, ResolverReducesPhantomSingletons) {
  // The same three companies spelled sloppily by three sources. Without
  // fuzzy resolution the sample sees 3 extra phantom entities (all
  // singletons); with it, multiplicities line up.
  auto build = [](bool fuzzy) {
    Integrator::Options options;
    options.fuzzy_resolution = fuzzy;
    Integrator integrator(options);
    DataSource s1("s1"), s2("s2"), s3("s3");
    (void)s1.Add("IBM Corp", 100);
    (void)s1.Add("Acme Robotics Inc", 5);
    (void)s2.Add("I.B.M.", 100);
    (void)s2.Add("Acme Robotics", 5);
    (void)s3.Add("IBM", 100);
    (void)s3.Add("Tiny Startup", 1);
    (void)integrator.AddSource(s1);
    (void)integrator.AddSource(s2);
    (void)integrator.AddSource(s3);
    return integrator.sample().c();
  };
  EXPECT_GT(build(false), build(true));
  EXPECT_EQ(build(true), 3);  // IBM, Acme Robotics, Tiny Startup
}

TEST(FuzzyIntegration, NaiveEstimateBenefitsFromResolution) {
  // Phantom singletons inflate f1 and with it the naive correction.
  auto estimate = [](bool fuzzy) {
    Integrator::Options options;
    options.fuzzy_resolution = fuzzy;
    Integrator integrator(options);
    // Odd source count so the variant spellings become singletons.
    for (int w = 0; w < 3; ++w) {
      DataSource s("s" + std::to_string(w));
      (void)s.Add(w % 2 == 0 ? "Mega Corp" : "Mega Corp Inc", 1000);
      (void)s.Add(w % 2 == 0 ? "Beta LLC" : "Beta", 50);
      (void)integrator.AddSource(s);
    }
    return NaiveEstimator().EstimateImpact(integrator.sample());
  };
  const Estimate merged = estimate(true);
  const Estimate split = estimate(false);
  EXPECT_EQ(merged.missing_count, 0.0);  // everything seen 3 times
  EXPECT_GT(split.missing_count, 0.0);   // phantom singletons -> missing mass
}

}  // namespace
}  // namespace uuq
