#include "db/aggregate.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(ParseAggregateKind, AllNamesCaseInsensitive) {
  EXPECT_EQ(ParseAggregateKind("SUM").value(), AggregateKind::kSum);
  EXPECT_EQ(ParseAggregateKind("count").value(), AggregateKind::kCount);
  EXPECT_EQ(ParseAggregateKind("Avg").value(), AggregateKind::kAvg);
  EXPECT_EQ(ParseAggregateKind("mIn").value(), AggregateKind::kMin);
  EXPECT_EQ(ParseAggregateKind("MAX").value(), AggregateKind::kMax);
  EXPECT_FALSE(ParseAggregateKind("median").ok());
}

TEST(Aggregator, SumBasic) {
  Aggregator agg(AggregateKind::kSum);
  ASSERT_TRUE(agg.Update(Value(1.5)).ok());
  ASSERT_TRUE(agg.Update(Value(int64_t{2})).ok());
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 3.5);
}

TEST(Aggregator, SumOfNothingIsNull) {
  Aggregator agg(AggregateKind::kSum);
  EXPECT_TRUE(agg.Current().is_null());
}

TEST(Aggregator, SumIgnoresNulls) {
  Aggregator agg(AggregateKind::kSum);
  ASSERT_TRUE(agg.Update(Value(5.0)).ok());
  ASSERT_TRUE(agg.Update(Value::Null()).ok());
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 5.0);
  EXPECT_EQ(agg.count(), 1);
}

TEST(Aggregator, SumRejectsNonNumeric) {
  Aggregator agg(AggregateKind::kSum);
  EXPECT_FALSE(agg.Update(Value("many")).ok());
}

TEST(Aggregator, CountCountsNonNull) {
  Aggregator agg(AggregateKind::kCount);
  ASSERT_TRUE(agg.Update(Value("a")).ok());
  ASSERT_TRUE(agg.Update(Value(1.0)).ok());
  ASSERT_TRUE(agg.Update(Value::Null()).ok());
  EXPECT_EQ(agg.Current().AsInt64(), 2);
}

TEST(Aggregator, AvgBasic) {
  Aggregator agg(AggregateKind::kAvg);
  ASSERT_TRUE(agg.Update(Value(1.0)).ok());
  ASSERT_TRUE(agg.Update(Value(2.0)).ok());
  ASSERT_TRUE(agg.Update(Value(6.0)).ok());
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 3.0);
}

TEST(Aggregator, AvgOfNothingIsNull) {
  Aggregator agg(AggregateKind::kAvg);
  EXPECT_TRUE(agg.Current().is_null());
}

TEST(Aggregator, MinTracksSmallest) {
  Aggregator agg(AggregateKind::kMin);
  ASSERT_TRUE(agg.Update(Value(5.0)).ok());
  ASSERT_TRUE(agg.Update(Value(2.0)).ok());
  ASSERT_TRUE(agg.Update(Value(9.0)).ok());
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 2.0);
}

TEST(Aggregator, MaxTracksLargest) {
  Aggregator agg(AggregateKind::kMax);
  ASSERT_TRUE(agg.Update(Value(5.0)).ok());
  ASSERT_TRUE(agg.Update(Value(9.0)).ok());
  ASSERT_TRUE(agg.Update(Value(2.0)).ok());
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 9.0);
}

TEST(Aggregator, MinMaxWorkOnStrings) {
  Aggregator min_agg(AggregateKind::kMin);
  Aggregator max_agg(AggregateKind::kMax);
  for (const char* s : {"pear", "apple", "zebra"}) {
    ASSERT_TRUE(min_agg.Update(Value(s)).ok());
    ASSERT_TRUE(max_agg.Update(Value(s)).ok());
  }
  EXPECT_EQ(min_agg.Current().AsString(), "apple");
  EXPECT_EQ(max_agg.Current().AsString(), "zebra");
}

TEST(Aggregator, RetractSum) {
  Aggregator agg(AggregateKind::kSum);
  ASSERT_TRUE(agg.Update(Value(5.0)).ok());
  ASSERT_TRUE(agg.Update(Value(3.0)).ok());
  ASSERT_TRUE(agg.Retract(Value(5.0)).ok());
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 3.0);
}

TEST(Aggregator, RetractFromEmptyFails) {
  Aggregator agg(AggregateKind::kSum);
  EXPECT_FALSE(agg.Retract(Value(1.0)).ok());
}

TEST(Aggregator, RetractMinMaxUnimplemented) {
  Aggregator agg(AggregateKind::kMin);
  ASSERT_TRUE(agg.Update(Value(1.0)).ok());
  EXPECT_EQ(agg.Retract(Value(1.0)).code(), StatusCode::kUnimplemented);
}

TEST(Aggregator, ResetClearsState) {
  Aggregator agg(AggregateKind::kSum);
  ASSERT_TRUE(agg.Update(Value(5.0)).ok());
  agg.Reset();
  EXPECT_TRUE(agg.Current().is_null());
  EXPECT_EQ(agg.count(), 0);
}

TEST(AggregateKindName, Names) {
  EXPECT_STREQ(AggregateKindName(AggregateKind::kSum), "SUM");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kMax), "MAX");
}

}  // namespace
}  // namespace uuq
