#include <gtest/gtest.h>

#include "integration/diagnostics.h"
#include "integration/integrator.h"

namespace uuq {
namespace {

TEST(Integrator, AddSourceIntegratesAllClaims) {
  DataSource s1("w1");
  ASSERT_TRUE(s1.Add("IBM", 1000).ok());
  ASSERT_TRUE(s1.Add("Google", 2000).ok());
  DataSource s2("w2");
  ASSERT_TRUE(s2.Add("ibm", 1000).ok());

  Integrator integrator;
  ASSERT_TRUE(integrator.AddSource(s1).ok());
  ASSERT_TRUE(integrator.AddSource(s2).ok());
  EXPECT_EQ(integrator.sample().c(), 2);
  EXPECT_EQ(integrator.sample().n(), 3);
}

TEST(Integrator, RejectsEmptySourceId) {
  DataSource bad("");
  Integrator integrator;
  EXPECT_FALSE(integrator.AddSource(bad).ok());
}

TEST(Integrator, PublishRegistersView) {
  Integrator::Options options;
  options.table_name = "us_tech";
  options.value_column = "employees";
  Integrator integrator(options);
  integrator.AddObservation({"w1", "IBM", 1000});

  Catalog catalog;
  integrator.Publish(&catalog);
  ASSERT_TRUE(catalog.Contains("us_tech"));
  auto result = catalog.ExecuteSql("SELECT SUM(employees) FROM us_tech");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().value.AsDouble(), 1000.0);
}

TEST(Integrator, ViewUsesConfiguredColumnName) {
  Integrator::Options options;
  options.value_column = "revenue";
  Integrator integrator(options);
  integrator.AddObservation({"w1", "x", 5});
  EXPECT_TRUE(integrator.IntegratedView().schema().HasField("revenue"));
}

TEST(AnalyzeSourceImbalance, EvenSourcesNotFlagged) {
  IntegratedSample sample;
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 10; ++i) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(w * 10 + i), 1);
    }
  }
  const auto report = AnalyzeSourceImbalance(sample);
  EXPECT_EQ(report.num_sources, 5);
  EXPECT_NEAR(report.max_share, 0.2, 1e-12);
  EXPECT_FALSE(report.streaker_suspected);
}

TEST(AnalyzeSourceImbalance, StreakerFlagged) {
  IntegratedSample sample;
  // One source contributes 80 of 88 observations.
  for (int i = 0; i < 80; ++i) {
    sample.Add("streaker", "e" + std::to_string(i), 1);
  }
  for (int w = 0; w < 4; ++w) {
    sample.Add("w" + std::to_string(w), "e" + std::to_string(w), 1);
    sample.Add("w" + std::to_string(w), "e" + std::to_string(w + 10), 1);
  }
  const auto report = AnalyzeSourceImbalance(sample);
  EXPECT_TRUE(report.streaker_suspected);
  EXPECT_EQ(report.dominant_source, "streaker");
  EXPECT_GT(report.max_share, 0.5);
}

TEST(AnalyzeSourceImbalance, EmptySample) {
  IntegratedSample sample;
  const auto report = AnalyzeSourceImbalance(sample);
  EXPECT_EQ(report.num_sources, 0);
  EXPECT_FALSE(report.streaker_suspected);
}

TEST(AnalyzeSourceImbalance, SingleSourceNotAStreakerByShare) {
  // With one source max_share is trivially 1.0; the share heuristic needs
  // >= 2 sources, and Gini of a single contribution is 0.
  IntegratedSample sample;
  sample.Add("w1", "a", 1);
  sample.Add("w1", "b", 2);
  const auto report = AnalyzeSourceImbalance(sample);
  EXPECT_FALSE(report.streaker_suspected);
}

TEST(AnalyzeCompleteness, ReportsCoverageAndGate) {
  IntegratedSample sample;
  // 3 entities seen twice, 1 singleton: n = 7, f1 = 1, Ĉ = 6/7.
  for (const char* key : {"a", "b", "c"}) {
    sample.Add("w1", key, 1);
    sample.Add("w2", key, 1);
  }
  sample.Add("w3", "d", 1);
  const auto report = AnalyzeCompleteness(sample);
  EXPECT_EQ(report.n, 7);
  EXPECT_EQ(report.c, 4);
  EXPECT_EQ(report.singletons, 1);
  EXPECT_NEAR(report.coverage, 6.0 / 7.0, 1e-12);
  EXPECT_TRUE(report.estimates_recommended);
}

TEST(AnalyzeCompleteness, LowCoverageNotRecommended) {
  IntegratedSample sample;
  for (int i = 0; i < 10; ++i) {
    sample.Add("w1", "e" + std::to_string(i), 1);
  }
  const auto report = AnalyzeCompleteness(sample);
  EXPECT_DOUBLE_EQ(report.coverage, 0.0);
  EXPECT_FALSE(report.estimates_recommended);
}

}  // namespace
}  // namespace uuq
