#include "stats/fstats.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(FrequencyStatistics, EmptyByDefault) {
  FrequencyStatistics stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.n(), 0);
  EXPECT_EQ(stats.c(), 0);
  EXPECT_EQ(stats.f(1), 0);
}

TEST(FrequencyStatistics, FromCountsBasic) {
  // Items observed 1, 1, 2, 3 times: f1=2, f2=1, f3=1; n=7; c=4.
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 2, 3});
  EXPECT_EQ(stats.n(), 7);
  EXPECT_EQ(stats.c(), 4);
  EXPECT_EQ(stats.f(1), 2);
  EXPECT_EQ(stats.f(2), 1);
  EXPECT_EQ(stats.f(3), 1);
  EXPECT_EQ(stats.f(4), 0);
}

TEST(FrequencyStatistics, SingletonsAndDoubletons) {
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 1, 2, 2, 5});
  EXPECT_EQ(stats.singletons(), 3);
  EXPECT_EQ(stats.doubletons(), 2);
}

TEST(FrequencyStatistics, ZeroCountsIgnored) {
  const auto stats = FrequencyStatistics::FromCounts({0, 0, 1, 2});
  EXPECT_EQ(stats.c(), 2);
  EXPECT_EQ(stats.n(), 3);
}

TEST(FrequencyStatistics, SumIiMinusOneFi) {
  // counts {1,2,4}: Σ m(m−1) = 0 + 2 + 12 = 14 (the Appendix F toy data).
  const auto stats = FrequencyStatistics::FromCounts({1, 2, 4});
  EXPECT_EQ(stats.SumIiMinusOneFi(), 14);
}

TEST(FrequencyStatistics, FromHistogramMatchesFromCounts) {
  const auto a = FrequencyStatistics::FromCounts({1, 1, 2, 2, 2, 3});
  const auto b =
      FrequencyStatistics::FromHistogram({{1, 2}, {2, 3}, {3, 1}});
  EXPECT_EQ(a.n(), b.n());
  EXPECT_EQ(a.c(), b.c());
  EXPECT_EQ(a.histogram(), b.histogram());
  EXPECT_EQ(a.SumIiMinusOneFi(), b.SumIiMinusOneFi());
}

TEST(FrequencyStatistics, FromHistogramSkipsZeroEntries) {
  const auto stats = FrequencyStatistics::FromHistogram({{1, 0}, {2, 3}});
  EXPECT_EQ(stats.f(1), 0);
  EXPECT_EQ(stats.f(2), 3);
  EXPECT_EQ(stats.c(), 3);
}

TEST(FrequencyStatistics, NEqualsSumOfJTimesFj) {
  const auto stats = FrequencyStatistics::FromCounts({1, 2, 3, 4, 5, 5});
  int64_t n = 0;
  for (const auto& [occurrences, items] : stats.histogram()) {
    n += occurrences * items;
  }
  EXPECT_EQ(stats.n(), n);
}

TEST(FrequencyStatistics, CEqualsSumOfFj) {
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 2, 7, 7, 7});
  int64_t c = 0;
  for (const auto& [occurrences, items] : stats.histogram()) c += items;
  EXPECT_EQ(stats.c(), c);
}

TEST(FrequencyStatistics, AllSingletons) {
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 1, 1});
  EXPECT_EQ(stats.n(), 4);
  EXPECT_EQ(stats.c(), 4);
  EXPECT_EQ(stats.singletons(), 4);
  EXPECT_EQ(stats.SumIiMinusOneFi(), 0);
}

TEST(FrequencyStatisticsDeathTest, NegativeCountAborts) {
  EXPECT_DEATH(FrequencyStatistics::FromCounts({-1}), "negative");
}

}  // namespace
}  // namespace uuq
