// Integration tests for the serving layer: admission control, cooperative
// cancellation at every engine granularity, the degradation ladder, the
// offline bit-identity contract, and the 100-schedule chaos sweep.
#include "serving/query_service.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/naive.h"

namespace uuq {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

// Mirrors query_correction_test's healthy fixture: 8 even sources over 30
// entities, enough structure for every estimator and a meaningful interval.
std::shared_ptr<const IntegratedSample> HealthySample() {
  auto sample = std::make_shared<IntegratedSample>();
  for (int e = 0; e < 30; ++e) {
    const int copies = 1 + (e % 4);
    for (int k = 0; k < copies; ++k) {
      sample->Add("w" + std::to_string((e + k) % 8), "e" + std::to_string(e),
                  10.0 * (e + 1));
    }
  }
  return sample;
}

constexpr char kSumSql[] = "SELECT SUM(value) FROM integrated";

// Process-wide inert injector: tests with strict outcome assertions pin it
// explicitly so the CI chaos entry's UUQ_FAULT_* env knobs (which arm
// FaultInjector::FromEnv, the faults=nullptr default) cannot perturb them.
// Tests OF the env hook use EnvDrivenFaults... below.
FaultInjector* InertFaults() {
  static FaultInjector inert;
  return &inert;
}

ServingOptions FastOptions() {
  ServingOptions options;
  options.workers = 2;
  options.full_replicates = 24;
  options.reduced_replicates = 6;
  options.faults = InertFaults();
  // The fixture corrects in well under a millisecond, so generous ladder
  // thresholds keep un-faulted tests deterministically at level 0.
  options.default_deadline = std::chrono::seconds(30);
  options.full_interval_budget = milliseconds(1);
  options.reduced_interval_budget = std::chrono::microseconds(100);
  return options;
}

// --- Engine-granularity cancellation (deterministic, no timing) ----------

CancelToken FiredToken() {
  CancelSource source;
  source.RequestCancel();
  return source.token();
}

TEST(EngineCancellation, BootstrapAbortsToDegenerateInterval) {
  const auto sample = HealthySample();
  const NaiveEstimator naive;
  BootstrapOptions options;
  options.replicates = 50;
  options.cancel = FiredToken();
  const BootstrapInterval interval =
      BootstrapCorrectedSum(*sample, naive, options);
  EXPECT_TRUE(interval.aborted);
  EXPECT_EQ(interval.finite_replicates, 0);
  EXPECT_EQ(interval.lo, interval.point);
  EXPECT_EQ(interval.hi, interval.point);
  EXPECT_TRUE(interval.replicates.empty());
}

TEST(EngineCancellation, BootstrapWithInertTokenIsBitIdentical) {
  const auto sample = HealthySample();
  const NaiveEstimator naive;
  BootstrapOptions plain;
  plain.replicates = 40;
  BootstrapOptions with_token = plain;
  CancelSource source;  // live source, never fired
  source.SetDeadlineAfter(std::chrono::hours(1));
  with_token.cancel = source.token();
  const BootstrapInterval a = BootstrapCorrectedSum(*sample, naive, plain);
  const BootstrapInterval b =
      BootstrapCorrectedSum(*sample, naive, with_token);
  EXPECT_FALSE(b.aborted);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.median, b.median);
  ASSERT_EQ(a.replicates.size(), b.replicates.size());
  for (size_t i = 0; i < a.replicates.size(); ++i) {
    EXPECT_EQ(a.replicates[i], b.replicates[i]);
  }
}

TEST(EngineCancellation, DynamicPartitionerFinalizesUnsplit) {
  const auto sample = HealthySample();
  const SortedEntityIndex index(sample->entities());
  const NaiveEstimator naive;
  const DynamicPartitioner cancelled(/*pool=*/nullptr,
                                     SplitScanMode::kBatched, FiredToken());
  const std::vector<size_t> bounds = cancelled.Partition(index, naive);
  // Fired before the first pop: the root bucket is finalized whole — a
  // valid single-bucket partition.
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), index.size());
}

TEST(EngineCancellation, CorrectorFailsTypedOnPreCancelledToken) {
  QueryCorrector::Options options;
  options.cancel = FiredToken();
  const QueryCorrector corrector(options);
  auto answer = corrector.CorrectSql(*HealthySample(), kSumSql);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
}

TEST(EngineCancellation, CorrectorFailsTypedOnExpiredDeadline) {
  CancelSource source;
  source.SetDeadlineAfter(nanoseconds(0));
  QueryCorrector::Options options;
  options.cancel = source.token();
  const QueryCorrector corrector(options);
  auto answer = corrector.CorrectSql(*HealthySample(), kSumSql);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
}

// --- Serving behaviour ----------------------------------------------------

TEST(QueryService, ServesCorrectedAnswer) {
  QueryService service(FastOptions());
  service.RegisterSample("healthy", HealthySample());
  const ServedResult result = service.Execute("healthy", kSumSql);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.answer.corrected, 0.0);
  EXPECT_EQ(result.degraded, DegradeLevel::kNone);
  EXPECT_TRUE(result.answer.bootstrap_valid);
  EXPECT_GT(result.replicates_used, 0);
  EXPECT_GE(result.queue_ms, 0.0);
  EXPECT_GT(result.run_ms, 0.0);
  const QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
}

TEST(QueryService, UnknownSampleIsNotFound) {
  QueryService service(FastOptions());
  const ServedResult result = service.Execute("nope", kSumSql);
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

// A request-supplied precision target must never reach an engine CHECK
// and abort the long-lived serving process: malformed epsilon/confidence
// values are rejected at Submit with kInvalidArgument, and the service
// keeps serving afterwards.
TEST(QueryService, MalformedPrecisionTargetRejectedAtSubmit) {
  QueryService service(FastOptions());
  service.RegisterSample("healthy", HealthySample());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const struct {
    double epsilon;
    double confidence;
  } bad[] = {
      {-1.0, 0.95},  // negative epsilon
      {nan, 0.95},   // non-finite epsilon
      {inf, 0.95},   // non-finite epsilon
      {10.0, 1.0},   // confidence = 1 previously hit a CHECK -> abort
      {10.0, 2.0},   // confidence > 1
      {10.0, nan},   // non-finite confidence
  };
  for (const auto& target : bad) {
    const ServedResult result =
        service.Execute("healthy", kSumSql, nanoseconds(0),
                        /*want_interval=*/true, target.epsilon,
                        target.confidence);
    EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument)
        << "epsilon=" << target.epsilon
        << " confidence=" << target.confidence << " -> "
        << result.status.ToString();
  }
  // Negative confidence is the documented "use the bootstrap default"
  // request, and a well-formed target still serves: the service survived
  // every rejection above.
  const ServedResult ok =
      service.Execute("healthy", kSumSql, nanoseconds(0),
                      /*want_interval=*/true, /*epsilon=*/1e6,
                      /*confidence=*/-1.0);
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_TRUE(ok.answer.bootstrap_valid);
  EXPECT_TRUE(ok.answer.bootstrap.adaptive.enabled);
}

TEST(QueryService, ParseErrorsSurfaceTyped) {
  QueryService service(FastOptions());
  service.RegisterSample("healthy", HealthySample());
  const ServedResult result = service.Execute("healthy", "SELECT gibberish");
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.status.code() == StatusCode::kParseError ||
              result.status.code() == StatusCode::kInvalidArgument)
      << result.status.ToString();
}

// Acceptance criterion 2: a non-degraded served result is BIT-IDENTICAL to
// the offline QueryCorrector run with the same configuration.
TEST(QueryService, NonDegradedResultMatchesOfflinePathBitForBit) {
  const auto sample = HealthySample();
  const ServingOptions options = FastOptions();

  QueryService service(options);
  service.RegisterSample("healthy", sample);
  const ServedResult served = service.Execute("healthy", kSumSql);
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  ASSERT_EQ(served.degraded, DegradeLevel::kNone);

  QueryCorrector::Options offline = options.correction;
  offline.attach_bootstrap = true;
  offline.bootstrap.replicates = options.full_replicates;
  auto reference = QueryCorrector(offline).CorrectSql(*sample, kSumSql);
  ASSERT_TRUE(reference.ok());

  const CorrectedAnswer& a = served.answer;
  const CorrectedAnswer& b = reference.value();
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.estimate.n_hat, b.estimate.n_hat);
  EXPECT_EQ(a.estimate.delta, b.estimate.delta);
  ASSERT_TRUE(a.bootstrap_valid);
  ASSERT_TRUE(b.bootstrap_valid);
  EXPECT_EQ(a.bootstrap.lo, b.bootstrap.lo);
  EXPECT_EQ(a.bootstrap.hi, b.bootstrap.hi);
  EXPECT_EQ(a.bootstrap.median, b.bootstrap.median);
  ASSERT_EQ(a.bootstrap.replicates.size(), b.bootstrap.replicates.size());
  for (size_t i = 0; i < a.bootstrap.replicates.size(); ++i) {
    EXPECT_EQ(a.bootstrap.replicates[i], b.bootstrap.replicates[i]);
  }
}

// Acceptance criterion 1: an already-expired deadline comes back as
// kDeadlineExceeded and the service keeps working afterwards (the pool was
// drained, not poisoned).
TEST(QueryService, ExpiredDeadlineIsDeadlineExceededAndServiceSurvives) {
  QueryService service(FastOptions());
  service.RegisterSample("healthy", HealthySample());
  const ServedResult expired =
      service.Execute("healthy", kSumSql, nanoseconds(1));
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded)
      << expired.status.ToString();
  // The same service immediately serves a healthy query: no leaked tasks,
  // no wedged workers.
  const ServedResult next = service.Execute("healthy", kSumSql);
  EXPECT_TRUE(next.status.ok()) << next.status.ToString();
  EXPECT_EQ(service.stats().failed, 1);
}

TEST(QueryService, DeadlineExpiringMidIntervalDegradesToPointOnly) {
  // slow_replicate at p=1 stretches the interval to ~24 * 5ms >> the 60ms
  // deadline, while the point estimate (sub-millisecond) finishes well
  // inside it: the query must come back OK, point-only, with the interval
  // dropped. Wide margins (120x) keep this robust on slow machines.
  FaultInjector faults(1, [] {
    std::array<FaultSpec, kNumFaultSites> specs{};
    specs[static_cast<size_t>(FaultSite::kSlowReplicate)] = {
        1.0, std::chrono::milliseconds(5)};
    return specs;
  }());
  ServingOptions options = FastOptions();
  options.faults = &faults;
  options.full_interval_budget = std::chrono::microseconds(1);
  QueryService service(options);
  service.RegisterSample("healthy", HealthySample());
  const ServedResult result =
      service.Execute("healthy", kSumSql, milliseconds(60));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.degraded, DegradeLevel::kPointOnly);
  EXPECT_TRUE(result.answer.bootstrap_aborted);
  EXPECT_FALSE(result.answer.bootstrap_valid);
  EXPECT_GT(result.answer.corrected, 0.0);
}

TEST(QueryService, ShortBudgetAtDequeueStepsDownTheLadder) {
  ServingOptions options = FastOptions();
  // Budgets no real query can meet at level 0: full needs an hour.
  options.full_interval_budget = std::chrono::hours(1);
  options.reduced_interval_budget = std::chrono::microseconds(1);
  QueryService service(options);
  service.RegisterSample("healthy", HealthySample());
  const ServedResult result =
      service.Execute("healthy", kSumSql, std::chrono::seconds(10));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.degraded, DegradeLevel::kReducedReplicates);
  EXPECT_TRUE(result.answer.bootstrap_valid);
  EXPECT_EQ(service.stats().degraded, 1);
}

TEST(QueryService, WantIntervalFalseIsPointOnlyWithoutDegradation) {
  QueryService service(FastOptions());
  service.RegisterSample("healthy", HealthySample());
  const ServedResult result = service.Execute(
      "healthy", kSumSql, nanoseconds(0), /*want_interval=*/false);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.degraded, DegradeLevel::kNone);
  EXPECT_FALSE(result.answer.bootstrap_valid);
  EXPECT_EQ(result.replicates_used, 0);
  EXPECT_EQ(service.stats().degraded, 0);
}

TEST(QueryService, FullQueueShedsWithResourceExhausted) {
  // One worker stalled on a slow query, queue capacity 1: the second
  // submission is pending, the third must shed.
  FaultInjector faults(2, [] {
    std::array<FaultSpec, kNumFaultSites> specs{};
    specs[static_cast<size_t>(FaultSite::kSlowReplicate)] = {
        1.0, std::chrono::milliseconds(2)};
    return specs;
  }());
  ServingOptions options = FastOptions();
  options.workers = 1;
  options.max_queue = 1;
  options.faults = &faults;
  options.full_interval_budget = std::chrono::microseconds(1);
  QueryService service(options);
  service.RegisterSample("healthy", HealthySample());

  auto first = service.Submit("healthy", kSumSql, std::chrono::seconds(30));
  ASSERT_TRUE(first.ok());
  auto second = service.Submit("healthy", kSumSql, std::chrono::seconds(30));
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().shed, 1);

  const ServedResult result = first.value().Wait();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

TEST(QueryService, CancelledTicketComesBackCancelled) {
  FaultInjector faults(3, [] {
    std::array<FaultSpec, kNumFaultSites> specs{};
    specs[static_cast<size_t>(FaultSite::kSlowReplicate)] = {
        1.0, std::chrono::milliseconds(2)};
    return specs;
  }());
  ServingOptions options = FastOptions();
  options.faults = &faults;
  options.full_interval_budget = std::chrono::microseconds(1);
  QueryService service(options);
  service.RegisterSample("healthy", HealthySample());
  auto ticket = service.Submit("healthy", kSumSql, std::chrono::seconds(30));
  ASSERT_TRUE(ticket.ok());
  ticket.value().Cancel();
  const ServedResult result = ticket.value().Wait();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled)
      << result.status.ToString();
}

TEST(QueryService, ShutdownResolvesQueuedQueriesAsCancelled) {
  FaultInjector faults(4, [] {
    std::array<FaultSpec, kNumFaultSites> specs{};
    specs[static_cast<size_t>(FaultSite::kSlowReplicate)] = {
        1.0, std::chrono::milliseconds(2)};
    return specs;
  }());
  ServingOptions options = FastOptions();
  options.workers = 1;
  options.max_queue = 8;
  options.faults = &faults;
  options.full_interval_budget = std::chrono::microseconds(1);
  auto service = std::make_unique<QueryService>(options);
  service->RegisterSample("healthy", HealthySample());
  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto ticket =
        service->Submit("healthy", kSumSql, std::chrono::seconds(30));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  service->Shutdown();
  int cancelled = 0;
  for (auto& ticket : tickets) {
    const ServedResult result = ticket.Wait();  // must not hang
    if (result.status.code() == StatusCode::kCancelled) ++cancelled;
  }
  // The worker may have finished some before Shutdown; everything still
  // queued must resolve kCancelled, and nothing may be left pending.
  EXPECT_GE(cancelled, 1);
  const ServedResult after = service->Execute("healthy", kSumSql);
  EXPECT_EQ(after.status.code(), StatusCode::kFailedPrecondition);
}

// The CI chaos entry arms faults process-wide via UUQ_FAULT_SEED /
// UUQ_FAULT_SPEC; a faults=nullptr service picks them up through
// FaultInjector::FromEnv(). Whatever that schedule does — inert locally,
// aggressive in the chaos job — every outcome must be kOk or a typed
// failure.
TEST(QueryService, EnvDrivenFaultsOnlyEverYieldTypedStatuses) {
  ServingOptions options = FastOptions();
  options.faults = nullptr;  // → FromEnv()
  QueryService service(options);
  service.RegisterSample("healthy", HealthySample());
  for (int q = 0; q < 16; ++q) {
    const ServedResult result =
        service.Execute("healthy", kSumSql, std::chrono::seconds(30));
    switch (result.status.code()) {
      case StatusCode::kOk:
      case StatusCode::kUnavailable:
      case StatusCode::kResourceExhausted:
      case StatusCode::kDeadlineExceeded:
        break;
      default:
        ADD_FAILURE() << "untyped status: " << result.status.ToString();
    }
  }
}

// --- PR 7: null tickets, artifact cache, replacement, trim, occupancy -----

// Regression: Wait()/Cancel() on a default-constructed Ticket used to
// dereference a null state_. Contract now: typed failure / no-op.
TEST(QueryServiceTicket, DefaultConstructedWaitAndCancelAreSafe) {
  QueryService::Ticket ticket;
  ticket.Cancel();  // must not crash
  const ServedResult result = ticket.Wait();
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition)
      << result.status.ToString();
  EXPECT_EQ(ticket.id(), 0u);
  ticket.Cancel();  // still a no-op after Wait
}

void ExpectBitIdenticalAnswers(const CorrectedAnswer& a,
                               const CorrectedAnswer& b) {
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.estimate.n_hat, b.estimate.n_hat);
  EXPECT_EQ(a.estimate.delta, b.estimate.delta);
  ASSERT_EQ(a.bootstrap_valid, b.bootstrap_valid);
  if (a.bootstrap_valid) {
    EXPECT_EQ(a.bootstrap.lo, b.bootstrap.lo);
    EXPECT_EQ(a.bootstrap.hi, b.bootstrap.hi);
    EXPECT_EQ(a.bootstrap.median, b.bootstrap.median);
    ASSERT_EQ(a.bootstrap.replicates.size(), b.bootstrap.replicates.size());
    for (size_t i = 0; i < a.bootstrap.replicates.size(); ++i) {
      EXPECT_EQ(a.bootstrap.replicates[i], b.bootstrap.replicates[i]);
    }
  }
}

// The tentpole's bit-identity contract, across every aggregate: a
// cache-enabled service (first query computes on the precomputed artifacts,
// repeat queries hit the answer memo) must match a cache-disabled service
// byte for byte.
TEST(QueryService, CachedAnswersMatchUncachedBitForBit) {
  const auto sample = HealthySample();
  ServingOptions uncached_options = FastOptions();
  uncached_options.cache_artifacts = false;
  QueryService cached(FastOptions());
  QueryService uncached(uncached_options);
  ASSERT_FALSE(uncached.cache_enabled());
  cached.RegisterSample("healthy", sample);
  uncached.RegisterSample("healthy", sample);
  if (!cached.cache_enabled()) {
    GTEST_SKIP() << "UUQ_SERVE_CACHE=0 set in this environment";
  }
  EXPECT_EQ(cached.stats().cached_samples, 1);
  EXPECT_EQ(uncached.stats().cached_samples, 0);

  const char* queries[] = {
      "SELECT SUM(value) FROM integrated",
      "SELECT COUNT(*) FROM integrated",
      "SELECT AVG(value) FROM integrated",
      "SELECT MIN(value) FROM integrated",
  };
  for (const char* sql : queries) {
    const ServedResult reference = uncached.Execute("healthy", sql);
    const ServedResult first = cached.Execute("healthy", sql);
    const ServedResult repeat = cached.Execute("healthy", sql);  // memo hit
    ASSERT_TRUE(reference.status.ok()) << sql;
    ASSERT_TRUE(first.status.ok()) << sql;
    ASSERT_TRUE(repeat.status.ok()) << sql;
    ASSERT_EQ(reference.degraded, DegradeLevel::kNone) << sql;
    ASSERT_EQ(first.degraded, DegradeLevel::kNone) << sql;
    ASSERT_EQ(repeat.degraded, DegradeLevel::kNone) << sql;
    ExpectBitIdenticalAnswers(first.answer, reference.answer);
    ExpectBitIdenticalAnswers(repeat.answer, reference.answer);
    EXPECT_EQ(repeat.replicates_used, reference.replicates_used) << sql;
  }
}

// Satellite: RegisterSample replacement under load. In-flight queries
// admitted before the replacement finish bit-identical on the OLD snapshot;
// queries admitted after use the new sample; the old cache entry is evicted
// (cached_samples stays 1). ASan (CI matrix) pins the no-use-after-free
// half: the old snapshot dies when its last pinned query finishes.
TEST(QueryService, ReplacementUnderLoadKeepsOldSnapshotForInFlight) {
  const auto old_sample = HealthySample();
  auto new_sample = std::make_shared<IntegratedSample>();
  for (int e = 0; e < 20; ++e) {
    new_sample->Add("w" + std::to_string(e % 5), "n" + std::to_string(e),
                    7.0 * (e + 1));
  }

  // Four distinct aggregates so every in-flight query computes for real
  // (distinct memo keys), slowed enough that the replacement lands while
  // they run.
  const char* queries[] = {
      "SELECT SUM(value) FROM integrated",
      "SELECT COUNT(*) FROM integrated",
      "SELECT AVG(value) FROM integrated",
      "SELECT MIN(value) FROM integrated",
  };
  const ServingOptions base = FastOptions();
  QueryCorrector::Options offline = base.correction;
  offline.attach_bootstrap = true;
  offline.bootstrap.replicates = base.full_replicates;
  const QueryCorrector reference(offline);

  FaultInjector slow(7, [] {
    std::array<FaultSpec, kNumFaultSites> specs{};
    specs[static_cast<size_t>(FaultSite::kSlowReplicate)] = {
        1.0, std::chrono::microseconds(500)};
    return specs;
  }());
  ServingOptions options = base;
  options.faults = &slow;
  QueryService service(options);
  service.RegisterSample("s", old_sample);

  std::vector<QueryService::Ticket> in_flight;
  for (const char* sql : queries) {
    auto ticket = service.Submit("s", sql, std::chrono::seconds(30));
    ASSERT_TRUE(ticket.ok());
    in_flight.push_back(ticket.value());
  }
  service.RegisterSample("s", new_sample);  // replace while they run
  EXPECT_EQ(service.stats().cached_samples,
            service.cache_enabled() ? 1 : 0);

  for (size_t i = 0; i < in_flight.size(); ++i) {
    const ServedResult served = in_flight[i].Wait();
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    ASSERT_EQ(served.degraded, DegradeLevel::kNone);
    auto expect = reference.CorrectSql(*old_sample, queries[i]);
    ASSERT_TRUE(expect.ok());
    ExpectBitIdenticalAnswers(served.answer, expect.value());
  }
  for (const char* sql : queries) {
    const ServedResult served =
        service.Execute("s", sql, std::chrono::seconds(30));
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    ASSERT_EQ(served.degraded, DegradeLevel::kNone);
    auto expect = reference.CorrectSql(*new_sample, sql);
    ASSERT_TRUE(expect.ok());
    ExpectBitIdenticalAnswers(served.answer, expect.value());
  }
}

// Satellite: a long-lived server must not pin the largest-ever sample's
// engine scratch forever. Replacing a large sample with a small one
// requests a cooperative trim; the next queries execute it on the engine
// threads, and the resident-bytes gauge falls.
TEST(QueryService, ReplacingLargeSampleWithSmallReleasesScratch) {
  auto big = std::make_shared<IntegratedSample>();
  for (int e = 0; e < 4000; ++e) {
    big->Add("w" + std::to_string(e % 6), "b" + std::to_string(e),
             1.0 + (e % 97));
  }
  ServingOptions options = FastOptions();
  options.workers = 1;
  options.engine_threads = 1;  // one engine thread → trim is deterministic
  options.cache_artifacts = false;  // every query exercises scratch
  QueryService service(options);

  service.RegisterSample("s", big);
  ASSERT_TRUE(service.Execute("s", kSumSql).status.ok());
  const int64_t after_big = service.stats().resident_scratch_bytes;
  EXPECT_GT(after_big, 0);

  service.RegisterSample("s", HealthySample());  // smaller → trim request
  ASSERT_TRUE(service.Execute("s", kSumSql).status.ok());
  const int64_t after_small = service.stats().resident_scratch_bytes;
  EXPECT_LT(after_small, after_big);
  EXPECT_GE(after_small, 0);
}

// Acceptance criterion: total live engine threads never exceed the engine
// budget, no matter how many workers are configured. workers=8 against a
// budget of 2 must clamp to 2 one-thread (inline) slices.
TEST(QueryService, EngineOccupancyNeverExceedsBudget) {
  ServingOptions options = FastOptions();
  options.workers = 8;
  options.engine_threads = 2;
  options.cache_artifacts = false;  // memo hits would skip the engines
  QueryService service(options);
  service.RegisterSample("healthy", HealthySample());

  ThreadPool::ResetMaxOccupancy();
  std::vector<QueryService::Ticket> tickets;
  for (int q = 0; q < 12; ++q) {
    auto ticket = service.Submit("healthy", kSumSql, std::chrono::seconds(30));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.Wait().status.ok());
  }
  EXPECT_LE(ThreadPool::MaxOccupancy(), 2);
  EXPECT_GT(ThreadPool::MaxOccupancy(), 0);
}

// Acceptance criterion 3: across 100 seeded fault schedules every injected
// fault class surfaces as its typed Status — never a crash, never an
// unexpected code, and level-0 successes still match the offline answer.
TEST(QueryService, ChaosSweep100SeedsOnlyTypedFailures) {
  const auto sample = HealthySample();
  const ServingOptions base = FastOptions();
  QueryCorrector::Options offline = base.correction;
  offline.attach_bootstrap = true;
  offline.bootstrap.replicates = base.full_replicates;
  const auto reference = QueryCorrector(offline).CorrectSql(*sample, kSumSql);
  ASSERT_TRUE(reference.ok());

  int failures = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    auto faults = FaultInjector::Parse(
        seed,
        "source_load=0.25,arena_alloc=0.25,slow_replicate=0.2:100us,"
        "queue_stall=0.2:100us");
    ASSERT_TRUE(faults.ok());
    ServingOptions options = base;
    options.workers = 2;
    options.faults = &faults.value();
    QueryService service(options);
    service.RegisterSample("healthy", sample);
    std::vector<QueryService::Ticket> tickets;
    for (int q = 0; q < 4; ++q) {
      auto ticket =
          service.Submit("healthy", kSumSql, std::chrono::seconds(30));
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(ticket.value());
    }
    for (auto& ticket : tickets) {
      const ServedResult result = ticket.Wait();
      switch (result.status.code()) {
        case StatusCode::kOk:
          if (result.degraded == DegradeLevel::kNone) {
            // Faults may slow a query but can never corrupt it.
            EXPECT_EQ(result.answer.corrected, reference.value().corrected)
                << "seed " << seed;
          }
          break;
        case StatusCode::kUnavailable:       // injected source_load
        case StatusCode::kResourceExhausted: // injected arena_alloc
        case StatusCode::kDeadlineExceeded:  // stalls ate the budget
          ++failures;
          break;
        default:
          ADD_FAILURE() << "seed " << seed << ": unexpected status "
                        << result.status.ToString();
      }
    }
  }
  // With p=0.25 per failure site per query, injected failures are certain
  // across 400 queries.
  EXPECT_GT(failures, 0);
}

}  // namespace
}  // namespace uuq
