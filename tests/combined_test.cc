#include "core/combined.h"

#include <gtest/gtest.h>

#include "core/bucket.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

MonteCarloOptions FastOptions() {
  MonteCarloOptions options;
  options.runs_per_point = 2;
  options.n_grid_steps = 5;
  return options;
}

IntegratedSample CorrelatedSample(uint64_t seed = 7) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 2.0;
  pop.rho = 1.0;
  pop.seed = seed;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 15;
  crowd.answers_per_worker = 20;
  crowd.seed = seed + 1;
  IntegratedSample sample;
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  return sample;
}

TEST(MonteCarloBucketEstimator, EmptySample) {
  IntegratedSample sample;
  const MonteCarloBucketEstimator mc_bucket(FastOptions());
  const Estimate est = mc_bucket.EstimateImpact(sample);
  EXPECT_DOUBLE_EQ(est.delta, 0.0);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(MonteCarloBucketEstimator, UsesSamePartitionAsBucket) {
  const auto sample = CorrelatedSample();
  const MonteCarloBucketEstimator mc_bucket(FastOptions());
  const BucketSumEstimator bucket;
  const Estimate combined = mc_bucket.EstimateImpact(sample);
  const Estimate plain = bucket.EstimateImpact(sample);
  EXPECT_EQ(combined.num_buckets, plain.num_buckets);
}

TEST(MonteCarloBucketEstimator, MoreConservativeThanPlainBucket) {
  // Appendix D: the per-bucket MC search favors N̂ ≈ c, so the combined
  // estimator should not correct MORE than the plain bucket estimator.
  const auto sample = CorrelatedSample();
  const Estimate combined =
      MonteCarloBucketEstimator(FastOptions()).EstimateImpact(sample);
  const Estimate plain = BucketSumEstimator().EstimateImpact(sample);
  if (combined.finite && plain.finite) {
    EXPECT_LE(combined.delta, plain.delta * 1.2 + 1e-9);
  }
}

TEST(MonteCarloBucketEstimator, NhatAtLeastObservedCount) {
  const auto sample = CorrelatedSample(11);
  const Estimate est =
      MonteCarloBucketEstimator(FastOptions()).EstimateImpact(sample);
  EXPECT_GE(est.n_hat, static_cast<double>(sample.c()) - 1e-6);
}

TEST(MonteCarloBucketEstimator, NameIsStable) {
  EXPECT_EQ(MonteCarloBucketEstimator().name(), "mc-bucket");
}

TEST(MonteCarloBucketEstimator, DeterministicPerSample) {
  const auto sample = CorrelatedSample(13);
  const MonteCarloBucketEstimator mc_bucket(FastOptions());
  EXPECT_DOUBLE_EQ(mc_bucket.EstimateImpact(sample).delta,
                   mc_bucket.EstimateImpact(sample).delta);
}

}  // namespace
}  // namespace uuq
