// Scenario-matrix accuracy harness (simulation/accuracy_matrix.h): grid
// shape, thread-count bit-identity, the clamp-rate-vs-direct-count
// cross-check (which pins the correction_telemetry plumbing end to end),
// and the AccuracyGateFailures unit contract the CI gate rests on.
//
// Tier-1 runs use 3 seeds per cell; UUQ_ACCURACY_SEEDS widens the sweep
// (the same knob bench_accuracy honors).
#include "simulation/accuracy_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/correction_telemetry.h"
#include "core/query_correction.h"
#include "integration/sample.h"

namespace uuq {
namespace {

int TestSeeds() { return AccuracySeedsFromEnv(3); }

// ---------------------------------------------------------------------------
// Grid shape: the acceptance floor (>= 6 scenarios x >= 4 estimators, all
// four metrics populated and in range for every cell).
// ---------------------------------------------------------------------------

TEST(AccuracyMatrix, DefaultGridMeetsAcceptanceFloor) {
  const auto scenarios = DefaultAccuracyScenarios();
  const auto estimators = DefaultAccuracyEstimators();
  ASSERT_GE(scenarios.size(), 6u);
  ASSERT_GE(estimators.size(), 4u);

  AccuracyMatrixOptions options;
  options.seeds_per_cell = TestSeeds();
  const auto cells = RunAccuracyMatrix(scenarios, estimators, options);
  ASSERT_EQ(cells.size(), scenarios.size() * estimators.size());

  for (const AccuracyCell& cell : cells) {
    SCOPED_TRACE(cell.scenario + "|" + cell.estimator);
    EXPECT_EQ(cell.seeds, options.seeds_per_cell);
    EXPECT_GE(cell.coverage, 0.0);
    EXPECT_LE(cell.coverage, 1.0);
    EXPECT_GE(cell.clamp_rate, 0.0);
    EXPECT_LE(cell.clamp_rate, 1.0);
    EXPECT_TRUE(std::isfinite(cell.nhat_bias));
    EXPECT_TRUE(std::isfinite(cell.sum_err));
    EXPECT_GE(cell.sum_err, 0.0);
  }

  // Cell order is scenario-major — the contract row/column consumers and
  // the baseline keys rely on.
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].scenario, scenarios[i / estimators.size()].name);
    EXPECT_EQ(cells[i].estimator, estimators[i % estimators.size()].name);
  }

  // The grid must keep the clamp a LIVE metric: at least one cell fires it,
  // and not everywhere (a clamp_rate column of all zeros or all ones gates
  // nothing).
  int clamped_cells = 0;
  for (const AccuracyCell& cell : cells) {
    if (cell.unconstrained_count > 0) ++clamped_cells;
  }
  EXPECT_GT(clamped_cells, 0);
  EXPECT_LT(clamped_cells, static_cast<int>(cells.size()));
}

// ---------------------------------------------------------------------------
// Determinism: the whole point of the Split()-stream derivation — the
// matrix is bit-identical on a 1-thread and a 3-thread pool, down to every
// recorded trial.
// ---------------------------------------------------------------------------

TEST(AccuracyMatrix, BitIdenticalAcrossThreadCounts) {
  const auto all_scenarios = DefaultAccuracyScenarios();
  const auto estimators = DefaultAccuracyEstimators();
  // A sub-grid keeps the double run cheap; it still spans a paper workload,
  // a streaker axis, and the clamping axis.
  std::vector<AccuracyScenarioSpec> scenarios;
  scenarios.push_back(all_scenarios.front());
  scenarios.push_back(all_scenarios[all_scenarios.size() - 2]);
  scenarios.push_back(all_scenarios.back());

  AccuracyMatrixOptions options;
  options.seeds_per_cell = 2;
  options.record_trials = true;

  ThreadPool serial(1);
  ThreadPool wide(3);
  options.pool = &serial;
  const auto a = RunAccuracyMatrix(scenarios, estimators, options);
  options.pool = &wide;
  const auto b = RunAccuracyMatrix(scenarios, estimators, options);

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].scenario + "|" + a[i].estimator);
    EXPECT_EQ(a[i].coverage, b[i].coverage);
    EXPECT_EQ(a[i].nhat_bias, b[i].nhat_bias);
    EXPECT_EQ(a[i].sum_err, b[i].sum_err);
    EXPECT_EQ(a[i].clamp_rate, b[i].clamp_rate);
    EXPECT_EQ(a[i].unconstrained_count, b[i].unconstrained_count);
    ASSERT_EQ(a[i].trials.size(), b[i].trials.size());
    for (size_t t = 0; t < a[i].trials.size(); ++t) {
      const AccuracyTrial& x = a[i].trials[t];
      const AccuracyTrial& y = b[i].trials[t];
      EXPECT_EQ(x.scenario_seed, y.scenario_seed);
      EXPECT_EQ(x.bootstrap_seed, y.bootstrap_seed);
      EXPECT_EQ(x.corrected, y.corrected);
      EXPECT_EQ(x.lo, y.lo);
      EXPECT_EQ(x.hi, y.hi);
      EXPECT_EQ(x.unconstrained, y.unconstrained);
    }
  }
}

// ---------------------------------------------------------------------------
// Clamp cross-check (the telemetry contract, end to end): the harness's
// clamp_rate equals (a) a direct count over independently re-run
// QueryCorrector trials on the recorded seeds, and (b) the delta of the
// process-wide unconstrained_clamps counter around the matrix run.
// ---------------------------------------------------------------------------

TEST(AccuracyMatrix, ClampRateMatchesDirectCountAndTelemetry) {
  const auto all_scenarios = DefaultAccuracyScenarios();
  // The sparse-singleton axis is the one built to fire the clamp.
  std::vector<AccuracyScenarioSpec> scenarios;
  for (const auto& spec : all_scenarios) {
    if (spec.name == "sparse-singletons") scenarios.push_back(spec);
  }
  ASSERT_EQ(scenarios.size(), 1u);
  const std::vector<AccuracyEstimatorSpec> estimators = {
      {"naive", CorrectionEstimator::kNaive},
      {"bucket", CorrectionEstimator::kBucket}};

  AccuracyMatrixOptions options;
  options.seeds_per_cell = 6;
  options.record_trials = true;

  const CorrectionTelemetrySnapshot before = CorrectionTelemetry();
  const auto cells = RunAccuracyMatrix(scenarios, estimators, options);
  const CorrectionTelemetrySnapshot delta =
      CorrectionTelemetry().Since(before);

  // (b) Telemetry: the matrix produced exactly its trials, and its clamp
  // counter advanced by exactly the cells' clamp totals. (The bootstrap's
  // internal replicate estimates never reach the counters — only produced
  // CorrectedAnswers do.)
  int64_t total_trials = 0;
  int64_t total_clamps = 0;
  for (const AccuracyCell& cell : cells) {
    total_trials += cell.seeds;
    total_clamps += cell.unconstrained_count;
  }
  EXPECT_EQ(delta.corrections, total_trials);
  EXPECT_EQ(delta.unconstrained_clamps, total_clamps);
  EXPECT_EQ(delta.bootstrap_intervals, total_trials);
  EXPECT_GT(total_clamps, 0) << "axis no longer exercises the clamp";

  // (a) Direct re-run: rebuild every recorded trial from its seeds through
  // a fresh QueryCorrector and recount the flags.
  for (const AccuracyCell& cell : cells) {
    SCOPED_TRACE(cell.scenario + "|" + cell.estimator);
    int64_t direct_clamps = 0;
    for (const AccuracyTrial& trial : cell.trials) {
      const Scenario scenario = scenarios[0].factory(trial.scenario_seed);
      IntegratedSample sample;
      const int64_t prefix = std::min<int64_t>(
          scenarios[0].prefix_n,
          static_cast<int64_t>(scenario.stream.size()));
      for (int64_t i = 0; i < prefix; ++i) sample.Add(scenario.stream[i]);

      QueryCorrector::Options qopt;
      qopt.estimator = cell.estimator == "naive" ? CorrectionEstimator::kNaive
                                                 : CorrectionEstimator::kBucket;
      qopt.advisor.mc_options = options.mc;
      qopt.attach_bootstrap = true;
      qopt.bootstrap.replicates = options.bootstrap_replicates;
      qopt.bootstrap.confidence = options.confidence;
      qopt.bootstrap.seed = trial.bootstrap_seed;
      const auto answer =
          QueryCorrector(qopt).Correct(sample, AggregateKind::kSum);
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer.value().unconstrained, trial.unconstrained);
      EXPECT_EQ(answer.value().corrected, trial.corrected);
      if (answer.value().unconstrained) ++direct_clamps;
    }
    EXPECT_EQ(direct_clamps, cell.unconstrained_count);
    EXPECT_EQ(cell.clamp_rate,
              static_cast<double>(direct_clamps) / cell.seeds);
  }
}

// ---------------------------------------------------------------------------
// Gate semantics: the pure function CI's pass/fail rests on.
// ---------------------------------------------------------------------------

std::vector<AccuracyCell> TwoCells() {
  AccuracyCell a;
  a.scenario = "s1";
  a.estimator = "e1";
  a.seeds = 12;
  a.coverage = 0.5;
  a.nhat_bias = -0.2;
  a.sum_err = 0.1;
  a.clamp_rate = 0.0;
  AccuracyCell b = a;
  b.estimator = "e2";
  b.coverage = 0.9;
  return {a, b};
}

std::map<std::string, double> ExactBaseline(
    const std::vector<AccuracyCell>& cells) {
  std::map<std::string, double> baseline;
  for (const AccuracyCell& cell : cells) {
    for (AccuracyMetric metric : kAccuracyMetrics) {
      baseline[AccuracyBaselineKey(cell.scenario, cell.estimator, metric)] =
          AccuracyMetricValue(cell, metric);
    }
  }
  return baseline;
}

std::function<double(const std::string&)> Lookup(
    const std::map<std::string, double>& baseline) {
  return [&baseline](const std::string& key) {
    const auto it = baseline.find(key);
    return it != baseline.end() ? it->second
                                : std::numeric_limits<double>::quiet_NaN();
  };
}

TEST(AccuracyGate, ExactBaselinePasses) {
  const auto cells = TwoCells();
  const auto baseline = ExactBaseline(cells);
  EXPECT_TRUE(
      AccuracyGateFailures(cells, Lookup(baseline), AccuracyTolerances{})
          .empty());
}

TEST(AccuracyGate, WithinToleranceDeviationPasses) {
  auto cells = TwoCells();
  const auto baseline = ExactBaseline(cells);
  const AccuracyTolerances tolerances;
  cells[0].coverage += tolerances.coverage * 0.9;
  cells[1].sum_err -= tolerances.sum_err * 0.9;
  EXPECT_TRUE(
      AccuracyGateFailures(cells, Lookup(baseline), tolerances).empty());
}

TEST(AccuracyGate, PerturbationBeyondToleranceTrips) {
  auto cells = TwoCells();
  const auto baseline = ExactBaseline(cells);
  const AccuracyTolerances tolerances;
  cells[0].coverage -= tolerances.coverage * 1.5;
  const auto failures =
      AccuracyGateFailures(cells, Lookup(baseline), tolerances);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("s1|e1|coverage"), std::string::npos);
}

TEST(AccuracyGate, ImprovementBeyondToleranceAlsoTrips) {
  // Symmetric judgment: a large unexplained improvement demands a
  // deliberate re-baseline, not a silent pass.
  auto cells = TwoCells();
  const auto baseline = ExactBaseline(cells);
  const AccuracyTolerances tolerances;
  cells[0].sum_err -= tolerances.sum_err * 2.0;  // "better" error
  EXPECT_EQ(AccuracyGateFailures(cells, Lookup(baseline), tolerances).size(),
            1u);
}

TEST(AccuracyGate, MissingBaselineKeyFails) {
  const auto cells = TwoCells();
  auto baseline = ExactBaseline(cells);
  baseline.erase(AccuracyBaselineKey("s1", "e2", AccuracyMetric::kClampRate));
  const auto failures =
      AccuracyGateFailures(cells, Lookup(baseline), AccuracyTolerances{});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("no baseline value"), std::string::npos);
}

TEST(AccuracyMatrix, SeedsFromEnvOverrides) {
  ASSERT_EQ(unsetenv("UUQ_ACCURACY_SEEDS"), 0);
  EXPECT_EQ(AccuracySeedsFromEnv(7), 7);
  ASSERT_EQ(setenv("UUQ_ACCURACY_SEEDS", "20", 1), 0);
  EXPECT_EQ(AccuracySeedsFromEnv(7), 20);
  ASSERT_EQ(setenv("UUQ_ACCURACY_SEEDS", "junk", 1), 0);
  EXPECT_EQ(AccuracySeedsFromEnv(7), 7);
  ASSERT_EQ(unsetenv("UUQ_ACCURACY_SEEDS"), 0);
}

}  // namespace
}  // namespace uuq
