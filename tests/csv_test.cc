#include "db/csv.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(ParseCsv, SimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsv, NoTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST(ParseCsv, CrlfLineEndings) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][1], "2");
}

TEST(ParseCsv, QuotedFieldWithComma) {
  auto rows = ParseCsv("name,size\n\"Acme, Inc\",5\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[1][0], "Acme, Inc");
}

TEST(ParseCsv, EscapedQuotes) {
  auto rows = ParseCsv("a\n\"He said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[1][0], "He said \"hi\"");
}

TEST(ParseCsv, NewlineInsideQuotes) {
  auto rows = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][0], "line1\nline2");
}

TEST(ParseCsv, EmptyFieldsPreserved) {
  auto rows = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsv, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(ParseCsv, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsv("ab\"c\n").ok());
}

TEST(ParseCsv, EmptyInputIsNoRows) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST(CsvEscapeField, OnlyQuotesWhenNeeded) {
  EXPECT_EQ(CsvEscapeField("plain"), "plain");
  EXPECT_EQ(CsvEscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscapeField("two\nlines"), "\"two\nlines\"");
}

TEST(WriteTableCsv, RoundTripsThroughReadTableCsv) {
  Table table("t", Schema({{"name", ValueType::kString},
                           {"employees", ValueType::kInt64},
                           {"score", ValueType::kDouble}}));
  ASSERT_TRUE(
      table.Append({Value("Acme, Inc"), Value(int64_t{5}), Value(1.5)}).ok());
  ASSERT_TRUE(
      table.Append({Value("Plain"), Value(int64_t{7}), Value::Null()}).ok());

  const std::string csv = WriteTableCsv(table);
  auto round = ReadTableCsv("t", csv);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const Table& t2 = round.value();
  ASSERT_EQ(t2.num_rows(), 2u);
  EXPECT_EQ(t2.row(0)[0].AsString(), "Acme, Inc");
  EXPECT_EQ(t2.row(0)[1].AsInt64(), 5);
  EXPECT_DOUBLE_EQ(t2.row(0)[2].AsDouble(), 1.5);
  EXPECT_TRUE(t2.row(1)[2].is_null());
}

TEST(ReadTableCsv, InfersIntThenDoubleThenString) {
  auto table = ReadTableCsv("t", "i,d,s\n1,1.5,x\n2,2,y\n");
  ASSERT_TRUE(table.ok());
  const Schema& schema = table.value().schema();
  EXPECT_EQ(schema.field(0).type, ValueType::kInt64);
  EXPECT_EQ(schema.field(1).type, ValueType::kDouble);
  EXPECT_EQ(schema.field(2).type, ValueType::kString);
}

TEST(ReadTableCsv, MixedIntDoubleColumnBecomesDouble) {
  auto table = ReadTableCsv("t", "x\n1\n2.5\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().schema().field(0).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(table.value().row(0)[0].AsDouble(), 1.0);
}

TEST(ReadTableCsv, EmptyCellsAreNull) {
  auto table = ReadTableCsv("t", "x,y\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value().row(0)[1].is_null());
  EXPECT_TRUE(table.value().row(1)[0].is_null());
}

TEST(ReadTableCsv, RaggedRowsRejected) {
  EXPECT_FALSE(ReadTableCsv("t", "a,b\n1\n").ok());
}

TEST(ReadTableCsv, MissingHeaderRejected) {
  EXPECT_FALSE(ReadTableCsv("t", "").ok());
}

TEST(ReadTableCsv, EmptyHeaderNameRejected) {
  EXPECT_FALSE(ReadTableCsv("t", "a,,c\n1,2,3\n").ok());
}

TEST(ReadObservationsCsv, Basic) {
  auto obs = ReadObservationsCsv(
      "source,entity,value\nw1,IBM,1000\nw2,Acme,5\n");
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs.value().size(), 2u);
  EXPECT_EQ(obs.value()[0].source_id, "w1");
  EXPECT_EQ(obs.value()[0].entity_key, "IBM");
  EXPECT_DOUBLE_EQ(obs.value()[0].value, 1000.0);
}

TEST(ReadObservationsCsv, ColumnOrderFreeAndCaseInsensitive) {
  auto obs = ReadObservationsCsv(
      "Value,SOURCE,extra,Entity\n3.5,w9,zz,thing\n");
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs.value()[0].source_id, "w9");
  EXPECT_EQ(obs.value()[0].entity_key, "thing");
  EXPECT_DOUBLE_EQ(obs.value()[0].value, 3.5);
}

TEST(ReadObservationsCsv, MissingColumnRejected) {
  EXPECT_FALSE(ReadObservationsCsv("source,entity\nw1,x\n").ok());
}

TEST(ReadObservationsCsv, NonNumericValueRejected) {
  EXPECT_FALSE(
      ReadObservationsCsv("source,entity,value\nw1,x,many\n").ok());
}

// --- Ingest hardening: malformed input comes back as descriptive
// kParseError naming the 1-based source line, never a crash. ------------

TEST(ParseCsv, ReportsRowStartLines) {
  std::vector<size_t> lines;
  // Row 1 starts line 1; row 2's quoted field spans lines 2-3, so row 3
  // starts on line 4.
  auto rows = ParseCsv("a,b\n\"two\nlines\",x\n1,2\n", &lines);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], 1u);
  EXPECT_EQ(lines[1], 2u);
  EXPECT_EQ(lines[2], 4u);
}

TEST(ParseCsv, UnterminatedQuoteNamesItsStartLine) {
  const Status status = ParseCsv("a\nok\n\"trunca").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("truncated"), std::string::npos);
}

TEST(ParseCsv, StrayQuoteNamesItsLine) {
  const Status status = ParseCsv("a,b\n1,2\nbad\"field\n").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
}

TEST(ReadTableCsv, RaggedRowErrorNamesLine) {
  const Status status = ReadTableCsv("t", "a,b\n1,2\n3\n4,5\n").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
}

TEST(ReadObservationsCsv, TruncatedTrailingRowNamesLine) {
  const Status status =
      ReadObservationsCsv("source,entity,value\nw1,x,1\nw2,y").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
}

TEST(ReadObservationsCsv, NonNumericValueNamesLineAndField) {
  const Status status =
      ReadObservationsCsv("source,entity,value\nw1,x,1\nw2,y,many\n")
          .status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("'many'"), std::string::npos);
}

TEST(ReadObservationsCsv, NonFiniteValuesRejected) {
  for (const char* bad : {"inf", "-inf", "nan", "1e999"}) {
    const Status status =
        ReadObservationsCsv(std::string("source,entity,value\nw1,x,") + bad +
                            "\n")
            .status();
    EXPECT_EQ(status.code(), StatusCode::kParseError) << bad;
    EXPECT_NE(status.message().find("line 2"), std::string::npos) << bad;
  }
  // Finite extremes still load.
  EXPECT_TRUE(
      ReadObservationsCsv("source,entity,value\nw1,x,1e300\n").ok());
}

TEST(ReadObservationsCsv, EmptyKeysRejectedWithLine) {
  const Status no_source =
      ReadObservationsCsv("source,entity,value\n,x,1\n").status();
  EXPECT_EQ(no_source.code(), StatusCode::kParseError);
  EXPECT_NE(no_source.message().find("line 2"), std::string::npos);
  EXPECT_NE(no_source.message().find("source"), std::string::npos);

  const Status no_entity =
      ReadObservationsCsv("source,entity,value\nw1,,1\n").status();
  EXPECT_EQ(no_entity.code(), StatusCode::kParseError);
  EXPECT_NE(no_entity.message().find("entity"), std::string::npos);
}

TEST(WriteObservationsCsv, RoundTrips) {
  const std::vector<Observation> stream{{"w1", "IBM, Inc", 1000.0, ""},
                                        {"w2", "Acme", 5.5, ""}};
  const std::string csv = WriteObservationsCsv(stream);
  auto round = ReadObservationsCsv(csv);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().size(), 2u);
  EXPECT_EQ(round.value()[0].entity_key, "IBM, Inc");
  EXPECT_DOUBLE_EQ(round.value()[1].value, 5.5);
}

}  // namespace
}  // namespace uuq
