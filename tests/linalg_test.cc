#include "stats/linalg.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace uuq {
namespace {

TEST(Matrix, StoresAndRetrieves) {
  Matrix m(2, 3, 0.0);
  m.At(0, 0) = 1.0;
  m.At(1, 2) = -2.5;
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), -2.5);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Matrix b(2, 2);
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(Matrix, TransposedSwapsDims) {
  Matrix m(2, 3);
  m.At(0, 2) = 9.0;
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 9.0);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = 4;
  m.At(1, 1) = 5;
  m.At(1, 2) = 6;
  const auto v = m.MultiplyVector({1, 1, 1});
  EXPECT_DOUBLE_EQ(v[0], 6);
  EXPECT_DOUBLE_EQ(v[1], 15);
}

TEST(SolveLinearSystem, SolvesTwoByTwo) {
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 3;
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  auto x = SolveLinearSystem(a, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, RejectsSingular) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  auto x = SolveLinearSystem(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericError);
}

TEST(SolveLinearSystem, RejectsNonSquare) {
  Matrix a(2, 3);
  auto x = SolveLinearSystem(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolveLinearSystem, RandomRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(6);
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (size_t i = 0; i < n; ++i) {
      x_true[i] = rng.NextUniform(-5, 5);
      for (size_t j = 0; j < n; ++j) a.At(i, j) = rng.NextUniform(-1, 1);
      a.At(i, i) += static_cast<double>(n);  // diagonally dominant
    }
    const std::vector<double> b = a.MultiplyVector(x_true);
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x.value()[i], x_true[i], 1e-8);
    }
  }
}

TEST(LeastSquares, ExactSystemRecovered) {
  // Overdetermined but consistent: y = 2x + 1 at x = 0..3.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a.At(i, 0) = 1.0;
    a.At(i, 1) = i;
    b[i] = 2.0 * i + 1.0;
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidualForNoisyData) {
  // y = 3x with symmetric noise: slope estimate stays near 3.
  Matrix a(6, 1);
  std::vector<double> b{3.1, 5.9, 9.05, 11.95, 15.1, 17.9};
  for (int i = 0; i < 6; ++i) a.At(i, 0) = i + 1;
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 0.05);
}

TEST(LeastSquares, RejectsUnderdetermined) {
  Matrix a(2, 3);
  auto x = LeastSquares(a, {1, 2});
  EXPECT_FALSE(x.ok());
}

TEST(LeastSquares, RejectsCollinearColumns) {
  Matrix a(4, 2);
  for (int i = 0; i < 4; ++i) {
    a.At(i, 0) = i + 1.0;
    a.At(i, 1) = 2.0 * (i + 1.0);  // exactly collinear
  }
  auto x = LeastSquares(a, {1, 2, 3, 4});
  EXPECT_FALSE(x.ok());
}

}  // namespace
}  // namespace uuq
