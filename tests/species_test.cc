#include "core/species.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/chao92.h"

namespace uuq {
namespace {

FrequencyStatistics Stats(const std::vector<int64_t>& counts) {
  return FrequencyStatistics::FromCounts(counts);
}

TEST(Chao1Nhat, KnownValue) {
  // c=4, f1=2, f2=1: N̂ = 4 + 2·1/(2·2) = 4.5.
  EXPECT_DOUBLE_EQ(Chao1Nhat(Stats({1, 1, 2, 3})), 4.5);
}

TEST(Chao1Nhat, FiniteWithoutDoubletons) {
  // Bias-corrected form: c + f1(f1−1)/2 when f2 = 0.
  EXPECT_DOUBLE_EQ(Chao1Nhat(Stats({1, 1, 1, 3})), 4.0 + 3.0);
}

TEST(Chao1Nhat, CompleteSampleEstimatesC) {
  EXPECT_DOUBLE_EQ(Chao1Nhat(Stats({2, 3, 4})), 3.0);
}

TEST(Chao1Nhat, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Chao1Nhat(FrequencyStatistics()), 0.0);
}

TEST(Jackknife1Nhat, KnownValue) {
  // c=3, f1=2, n=4: N̂ = 3 + 2·3/4 = 4.5.
  EXPECT_DOUBLE_EQ(Jackknife1Nhat(Stats({1, 1, 2})), 4.5);
}

TEST(Jackknife1Nhat, NoSingletonsEstimatesC) {
  EXPECT_DOUBLE_EQ(Jackknife1Nhat(Stats({2, 2, 5})), 3.0);
}

TEST(Jackknife2Nhat, ReducesToJackknife1OnTinySamples) {
  EXPECT_DOUBLE_EQ(Jackknife2Nhat(Stats({1, 1})),
                   Jackknife1Nhat(Stats({1, 1})));
}

TEST(Jackknife2Nhat, KnownValue) {
  // counts {1,1,2,3}: n=7, c=4, f1=2, f2=1.
  // N̂ = 4 + 2·11/7 − 1·25/42 = 4 + 22/7 − 25/42.
  const double expected = 4.0 + 22.0 / 7.0 - 25.0 / 42.0;
  EXPECT_NEAR(Jackknife2Nhat(Stats({1, 1, 2, 3})), expected, 1e-12);
}

TEST(Jackknife2Nhat, NeverBelowC) {
  // Heavy f2 can push the raw formula below c; the clamp must hold.
  const auto stats = Stats({2, 2, 2, 2, 2, 2});
  EXPECT_GE(Jackknife2Nhat(stats), 6.0);
}

TEST(AceNhat, CompleteAbundantSampleEstimatesC) {
  // Every class abundant (> cutoff): N̂ = c_abundant.
  EXPECT_DOUBLE_EQ(AceNhat(Stats({11, 12, 20})), 3.0);
}

TEST(AceNhat, AllSingletonsFallsBackToChao1) {
  const auto stats = Stats({1, 1, 1});
  EXPECT_DOUBLE_EQ(AceNhat(stats), Chao1Nhat(stats));
}

TEST(AceNhat, MixedSampleAboveC) {
  const auto stats = Stats({1, 1, 2, 3, 15, 20});
  EXPECT_GT(AceNhat(stats), 6.0);
  EXPECT_TRUE(std::isfinite(AceNhat(stats)));
}

TEST(AceNhat, CutoffSeparatesRareAndAbundant) {
  // With cutoff 2, the class observed 3 times counts as abundant and is
  // excluded from the coverage machinery.
  const auto stats = Stats({1, 2, 3});
  const double ace_small_cutoff = AceNhat(stats, 2);
  const double ace_large_cutoff = AceNhat(stats, 10);
  EXPECT_TRUE(std::isfinite(ace_small_cutoff));
  EXPECT_TRUE(std::isfinite(ace_large_cutoff));
  EXPECT_NE(ace_small_cutoff, ace_large_cutoff);
}

TEST(SpeciesNhat, DispatchMatchesDirectCalls) {
  const auto stats = Stats({1, 1, 2, 3, 5});
  EXPECT_DOUBLE_EQ(SpeciesNhat(SpeciesEstimator::kChao1, stats),
                   Chao1Nhat(stats));
  EXPECT_DOUBLE_EQ(SpeciesNhat(SpeciesEstimator::kJackknife1, stats),
                   Jackknife1Nhat(stats));
  EXPECT_DOUBLE_EQ(SpeciesNhat(SpeciesEstimator::kJackknife2, stats),
                   Jackknife2Nhat(stats));
  EXPECT_DOUBLE_EQ(SpeciesNhat(SpeciesEstimator::kAce, stats),
                   AceNhat(stats));
  EXPECT_DOUBLE_EQ(SpeciesNhat(SpeciesEstimator::kChao92, stats),
                   Chao92Nhat(stats));
}

TEST(SpeciesNhat, AllEstimatorsDominateC) {
  const std::vector<std::vector<int64_t>> cases = {
      {1, 2, 3}, {1, 1, 4, 4}, {2, 2, 2}, {1, 1, 1, 2, 5, 11}};
  for (const auto& counts : cases) {
    const auto stats = Stats(counts);
    for (SpeciesEstimator est :
         {SpeciesEstimator::kChao1, SpeciesEstimator::kJackknife1,
          SpeciesEstimator::kJackknife2, SpeciesEstimator::kAce,
          SpeciesEstimator::kGoodTuring}) {
      EXPECT_GE(SpeciesNhat(est, stats), static_cast<double>(stats.c()))
          << SpeciesEstimatorName(est);
    }
  }
}

TEST(SpeciesNhat, GoodTuringMatchesChao92WithoutSkewTerm) {
  // For a sample with γ̂² = 0 the two coincide.
  const auto stats = Stats({2, 2, 2, 1});
  EXPECT_NEAR(SpeciesNhat(SpeciesEstimator::kGoodTuring, stats),
              Chao92Nhat(stats), 1e-9);
}

TEST(SpeciesEstimatorName, Names) {
  EXPECT_STREQ(SpeciesEstimatorName(SpeciesEstimator::kChao1), "chao1");
  EXPECT_STREQ(SpeciesEstimatorName(SpeciesEstimator::kAce), "ace");
  EXPECT_STREQ(SpeciesEstimatorName(SpeciesEstimator::kJackknife2),
               "jackknife2");
}

TEST(SpeciesNhat, EmptySampleIsZeroEverywhere) {
  const FrequencyStatistics empty;
  for (SpeciesEstimator est :
       {SpeciesEstimator::kChao1, SpeciesEstimator::kJackknife1,
        SpeciesEstimator::kJackknife2, SpeciesEstimator::kAce}) {
    EXPECT_DOUBLE_EQ(SpeciesNhat(est, empty), 0.0);
  }
}

}  // namespace
}  // namespace uuq
