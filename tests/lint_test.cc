// Tests for the uuq_lint rule engine (tools/uuq_lint_lib.h).
//
// Three layers, mirroring how the linter runs in CI:
//   1. Fixture files (tests/lint_fixtures/): one violating and one clean
//      snippet per rule, replayed under synthetic in-scope paths — the
//      violating file must fire exactly its own rule, the clean one nothing.
//   2. Allowlist round-trip: a finding built from the bad fixture is
//      suppressed by a matching rule|suffix|needle entry, survives a
//      non-matching one, and stale entries are detectable via `used`.
//   3. The real tree: every src/**/*.{h,cc} under UUQ_LINT_SRC_ROOT must
//      lint clean against the committed allowlist (the in-process twin of
//      the `uuq_lint_src` ctest entry).
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "uuq_lint_lib.h"

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string Fixture(const std::string& name) {
  return ReadFile(fs::path(UUQ_LINT_FIXTURE_DIR) / name);
}

// rule -> (fixture basename stem, synthetic path that puts it in scope).
struct RuleFixture {
  std::string rule;
  std::string stem;
  std::string path;
};

const std::vector<RuleFixture>& Fixtures() {
  static const std::vector<RuleFixture> kFixtures = {
      {"random-source", "random_source", "src/core/fixture.cc"},
      {"unordered-hot-path", "unordered_hot_path", "src/stats/fixture.cc"},
      {"atomic-order", "atomic_order", "src/serving/fixture.cc"},
      {"naked-new", "naked_new", "src/core/bootstrap.cc"},
      {"thread-local-justification", "thread_local_justification",
       "src/core/fixture.cc"},
  };
  return kFixtures;
}

TEST(LintFixtures, EachBadFixtureFiresExactlyItsOwnRule) {
  for (const RuleFixture& f : Fixtures()) {
    const std::vector<uuq_lint::Finding> findings =
        uuq_lint::LintFile(f.path, Fixture(f.stem + "_bad.cc.txt"));
    ASSERT_FALSE(findings.empty()) << f.rule << " did not fire";
    for (const uuq_lint::Finding& finding : findings) {
      EXPECT_EQ(finding.rule, f.rule)
          << "unexpected cross-rule finding in " << f.stem << "_bad: "
          << finding.rule << " at line " << finding.line;
      EXPECT_GT(finding.line, 0);
      EXPECT_EQ(finding.file, f.path);
      EXPECT_FALSE(finding.message.empty());
    }
  }
}

TEST(LintFixtures, EachGoodFixtureIsClean) {
  for (const RuleFixture& f : Fixtures()) {
    const std::vector<uuq_lint::Finding> findings =
        uuq_lint::LintFile(f.path, Fixture(f.stem + "_good.cc.txt"));
    for (const uuq_lint::Finding& finding : findings) {
      ADD_FAILURE() << f.stem << "_good flagged: [" << finding.rule
                    << "] line " << finding.line << ": " << finding.raw;
    }
  }
}

TEST(LintFixtures, AtomicOrderBadFixtureFlagsEveryOpKind) {
  // The bad fixture has four distinct defaulted ops (RMW, store, load, CAS);
  // each must produce its own finding, proving the scan is per-call-site.
  const std::vector<uuq_lint::Finding> findings = uuq_lint::LintFile(
      "src/serving/fixture.cc", Fixture("atomic_order_bad.cc.txt"));
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintScope, RulesRespectPathScoping) {
  // unordered containers are fine outside src/core//src/stats...
  const std::string unordered = Fixture("unordered_hot_path_bad.cc.txt");
  EXPECT_TRUE(uuq_lint::LintFile("src/serving/fixture.cc", unordered).empty());
  // ...and naked new is fine outside the replicate-path file list.
  const std::string naked = Fixture("naked_new_bad.cc.txt");
  EXPECT_TRUE(uuq_lint::LintFile("src/serving/fixture.cc", naked).empty());
  // Entropy primitives are allowed only in the RNG implementation itself.
  const std::string random = Fixture("random_source_bad.cc.txt");
  EXPECT_TRUE(uuq_lint::LintFile("src/common/random.cc", random).empty());
  EXPECT_FALSE(uuq_lint::LintFile("src/db/fixture.cc", random).empty());
  // Non-C++ paths are out of scope entirely.
  EXPECT_TRUE(uuq_lint::LintFile("src/core/fixture.py", random).empty());
}

TEST(LintAllowlist, RoundTripSuppressesExactlyTheMatchingFinding) {
  // The naked-new bad fixture yields exactly one finding, which makes the
  // suppress-it-all round trip exact.
  const std::string bad = Fixture("naked_new_bad.cc.txt");
  std::vector<uuq_lint::Finding> findings =
      uuq_lint::LintFile("src/core/bootstrap.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  const uuq_lint::Finding original = findings.front();

  // Entry built from the finding itself: suppresses it, flips `used`.
  std::vector<uuq_lint::AllowEntry> allow = uuq_lint::ParseAllowlist(
      "# grandfathered buffer (freed before the warm loop starts)\n"
      "naked-new|src/core/bootstrap.cc|new double[\n");
  ASSERT_EQ(allow.size(), 1u);
  std::vector<uuq_lint::Finding> survived =
      uuq_lint::ApplyAllowlist(findings, &allow);
  EXPECT_TRUE(survived.empty());
  EXPECT_TRUE(allow[0].used);

  // Wrong rule, wrong path, or wrong needle: the finding survives and the
  // entry stays stale.
  for (const char* miss : {
           "atomic-order|src/core/bootstrap.cc|new double[\n",
           "naked-new|src/core/other.cc|new double[\n",
           "naked-new|src/core/bootstrap.cc|no_such_token\n",
       }) {
    std::vector<uuq_lint::AllowEntry> no_match =
        uuq_lint::ParseAllowlist(miss);
    ASSERT_EQ(no_match.size(), 1u) << miss;
    std::vector<uuq_lint::Finding> still =
        uuq_lint::ApplyAllowlist({original}, &no_match);
    EXPECT_EQ(still.size(), 1u) << miss;
    EXPECT_FALSE(no_match[0].used) << miss;
  }
}

TEST(LintAllowlist, ParserSkipsCommentsBlanksAndMalformedLines) {
  const std::vector<uuq_lint::AllowEntry> allow = uuq_lint::ParseAllowlist(
      "# comment only\n"
      "\n"
      "malformed-no-pipes\n"
      "one|pipe-only\n"
      "naked-new|src/core/bootstrap.cc|new double  # trailing comment\n");
  ASSERT_EQ(allow.size(), 1u);
  EXPECT_EQ(allow[0].rule, "naked-new");
  EXPECT_EQ(allow[0].path_suffix, "src/core/bootstrap.cc");
  EXPECT_EQ(allow[0].needle, "new double");
}

TEST(LintStripper, CommentsStringsAndRawStringsAreBlanked) {
  const std::vector<uuq_lint::SourceLine> lines = uuq_lint::SplitAndStrip(
      "int a = 1; // std::random_device in a line comment\n"
      "/* srand(1) in a block\n"
      "   comment spanning lines */ int b = 2;\n"
      "const char* s = \"rand( inside a string\";\n"
      "const char* r = R\"x(std::random_device)x\";\n"
      "char c = '\\\"'; int after = 3;\n");
  // Newline-terminated input yields a trailing empty line — harmless for
  // linting (nothing matches an empty line).
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_TRUE(lines[6].raw.empty());
  for (const uuq_lint::SourceLine& line : lines) {
    EXPECT_EQ(line.raw.size(), line.code.size());
    EXPECT_EQ(line.code.find("random_device"), std::string::npos) << line.raw;
    EXPECT_EQ(line.code.find("srand"), std::string::npos) << line.raw;
    EXPECT_EQ(line.code.find("rand("), std::string::npos) << line.raw;
  }
  // Code outside literals/comments survives in place.
  EXPECT_NE(lines[0].code.find("int a = 1;"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int b = 2;"), std::string::npos);
  EXPECT_NE(lines[5].code.find("int after = 3;"), std::string::npos);
}

TEST(LintEnvDoc, FiresOnUndocumentedVarOnly) {
  const std::vector<std::string> documented =
      uuq_lint::DocumentedEnvVars("| `UUQ_GOOD_KNOB` | documented |\n");
  ASSERT_EQ(documented, std::vector<std::string>{"UUQ_GOOD_KNOB"});

  // Undocumented read fires, naming the variable.
  const std::vector<uuq_lint::Finding> bad = uuq_lint::LintEnvDocFile(
      "src/core/fixture.cc",
      "bool On() { return std::getenv(\"UUQ_BAD_KNOB\") != nullptr; }\n",
      documented);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.front().rule, "env-doc");
  EXPECT_NE(bad.front().message.find("UUQ_BAD_KNOB"), std::string::npos);

  // Documented read is clean.
  EXPECT_TRUE(uuq_lint::LintEnvDocFile(
                  "src/core/fixture.cc",
                  "bool On() { return std::getenv(\"UUQ_GOOD_KNOB\"); }\n",
                  documented)
                  .empty());

  // getenv in a comment or string never fires (code-view match).
  EXPECT_TRUE(uuq_lint::LintEnvDocFile(
                  "src/core/fixture.cc",
                  "// std::getenv(\"UUQ_BAD_KNOB\") only in this comment\n"
                  "const char* kDoc = \"getenv(UUQ_BAD_KNOB)\";\n",
                  documented)
                  .empty());

  // A call wrapped before its argument is still resolved (next-line
  // lookahead).
  const std::vector<uuq_lint::Finding> wrapped = uuq_lint::LintEnvDocFile(
      "src/core/fixture.cc",
      "bool On() {\n"
      "  return std::getenv(\n"
      "             \"UUQ_BAD_KNOB\") != nullptr;\n"
      "}\n",
      documented);
  ASSERT_EQ(wrapped.size(), 1u);
  EXPECT_EQ(wrapped.front().rule, "env-doc");
}

TEST(LintEnvDoc, DocumentedEnvVarsIgnoresProseMentions) {
  const std::vector<std::string> documented = uuq_lint::DocumentedEnvVars(
      "Set `UUQ_PROSE_ONLY` for fun — not a table row.\n"
      "| Variable | Effect |\n"
      "|---|---|\n"
      "| `UUQ_ROW_A` | first knob |\n"
      "  | `UUQ_ROW_B` | indented row still counts |\n");
  EXPECT_EQ(documented,
            (std::vector<std::string>{"UUQ_ROW_A", "UUQ_ROW_B"}));
}

// The env-doc twin of LintTree below: every getenv("UUQ_*") read across
// src/, bench/ AND tools/ must have a row in README.md's env table. This is
// the test that fails when someone adds a knob without documenting it.
TEST(LintEnvDoc, RepositoryEnvReadsAreAllDocumented) {
  const fs::path root(UUQ_LINT_SRC_ROOT);
  const std::string readme = ReadFile(root / "README.md");
  const std::vector<std::string> documented =
      uuq_lint::DocumentedEnvVars(readme);
  ASSERT_GT(documented.size(), 10u)
      << "README env table parse found suspiciously few rows";

  std::vector<std::pair<std::string, fs::path>> files;
  for (const char* dir : {"src", "bench", "tools"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub)) continue;
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                         entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 20u);
  for (const auto& [label, disk_path] : files) {
    for (const uuq_lint::Finding& f :
         uuq_lint::LintEnvDocFile(label, ReadFile(disk_path), documented)) {
      ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                    << f.message << "\n    " << f.raw;
    }
  }
}

TEST(LintSelfTest, EmbeddedCorpusPasses) {
  std::vector<std::string> errors;
  EXPECT_TRUE(uuq_lint::RunSelfTest(&errors));
  for (const std::string& e : errors) ADD_FAILURE() << e;
}

// The in-process twin of the `uuq_lint_src` ctest entry: the committed tree
// must lint clean under the committed allowlist. Running it here too gives
// failures gtest-style context when a rule regresses.
TEST(LintTree, RepositorySourcesLintCleanUnderCommittedAllowlist) {
  const fs::path root(UUQ_LINT_SRC_ROOT);
  const fs::path src = root / "src";
  ASSERT_TRUE(fs::is_directory(src));

  std::vector<uuq_lint::AllowEntry> allow;
  const fs::path allow_file = root / "tools" / "uuq_lint_allowlist.txt";
  if (fs::exists(allow_file)) {
    allow = uuq_lint::ParseAllowlist(ReadFile(allow_file));
  }

  std::vector<std::pair<std::string, fs::path>> files;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                       entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 20u) << "tree scan found suspiciously few files";

  std::vector<uuq_lint::Finding> findings;
  for (const auto& [label, disk_path] : files) {
    std::vector<uuq_lint::Finding> f =
        uuq_lint::LintFile(label, ReadFile(disk_path));
    findings.insert(findings.end(), f.begin(), f.end());
  }
  findings = uuq_lint::ApplyAllowlist(std::move(findings), &allow);
  for (const uuq_lint::Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n    " << f.raw;
  }
}

}  // namespace
