#include "common/status.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryConstructorsSetCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NumericError("x").code(), StatusCode::kNumericError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(Status, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
  EXPECT_FALSE(s.ok());
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool fail) -> Result<double> {
    if (fail) return Status::NumericError("singular");
    return 1.5;
  };
  EXPECT_TRUE(make(false).ok());
  EXPECT_FALSE(make(true).ok());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_DEATH({ (void)r.value(); }, "NotFound");
}

}  // namespace
}  // namespace uuq
