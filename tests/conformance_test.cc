// Estimator conformance suite for the columnar bootstrap engine.
//
// Two layers of guarantees:
//  1. OLD vs NEW: for every estimator with a columnar replicate path, the
//     columnar bootstrap/jackknife must agree with the materializing
//     reference path (ReplicateEvaluation::kMaterialized — the exact
//     pre-columnar semantics, replicate for replicate) within 1e-9 relative
//     tolerance. In practice the paths are bit-identical for the
//     kAverage/kFirst/kLast fusion policies; the tolerance documents the
//     contract, not the observed slack.
//  2. GOLDEN: fixed-seed end-to-end estimates on the paper's calibrated
//     scenarios, pinned with a loose relative tolerance so a platform's FP
//     contraction choices can't flake the suite while genuine estimator
//     regressions still trip it.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/frequency.h"
#include "core/monte_carlo.h"
#include "core/naive.h"
#include "core/query_correction.h"
#include "core/robust.h"
#include "simulation/crowd.h"
#include "simulation/population.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kOldNewRelTol = 1e-9;

void ExpectRelNear(double actual, double expected, double rel_tol,
                   const std::string& what) {
  const double scale = std::max({std::fabs(actual), std::fabs(expected), 1.0});
  EXPECT_NEAR(actual, expected, rel_tol * scale) << what;
}

void ExpectIntervalsAgree(const BootstrapInterval& a,
                          const BootstrapInterval& b, double rel_tol,
                          const std::string& what) {
  ExpectRelNear(a.point, b.point, rel_tol, what + ".point");
  ExpectRelNear(a.lo, b.lo, rel_tol, what + ".lo");
  ExpectRelNear(a.hi, b.hi, rel_tol, what + ".hi");
  ExpectRelNear(a.median, b.median, rel_tol, what + ".median");
  EXPECT_EQ(a.finite_replicates, b.finite_replicates) << what;
  ASSERT_EQ(a.replicates.size(), b.replicates.size()) << what;
  for (size_t i = 0; i < a.replicates.size(); ++i) {
    ExpectRelNear(a.replicates[i], b.replicates[i], rel_tol,
                  what + ".replicates[" + std::to_string(i) + "]");
  }
}

IntegratedSample SyntheticSample(uint64_t seed = 3,
                                 FusionPolicy policy = FusionPolicy::kAverage) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.seed = seed + 1;
  IntegratedSample sample(policy);
  for (const Observation& obs :
       CrowdSimulator(&population, crowd).GenerateStream()) {
    sample.Add(obs);
  }
  return sample;
}

IntegratedSample StreakerSample() {
  IntegratedSample sample = SyntheticSample(5);
  for (int i = 0; i < 500; ++i) {
    sample.Add("streaker", "extra-" + std::to_string(i % 150), 50.0 + i % 150);
  }
  return sample;
}

IntegratedSample PaperSample(int64_t n = 400) {
  const Scenario scenario = scenarios::UsTechEmployment();
  IntegratedSample sample;
  for (int64_t i = 0;
       i < n && i < static_cast<int64_t>(scenario.stream.size()); ++i) {
    sample.Add(scenario.stream[i]);
  }
  return sample;
}

BootstrapInterval RunBootstrap(const IntegratedSample& sample,
                               const SumEstimator& estimator,
                               ReplicateEvaluation evaluation,
                               int replicates = 32) {
  BootstrapOptions options;
  options.replicates = replicates;
  options.evaluation = evaluation;
  return BootstrapCorrectedSum(sample, estimator, options);
}

void ExpectOldNewBootstrapAgree(const IntegratedSample& sample,
                                const SumEstimator& estimator,
                                const std::string& what, int replicates = 32) {
  ASSERT_TRUE(estimator.SupportsReplicates()) << what;
  const BootstrapInterval columnar =
      RunBootstrap(sample, estimator, ReplicateEvaluation::kColumnar,
                   replicates);
  const BootstrapInterval materialized =
      RunBootstrap(sample, estimator, ReplicateEvaluation::kMaterialized,
                   replicates);
  ExpectIntervalsAgree(columnar, materialized, kOldNewRelTol, what);
}

// ---------------------------------------------------------------------------
// Old vs new, per estimator.
// ---------------------------------------------------------------------------

TEST(BootstrapConformance, BucketColumnarMatchesMaterialized) {
  ExpectOldNewBootstrapAgree(SyntheticSample(), BucketSumEstimator(),
                             "bucket/synthetic");
  ExpectOldNewBootstrapAgree(PaperSample(), BucketSumEstimator(),
                             "bucket/us-tech");
}

TEST(BootstrapConformance, NaiveAndFrequencyColumnarMatchesMaterialized) {
  ExpectOldNewBootstrapAgree(SyntheticSample(), NaiveEstimator(),
                             "naive/synthetic");
  ExpectOldNewBootstrapAgree(SyntheticSample(7), FrequencyEstimator(),
                             "frequency/synthetic");
}

TEST(BootstrapConformance, MonteCarloColumnarMatchesMaterialized) {
  MonteCarloOptions options;
  options.runs_per_point = 2;
  options.n_grid_steps = 4;
  ExpectOldNewBootstrapAgree(SyntheticSample(11), MonteCarloEstimator(options),
                             "monte-carlo/synthetic", /*replicates=*/8);
}

TEST(BootstrapConformance, RobustColumnarMatchesMaterializedUnderStreaker) {
  // The robust estimator re-advises per replicate; the columnar advice must
  // flip exactly when the materialized advice does.
  EstimatorAdvisor::Options options;
  options.mc_options.runs_per_point = 2;
  options.mc_options.n_grid_steps = 4;
  ExpectOldNewBootstrapAgree(StreakerSample(), RobustSumEstimator(options),
                             "robust/streaker", /*replicates=*/8);
}

TEST(BootstrapConformance, FusionPoliciesColumnarMatchesMaterialized) {
  ExpectOldNewBootstrapAgree(SyntheticSample(9, FusionPolicy::kFirst),
                             BucketSumEstimator(), "bucket/first");
  ExpectOldNewBootstrapAgree(SyntheticSample(9, FusionPolicy::kLast),
                             BucketSumEstimator(), "bucket/last");
  ExpectOldNewBootstrapAgree(SyntheticSample(9, FusionPolicy::kMajority),
                             BucketSumEstimator(), "bucket/majority");
}

TEST(BootstrapConformance, MajorityPolicyRunsColumnarUnderAuto) {
  // kMajority now folds columnar (report-slot histogram), so kAuto must take
  // the columnar path and still agree with the materializing reference.
  const IntegratedSample sample = SyntheticSample(9, FusionPolicy::kMajority);
  const BucketSumEstimator bucket;
  const BootstrapInterval auto_path =
      RunBootstrap(sample, bucket, ReplicateEvaluation::kAuto);
  const BootstrapInterval columnar =
      RunBootstrap(sample, bucket, ReplicateEvaluation::kColumnar);
  const BootstrapInterval materialized =
      RunBootstrap(sample, bucket, ReplicateEvaluation::kMaterialized);
  ExpectIntervalsAgree(auto_path, columnar, 0.0, "bucket/majority-auto");
  ExpectIntervalsAgree(auto_path, materialized, kOldNewRelTol,
                       "bucket/majority-materialized");
}

TEST(JackknifeConformance, ColumnarMatchesMaterialized) {
  const IntegratedSample sample = SyntheticSample();
  const BucketSumEstimator bucket;
  const NaiveEstimator naive;
  for (const SumEstimator* estimator :
       {static_cast<const SumEstimator*>(&bucket),
        static_cast<const SumEstimator*>(&naive)}) {
    const JackknifeInterval a = JackknifeCorrectedSum(
        sample, *estimator, 1.96, nullptr, ReplicateEvaluation::kColumnar);
    const JackknifeInterval b = JackknifeCorrectedSum(
        sample, *estimator, 1.96, nullptr, ReplicateEvaluation::kMaterialized);
    ExpectRelNear(a.point, b.point, kOldNewRelTol, "jk.point");
    ExpectRelNear(a.standard_error, b.standard_error, kOldNewRelTol, "jk.se");
    ExpectRelNear(a.lo, b.lo, kOldNewRelTol, "jk.lo");
    ExpectRelNear(a.hi, b.hi, kOldNewRelTol, "jk.hi");
    EXPECT_EQ(a.finite_replicates, b.finite_replicates);
  }
}

TEST(ResampleSourcesConformance, AdapterMatchesViewMaterialization) {
  // The thin adapter must reproduce SampleView's draw + materialize for the
  // same Rng state — entity for entity.
  const IntegratedSample sample = SyntheticSample();
  Rng a(123), b(123);
  const IntegratedSample via_adapter = ResampleSources(sample, &a);
  const SampleView view(sample);
  std::vector<int32_t> draws;
  view.DrawBootstrapSources(&b, &draws);
  const IntegratedSample via_view = view.MaterializeReplicate(draws);
  ASSERT_EQ(via_adapter.n(), via_view.n());
  ASSERT_EQ(via_adapter.c(), via_view.c());
  for (int64_t i = 0; i < via_adapter.c(); ++i) {
    EXPECT_EQ(via_adapter.entities()[i].key, via_view.entities()[i].key);
    EXPECT_DOUBLE_EQ(via_adapter.entities()[i].value,
                     via_view.entities()[i].value);
  }
  EXPECT_EQ(via_adapter.SourceSizeVector(), via_view.SourceSizeVector());
}

// ---------------------------------------------------------------------------
// Golden fixed-seed scenario estimates (loose tolerance: FP contraction may
// differ across compilers; estimator regressions are orders louder).
// ---------------------------------------------------------------------------

constexpr double kGoldenRelTol = 1e-6;

TEST(GoldenConformance, UsTechEmploymentBucketBootstrap) {
  const IntegratedSample sample = PaperSample(400);
  const BucketSumEstimator bucket;
  BootstrapOptions options;
  options.replicates = 48;
  const BootstrapInterval interval =
      BootstrapCorrectedSum(sample, bucket, options);
  ExpectRelNear(interval.point, 3652759.39, kGoldenRelTol, "point");
  ExpectRelNear(interval.lo, 2074518.184, kGoldenRelTol, "lo");
  ExpectRelNear(interval.hi, 2758483.274, kGoldenRelTol, "hi");
  ExpectRelNear(interval.median, 2378656.099, kGoldenRelTol, "median");
  EXPECT_EQ(interval.finite_replicates, 48);
}

TEST(GoldenConformance, UsTechEmploymentBucketJackknife) {
  const IntegratedSample sample = PaperSample(400);
  const JackknifeInterval jk =
      JackknifeCorrectedSum(sample, BucketSumEstimator());
  ExpectRelNear(jk.point, 3652759.39, kGoldenRelTol, "point");
  ExpectRelNear(jk.standard_error, 469481.4536, kGoldenRelTol, "se");
  ExpectRelNear(jk.lo, 2732575.741, kGoldenRelTol, "lo");
  ExpectRelNear(jk.hi, 4572943.039, kGoldenRelTol, "hi");
}

TEST(GoldenConformance, UsTechEmploymentNaiveBootstrap) {
  const IntegratedSample sample = PaperSample(400);
  BootstrapOptions options;
  options.replicates = 48;
  const BootstrapInterval interval =
      BootstrapCorrectedSum(sample, NaiveEstimator(), options);
  ExpectRelNear(interval.point, 8322380.614, kGoldenRelTol, "point");
  ExpectRelNear(interval.lo, 2674519.507, kGoldenRelTol, "lo");
  ExpectRelNear(interval.hi, 4945342.271, kGoldenRelTol, "hi");
}

// ---------------------------------------------------------------------------
// Query-level intervals ride the same engine.
// ---------------------------------------------------------------------------

TEST(QueryBootstrapConformance, AttachedIntervalsMatchAcrossPaths) {
  const IntegratedSample sample = SyntheticSample();
  for (const char* sql :
       {"SELECT SUM(value) FROM integrated", "SELECT COUNT(value) FROM integrated",
        "SELECT AVG(value) FROM integrated", "SELECT MAX(value) FROM integrated"}) {
    QueryCorrector::Options options;
    options.attach_bootstrap = true;
    options.bootstrap.replicates = 24;
    options.bootstrap.evaluation = ReplicateEvaluation::kAuto;
    const auto columnar = QueryCorrector(options).CorrectSql(sample, sql);
    ASSERT_TRUE(columnar.ok()) << sql;
    ASSERT_TRUE(columnar.value().bootstrap_valid) << sql;
    EXPECT_GT(columnar.value().bootstrap.finite_replicates, 0) << sql;
    EXPECT_LE(columnar.value().bootstrap.lo, columnar.value().bootstrap.hi)
        << sql;

    options.bootstrap.evaluation = ReplicateEvaluation::kMaterialized;
    const auto materialized = QueryCorrector(options).CorrectSql(sample, sql);
    ASSERT_TRUE(materialized.ok()) << sql;
    ExpectIntervalsAgree(columnar.value().bootstrap,
                         materialized.value().bootstrap, kOldNewRelTol, sql);
  }
}

}  // namespace
}  // namespace uuq
