#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace uuq {
namespace {

TEST(CancelToken, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.Fired());
  EXPECT_EQ(token.reason(), StatusCode::kOk);
  EXPECT_TRUE(token.ToStatus("op").ok());
  EXPECT_TRUE(std::isinf(token.SecondsRemaining()));
}

TEST(CancelToken, RequestCancelFiresAllTokens) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = a;  // copies observe the same state
  EXPECT_FALSE(a.Fired());
  source.RequestCancel();
  EXPECT_TRUE(a.Fired());
  EXPECT_TRUE(b.Fired());
  EXPECT_EQ(a.reason(), StatusCode::kCancelled);
  Status s = b.ToStatus("query q1");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("query q1"), std::string::npos);
}

TEST(CancelToken, ExpiredDeadlineLatchesDeadlineExceeded) {
  CancelSource source;
  source.SetDeadlineAfter(std::chrono::nanoseconds(0));
  CancelToken token = source.token();
  EXPECT_TRUE(token.Fired());
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  // Latched: cancelling afterwards does not rewrite the reason.
  source.RequestCancel();
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.ToStatus("op").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.SecondsRemaining(), 0.0);
}

TEST(CancelToken, CancelBeatsUnexpiredDeadline) {
  CancelSource source;
  source.SetDeadlineAfter(std::chrono::hours(24));
  source.RequestCancel();
  EXPECT_TRUE(source.token().Fired());
  EXPECT_EQ(source.token().reason(), StatusCode::kCancelled);
}

TEST(CancelToken, FutureDeadlineDoesNotFireAndReportsBudget) {
  CancelSource source;
  source.SetDeadlineAfter(std::chrono::hours(1));
  CancelToken token = source.token();
  EXPECT_FALSE(token.Fired());
  const double remaining = token.SecondsRemaining();
  EXPECT_GT(remaining, 3000.0);
  EXPECT_LE(remaining, 3600.0);
}

TEST(CancelToken, ConcurrentPollersAgreeOnReason) {
  CancelSource source;
  CancelToken token = source.token();
  std::vector<std::thread> pollers;
  std::atomic<int> fired{0};
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([token, &fired] {
      while (!token.Fired()) std::this_thread::yield();
      fired.fetch_add(1);
    });
  }
  source.RequestCancel();
  for (auto& p : pollers) p.join();
  EXPECT_EQ(fired.load(), 4);
  EXPECT_EQ(token.reason(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace uuq
