#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace uuq {
namespace {

TEST(CancelToken, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.Fired());
  EXPECT_EQ(token.reason(), StatusCode::kOk);
  EXPECT_TRUE(token.ToStatus("op").ok());
  EXPECT_TRUE(std::isinf(token.SecondsRemaining()));
}

TEST(CancelToken, RequestCancelFiresAllTokens) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = a;  // copies observe the same state
  EXPECT_FALSE(a.Fired());
  source.RequestCancel();
  EXPECT_TRUE(a.Fired());
  EXPECT_TRUE(b.Fired());
  EXPECT_EQ(a.reason(), StatusCode::kCancelled);
  Status s = b.ToStatus("query q1");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("query q1"), std::string::npos);
}

TEST(CancelToken, ExpiredDeadlineLatchesDeadlineExceeded) {
  CancelSource source;
  source.SetDeadlineAfter(std::chrono::nanoseconds(0));
  CancelToken token = source.token();
  EXPECT_TRUE(token.Fired());
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  // Latched: cancelling afterwards does not rewrite the reason.
  source.RequestCancel();
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.ToStatus("op").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.SecondsRemaining(), 0.0);
}

TEST(CancelToken, CancelBeatsUnexpiredDeadline) {
  CancelSource source;
  source.SetDeadlineAfter(std::chrono::hours(24));
  source.RequestCancel();
  EXPECT_TRUE(source.token().Fired());
  EXPECT_EQ(source.token().reason(), StatusCode::kCancelled);
}

TEST(CancelToken, FutureDeadlineDoesNotFireAndReportsBudget) {
  CancelSource source;
  source.SetDeadlineAfter(std::chrono::hours(1));
  CancelToken token = source.token();
  EXPECT_FALSE(token.Fired());
  const double remaining = token.SecondsRemaining();
  EXPECT_GT(remaining, 3000.0);
  EXPECT_LE(remaining, 3600.0);
}

TEST(CancelToken, ConcurrentPollersAgreeOnReason) {
  CancelSource source;
  CancelToken token = source.token();
  std::vector<std::thread> pollers;
  std::atomic<int> fired{0};
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([token, &fired] {
      while (!token.Fired()) std::this_thread::yield();
      fired.fetch_add(1);
    });
  }
  source.RequestCancel();
  for (auto& p : pollers) p.join();
  EXPECT_EQ(fired.load(), 4);
  EXPECT_EQ(token.reason(), StatusCode::kCancelled);
}

// The race the latch exists for: an explicit RequestCancel landing in the
// same instant the deadline expires. Two threads collide on the `reason`
// CAS across many iterations with the deadline staggered around "now"
// (already expired / expiring mid-race / slightly future); whichever store
// wins, the terminal reason must be exactly one of kCancelled /
// kDeadlineExceeded, must never revert, and both threads must read the same
// value. Run under the TSan lane (`ctest -L concurrency`) this also proves
// the CancelShared layout is data-race-free — the pre-annotation plain
// bool+time_point deadline pair was not.
TEST(CancelStress, CancelVsDeadlineRaceLatchesExactlyOneReason) {
  constexpr int kIterations = 300;
  for (int i = 0; i < kIterations; ++i) {
    CancelSource source;
    // Stagger the deadline around "now" so different iterations exercise
    // already-expired, expiring-mid-race, and not-yet-expired interleavings
    // without any sleeps.
    source.SetDeadlineAfter(std::chrono::microseconds(i % 7));
    CancelToken token = source.token();

    std::atomic<int> seen_by_canceller{0};
    std::atomic<int> seen_by_poller{0};
    std::thread canceller([&source, token, &seen_by_canceller] {
      source.RequestCancel();
      while (!token.Fired()) {
      }
      seen_by_canceller.store(static_cast<int>(token.reason()),
                              std::memory_order_relaxed);
    });
    std::thread poller([token, &seen_by_poller] {
      while (!token.Fired()) {
      }
      seen_by_poller.store(static_cast<int>(token.reason()),
                           std::memory_order_relaxed);
    });
    canceller.join();
    poller.join();

    const StatusCode reason = token.reason();
    EXPECT_TRUE(reason == StatusCode::kCancelled ||
                reason == StatusCode::kDeadlineExceeded)
        << "iteration " << i << ": reason "
        << static_cast<int>(reason);
    // Both racers observed the same terminal value the owner reads now —
    // the latch never reverts or splits.
    EXPECT_EQ(seen_by_canceller.load(std::memory_order_relaxed),
              static_cast<int>(reason))
        << "iteration " << i;
    EXPECT_EQ(seen_by_poller.load(std::memory_order_relaxed),
              static_cast<int>(reason))
        << "iteration " << i;
    // A fired token never reports negative budget.
    EXPECT_GE(token.SecondsRemaining(), 0.0) << "iteration " << i;
    // Latch is stable: re-polling cannot change the reason.
    EXPECT_TRUE(token.Fired());
    EXPECT_EQ(token.reason(), reason) << "iteration " << i;
  }
}

// SetDeadline racing live pollers: the atomic deadline word means a poller
// reads either "unarmed" or a complete armed value, never a torn mix. The
// poller spins on SecondsRemaining()/Fired() while the owner re-arms the
// deadline repeatedly, then finally arms one in the past.
TEST(CancelStress, RearmingDeadlineWhilePolledIsRaceFree) {
  CancelSource source;
  CancelToken token = source.token();
  std::thread poller([token] {
    while (!token.Fired()) {
      ASSERT_GE(token.SecondsRemaining(), 0.0);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    source.SetDeadlineAfter(std::chrono::seconds(1 + (i % 3)));
  }
  // Final arm is already expired, so the poller's next Fired() latches and
  // the thread exits (the ctest timeout is the only backstop needed).
  source.SetDeadlineAfter(std::chrono::nanoseconds(0));
  poller.join();
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace uuq
