#include "stats/coverage.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uuq {
namespace {

TEST(GoodTuringCoverage, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(GoodTuringCoverage(FrequencyStatistics()), 0.0);
}

TEST(GoodTuringCoverage, AllSingletonsIsZero) {
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 1});
  EXPECT_DOUBLE_EQ(GoodTuringCoverage(stats), 0.0);
}

TEST(GoodTuringCoverage, NoSingletonsIsOne) {
  const auto stats = FrequencyStatistics::FromCounts({2, 3, 4});
  EXPECT_DOUBLE_EQ(GoodTuringCoverage(stats), 1.0);
}

TEST(GoodTuringCoverage, MatchesFormula) {
  // f1 = 2, n = 9 -> Ĉ = 1 − 2/9.
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 3, 4});
  EXPECT_DOUBLE_EQ(GoodTuringCoverage(stats), 1.0 - 2.0 / 9.0);
}

TEST(GoodTuringCoverage, AlwaysInUnitInterval) {
  for (int f1 = 0; f1 <= 5; ++f1) {
    std::vector<int64_t> counts(f1, 1);
    counts.push_back(3);
    const auto stats = FrequencyStatistics::FromCounts(counts);
    const double coverage = GoodTuringCoverage(stats);
    EXPECT_GE(coverage, 0.0);
    EXPECT_LE(coverage, 1.0);
  }
}

TEST(UnseenMass, ComplementsCoverage) {
  const auto stats = FrequencyStatistics::FromCounts({1, 2, 2, 5});
  EXPECT_DOUBLE_EQ(UnseenMass(stats) + GoodTuringCoverage(stats), 1.0);
}

TEST(SquaredCvEstimate, UniformLikeSampleIsZero) {
  // Every item seen the same number of times: dispersion at its minimum and
  // the max(...) clamp should floor the estimate at 0.
  const auto stats = FrequencyStatistics::FromCounts({3, 3, 3, 3});
  EXPECT_DOUBLE_EQ(SquaredCvEstimate(stats), 0.0);
}

TEST(SquaredCvEstimate, ToyExampleValue) {
  // Appendix F: counts {1,2,4} -> γ̂² = 0.1667.
  const auto stats = FrequencyStatistics::FromCounts({1, 2, 4});
  EXPECT_NEAR(SquaredCvEstimate(stats), 0.16667, 1e-4);
}

TEST(SquaredCvEstimate, ToyExampleAfterFifthSourceIsZero) {
  // Appendix F after s5: counts {2,2,4,1} -> γ̂² = 0 exactly.
  const auto stats = FrequencyStatistics::FromCounts({2, 2, 4, 1});
  EXPECT_DOUBLE_EQ(SquaredCvEstimate(stats), 0.0);
}

TEST(SquaredCvEstimate, NeverNegative) {
  const std::vector<std::vector<int64_t>> cases = {
      {1}, {1, 1}, {2}, {5, 5}, {1, 2, 3, 4}, {10, 1, 1}};
  for (const auto& counts : cases) {
    EXPECT_GE(SquaredCvEstimate(FrequencyStatistics::FromCounts(counts)), 0.0);
  }
}

TEST(SquaredCvEstimate, SkewedSampleIsPositive) {
  const auto stats = FrequencyStatistics::FromCounts({1, 1, 1, 20});
  EXPECT_GT(SquaredCvEstimate(stats), 0.0);
}

TEST(SquaredCvEstimate, TinySamplesAreZero) {
  EXPECT_DOUBLE_EQ(SquaredCvEstimate(FrequencyStatistics()), 0.0);
  EXPECT_DOUBLE_EQ(
      SquaredCvEstimate(FrequencyStatistics::FromCounts({1})), 0.0);
}

TEST(ExactCv, UniformIsZero) {
  EXPECT_DOUBLE_EQ(ExactCv({0.25, 0.25, 0.25, 0.25}), 0.0);
}

TEST(ExactCv, KnownValue) {
  // publicities {0.5, 0.5, 1.0, 2.0}: mean 1, pop-variance 0.375.
  const double cv = ExactCv({0.5, 0.5, 1.0, 2.0});
  EXPECT_NEAR(cv, std::sqrt(0.375), 1e-12);
}

TEST(ExactCv, EmptyIsZero) { EXPECT_DOUBLE_EQ(ExactCv({}), 0.0); }

TEST(CoverageSufficient, GateAtFortyPercent) {
  // f1 = 3, n = 5: Ĉ = 0.4 exactly -> sufficient (>=).
  const auto at_gate = FrequencyStatistics::FromCounts({1, 1, 1, 2});
  EXPECT_TRUE(CoverageSufficient(at_gate));
  // f1 = 5, n = 7: Ĉ ≈ 0.286 -> insufficient.
  const auto below = FrequencyStatistics::FromCounts({1, 1, 1, 1, 1, 2});
  EXPECT_FALSE(CoverageSufficient(below));
}

}  // namespace
}  // namespace uuq
