#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace uuq {
namespace {

double SumOf(const std::vector<double>& p) {
  return std::accumulate(p.begin(), p.end(), 0.0);
}

TEST(Normalize, SumsToOne) {
  const auto p = Normalize({1, 2, 3, 4});
  EXPECT_NEAR(SumOf(p), 1.0, 1e-12);
  EXPECT_NEAR(p[3], 0.4, 1e-12);
}

TEST(Normalize, AllZeroBecomesUniform) {
  const auto p = Normalize({0, 0, 0, 0});
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(NormalizeDeathTest, NegativeWeightAborts) {
  EXPECT_DEATH(Normalize({1, -1}), "non-negative");
}

TEST(UniformPublicity, AllEqual) {
  const auto p = UniformPublicity(5);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.2);
}

TEST(ExponentialPublicity, LambdaZeroIsUniform) {
  const auto p = ExponentialPublicity(10, 0.0);
  for (double v : p) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(ExponentialPublicity, HeadToTailRatioIsExpLambda) {
  const auto p = ExponentialPublicity(100, 4.0);
  EXPECT_NEAR(p.front() / p.back(), std::exp(4.0), 1e-9);
}

TEST(ExponentialPublicity, MonotoneDecreasing) {
  const auto p = ExponentialPublicity(50, 2.0);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_LT(p[i], p[i - 1]);
}

TEST(ExponentialPublicity, NegativeLambdaReverses) {
  const auto p = ExponentialPublicity(50, -2.0);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_GT(p[i], p[i - 1]);
}

TEST(ExponentialPublicity, SingleItem) {
  const auto p = ExponentialPublicity(1, 3.0);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(MonteCarloPublicity, ThetaMapsToTenXLambda) {
  // θλ = 0.4 must equal the λ = 4 exponential shape (DESIGN.md §2).
  const auto a = MonteCarloPublicity(64, 0.4);
  const auto b = ExponentialPublicity(64, 4.0);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(ZipfPublicity, FollowsPowerLaw) {
  const auto p = ZipfPublicity(10, 1.0);
  // p_1 / p_2 = 2 for s = 1.
  EXPECT_NEAR(p[0] / p[1], 2.0, 1e-9);
  EXPECT_NEAR(SumOf(p), 1.0, 1e-12);
}

TEST(ZipfPublicity, ExponentZeroIsUniform) {
  const auto p = ZipfPublicity(4, 0.0);
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(LogNormalPublicity, NormalizedAndPositive) {
  Rng rng(3);
  const auto p = LogNormalPublicity(100, 1.0, &rng);
  EXPECT_NEAR(SumOf(p), 1.0, 1e-9);
  for (double v : p) EXPECT_GT(v, 0.0);
}

TEST(LogNormalPublicity, HigherSigmaIsMoreSkewed) {
  Rng rng1(3), rng2(3);
  auto mild = LogNormalPublicity(1000, 0.2, &rng1);
  auto wild = LogNormalPublicity(1000, 2.0, &rng2);
  std::sort(mild.begin(), mild.end(), std::greater<double>());
  std::sort(wild.begin(), wild.end(), std::greater<double>());
  // Top-10 mass should be much larger under heavy skew.
  const double mild_top = std::accumulate(mild.begin(), mild.begin() + 10, 0.0);
  const double wild_top = std::accumulate(wild.begin(), wild.begin() + 10, 0.0);
  EXPECT_GT(wild_top, mild_top * 2);
}

}  // namespace
}  // namespace uuq
