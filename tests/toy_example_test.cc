// End-to-end reproduction of the paper's Appendix F toy example (Table 2):
// SELECT SUM(employee) FROM K over five companies {A,B,C,D,E} with values
// A=1000, B=2000, C=900, D=10000, E=300; ground truth φD = 14200.
//
// Before adding source s5 the integrated sample has multiplicities
// A:1, B:2, D:4 (n=7, c=3, f1=1, γ̂²=0.1667); after s5 = {A, E}:
// A:2, B:2, D:4, E:1 (n=9, c=4, f1=1, γ̂²=0). (The paper's "n = 10" table
// header is a typo — every Table 2 computation uses n = 9; see DESIGN.md.)
#include <gtest/gtest.h>

#include <cmath>

#include "core/bucket.h"
#include "core/frequency.h"
#include "core/naive.h"
#include "integration/sample.h"

namespace uuq {
namespace {

// Sources: D appears in all four, B in two, A in one (publicity-value
// correlation: big companies are better known).
IntegratedSample BeforeS5() {
  IntegratedSample sample;
  sample.Add("s1", "A", 1000);
  sample.Add("s1", "B", 2000);
  sample.Add("s1", "D", 10000);
  sample.Add("s2", "B", 2000);
  sample.Add("s2", "D", 10000);
  sample.Add("s3", "D", 10000);
  sample.Add("s4", "D", 10000);
  return sample;
}

IntegratedSample AfterS5() {
  IntegratedSample sample = BeforeS5();
  sample.Add("s5", "A", 1000);
  sample.Add("s5", "E", 300);
  return sample;
}

constexpr double kGroundTruth = 14200.0;

TEST(ToyExample, ObservedSumsMatchTable2) {
  EXPECT_DOUBLE_EQ(BeforeS5().ObservedSum(), 13000.0);
  EXPECT_DOUBLE_EQ(AfterS5().ObservedSum(), 13300.0);
}

TEST(ToyExample, SampleStatisticsBeforeS5) {
  const SampleStats stats = SampleStats::FromSample(BeforeS5());
  EXPECT_EQ(stats.n, 7);
  EXPECT_EQ(stats.c, 3);
  EXPECT_EQ(stats.f1, 1);
  EXPECT_NEAR(stats.Gamma2(), 0.16667, 1e-4);
}

TEST(ToyExample, SampleStatisticsAfterS5) {
  const SampleStats stats = SampleStats::FromSample(AfterS5());
  EXPECT_EQ(stats.n, 9);
  EXPECT_EQ(stats.c, 4);
  EXPECT_EQ(stats.f1, 1);
  EXPECT_DOUBLE_EQ(stats.Gamma2(), 0.0);
}

TEST(ToyExample, NaiveBeforeS5) {
  const Estimate est = NaiveEstimator().EstimateImpact(BeforeS5());
  EXPECT_NEAR(est.corrected_sum, 16009.0, 1.0);  // Table 2: ≈ 16009
}

TEST(ToyExample, NaiveAfterS5) {
  const Estimate est = NaiveEstimator().EstimateImpact(AfterS5());
  EXPECT_NEAR(est.corrected_sum, 14962.5, 0.5);  // Table 2: ≈ 14962
}

TEST(ToyExample, FrequencyBeforeS5) {
  const Estimate est = FrequencyEstimator().EstimateImpact(BeforeS5());
  EXPECT_NEAR(est.corrected_sum, 13694.0, 1.0);  // Table 2: ≈ 13694
}

TEST(ToyExample, FrequencyAfterS5) {
  const Estimate est = FrequencyEstimator().EstimateImpact(AfterS5());
  EXPECT_NEAR(est.corrected_sum, 13450.0, 0.5);  // Table 2: exactly 13450
}

TEST(ToyExample, BucketBeforeS5) {
  // Dynamic bucketing finds b1 = {A, B}, b2 = {D}: Δ = 1500 -> 14500.
  const Estimate est = BucketSumEstimator().EstimateImpact(BeforeS5());
  EXPECT_NEAR(est.corrected_sum, 14500.0, 1e-6);
  EXPECT_EQ(est.num_buckets, 2);
}

TEST(ToyExample, BucketAfterS5) {
  // The paper's partition {A,E},{B},{D} and ours {E,A},{B,D} both give
  // Δ = 650 -> 13950.
  const Estimate est = BucketSumEstimator().EstimateImpact(AfterS5());
  EXPECT_NEAR(est.corrected_sum, 13950.0, 1e-6);
}

TEST(ToyExample, BucketIsClosestToGroundTruth) {
  const double naive =
      NaiveEstimator().EstimateImpact(AfterS5()).corrected_sum;
  const double freq =
      FrequencyEstimator().EstimateImpact(AfterS5()).corrected_sum;
  const double bucket =
      BucketSumEstimator().EstimateImpact(AfterS5()).corrected_sum;
  const double observed = AfterS5().ObservedSum();

  const auto err = [](double x) { return std::fabs(x - kGroundTruth); };
  EXPECT_LT(err(bucket), err(naive));
  EXPECT_LT(err(bucket), err(freq));
  EXPECT_LT(err(bucket), err(observed));
}

TEST(ToyExample, AddingSourceImprovesNaiveAndBucket) {
  // Note: the frequency estimator actually moves AWAY from the truth after
  // s5 (13694 -> 13450 vs truth 14200, exactly as in Table 2) because the
  // new singleton E drags the singleton mean from 1000 down to 300. Only
  // naive and bucket are expected to improve here.
  const auto err = [](double x) { return std::fabs(x - kGroundTruth); };
  EXPECT_LT(err(NaiveEstimator().EstimateImpact(AfterS5()).corrected_sum),
            err(NaiveEstimator().EstimateImpact(BeforeS5()).corrected_sum));
  EXPECT_LT(err(BucketSumEstimator().EstimateImpact(AfterS5()).corrected_sum),
            err(BucketSumEstimator().EstimateImpact(BeforeS5()).corrected_sum));
}

}  // namespace
}  // namespace uuq
