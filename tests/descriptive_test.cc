#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uuq {
namespace {

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({5}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Mean, NegativeValues) { EXPECT_DOUBLE_EQ(Mean({-2, 2}), 0.0); }

TEST(SampleVariance, KnownValue) {
  // {2,4,4,4,5,5,7,9}: mean 5, sum sq dev 32, sample variance 32/7.
  EXPECT_NEAR(SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(SampleVariance, DegenerateInputsAreZero) {
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({3.0}), 0.0);
}

TEST(PopulationVariance, KnownValue) {
  EXPECT_NEAR(PopulationVariance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0, 1e-12);
}

TEST(SampleStdDev, IsSqrtOfVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(SampleStdDev(xs), std::sqrt(SampleVariance(xs)));
}

TEST(SumMinMax, Basics) {
  const std::vector<double> xs{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(Sum(xs), 12.0);
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 5.0);
}

TEST(SumMinMax, EmptyConventions) {
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
  EXPECT_TRUE(std::isinf(Min({})));
  EXPECT_GT(Min({}), 0.0);
  EXPECT_TRUE(std::isinf(Max({})));
  EXPECT_LT(Max({}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.1), 14.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.5), 3.0);
}

TEST(Quantile, EmptyIsNan) { EXPECT_TRUE(std::isnan(Quantile({}, 0.5))); }

TEST(SortedPercentile, NearestRankTiesUp) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  // pos = q*(n-1); nearest rank, exact halves round UP (returns an
  // actually-observed value, never an interpolation).
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.125), 20.0);  // pos 0.5 → idx 1
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.1), 10.0);    // pos 0.4 → idx 0
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.99), 50.0);
}

TEST(SortedPercentile, TwoElementsAndClamps) {
  const std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.5), 2.0);  // pos 0.5 ties up
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0.49), 1.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(SortedPercentile({7.0}, 0.99), 7.0);
}

TEST(SortedPercentile, EmptyIsNan) {
  EXPECT_TRUE(std::isnan(SortedPercentile({}, 0.5)));
}

TEST(MeanRelativeError, KnownValue) {
  // estimates {90, 110} vs 100: errors 0.1 and 0.1 -> mean 0.1.
  EXPECT_NEAR(MeanRelativeError({90, 110}, 100.0), 0.1, 1e-12);
}

TEST(MeanRelativeError, ZeroReferenceIsZero) {
  EXPECT_DOUBLE_EQ(MeanRelativeError({1, 2}, 0.0), 0.0);
}

TEST(GiniCoefficient, PerfectlyEvenIsZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(GiniCoefficient, ExtremeConcentration) {
  // One source holds everything: Gini -> (n−1)/n.
  const double gini = GiniCoefficient({0, 0, 0, 100});
  EXPECT_NEAR(gini, 0.75, 1e-12);
}

TEST(GiniCoefficient, KnownIntermediateValue) {
  // {1,3}: Gini = (2·(1·1+2·3))/(2·4) − 3/2 = 14/8 − 1.5 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-12);
}

TEST(GiniCoefficient, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({7}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0}), 0.0);
}

TEST(GiniCoefficient, ScaleInvariant) {
  const double a = GiniCoefficient({1, 2, 3, 10});
  const double b = GiniCoefficient({10, 20, 30, 100});
  EXPECT_NEAR(a, b, 1e-12);
}

}  // namespace
}  // namespace uuq
