#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/naive.h"
#include "simulation/experiment.h"
#include "simulation/report.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

TEST(Scenarios, UsTechEmploymentCalibration) {
  const Scenario s = scenarios::UsTechEmployment();
  EXPECT_EQ(s.name, "us-tech-employment");
  EXPECT_EQ(s.value_column, "employees");
  // Calibrated to the Pew ground truth within rounding slack.
  EXPECT_NEAR(s.ground_truth_sum, 3951730.0, 40000.0);
  EXPECT_EQ(s.stream.size(), 500u);  // 50 workers × 10 answers
  EXPECT_GT(s.population.PublicityValueCorrelation(), 0.5);
}

TEST(Scenarios, UsTechRevenueHasHeavierTail) {
  const Scenario employment = scenarios::UsTechEmployment();
  const Scenario revenue = scenarios::UsTechRevenue();
  // Heavier tail: the top item carries a larger share of the total.
  EXPECT_GT(revenue.population.TrueMax() / revenue.ground_truth_sum,
            employment.population.TrueMax() / employment.ground_truth_sum);
}

TEST(Scenarios, UsGdpHasExactly50StatesAndAStreaker) {
  const Scenario s = scenarios::UsGdp();
  EXPECT_EQ(s.population.size(), 50u);
  // First 45 arrivals come from the streaker.
  for (int i = 0; i < 45; ++i) {
    EXPECT_EQ(s.stream[i].source_id, "streaker") << i;
  }
  // California dominates the total.
  EXPECT_DOUBLE_EQ(s.population.TrueMax(), 2481.0);
}

TEST(Scenarios, ProtonBeamHasNoStreaker) {
  const Scenario s = scenarios::ProtonBeam();
  std::map<std::string, int> per_source;
  for (const auto& obs : s.stream) ++per_source[obs.source_id];
  for (const auto& [id, count] : per_source) {
    EXPECT_LE(count, 16) << id;
  }
  EXPECT_NEAR(s.ground_truth_sum, 97000.0, 5000.0);
}

TEST(Scenarios, SyntheticWiresConfigsThrough) {
  SyntheticPopulationConfig pop;
  pop.num_items = 40;
  CrowdConfig crowd;
  crowd.num_workers = 4;
  crowd.answers_per_worker = 6;
  const Scenario s = scenarios::Synthetic(pop, crowd, "my-synth");
  EXPECT_EQ(s.name, "my-synth");
  EXPECT_EQ(s.stream.size(), 24u);
  EXPECT_EQ(s.population.size(), 40u);
}

TEST(MakeCheckpoints, StrideAndFinal) {
  EXPECT_EQ(MakeCheckpoints(10, 3), (std::vector<int64_t>{3, 6, 9, 10}));
  EXPECT_EQ(MakeCheckpoints(9, 3), (std::vector<int64_t>{3, 6, 9}));
  EXPECT_EQ(MakeCheckpoints(0, 5), (std::vector<int64_t>{}));
}

TEST(RunConvergence, EvaluatesAtCheckpoints) {
  const Scenario s = scenarios::UsGdp();
  const NaiveEstimator naive;
  const EstimatorSet estimators{&naive};
  const auto series =
      RunConvergence(s.stream, estimators, MakeCheckpoints(60, 20));
  ASSERT_EQ(series.size(), 3u);  // checkpoints {20, 40, 60}
  EXPECT_EQ(series[0].n, 20);
  EXPECT_EQ(series.back().n, 60);
  for (const auto& point : series) {
    EXPECT_TRUE(point.estimates.count("naive"));
    EXPECT_GT(point.observed, 0.0);
    EXPECT_LE(point.c, point.n);
  }
}

TEST(RunConvergence, ObservedSumIsMonotoneForPositiveValues) {
  const Scenario s = scenarios::UsTechEmployment();
  const auto series = RunConvergence(s.stream, {}, MakeCheckpoints(500, 50));
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].observed, series[i - 1].observed);
  }
}

TEST(RunConvergence, CheckpointsBeyondStreamIgnored) {
  const Scenario s = scenarios::UsGdp();
  const auto series =
      RunConvergence(s.stream, {}, MakeCheckpoints(100000, 50000));
  EXPECT_TRUE(series.empty());
}

TEST(RunAveragedConvergence, AveragesAcrossRepetitions) {
  SyntheticPopulationConfig pop;
  pop.num_items = 50;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  const auto factory = [&pop](uint64_t seed) {
    SyntheticPopulationConfig p = pop;
    p.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = 10;
    crowd.answers_per_worker = 10;
    crowd.seed = seed * 31 + 1;
    return scenarios::Synthetic(p, crowd).stream;
  };
  const NaiveEstimator naive;
  const auto series = RunAveragedConvergence(factory, {&naive},
                                             MakeCheckpoints(100, 25), 5, 77);
  ASSERT_EQ(series.size(), 4u);
  for (const auto& point : series) {
    EXPECT_GT(point.observed, 0.0);
    EXPECT_GT(point.c, 0);
  }
}

TEST(SeriesTable, AsciiContainsTitleHeaderAndData) {
  SeriesTable table("Figure X", {"n", "value"});
  table.AddRow({10, 3.5});
  table.AddRow({20, 7.25});
  const std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("Figure X"), std::string::npos);
  EXPECT_NE(ascii.find("value"), std::string::npos);
  EXPECT_NE(ascii.find("7.25"), std::string::npos);
}

TEST(SeriesTable, CsvRoundTripShape) {
  SeriesTable table("t", {"a", "b"});
  table.AddRow({1, 2});
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv, "a,b\n1,2\n");
}

TEST(SeriesTableDeathTest, ArityMismatchAborts) {
  SeriesTable table("t", {"a", "b"});
  EXPECT_DEATH(table.AddRow({1}), "arity");
}

TEST(SeriesToTable, FlattensEstimatesAlphabetically) {
  SeriesPoint point;
  point.n = 5;
  point.observed = 1.0;
  point.estimates["naive"] = 2.0;
  point.estimates["bucket[dynamic]"] = 3.0;
  const SeriesTable table = SeriesToTable("t", {point}, 42.0, true);
  const auto& cols = table.columns();
  ASSERT_EQ(cols.size(), 5u);
  EXPECT_EQ(cols[0], "n");
  EXPECT_EQ(cols[1], "observed");
  EXPECT_EQ(cols[2], "bucket[dynamic]");  // map order: alphabetical
  EXPECT_EQ(cols[3], "naive");
  EXPECT_EQ(cols[4], "truth");
}

}  // namespace
}  // namespace uuq
