// COUNT / AVG / MIN / MAX adapters (paper §5).
#include <gtest/gtest.h>

#include <cmath>

#include "core/avg.h"
#include "core/chao92.h"
#include "core/count.h"
#include "core/minmax.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

IntegratedSample CorrelatedSample(int prefix = 300, uint64_t seed = 3) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.seed = seed + 1;
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();
  IntegratedSample sample;
  for (size_t i = 0; i < std::min<size_t>(prefix, stream.size()); ++i) {
    sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
  }
  return sample;
}

TEST(CountEstimator, Chao92MethodMatchesChao92) {
  const auto sample = CorrelatedSample();
  const Estimate est =
      CountEstimator(CountMethod::kChao92).EstimateCount(sample);
  const double chao = Chao92Nhat(SampleStats::FromSample(sample));
  EXPECT_DOUBLE_EQ(est.n_hat, chao);
  EXPECT_DOUBLE_EQ(est.corrected_sum, chao);
  EXPECT_DOUBLE_EQ(est.delta, chao - static_cast<double>(sample.c()));
}

TEST(CountEstimator, GoodTuringMethodIsSmallerOrEqual) {
  const auto sample = CorrelatedSample();
  const double chao =
      CountEstimator(CountMethod::kChao92).EstimateCount(sample).n_hat;
  const double gt =
      CountEstimator(CountMethod::kGoodTuring).EstimateCount(sample).n_hat;
  EXPECT_LE(gt, chao);
}

TEST(CountEstimator, MonteCarloMethodStaysInRange) {
  MonteCarloOptions mc;
  mc.runs_per_point = 2;
  mc.n_grid_steps = 5;
  const auto sample = CorrelatedSample(200);
  const Estimate est =
      CountEstimator(CountMethod::kMonteCarlo, mc).EstimateCount(sample);
  EXPECT_GE(est.n_hat, static_cast<double>(sample.c()) - 1e-9);
}

TEST(CountEstimator, EmptySample) {
  IntegratedSample sample;
  const Estimate est = CountEstimator().EstimateCount(sample);
  EXPECT_DOUBLE_EQ(est.corrected_sum, 0.0);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(CountEstimator, MissingValueIsOne) {
  const auto sample = CorrelatedSample();
  EXPECT_DOUBLE_EQ(CountEstimator().EstimateCount(sample).missing_value, 1.0);
}

TEST(AvgEstimator, CorrectsPublicityValueBias) {
  // With ρ = 1 popular items have large values, so the observed mean is
  // biased HIGH; the bucket-weighted correction must pull it down toward
  // the true mean (505 for values 10..1000).
  const auto sample = CorrelatedSample(250, 7);
  const SampleStats stats = SampleStats::FromSample(sample);
  const Estimate est = AvgEstimator().EstimateAvg(sample);
  if (est.finite) {
    EXPECT_LT(est.corrected_sum, stats.ValueMean());
    EXPECT_LT(est.delta, 0.0);
  }
}

TEST(AvgEstimator, CompleteSampleKeepsObservedMean) {
  IntegratedSample sample;
  for (int e = 0; e < 20; ++e) {
    for (int w = 0; w < 5; ++w) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e),
                 10.0 * (e + 1));
    }
  }
  const Estimate est = AvgEstimator().EstimateAvg(sample);
  const SampleStats stats = SampleStats::FromSample(sample);
  EXPECT_NEAR(est.corrected_sum, stats.ValueMean(), 1e-9);
}

TEST(AvgEstimator, EmptySample) {
  IntegratedSample sample;
  const Estimate est = AvgEstimator().EstimateAvg(sample);
  EXPECT_DOUBLE_EQ(est.corrected_sum, 0.0);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(AvgEstimator, SingletonOnlySampleFallsBackToObservedMean) {
  IntegratedSample sample;
  sample.Add("w1", "a", 10);
  sample.Add("w2", "b", 20);
  const Estimate est = AvgEstimator().EstimateAvg(sample);
  EXPECT_FALSE(est.finite);
  EXPECT_DOUBLE_EQ(est.corrected_sum, 15.0);
}

TEST(MinMaxEstimator, CompleteSampleClaimsExtremes) {
  IntegratedSample sample;
  for (int e = 0; e < 20; ++e) {
    for (int w = 0; w < 5; ++w) {
      sample.Add("w" + std::to_string(w), "e" + std::to_string(e),
                 10.0 * (e + 1));
    }
  }
  const MinMaxEstimator minmax;
  const ExtremeEstimate max_est = minmax.EstimateMax(sample);
  EXPECT_TRUE(max_est.has_data);
  EXPECT_TRUE(max_est.claim_true_extreme);
  EXPECT_DOUBLE_EQ(max_est.observed_extreme, 200.0);
  const ExtremeEstimate min_est = minmax.EstimateMin(sample);
  EXPECT_TRUE(min_est.claim_true_extreme);
  EXPECT_DOUBLE_EQ(min_est.observed_extreme, 10.0);
}

TEST(MinMaxEstimator, SparseSampleDoesNotClaim) {
  // Everything is a singleton: unknown count estimates blow up, so no
  // trustworthy extreme.
  IntegratedSample sample;
  for (int e = 0; e < 10; ++e) {
    sample.Add("w1", "e" + std::to_string(e), 10.0 * e);
  }
  const MinMaxEstimator minmax;
  EXPECT_FALSE(minmax.EstimateMax(sample).claim_true_extreme);
  EXPECT_FALSE(minmax.EstimateMin(sample).claim_true_extreme);
}

TEST(MinMaxEstimator, EmptySample) {
  IntegratedSample sample;
  const ExtremeEstimate est = MinMaxEstimator().EstimateMax(sample);
  EXPECT_FALSE(est.has_data);
  EXPECT_FALSE(est.claim_true_extreme);
}

TEST(MinMaxEstimator, ReportsExtremeBucketRange) {
  const auto sample = CorrelatedSample(400, 9);
  const ExtremeEstimate est = MinMaxEstimator().EstimateMax(sample);
  ASSERT_TRUE(est.has_data);
  EXPECT_LE(est.bucket_lo, est.bucket_hi);
  EXPECT_DOUBLE_EQ(est.observed_extreme, est.bucket_hi);
}

TEST(MinMaxEstimator, ThresholdControlsClaims) {
  const auto sample = CorrelatedSample(300, 11);
  // An absurdly generous threshold always claims; a zero threshold never
  // does (missing counts are >= 0 and usually > 0 somewhere).
  const MinMaxEstimator generous(1e12);
  EXPECT_TRUE(generous.EstimateMax(sample).claim_true_extreme);
  const MinMaxEstimator strict(0.0);
  EXPECT_FALSE(strict.EstimateMax(sample).claim_true_extreme);
}

TEST(CountMethodName, Names) {
  EXPECT_STREQ(CountMethodName(CountMethod::kChao92), "chao92");
  EXPECT_STREQ(CountMethodName(CountMethod::kGoodTuring), "good-turing");
  EXPECT_STREQ(CountMethodName(CountMethod::kMonteCarlo), "monte-carlo");
}

}  // namespace
}  // namespace uuq
