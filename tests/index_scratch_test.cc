// Scratch-hygiene suite for the replicate-scratch engine (IndexScratch,
// PartitionScratch, the reusable SortedEntityIndex):
//
//  * interleaving bootstrap and jackknife replicates of DIFFERENT sizes
//    from DIFFERENT views through ONE scratch must give exactly the results
//    a fresh index evaluation gives — no stale prefix, scatter, or
//    histogram state may leak between rebuilds;
//  * the canonical (value, multiplicity) point order makes the scratch
//    path's index bit-identical to a freshly constructed one;
//  * once warm, a bucket replicate evaluation performs ZERO heap
//    allocations (counted via an operator new/delete hook).
//
// The ASan CI matrix entry (-fsanitize=address,undefined) runs this suite —
// and everything else — over the new scratch paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/naive.h"
#include "integration/sample.h"
#include "integration/sample_view.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding operator new/delete in the test
// binary is enough: the zero-allocation assertion only reads the counter
// delta around a single-threaded measured window.
// ---------------------------------------------------------------------------
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace uuq {
namespace {

IntegratedSample RandomSample(Rng* rng, FusionPolicy policy, int num_sources,
                              int entity_pool, int observations) {
  IntegratedSample sample(policy);
  for (int i = 0; i < observations; ++i) {
    const int s = static_cast<int>(rng->NextBounded(num_sources));
    const int e = static_cast<int>(rng->NextBounded(entity_pool));
    const double value = rng->NextUniform(-500.0, 1500.0);
    sample.Add("s" + std::to_string(s), "e" + std::to_string(e), value);
  }
  return sample;
}

void ExpectEstimatesIdentical(const Estimate& a, const Estimate& b,
                              const std::string& what) {
  EXPECT_EQ(a.delta, b.delta) << what;
  EXPECT_EQ(a.corrected_sum, b.corrected_sum) << what;
  EXPECT_EQ(a.n_hat, b.n_hat) << what;
  EXPECT_EQ(a.missing_count, b.missing_count) << what;
  EXPECT_EQ(a.num_buckets, b.num_buckets) << what;
  EXPECT_EQ(a.finite, b.finite) << what;
}

/// The reference path: a fresh SortedEntityIndex and fresh partition
/// buffers for every call — no reuse anywhere.
Estimate FreshIndexEstimate(const BucketSumEstimator& bucket,
                            const ReplicateSample& rep) {
  std::vector<EntityPoint> points(rep.entities);
  const SortedEntityIndex index(std::move(points));
  const std::vector<ValueBucket> buckets = bucket.ComputeBuckets(index);
  // Recombine exactly like the estimator does: compare through the public
  // replicate API of a throwaway estimator instead of re-implementing
  // CombineBuckets. A view-less copy of the replicate forces the
  // copy-and-full-sort path inside a FRESH scratch.
  ReplicateSample detached;
  detached.policy = rep.policy;
  detached.entities = rep.entities;
  detached.source_sizes = rep.source_sizes;
  IndexScratch fresh;
  return bucket.EstimateReplicate(detached, &fresh);
}

TEST(IndexScratchHygiene, InterleavedReplicatesMatchFreshEvaluation) {
  Rng rng(0x5C1);
  const BucketSumEstimator bucket;

  // Three samples of very different shapes (and one kMajority) sharing one
  // IndexScratch and one ReplicateScratch.
  const IntegratedSample small =
      RandomSample(&rng, FusionPolicy::kAverage, 4, 12, 40);
  const IntegratedSample large =
      RandomSample(&rng, FusionPolicy::kLast, 20, 200, 600);
  const IntegratedSample majority =
      RandomSample(&rng, FusionPolicy::kMajority, 8, 50, 250);
  const SampleView views[] = {SampleView(small), SampleView(large),
                              SampleView(majority)};

  ReplicateScratch rscratch;
  ReplicateSample rep;
  IndexScratch shared;

  for (int round = 0; round < 12; ++round) {
    const SampleView& view = views[round % 3];
    // Alternate bootstrap and jackknife builds so the scratch sees shrinking
    // and growing replicates back to back.
    if (round % 2 == 0) {
      std::vector<int32_t> draws;
      view.DrawBootstrapSources(&rng, &draws);
      view.BuildReplicate(draws, &rscratch, &rep);
    } else {
      const int32_t excluded =
          static_cast<int32_t>(rng.NextBounded(view.num_sources()));
      view.BuildLeaveOneOut(excluded, &rscratch, &rep);
    }
    ExpectEstimatesIdentical(bucket.EstimateReplicate(rep, &shared),
                             FreshIndexEstimate(bucket, rep),
                             "round " + std::to_string(round));
  }
}

TEST(IndexScratchHygiene, ScratchIndexBitIdenticalToFreshIndex) {
  Rng rng(0x5C2);
  for (int trial = 0; trial < 20; ++trial) {
    const IntegratedSample sample =
        RandomSample(&rng, FusionPolicy::kAverage, 10, 80, 300);
    const SampleView view(sample);
    ReplicateScratch rscratch;
    ReplicateSample rep;
    std::vector<int32_t> draws;
    view.DrawBootstrapSources(&rng, &draws);
    view.BuildReplicate(draws, &rscratch, &rep);

    IndexScratch scratch;
    const SortedEntityIndex& incremental = scratch.RebuildIndex(rep);
    const SortedEntityIndex fresh(
        std::vector<EntityPoint>(rep.entities));
    ASSERT_EQ(incremental.size(), fresh.size());
    for (size_t i = 0; i < incremental.size(); ++i) {
      EXPECT_EQ(incremental.entities()[i].value, fresh.entities()[i].value)
          << i;
      EXPECT_EQ(incremental.entities()[i].multiplicity,
                fresh.entities()[i].multiplicity)
          << i;
    }
    // Prefix sums too: Slice over the full range and a few random cuts.
    for (int probe = 0; probe < 8; ++probe) {
      size_t a = rng.NextBounded(incremental.size() + 1);
      size_t b = rng.NextBounded(incremental.size() + 1);
      if (a > b) std::swap(a, b);
      const SampleStats sa = incremental.Slice(a, b);
      const SampleStats sb = fresh.Slice(a, b);
      EXPECT_EQ(sa.value_sum, sb.value_sum);
      EXPECT_EQ(sa.n, sb.n);
      EXPECT_EQ(sa.f1, sb.f1);
      EXPECT_EQ(sa.singleton_sum, sb.singleton_sum);
    }
  }
}

TEST(IndexScratchHygiene, CanonicalOrderIndependentOfInputPermutation) {
  // Same multiset appended in opposite orders must produce the same array —
  // including ties (equal value, different multiplicity).
  std::vector<EntityPoint> forward{{5.0, 1}, {5.0, 3}, {1.0, 2},
                                   {5.0, 2}, {9.0, 1}, {1.0, 2}};
  std::vector<EntityPoint> reversed(forward.rbegin(), forward.rend());
  const SortedEntityIndex a((std::vector<EntityPoint>(forward)));
  const SortedEntityIndex b((std::vector<EntityPoint>(reversed)));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entities()[i].value, b.entities()[i].value) << i;
    EXPECT_EQ(a.entities()[i].multiplicity, b.entities()[i].multiplicity)
        << i;
  }
  // And the order is (value, multiplicity) ascending.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_FALSE(SortedEntityIndex::PointLess(a.entities()[i],
                                              a.entities()[i - 1]))
        << i;
  }
}

TEST(IndexScratchHygiene, ReusableIndexSurvivesShrinkAndGrow) {
  // Finalize must fully rebuild the prefix array when the point count
  // shrinks — a stale tail would corrupt Slice stats.
  SortedEntityIndex index;
  for (int i = 0; i < 50; ++i) {
    index.Append({static_cast<double>(i), 1 + i % 3});
  }
  index.Finalize(/*nearly_sorted=*/false);
  const SampleStats big = index.Slice(0, 50);
  EXPECT_EQ(big.c, 50);

  index.Clear();
  index.Append({2.0, 4});
  index.Append({1.0, 2});
  index.Finalize(/*nearly_sorted=*/true);
  ASSERT_EQ(index.size(), 2u);
  const SampleStats small = index.Slice(0, 2);
  EXPECT_EQ(small.c, 2);
  EXPECT_EQ(small.n, 6);
  EXPECT_EQ(small.value_sum, 3.0);
  EXPECT_DOUBLE_EQ(index.entities()[0].value, 1.0);
}

TEST(IndexScratchAllocation, WarmReplicatePathIsAllocationFree) {
  Rng rng(0x5C3);
  const IntegratedSample sample =
      RandomSample(&rng, FusionPolicy::kAverage, 16, 150, 500);
  const SampleView view(sample);
  // Serial pool so the split scan provably takes the inline raw loop (in
  // the real bootstrap, replicates run ON pool workers, where nested scans
  // inline the same way).
  ThreadPool serial(1);
  const BucketSumEstimator bucket(
      std::make_shared<DynamicPartitioner>(&serial),
      std::make_shared<NaiveEstimator>());

  std::vector<std::vector<int32_t>> draw_sets(8);
  for (auto& draws : draw_sets) view.DrawBootstrapSources(&rng, &draws);

  ReplicateScratch rscratch;
  ReplicateSample rep;
  IndexScratch iscratch;
  double sink = 0.0;

  // Warm-up pass grows every buffer to its steady-state capacity.
  for (const auto& draws : draw_sets) {
    view.BuildReplicate(draws, &rscratch, &rep);
    sink += bucket.EstimateReplicate(rep, &iscratch).corrected_sum;
  }
  // Jackknife warm-up too (arrival-order replay path).
  for (int32_t e = 0; e < static_cast<int32_t>(view.num_sources()); ++e) {
    view.BuildLeaveOneOut(e, &rscratch, &rep);
    sink += bucket.EstimateReplicate(rep, &iscratch).corrected_sum;
  }

  // Measured pass: identical work, warm buffers — zero heap allocations.
  const int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const auto& draws : draw_sets) {
    view.BuildReplicate(draws, &rscratch, &rep);
    sink += bucket.EstimateReplicate(rep, &iscratch).corrected_sum;
  }
  for (int32_t e = 0; e < static_cast<int32_t>(view.num_sources()); ++e) {
    view.BuildLeaveOneOut(e, &rscratch, &rep);
    sink += bucket.EstimateReplicate(rep, &iscratch).corrected_sum;
  }
  const int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warm bucket replicate path performed heap allocations";
  EXPECT_TRUE(std::isfinite(sink));
}

}  // namespace
}  // namespace uuq
