#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/chao92.h"
#include "core/frequency.h"
#include "core/naive.h"

namespace uuq {
namespace {

SampleStats MakeStats(const std::vector<std::pair<double, int64_t>>& entities) {
  SampleStats stats;
  int i = 0;
  for (const auto& [value, mult] : entities) {
    stats.Add({"e" + std::to_string(i++), value, mult});
  }
  return stats;
}

TEST(NaiveEstimator, EmptySampleGivesZero) {
  const Estimate est = NaiveEstimator().FromStats(SampleStats{});
  EXPECT_DOUBLE_EQ(est.delta, 0.0);
  EXPECT_FALSE(est.coverage_ok);
}

TEST(NaiveEstimator, UsesMeanSubstitution) {
  // Two entities, values 10 and 30: mean 20. One singleton.
  const auto stats = MakeStats({{10, 1}, {30, 3}});
  const Estimate est = NaiveEstimator().FromStats(stats);
  EXPECT_DOUBLE_EQ(est.missing_value, 20.0);
  EXPECT_NEAR(est.delta, est.missing_value * est.missing_count, 1e-12);
}

TEST(NaiveEstimator, MatchesClosedFormEquation8) {
  // Eq. 8: Δ = φK·f1·(c + γ̂²·n) / (c·(n − f1)). Cross-check random stats.
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<double, int64_t>> entities;
    const int c = 2 + static_cast<int>(rng.NextBounded(20));
    bool has_non_singleton = false;
    for (int i = 0; i < c; ++i) {
      const int64_t mult = 1 + static_cast<int64_t>(rng.NextBounded(6));
      if (mult > 1) has_non_singleton = true;
      entities.push_back({rng.NextUniform(1, 100), mult});
    }
    if (!has_non_singleton) entities[0].second = 2;
    const auto stats = MakeStats(entities);

    const Estimate est = NaiveEstimator().FromStats(stats);
    const double n = static_cast<double>(stats.n);
    const double f1 = static_cast<double>(stats.f1);
    const double closed_form = stats.value_sum * f1 *
                               (stats.c + stats.Gamma2() * n) /
                               (stats.c * (n - f1));
    EXPECT_NEAR(est.delta, closed_form, 1e-6 * std::fabs(closed_form) + 1e-9);
  }
}

TEST(NaiveEstimator, SingletonOnlySampleIsInfinite) {
  const auto stats = MakeStats({{10, 1}, {20, 1}});
  const Estimate est = NaiveEstimator().FromStats(stats);
  EXPECT_FALSE(est.finite);
  EXPECT_TRUE(std::isinf(est.delta));
}

TEST(NaiveEstimator, CompleteSampleNeedsNoCorrection) {
  const auto stats = MakeStats({{10, 3}, {20, 2}, {30, 4}});
  const Estimate est = NaiveEstimator().FromStats(stats);
  EXPECT_NEAR(est.delta, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.corrected_sum, 60.0);
}

TEST(NaiveEstimator, CoverageGateReflectsSingletonShare) {
  // Four singletons out of n = 6: Ĉ = 1/3 < 0.4.
  const auto low_coverage =
      MakeStats({{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 2}});
  EXPECT_FALSE(NaiveEstimator().FromStats(low_coverage).coverage_ok);
  const auto high_coverage = MakeStats({{1, 5}, {2, 5}, {3, 1}});
  EXPECT_TRUE(NaiveEstimator().FromStats(high_coverage).coverage_ok);
}

TEST(FrequencyEstimator, UsesSingletonMean) {
  // Singletons: 10 and 50 (mean 30); popular entity value 1000 must not
  // leak into the missing-value estimate.
  const auto stats = MakeStats({{10, 1}, {50, 1}, {1000, 5}});
  const Estimate est = FrequencyEstimator().FromStats(stats);
  EXPECT_DOUBLE_EQ(est.missing_value, 30.0);
}

TEST(FrequencyEstimator, MatchesClosedFormEquation9) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<double, int64_t>> entities;
    const int c = 2 + static_cast<int>(rng.NextBounded(20));
    bool has_non_singleton = false;
    for (int i = 0; i < c; ++i) {
      const int64_t mult = 1 + static_cast<int64_t>(rng.NextBounded(6));
      if (mult > 1) has_non_singleton = true;
      entities.push_back({rng.NextUniform(1, 100), mult});
    }
    if (!has_non_singleton) entities[0].second = 2;
    const auto stats = MakeStats(entities);

    const Estimate est = FrequencyEstimator().FromStats(stats);
    const double n = static_cast<double>(stats.n);
    const double f1 = static_cast<double>(stats.f1);
    const double closed_form =
        stats.singleton_sum * (stats.c + stats.Gamma2() * n) / (n - f1);
    EXPECT_NEAR(est.delta, closed_form, 1e-6 * std::fabs(closed_form) + 1e-9);
  }
}

TEST(FrequencyEstimator, NoSingletonsMeansNoCorrection) {
  const auto stats = MakeStats({{10, 2}, {20, 3}});
  const Estimate est = FrequencyEstimator().FromStats(stats);
  EXPECT_DOUBLE_EQ(est.delta, 0.0);
  EXPECT_DOUBLE_EQ(est.corrected_sum, 30.0);
}

TEST(FrequencyEstimator, GoodTuringVariantUsesSmallerNhat) {
  // A skewed sample where γ̂² > 0: the γ̂² = 0 variant must not exceed the
  // full Chao92-based one.
  const auto stats = MakeStats({{5, 1}, {6, 1}, {7, 3}, {8, 5}});
  const Estimate full = FrequencyEstimator(false).FromStats(stats);
  const Estimate uniform = FrequencyEstimator(true).FromStats(stats);
  EXPECT_LE(uniform.n_hat, full.n_hat);
  EXPECT_LE(uniform.delta, full.delta);
  EXPECT_EQ(uniform.estimator, "freq-gt");
}

TEST(FrequencyEstimator, RobustToPopularHighImpactItems) {
  // The paper's motivation: one giant popular company biases naive but not
  // frequency.
  const auto stats = MakeStats({{1e6, 10}, {10, 1}, {20, 1}, {30, 2}});
  const Estimate naive = NaiveEstimator().FromStats(stats);
  const Estimate freq = FrequencyEstimator().FromStats(stats);
  EXPECT_GT(naive.missing_value, 1e5);
  EXPECT_LT(freq.missing_value, 100.0);
  EXPECT_LT(freq.delta, naive.delta);
}

TEST(Estimators, DeltaEqualsValueTimesCount) {
  const auto stats = MakeStats({{10, 1}, {20, 2}, {30, 3}});
  for (const StatsSumEstimator* est :
       std::initializer_list<const StatsSumEstimator*>{
           new NaiveEstimator(), new FrequencyEstimator()}) {
    const Estimate e = est->FromStats(stats);
    EXPECT_NEAR(e.delta, e.missing_value * e.missing_count, 1e-9);
    EXPECT_NEAR(e.corrected_sum, stats.value_sum + e.delta, 1e-9);
    delete est;
  }
}

TEST(Estimators, NamesAreStable) {
  EXPECT_EQ(NaiveEstimator().name(), "naive");
  EXPECT_EQ(FrequencyEstimator().name(), "freq");
}

}  // namespace
}  // namespace uuq
