#include "core/query_correction.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace uuq {
namespace {

// A healthy sample: 8 even sources over 30 entities with values 10..300,
// most entities seen 2+ times, a few singletons left.
IntegratedSample HealthySample() {
  IntegratedSample sample;
  for (int e = 0; e < 30; ++e) {
    const int copies = 1 + (e % 4);  // 1..4 observations per entity
    for (int k = 0; k < copies; ++k) {
      sample.Add("w" + std::to_string((e + k) % 8), "e" + std::to_string(e),
                 10.0 * (e + 1));
    }
  }
  return sample;
}

TEST(QueryCorrector, SumHasBoundAndAdvice) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer.value().observed, 0.0);
  EXPECT_GE(answer.value().corrected, answer.value().observed);
  EXPECT_TRUE(answer.value().bound_valid);
  EXPECT_FALSE(answer.value().advice.rationale.empty());
}

TEST(QueryCorrector, FixedEstimatorChoiceIsHonored) {
  QueryCorrector::Options options;
  options.estimator = CorrectionEstimator::kNaive;
  const QueryCorrector corrector(options);
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().estimate.estimator, "naive");
}

TEST(QueryCorrector, CountCorrection) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kCount);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer.value().observed, 30.0);
  EXPECT_GE(answer.value().corrected, 30.0);
}

TEST(QueryCorrector, AvgCorrection) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kAvg);
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer.value().observed, 0.0);
}

TEST(QueryCorrector, MinMaxReportsClaim) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kMax);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer.value().observed, 300.0);
  EXPECT_DOUBLE_EQ(answer.value().corrected, 300.0);
}

TEST(QueryCorrector, SqlEndToEnd) {
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(HealthySample(),
                                     "SELECT SUM(value) FROM integrated");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.value().aggregate, AggregateKind::kSum);
  EXPECT_NE(answer.value().query_text.find("SUM"), std::string::npos);
}

TEST(QueryCorrector, SqlPredicateFiltersSample) {
  const QueryCorrector corrector;
  // Only entities with value > 150 (e16..e30 -> 15 entities).
  auto all = corrector.CorrectSql(HealthySample(),
                                  "SELECT COUNT(value) FROM integrated");
  auto filtered = corrector.CorrectSql(
      HealthySample(),
      "SELECT COUNT(value) FROM integrated WHERE value > 150");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_DOUBLE_EQ(all.value().observed, 30.0);
  EXPECT_DOUBLE_EQ(filtered.value().observed, 15.0);
  EXPECT_LT(filtered.value().corrected, all.value().corrected);
}

TEST(QueryCorrector, SqlPredicateOnEntityName) {
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(
      HealthySample(), "SELECT SUM(value) FROM integrated WHERE entity = 'e0'");
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer.value().observed, 10.0);
}

TEST(QueryCorrector, SqlBadPredicateColumnFails) {
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(
      HealthySample(), "SELECT SUM(value) FROM integrated WHERE bogus > 1");
  EXPECT_FALSE(answer.ok());
}

TEST(QueryCorrector, SqlParseErrorPropagates) {
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(HealthySample(), "SELEC SUM(v) FROM t");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kParseError);
}

TEST(QueryCorrector, ToStringMentionsKeyNumbers) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  const std::string report = answer.value().ToString();
  EXPECT_NE(report.find("observed"), std::string::npos);
  EXPECT_NE(report.find("corrected"), std::string::npos);
  EXPECT_NE(report.find("advice"), std::string::npos);
}

// Every entity observed exactly once: Good-Turing coverage is 0, Chao92's
// N-hat is +inf, and the raw corrected sum would be inf too.
IntegratedSample AllSingletonSample() {
  IntegratedSample sample;
  for (int e = 0; e < 20; ++e) {
    sample.Add("w" + std::to_string(e % 5), "e" + std::to_string(e),
               10.0 * (e + 1));
  }
  return sample;
}

TEST(QueryCorrector, UnconstrainedSumClampsToObserved) {
  // Regression: Chao92's coverage <= 0 path returns +inf, which used to
  // flow straight into CorrectedAnswer::corrected as inf (and into NaN via
  // inf-weighted arithmetic downstream). The correction layer must flag the
  // answer unconstrained and report the observed value; the raw degenerate
  // estimate stays visible in `estimate`.
  QueryCorrector::Options options;
  options.estimator = CorrectionEstimator::kNaive;
  const QueryCorrector corrector(options);
  auto answer = corrector.Correct(AllSingletonSample(), AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().unconstrained);
  EXPECT_TRUE(std::isfinite(answer.value().corrected));
  EXPECT_DOUBLE_EQ(answer.value().corrected, answer.value().observed);
  EXPECT_TRUE(std::isinf(answer.value().estimate.n_hat));
  EXPECT_FALSE(answer.value().estimate.finite);
  EXPECT_NE(answer.value().ToString().find("UNCONSTRAINED"),
            std::string::npos);
}

TEST(QueryCorrector, UnconstrainedCountClampsToObserved) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(AllSingletonSample(), AggregateKind::kCount);
  ASSERT_TRUE(answer.ok());
  if (std::isinf(answer.value().estimate.n_hat)) {
    EXPECT_TRUE(answer.value().unconstrained);
    EXPECT_DOUBLE_EQ(answer.value().corrected, 20.0);
  }
  EXPECT_TRUE(std::isfinite(answer.value().corrected));
}

TEST(QueryCorrector, UnconstrainedAnswerStillBootstraps) {
  // attach_bootstrap on a degenerate sample: the interval's point is the
  // clamped (finite) answer and an all-non-finite replicate set degrades to
  // the [point, point] interval instead of aborting.
  QueryCorrector::Options options;
  options.estimator = CorrectionEstimator::kNaive;
  options.attach_bootstrap = true;
  options.bootstrap.replicates = 12;
  const QueryCorrector corrector(options);
  auto answer = corrector.Correct(AllSingletonSample(), AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().unconstrained);
  ASSERT_TRUE(answer.value().bootstrap_valid);
  EXPECT_DOUBLE_EQ(answer.value().bootstrap.point, answer.value().observed);
  EXPECT_TRUE(std::isfinite(answer.value().bootstrap.lo));
  EXPECT_TRUE(std::isfinite(answer.value().bootstrap.hi));
}

TEST(QueryCorrector, HealthySampleIsNotFlaggedUnconstrained) {
  const QueryCorrector corrector;
  auto answer = corrector.Correct(HealthySample(), AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().unconstrained);
  EXPECT_EQ(answer.value().ToString().find("UNCONSTRAINED"),
            std::string::npos);
}

TEST(QueryCorrector, EmptySampleStillAnswers) {
  IntegratedSample sample;
  const QueryCorrector corrector;
  auto answer = corrector.Correct(sample, AggregateKind::kSum);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer.value().observed, 0.0);
  EXPECT_EQ(answer.value().advice.choice, EstimatorChoice::kCollectMoreData);
}

}  // namespace
}  // namespace uuq
