#include "db/predicate.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  Schema schema_{{{"name", ValueType::kString},
                  {"employees", ValueType::kDouble}}};
  Row ibm_{Value("ibm"), Value(100.0)};
  Row tiny_{Value("tiny"), Value(3.0)};
  Row unknown_{Value("ghost"), Value::Null()};

  bool Eval(const PredicatePtr& p, const Row& row) {
    auto result = p->Eval(row, schema_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value_or(false);
  }
};

TEST_F(PredicateTest, ComparisonOperators) {
  EXPECT_TRUE(Eval(MakeComparison("employees", CompareOp::kGt, Value(50.0)),
                   ibm_));
  EXPECT_FALSE(Eval(MakeComparison("employees", CompareOp::kGt, Value(50.0)),
                    tiny_));
  EXPECT_TRUE(Eval(MakeComparison("employees", CompareOp::kLe, Value(3.0)),
                   tiny_));
  EXPECT_TRUE(Eval(MakeComparison("employees", CompareOp::kGe, Value(100.0)),
                   ibm_));
  EXPECT_TRUE(Eval(MakeComparison("employees", CompareOp::kNe, Value(5.0)),
                   ibm_));
  EXPECT_TRUE(
      Eval(MakeComparison("name", CompareOp::kEq, Value("ibm")), ibm_));
}

TEST_F(PredicateTest, IntLiteralMatchesDoubleColumn) {
  EXPECT_TRUE(Eval(
      MakeComparison("employees", CompareOp::kEq, Value(int64_t{100})), ibm_));
}

TEST_F(PredicateTest, NullCellNeverMatches) {
  EXPECT_FALSE(Eval(MakeComparison("employees", CompareOp::kEq, Value(0.0)),
                    unknown_));
  EXPECT_FALSE(Eval(MakeComparison("employees", CompareOp::kNe, Value(0.0)),
                    unknown_));
}

TEST_F(PredicateTest, NullLiteralNeverMatches) {
  EXPECT_FALSE(
      Eval(MakeComparison("employees", CompareOp::kEq, Value::Null()), ibm_));
}

TEST_F(PredicateTest, AndShortCircuits) {
  const auto p = MakeAnd(
      MakeComparison("employees", CompareOp::kGt, Value(50.0)),
      MakeComparison("name", CompareOp::kEq, Value("ibm")));
  EXPECT_TRUE(Eval(p, ibm_));
  EXPECT_FALSE(Eval(p, tiny_));
}

TEST_F(PredicateTest, OrEitherSide) {
  const auto p = MakeOr(
      MakeComparison("employees", CompareOp::kLt, Value(10.0)),
      MakeComparison("name", CompareOp::kEq, Value("ibm")));
  EXPECT_TRUE(Eval(p, ibm_));
  EXPECT_TRUE(Eval(p, tiny_));
  EXPECT_FALSE(Eval(p, unknown_));
}

TEST_F(PredicateTest, NotInverts) {
  const auto p =
      MakeNot(MakeComparison("employees", CompareOp::kGt, Value(50.0)));
  EXPECT_FALSE(Eval(p, ibm_));
  EXPECT_TRUE(Eval(p, tiny_));
}

TEST_F(PredicateTest, TrueMatchesEverything) {
  EXPECT_TRUE(Eval(MakeTrue(), ibm_));
  EXPECT_TRUE(Eval(MakeTrue(), unknown_));
}

TEST_F(PredicateTest, EvalUnknownColumnFails) {
  const auto p = MakeComparison("revenue", CompareOp::kGt, Value(1.0));
  EXPECT_FALSE(p->Eval(ibm_, schema_).ok());
}

TEST_F(PredicateTest, ValidateChecksAllLeaves) {
  const auto good = MakeAnd(
      MakeComparison("name", CompareOp::kEq, Value("x")),
      MakeComparison("employees", CompareOp::kGt, Value(0.0)));
  EXPECT_TRUE(good->Validate(schema_).ok());
  const auto bad = MakeAnd(
      MakeComparison("name", CompareOp::kEq, Value("x")),
      MakeNot(MakeComparison("ghost_col", CompareOp::kGt, Value(0.0))));
  EXPECT_FALSE(bad->Validate(schema_).ok());
}

TEST_F(PredicateTest, ToStringRendering) {
  const auto p = MakeAnd(
      MakeComparison("employees", CompareOp::kGe, Value(10.0)),
      MakeNot(MakeComparison("name", CompareOp::kEq, Value("ibm"))));
  EXPECT_EQ(p->ToString(), "((employees >= 10) AND (NOT (name = 'ibm')))");
}

TEST(CompareOpSymbol, AllSymbols) {
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kNe), "!=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGe), ">=");
}

}  // namespace
}  // namespace uuq
