// Parameterized property sweeps over the paper's synthetic workload space:
// publicity skew λ × publicity-value correlation ρ × number of sources w.
// These assert estimator INVARIANTS (well-definedness, ordering, coverage
// behaviour), not point values — the point values are the benches' job.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bound.h"
#include "core/bucket.h"
#include "core/chao92.h"
#include "core/frequency.h"
#include "core/naive.h"
#include "integration/sample.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

struct SweepParam {
  double lambda;
  double rho;
  int workers;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = "lambda" + std::to_string(static_cast<int>(p.lambda)) +
                     "_rho" + std::to_string(static_cast<int>(p.rho * 10)) +
                     "_w" + std::to_string(p.workers) + "_s" +
                     std::to_string(p.seed);
  return name;
}

class EstimatorSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const SweepParam& p = GetParam();
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = p.lambda;
    pop.rho = p.rho;
    pop.seed = p.seed;
    population_ = MakeSyntheticPopulation(pop);

    CrowdConfig crowd;
    crowd.num_workers = p.workers;
    crowd.answers_per_worker = 400 / p.workers;  // ~400 answers total
    crowd.seed = p.seed * 977 + 3;
    const auto stream = CrowdSimulator(&population_, crowd).GenerateStream();
    for (const auto& obs : stream) {
      sample_.Add(obs.source_id, obs.entity_key, obs.value);
    }
  }

  Population population_;
  IntegratedSample sample_;
};

TEST_P(EstimatorSweep, SampleStatsAreConsistent) {
  const SampleStats stats = SampleStats::FromSample(sample_);
  EXPECT_EQ(stats.n, sample_.n());
  EXPECT_EQ(stats.c, sample_.c());
  EXPECT_LE(stats.c, stats.n);
  EXPECT_LE(stats.f1, stats.c);
  EXPECT_GE(stats.Coverage(), 0.0);
  EXPECT_LE(stats.Coverage(), 1.0);
  EXPECT_GE(stats.Gamma2(), 0.0);
  EXPECT_NEAR(stats.value_sum, sample_.ObservedSum(), 1e-6);
}

TEST_P(EstimatorSweep, ChaoNhatDominatesObservedCount) {
  const SampleStats stats = SampleStats::FromSample(sample_);
  const double n_hat = Chao92Nhat(stats);
  EXPECT_GE(n_hat, static_cast<double>(stats.c) - 1e-9);
  EXPECT_GE(GoodTuringNhat(stats), static_cast<double>(stats.c) - 1e-9);
  EXPECT_LE(GoodTuringNhat(stats), n_hat + 1e-9);
}

TEST_P(EstimatorSweep, CorrectionsAreNonNegativeForPositiveValues) {
  // All synthetic values are positive, so Δ̂ ≥ 0 for every estimator.
  for (const SumEstimator* est :
       std::initializer_list<const SumEstimator*>{
           new NaiveEstimator(), new FrequencyEstimator(),
           new BucketSumEstimator()}) {
    const Estimate e = est->EstimateImpact(sample_);
    if (e.finite) {
      EXPECT_GE(e.delta, -1e-9) << e.estimator;
      EXPECT_GE(e.corrected_sum, sample_.ObservedSum() - 1e-9) << e.estimator;
    }
    delete est;
  }
}

TEST_P(EstimatorSweep, CorrectedSumsNeverBelowObserved) {
  // The observed sum is a hard lower bound on the truth here (positive
  // values); corrected answers must respect it.
  const Estimate bucket = BucketSumEstimator().EstimateImpact(sample_);
  EXPECT_GE(bucket.corrected_sum, sample_.ObservedSum() - 1e-9);
}

TEST_P(EstimatorSweep, BucketObjectiveNeverExceedsSingleBucket) {
  const SampleStats whole = SampleStats::FromSample(sample_);
  const Estimate single = NaiveEstimator().FromStats(whole);
  const Estimate bucket = BucketSumEstimator().EstimateImpact(sample_);
  if (std::isfinite(single.delta)) {
    EXPECT_LE(std::fabs(bucket.delta), std::fabs(single.delta) + 1e-6);
  }
}

TEST_P(EstimatorSweep, BucketPartitionCoversSampleExactly) {
  const auto buckets = BucketSumEstimator().ComputeBuckets(sample_);
  SampleStats merged;
  double prev_hi = -1e300;
  for (const ValueBucket& b : buckets) {
    EXPECT_LE(b.lo, b.hi);
    EXPECT_GT(b.lo, prev_hi);  // disjoint, ascending
    prev_hi = b.hi;
    merged.Merge(b.stats);
  }
  const SampleStats whole = SampleStats::FromSample(sample_);
  EXPECT_EQ(merged.n, whole.n);
  EXPECT_EQ(merged.c, whole.c);
  EXPECT_EQ(merged.f1, whole.f1);
  EXPECT_NEAR(merged.value_sum, whole.value_sum, 1e-6);
}

TEST_P(EstimatorSweep, UpperBoundDominatesEstimatesWhenFinite) {
  const SampleStats stats = SampleStats::FromSample(sample_);
  const SumUpperBound bound = ComputeSumUpperBound(stats);
  if (!bound.finite) return;
  const Estimate naive = NaiveEstimator().FromStats(stats);
  // The bound is a worst case on the truth; it must sit above the naive
  // point estimate (same count machinery, inflated).
  if (naive.finite) {
    EXPECT_GE(bound.phi_upper, naive.corrected_sum - 1e-6);
  }
  EXPECT_GE(bound.phi_upper, stats.value_sum);
}

TEST_P(EstimatorSweep, TruthBelowUpperBoundWhenFinite) {
  const SumUpperBound bound = ComputeSumUpperBound(sample_);
  if (bound.finite) {
    EXPECT_GE(bound.phi_upper, 0.9 * population_.TrueSum());
  }
}

TEST_P(EstimatorSweep, EstimatorsAreDeterministic) {
  const Estimate a = BucketSumEstimator().EstimateImpact(sample_);
  const Estimate b = BucketSumEstimator().EstimateImpact(sample_);
  EXPECT_DOUBLE_EQ(a.delta, b.delta);
  EXPECT_EQ(a.num_buckets, b.num_buckets);
}

INSTANTIATE_TEST_SUITE_P(
    SyntheticGrid, EstimatorSweep,
    ::testing::Values(
        // The paper's Figure 6 grid (λ, ρ) × worker counts, two seeds each.
        SweepParam{0.0, 0.0, 100, 1}, SweepParam{0.0, 0.0, 10, 2},
        SweepParam{0.0, 0.0, 5, 3}, SweepParam{4.0, 1.0, 100, 4},
        SweepParam{4.0, 1.0, 10, 5}, SweepParam{4.0, 1.0, 5, 6},
        SweepParam{4.0, 0.0, 100, 7}, SweepParam{4.0, 0.0, 10, 8},
        SweepParam{4.0, 0.0, 5, 9}, SweepParam{1.0, 1.0, 20, 10},
        SweepParam{2.0, 0.5, 8, 11}, SweepParam{1.0, 1.0, 20, 12}),
    ParamName);

// Coverage-driven property: as the sample grows, Good-Turing coverage rises
// and the bucket estimate approaches the truth from below (for ρ = 1).
class ConvergenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvergenceSweep, CoverageGrowsWithSampleSize) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 21;
  const Population population = MakeSyntheticPopulation(pop);
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 25;
  crowd.seed = static_cast<uint64_t>(GetParam());
  const auto stream = CrowdSimulator(&population, crowd).GenerateStream();

  IntegratedSample sample;
  double coverage_at_100 = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
    if (i + 1 == 100) {
      coverage_at_100 = SampleStats::FromSample(sample).Coverage();
    }
  }
  const double coverage_at_end = SampleStats::FromSample(sample).Coverage();
  EXPECT_GE(coverage_at_end, coverage_at_100 - 0.05);
  EXPECT_GT(coverage_at_end, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceSweep,
                         ::testing::Values(101, 102, 103, 104, 105));

}  // namespace
}  // namespace uuq
