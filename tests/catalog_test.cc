#include "db/catalog.h"

#include <gtest/gtest.h>

namespace uuq {
namespace {

Table CompaniesFixture() {
  Table table("companies", Schema({{"name", ValueType::kString},
                                   {"employees", ValueType::kDouble}}));
  EXPECT_TRUE(table.Append({Value("ibm"), Value(1000.0)}).ok());
  EXPECT_TRUE(table.Append({Value("tiny"), Value(3.0)}).ok());
  return table;
}

TEST(Catalog, RegisterAndLookup) {
  Catalog catalog;
  catalog.Register(CompaniesFixture());
  EXPECT_TRUE(catalog.Contains("companies"));
  EXPECT_TRUE(catalog.Contains("COMPANIES"));  // case-insensitive
  EXPECT_FALSE(catalog.Contains("missing"));
}

TEST(Catalog, LookupMissingIsNotFound) {
  Catalog catalog;
  auto t = catalog.Lookup("nope");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(Catalog, ReRegisterReplaces) {
  Catalog catalog;
  catalog.Register(CompaniesFixture());
  Table bigger("companies", Schema({{"name", ValueType::kString},
                                    {"employees", ValueType::kDouble}}));
  ASSERT_TRUE(bigger.Append({Value("x"), Value(1.0)}).ok());
  catalog.Register(std::move(bigger));
  EXPECT_EQ(catalog.Lookup("companies").value()->num_rows(), 1u);
}

TEST(Catalog, TableNames) {
  Catalog catalog;
  catalog.Register(CompaniesFixture());
  Table other("other", Schema({{"x", ValueType::kInt64}}));
  catalog.Register(std::move(other));
  const auto names = catalog.TableNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST(Catalog, ExecuteSqlEndToEnd) {
  Catalog catalog;
  catalog.Register(CompaniesFixture());
  auto result = catalog.ExecuteSql("SELECT SUM(employees) FROM companies");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result.value().value.AsDouble(), 1003.0);
}

TEST(Catalog, ExecuteSqlWithPredicate) {
  Catalog catalog;
  catalog.Register(CompaniesFixture());
  auto result = catalog.ExecuteSql(
      "SELECT COUNT(name) FROM companies WHERE employees < 10");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().value.AsInt64(), 1);
}

TEST(Catalog, ExecuteSqlUnknownTableFails) {
  Catalog catalog;
  auto result = catalog.ExecuteSql("SELECT SUM(x) FROM ghosts");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Catalog, ExecuteSqlParseErrorPropagates) {
  Catalog catalog;
  catalog.Register(CompaniesFixture());
  auto result = catalog.ExecuteSql("SELECTZ SUM(x) FROM companies");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace uuq
