// Quickstart: estimate the impact of unknown unknowns on a SUM query.
//
// Recreates the paper's Appendix F toy example: five sources report US tech
// companies and their employee counts; two companies (C and E) are never
// mentioned by the first four sources. We ask how far the observed
// SELECT SUM(employee) is from the (unknown to the system) ground truth and
// let each estimator correct it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/bucket.h"
#include "core/frequency.h"
#include "core/naive.h"
#include "core/query_correction.h"
#include "integration/integrator.h"

int main() {
  using namespace uuq;

  // 1. Declare the sources (each mentions an entity at most once).
  DataSource s1("s1"), s2("s2"), s3("s3"), s4("s4"), s5("s5");
  (void)s1.Add("Company A", 1000);
  (void)s1.Add("Company B", 2000);
  (void)s1.Add("Company D", 10000);
  (void)s2.Add("Company B", 2000);
  (void)s2.Add("Company D", 10000);
  (void)s3.Add("Company D", 10000);
  (void)s4.Add("Company D", 10000);
  (void)s5.Add("Company A", 1000);
  (void)s5.Add("Company E", 300);

  // 2. Integrate them (entity resolution + value fusion + lineage).
  Integrator::Options options;
  options.table_name = "us_tech_companies";
  options.value_column = "employees";
  Integrator integrator(options);
  for (const DataSource* s : {&s1, &s2, &s3, &s4}) {
    if (Status status = integrator.AddSource(*s); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const double ground_truth = 1000 + 2000 + 900 + 10000 + 300;  // = 14200

  // 3. Ask each estimator for the corrected answer.
  auto report = [&](const IntegratedSample& sample, const char* when) {
    std::printf("--- %s: observed SUM = %.0f (truth %.0f) ---\n", when,
                sample.ObservedSum(), ground_truth);
    for (const SumEstimator* est :
         std::initializer_list<const SumEstimator*>{
             new NaiveEstimator(), new FrequencyEstimator(),
             new BucketSumEstimator()}) {
      const Estimate e = est->EstimateImpact(sample);
      std::printf("  %-16s corrected = %8.1f  (delta %+8.1f, N-hat %5.1f)\n",
                  e.estimator.c_str(), e.corrected_sum, e.delta, e.n_hat);
      delete est;
    }
  };
  report(integrator.sample(), "before source s5");

  // 4. A new source arrives; everything updates incrementally.
  (void)integrator.AddSource(s5);
  report(integrator.sample(), "after source s5");

  // 5. Or just ask SQL and let the library pick the estimator and attach
  //    the worst-case bound + advice.
  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(
      integrator.sample(), "SELECT SUM(value) FROM us_tech_companies");
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", answer.value().ToString().c_str());
  return 0;
}
