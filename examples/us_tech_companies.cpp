// The paper's running example at full scale: a simulated crowd of 50
// workers collects US tech companies and their employee counts; we watch
// the observed SELECT SUM(employees) converge, track the completeness
// diagnostics, and compare every estimator against the known ground truth.
//
// Build & run:  ./build/examples/us_tech_companies
#include <cstdio>

#include "core/bound.h"
#include "core/query_correction.h"
#include "integration/diagnostics.h"
#include "simulation/experiment.h"
#include "simulation/scenarios.h"

int main() {
  using namespace uuq;

  const Scenario scenario = scenarios::UsTechEmployment();
  std::printf("Scenario: %s — %zu companies in the ground truth, "
              "true SUM(employees) = %.0f\n",
              scenario.name.c_str(), scenario.population.size(),
              scenario.ground_truth_sum);
  std::printf("Crowd stream: %zu answers\n\n", scenario.stream.size());

  // Replay the crowd answers and report at a few milestones.
  IntegratedSample sample;
  const QueryCorrector corrector;
  size_t next_milestone = 100;
  for (size_t i = 0; i < scenario.stream.size(); ++i) {
    const Observation& obs = scenario.stream[i];
    sample.Add(obs.source_id, obs.entity_key, obs.value);
    if (i + 1 != next_milestone) continue;
    next_milestone += 200;

    const CompletenessReport completeness = AnalyzeCompleteness(sample);
    std::printf("after %4zu answers: %lld distinct companies, coverage "
                "%.2f%s\n",
                i + 1, static_cast<long long>(completeness.c),
                completeness.coverage,
                completeness.estimates_recommended
                    ? ""
                    : "  [below the 0.4 reliability gate]");
  }

  // Final corrected answer with bound and advice.
  auto answer = corrector.Correct(sample, AggregateKind::kSum);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", answer.value().ToString().c_str());
  std::printf("\nGround truth (hidden from the estimators): %.0f\n",
              scenario.ground_truth_sum);
  std::printf("Corrected-answer error: %+.1f%%  (closed-world error: "
              "%+.1f%%)\n",
              100.0 * (answer.value().corrected / scenario.ground_truth_sum -
                       1.0),
              100.0 * (answer.value().observed / scenario.ground_truth_sum -
                       1.0));

  // Predicate push-down: only the big companies.
  auto big = corrector.CorrectSql(
      sample, "SELECT COUNT(value) FROM us_tech_companies WHERE value >= 1000");
  if (big.ok()) {
    std::printf("\nCompanies with >= 1000 employees:\n%s",
                big.value().ToString().c_str());
  }
  return 0;
}
