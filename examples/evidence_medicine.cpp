// The paper's Proton-beam use case (§6.1.4): evidence-based-medicine
// researchers crowdsource abstract screening and ask how many patients, in
// total, participated in charged-particle radiation-therapy studies:
//
//   SELECT SUM(participants) FROM proton_beam_studies
//
// Unlike the other experiments this query has NO known ground truth — which
// is exactly when unknown-unknowns estimation earns its keep: the corrected
// answer plus the worst-case bound gives the researchers a defensible range
// instead of a silent undercount.
//
// Build & run:  ./build/examples/evidence_medicine
#include <cstdio>

#include "core/query_correction.h"
#include "integration/diagnostics.h"
#include "simulation/scenarios.h"

int main() {
  using namespace uuq;

  const Scenario scenario = scenarios::ProtonBeam();
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }

  std::printf("Screened %lld abstract reviews covering %lld distinct "
              "studies.\n",
              static_cast<long long>(sample.n()),
              static_cast<long long>(sample.c()));

  const SourceImbalanceReport imbalance = AnalyzeSourceImbalance(sample);
  std::printf("Worker balance: %lld workers, largest share %.1f%%, "
              "streaker suspected: %s\n\n",
              static_cast<long long>(imbalance.num_sources),
              100.0 * imbalance.max_share,
              imbalance.streaker_suspected ? "yes" : "no");

  const QueryCorrector corrector;
  auto answer = corrector.Correct(sample, AggregateKind::kSum);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", answer.value().ToString().c_str());

  std::printf(
      "\nReading: the closed-world answer undercounts by construction; the\n"
      "corrected estimate is the library's best guess and the bound is a\n"
      "99%% worst case. The paper's reference estimate for this question\n"
      "was ~95,000 participants.\n");

  // How much of the study population have we even seen?
  auto count = corrector.Correct(sample, AggregateKind::kCount);
  if (count.ok()) {
    std::printf("\nStudy-count view: observed %0.f studies, estimated %.0f "
                "exist (≈ %.0f unseen)\n",
                count.value().observed, count.value().corrected,
                count.value().estimate.missing_count);
  }
  return 0;
}
