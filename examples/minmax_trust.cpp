// MIN/MAX trust reporting (paper §5, Figure 7(e)(f)).
//
// Extremes cannot be extrapolated, but the library can say WHEN the
// observed extreme deserves trust: it partitions the value range, estimates
// the unknown-unknowns count in the extreme bucket, and only claims the
// observed MIN/MAX when that count is (near) zero. This example watches the
// claims flip on as a crowd stream accumulates.
//
// Build & run:  ./build/examples/minmax_trust
#include <cstdio>

#include "core/minmax.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

int main() {
  using namespace uuq;

  // 100 items with values 10..1000; larger values are more public (ρ = 1),
  // so the MAX is discovered early and the MIN very late.
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 11;
  const Population population = MakeSyntheticPopulation(pop);

  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 30;
  crowd.seed = 12;
  const CrowdSimulator simulator(&population, crowd);

  const MinMaxEstimator minmax;
  IntegratedSample sample;
  std::printf("true MAX = %.0f, true MIN = %.0f\n\n", population.TrueMax(),
              population.TrueMin());
  std::printf("%6s  %22s  %22s\n", "n", "MAX (claimed?)", "MIN (claimed?)");

  int i = 0;
  for (const Observation& obs : simulator.GenerateStream()) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
    if (++i % 60 != 0) continue;
    const ExtremeEstimate max_est = minmax.EstimateMax(sample);
    const ExtremeEstimate min_est = minmax.EstimateMin(sample);
    std::printf("%6d  %10.0f (%s, ~%.1f unseen)  %10.0f (%s, ~%.1f unseen)\n",
                i, max_est.observed_extreme,
                max_est.claim_true_extreme ? "TRUST" : "wait ",
                max_est.extreme_bucket_missing, min_est.observed_extreme,
                min_est.claim_true_extreme ? "TRUST" : "wait ",
                min_est.extreme_bucket_missing);
  }

  std::printf(
      "\nReading: 'TRUST' means the extreme bucket's unknown-unknowns count\n"
      "estimate rounds to zero — report the observed extreme as the true\n"
      "one. Under ρ = 1 the MAX earns trust long before the MIN (small\n"
      "items hide in the unpopular tail), mirroring Figure 7(e)(f).\n");
  return 0;
}
