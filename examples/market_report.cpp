// End-to-end "analyst" workflow: observations arrive as a CSV export,
// entities carry a sector category, and the report needs per-sector
// corrected totals plus a bootstrap confidence interval.
//
// Demonstrates: CSV ingestion, categories, GROUP BY correction, bootstrap.
//
// Build & run:  ./build/examples/market_report
#include <cstdio>

#include "core/bootstrap.h"
#include "core/bucket.h"
#include "core/query_correction.h"
#include "db/csv.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

int main() {
  using namespace uuq;

  // Simulate the CSV export: a crowd surveyed companies from two sectors.
  SyntheticPopulationConfig hw_pop;
  hw_pop.num_items = 60;
  hw_pop.lambda = 1.5;
  hw_pop.rho = 1.0;
  hw_pop.seed = 21;
  const Population hardware = MakeSyntheticPopulation(hw_pop);
  SyntheticPopulationConfig sw_pop = hw_pop;
  sw_pop.num_items = 80;
  sw_pop.seed = 22;
  const Population software = MakeSyntheticPopulation(sw_pop);

  CrowdConfig crowd;
  crowd.num_workers = 12;
  crowd.answers_per_worker = 25;
  crowd.seed = 23;

  std::vector<Observation> stream;
  for (const Observation& obs :
       CrowdSimulator(&hardware, crowd).GenerateStream()) {
    stream.push_back({obs.source_id, "hw-" + obs.entity_key, obs.value,
                      "hardware"});
  }
  crowd.seed = 24;
  for (const Observation& obs :
       CrowdSimulator(&software, crowd).GenerateStream()) {
    stream.push_back({"sw" + obs.source_id, "sw-" + obs.entity_key, obs.value,
                      "software"});
  }

  // Round-trip through CSV, as an analyst pipeline would.
  const std::string csv = WriteObservationsCsv(stream);
  auto loaded = ReadObservationsCsv(csv);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu observations from CSV (%zu bytes)\n\n",
              loaded.value().size(), csv.size());

  // NOTE: the CSV observation format carries (source, entity, value); the
  // category travels with the entity key prefix here, so re-attach it.
  IntegratedSample sample;
  for (const Observation& obs : loaded.value()) {
    const bool is_hw = obs.entity_key.rfind("hw-", 0) == 0;
    sample.Add(obs.source_id, obs.entity_key, obs.value,
               is_hw ? "hardware" : "software");
  }

  // Per-sector corrected totals.
  const QueryCorrector corrector;
  auto grouped = corrector.CorrectGroupedSql(
      sample, "SELECT SUM(value) FROM market GROUP BY category");
  if (!grouped.ok()) {
    std::fprintf(stderr, "%s\n", grouped.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", grouped.value().ToString().c_str());
  std::printf("(hidden truths: hardware %.0f, software %.0f)\n\n",
              hardware.TrueSum(), software.TrueSum());

  // Bootstrap CI on the overall corrected total.
  const BucketSumEstimator bucket;
  BootstrapOptions boot;
  boot.replicates = 150;
  const BootstrapInterval ci = BootstrapCorrectedSum(sample, bucket, boot);
  std::printf("Overall corrected SUM: %.0f   95%% bootstrap CI: [%.0f, %.0f] "
              "(%d finite replicates)\n",
              ci.point, ci.lo, ci.hi, ci.finite_replicates);
  std::printf("Hidden overall truth:  %.0f\n",
              hardware.TrueSum() + software.TrueSum());
  return 0;
}
