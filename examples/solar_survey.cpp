// The paper's §1.2 web-integration motivation: a user searches the web to
// build a list of all US solar-energy companies. The first few pages yield
// mostly new companies; after a dozen pages nearly everything is a
// duplicate. The growing overlap is exactly what tells us how complete the
// list is — and how many companies we are still missing (a COUNT query
// under unknown unknowns).
//
// Build & run:  ./build/examples/solar_survey
#include <cstdio>

#include "core/count.h"
#include "core/query_correction.h"
#include "integration/diagnostics.h"
#include "integration/integrator.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

int main() {
  using namespace uuq;

  // Ground truth: 350 solar companies; the installed-capacity distribution
  // is heavy-tailed and better-known companies appear on more pages.
  HeavyTailPopulationConfig pop;
  pop.num_items = 350;
  pop.lognormal_mu = 2.5;
  pop.lognormal_sigma = 1.4;
  pop.publicity_exponent = 0.8;
  pop.publicity_noise_sigma = 0.5;
  pop.key_prefix = "solar-co";
  pop.seed = 42;
  const Population directory = MakeHeavyTailPopulation(pop);

  // Each "web page" lists 15-ish companies, sampled by publicity.
  CrowdConfig pages;
  pages.num_workers = 25;  // 25 pages crawled
  pages.answers_per_worker = 15;
  pages.order = ArrivalOrder::kSequential;  // we crawl page by page
  pages.seed = 43;
  const CrowdSimulator crawler(&directory, pages);

  IntegratedSample sample;
  int page = 0;
  int seen_before_this_page = 0;
  const CountEstimator count_est(CountMethod::kChao92);
  std::printf("page  new  total-distinct  coverage  est-missing\n");
  for (const Observation& obs : crawler.GenerateStream()) {
    // Page boundary bookkeeping (sources arrive sequentially).
    const int this_page = std::atoi(obs.source_id.c_str() + 1);
    if (this_page != page) {
      page = this_page;
      seen_before_this_page = static_cast<int>(sample.c());
    }
    sample.Add(obs.source_id, obs.entity_key, obs.value);
    if (sample.n() % 75 == 0) {  // every 5 pages
      const CompletenessReport report = AnalyzeCompleteness(sample);
      const Estimate estimate = count_est.EstimateCount(sample);
      std::printf("%4d  %3d  %14lld  %8.2f  %11.1f\n", page,
                  static_cast<int>(sample.c()) - seen_before_this_page,
                  static_cast<long long>(report.c), report.coverage,
                  estimate.missing_count);
    }
  }

  const QueryCorrector corrector;
  auto answer = corrector.CorrectSql(
      sample, "SELECT COUNT(*) FROM solar_companies");
  if (answer.ok()) {
    std::printf("\n%s", answer.value().ToString().c_str());
  }
  std::printf("\nTrue directory size (hidden): %zu companies\n",
              directory.size());
  return 0;
}
