// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary follows the same pattern:
//   1. print the paper-shaped series/rows (the reproduction artifact),
//   2. run google-benchmark timings for the estimators it exercises.
// Repetition counts default to paper-faithful-but-tractable values and can
// be raised via the UUQ_REPS environment variable for full fidelity.
#ifndef UUQ_BENCH_BENCH_UTIL_H_
#define UUQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/bucket.h"
#include "core/frequency.h"
#include "core/monte_carlo.h"
#include "core/naive.h"
#include "simulation/experiment.h"
#include "simulation/report.h"

namespace uuq {
namespace bench {

/// Repetitions for averaged experiments: UUQ_REPS env var or `fallback`.
inline int RepsFromEnv(int fallback) {
  const char* env = std::getenv("UUQ_REPS");
  if (env == nullptr) return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

/// Monte-Carlo options tuned for sweep benches (still faithful to
/// Algorithm 3's grid, fewer simulation runs per point).
inline MonteCarloOptions FastMcOptions() {
  MonteCarloOptions options;
  options.runs_per_point = 3;
  options.n_grid_steps = 10;
  return options;
}

/// The paper's four §6.1 estimators, owned together so EstimatorSet pointers
/// stay valid.
struct PaperEstimators {
  NaiveEstimator naive;
  FrequencyEstimator freq;
  BucketSumEstimator bucket;
  MonteCarloEstimator mc{FastMcOptions()};

  EstimatorSet All() const { return {&naive, &freq, &bucket, &mc}; }
  EstimatorSet NoMc() const { return {&naive, &freq, &bucket}; }
};

inline void PrintTable(const SeriesTable& table) {
  std::fputs(table.ToAscii().c_str(), stdout);
  std::fputs("\n", stdout);
}

inline void PrintHeader(const std::string& what, const std::string& expect) {
  std::printf("================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Paper-shape expectation: %s\n", expect.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace uuq

#endif  // UUQ_BENCH_BENCH_UTIL_H_
