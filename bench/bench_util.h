// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary follows the same pattern:
//   1. print the paper-shaped series/rows (the reproduction artifact),
//   2. run google-benchmark timings for the estimators it exercises.
// Repetition counts default to paper-faithful-but-tractable values and can
// be raised via the UUQ_REPS environment variable for full fidelity.
#ifndef UUQ_BENCH_BENCH_UTIL_H_
#define UUQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_json_splice.h"
#include "core/bucket.h"
#include "core/frequency.h"
#include "core/monte_carlo.h"
#include "core/naive.h"
#include "simulation/experiment.h"
#include "simulation/report.h"

namespace uuq {
namespace bench {

/// Repetitions for averaged experiments: UUQ_REPS env var or `fallback`.
inline int RepsFromEnv(int fallback) {
  const char* env = std::getenv("UUQ_REPS");
  if (env == nullptr) return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

/// Monte-Carlo options tuned for sweep benches (still faithful to
/// Algorithm 3's grid, fewer simulation runs per point).
inline MonteCarloOptions FastMcOptions() {
  MonteCarloOptions options;
  options.runs_per_point = 3;
  options.n_grid_steps = 10;
  return options;
}

/// The paper's four §6.1 estimators, owned together so EstimatorSet pointers
/// stay valid.
struct PaperEstimators {
  NaiveEstimator naive;
  FrequencyEstimator freq;
  BucketSumEstimator bucket;
  MonteCarloEstimator mc{FastMcOptions()};

  EstimatorSet All() const { return {&naive, &freq, &bucket, &mc}; }
  EstimatorSet NoMc() const { return {&naive, &freq, &bucket}; }
};

inline void PrintTable(const SeriesTable& table) {
  std::fputs(table.ToAscii().c_str(), stdout);
  std::fputs("\n", stdout);
}

inline void PrintHeader(const std::string& what, const std::string& expect) {
  std::printf("================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Paper-shape expectation: %s\n", expect.c_str());
  std::printf("================================================================\n");
}

/// One machine-readable benchmark measurement. Serialized to bench_out.json
/// so CI can track the perf trajectory across PRs:
///   [{"estimator": "monte-carlo", "config": "threads=4,n=300",
///     "ns_per_op": 12345678.0, "speedup": 3.7}, ...]
/// `speedup` is relative to the matching serial (threads=1) row; serial rows
/// report 1.0.
struct BenchRow {
  std::string estimator;
  std::string config;
  double ns_per_op = 0.0;
  double speedup = 1.0;
};

/// Target path for the JSON rows: UUQ_BENCH_JSON or ./bench_out.json.
inline std::string BenchJsonPath() {
  const char* env = std::getenv("UUQ_BENCH_JSON");
  return env != nullptr ? env : "bench_out.json";
}

inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char ch : in) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

inline std::string FormatBenchRow(const BenchRow& row) {
  char buffer[64];
  std::string out = "  {\"estimator\": \"" + JsonEscape(row.estimator) +
                    "\", \"config\": \"" + JsonEscape(row.config) + "\"";
  std::snprintf(buffer, sizeof(buffer), ", \"ns_per_op\": %.3f",
                row.ns_per_op);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), ", \"speedup\": %.4f}", row.speedup);
  out += buffer;
  return out;
}

/// Reads `"key": <number>` out of a (small, trusted) baseline JSON file —
/// the committed regression-gate references (bench/bootstrap_baseline.json,
/// bench/mc_grid_baseline.json). NaN when the file or key is missing.
inline double ReadBaselineNumber(const std::string& path,
                                 const std::string& key) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return std::numeric_limits<double>::quiet_NaN();
  std::string content;
  char chunk[1024];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    content.append(chunk, got);
  }
  std::fclose(file);
  const std::string needle = "\"" + key + "\"";
  size_t pos = content.find(needle);
  if (pos == std::string::npos) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  pos = content.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::atof(content.c_str() + pos + 1);
}

/// Writes the rows as a JSON array to `path`; returns false (with a warning
/// on stderr) when the file cannot be opened.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<BenchRow>& rows) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("[\n", file);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(file, "%s%s\n", FormatBenchRow(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fputs("]\n", file);
  std::fclose(file);
  return true;
}

/// Appends rows to an existing bench_out.json array (rewriting the file) so
/// several bench binaries can contribute to ONE trajectory artifact; writes
/// a fresh array when the file is missing or not a well-terminated JSON
/// array (the shared splice helpers in bench_json_splice.h carry the
/// truncation guard — uuq_bench_history uses the identical rules).
inline bool AppendBenchJson(const std::string& path,
                            const std::vector<BenchRow>& rows) {
  std::string existing;
  ReadFileInto(path, &existing);  // missing file -> empty -> fresh array
  std::string body;
  if (!ExtractJsonArrayBody(existing, &body)) {
    return WriteBenchJson(path, rows);
  }
  const bool had_rows = body.find('{') != std::string::npos;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("[", file);
  std::fputs(body.c_str(), file);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(file, "%s\n%s", (had_rows || i > 0) ? "," : "",
                 FormatBenchRow(rows[i]).c_str());
  }
  std::fputs("\n]\n", file);
  std::fclose(file);
  return true;
}

}  // namespace bench
}  // namespace uuq

#endif  // UUQ_BENCH_BENCH_UTIL_H_
