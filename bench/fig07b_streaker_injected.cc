// Figure 7(b): a single streaker injected at n = 160 contributing all 100
// unique items directly afterwards (synthetic λ=1, ρ=1, 20 honest sources).
//
// Paper shape: every estimator except Monte-Carlo heavily overestimates
// right after the streaker floods the sample with fresh singletons;
// Monte-Carlo explains the flood via simulation and stays close to truth.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTruth = 50500.0;

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(10);
  const auto factory = [](uint64_t seed) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = 1.0;
    pop.rho = 1.0;
    pop.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = 20;
    crowd.answers_per_worker = 20;
    crowd.streaker_at = 160;
    crowd.streaker_items = 100;
    crowd.seed = seed * 131 + 17;
    return scenarios::Synthetic(pop, crowd).stream;
  };

  bench::PaperEstimators estimators;
  const auto series = RunAveragedConvergence(
      factory, estimators.All(),
      {40, 80, 120, 160, 200, 260, 320, 380, 440, 500}, reps, 3000);

  bench::PrintHeader(
      "Figure 7(b): streaker injected at n=160 (all 100 uniques)",
      "pre-160 all estimators fine; right after, naive/freq/bucket spike "
      "while monte-carlo stays near truth");
  bench::PrintTable(SeriesToTable("Figure 7(b) series", series, kTruth, true));

  double spike_naive = 0.0, spike_mc = 0.0;
  for (const SeriesPoint& point : series) {
    if (point.n == 260) {  // right as the streaker finishes
      spike_naive = point.estimates.at("naive") / kTruth;
      spike_mc = point.estimates.at("monte-carlo") / kTruth;
    }
  }
  std::printf("Post-streaker (n=260): naive/truth = %.2f vs "
              "monte-carlo/truth = %.2f (paper: only MC stays reasonable)\n\n",
              spike_naive, spike_mc);
}

void BM_StreakerStreamMc(benchmark::State& state) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = 3;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 20;
  crowd.streaker_at = 160;
  crowd.seed = 4;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const MonteCarloEstimator mc(bench::FastMcOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_StreakerStreamMc)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
