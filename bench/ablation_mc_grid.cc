// Ablation: Monte-Carlo search resolution (DESIGN.md §4).
//
// Algorithm 3 fixes the grid at (N̂−c)/10 θN-steps and 0.1 θλ-steps with a
// handful of simulation runs per point, arguing the step sizes are "small
// enough to efficiently model the convex curve, but large enough to be
// robust to any noise". This bench sweeps grid resolution and
// runs-per-point and reports estimate quality vs cost.
//
// Expected shape: accuracy saturates near the paper's settings; finer grids
// and more runs cost linearly more time with little accuracy gain — the
// curve fit already denoises the objective.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "bench_util.h"
#include "core/monte_carlo.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

IntegratedSample MakeSample(uint64_t seed) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 15;
  crowd.seed = seed * 17 + 1;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) sample.Add(obs);
  return sample;
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(10);
  bench::PrintHeader(
      "Ablation: Monte-Carlo grid resolution and runs-per-point (true N=100)",
      "accuracy saturates near the paper's settings (10 N-steps, a few runs "
      "per grid point); cost grows linearly with both knobs");

  SeriesTable table("MC search ablation",
                    {"n_grid_steps", "runs_per_point", "avg_nhat",
                     "avg_abs_err", "avg_ms_per_call"});
  for (int grid_steps : {4, 10, 20}) {
    for (int runs : {1, 3, 8}) {
      MonteCarloOptions options;
      options.n_grid_steps = grid_steps;
      options.runs_per_point = runs;
      const MonteCarloEstimator mc(options);

      double nhat_sum = 0.0, err_sum = 0.0, ms_sum = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        const IntegratedSample sample = MakeSample(900 + rep);
        const auto start = std::chrono::steady_clock::now();
        const double n_hat = mc.EstimateNhat(sample);
        const auto elapsed = std::chrono::steady_clock::now() - start;
        nhat_sum += n_hat;
        err_sum += std::fabs(n_hat - 100.0);
        ms_sum += std::chrono::duration<double, std::milli>(elapsed).count();
      }
      table.AddRow({static_cast<double>(grid_steps),
                    static_cast<double>(runs), nhat_sum / reps,
                    err_sum / reps, ms_sum / reps});
    }
  }
  bench::PrintTable(table);
}

void BM_McByGridSteps(benchmark::State& state) {
  const IntegratedSample sample = MakeSample(1);
  MonteCarloOptions options;
  options.n_grid_steps = static_cast<int>(state.range(0));
  options.runs_per_point = 3;
  const MonteCarloEstimator mc(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.EstimateNhat(sample));
  }
}
BENCHMARK(BM_McByGridSteps)->Arg(4)->Arg(10)->Arg(20)->Unit(
    benchmark::kMillisecond);

void BM_McByRuns(benchmark::State& state) {
  const IntegratedSample sample = MakeSample(1);
  MonteCarloOptions options;
  options.runs_per_point = static_cast<int>(state.range(0));
  const MonteCarloEstimator mc(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.EstimateNhat(sample));
  }
}
BENCHMARK(BM_McByRuns)->Arg(1)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
