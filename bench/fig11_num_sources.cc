// Figure 11 (Appendix E): how many independent sources does the bucket
// estimator need? Synthetic λ = 4, ρ = 1, w = 2..5 sources.
//
// Paper shape: the bucket estimator (a with-replacement method) needs
// enough overlapping sources — around 5 — to become accurate; with 2-3
// sources it is noticeably off. Monte-Carlo converges faster because it
// does not assume sampling with replacement.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTruth = 50500.0;

void RunPanel(int workers, int reps) {
  const auto factory = [workers](uint64_t seed) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = 4.0;
    pop.rho = 1.0;
    pop.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = workers;
    crowd.answers_per_worker = 80;  // every source sees most of the range
    crowd.seed = seed * 509 + 21;
    return scenarios::Synthetic(pop, crowd).stream;
  };

  bench::PaperEstimators estimators;
  const EstimatorSet set{&estimators.bucket, &estimators.mc};
  const auto series = RunAveragedConvergence(
      factory, set, MakeCheckpoints(static_cast<int64_t>(workers) * 80, 40),
      reps, 11000 + workers);

  char title[96];
  std::snprintf(title, sizeof(title), "Figure 11 panel: w=%d sources (%d reps)",
                workers, reps);
  bench::PrintTable(SeriesToTable(title, series, kTruth, true));
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(15);
  bench::PrintHeader(
      "Figure 11 (App. E): bucket accuracy vs number of sources (λ=4, ρ=1)",
      "bucket is off with 2-3 sources and accurate by ~5; monte-carlo "
      "converges faster at low source counts");
  for (int workers : {2, 3, 4, 5}) {
    RunPanel(workers, reps);
  }
}

void BM_BucketFiveSources(benchmark::State& state) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 4.0;
  pop.rho = 1.0;
  pop.seed = 1;
  CrowdConfig crowd;
  crowd.num_workers = 5;
  crowd.answers_per_worker = 80;
  crowd.seed = 2;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const BucketSumEstimator bucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_BucketFiveSources);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
