// Columnar bootstrap throughput harness + regression gate.
//
// Times BootstrapCorrectedSum on the ROADMAP baseline workload (bucket
// estimator, B=48 replicates, n=500 UsTechEmployment prefix — the PR 1
// measurement was 12.7 ms serial on the materializing path) in both
// evaluation modes, plus the jackknife, and verifies:
//
//   * columnar and materialized intervals agree bit for bit (the
//     conformance contract at bench scale),
//   * 1-thread and 2-thread pools agree bit for bit (the determinism
//     contract),
//   * the columnar path clears the >=3x replicate-throughput target over
//     the materializing path (acceptance criterion, recorded on the bench
//     box; warn-only unless UUQ_BENCH_ENFORCE is set, because a loaded or
//     slow box can legitimately land near the line).
//
// Regression gate — the check CI actually enforces:
// UUQ_BENCH_BASELINE=<path to bench/bootstrap_baseline.json> compares the
// measured columnar-vs-materialized SPEEDUP RATIO against the committed
// baseline and fails when it drops below 80% of it. The ratio is
// machine-portable (both paths run on the same box in the same process),
// unlike absolute milliseconds — the trade-off is that it tracks the
// columnar engine's advantage over the reference path, not absolute
// throughput: re-measure and recommit the baseline when the reference path
// itself is deliberately changed.
//
// VERIFY PASS (the wrong-answer-speedup guard). The best-of-N timing loop
// deliberately re-runs the IDENTICAL workload each rep — same seed, same
// replicate streams — which is right for best-of timing but means the loop
// itself can never notice a correct-looking speedup that silently changed
// the answer. Before any timing, the harness therefore cross-checks the
// full interval (point/lo/hi/median, bootstrap AND jackknife) of the
// production batched split scan against the scalar reference scan
// (SplitScanMode::kScalar) and of the default replicate blocking against
// block=1, all bit-for-bit; it also pins the adaptive replicate budget
// against fixed budgets at both ends of its range (pilot early-stop ==
// fixed-pilot, cap escalation == fixed-cap). UUQ_BENCH_VERIFY=0 skips it
// (debugging only — CI always runs it), so the ratio gate below can never
// pass on a wrong-answer speedup.
//
// Rows are APPENDED to bench_out.json so one CI artifact carries both this
// harness and bench_parallel_speedup.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

int64_t BestOfRepsNs(int reps, const std::function<void()>& op) {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    op();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    best = std::min<int64_t>(
        best,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  return best;
}

struct Fatal {
  std::string what;
};

void CheckBitIdentical(double a, double b, const char* label) {
  if (a != b && !(std::isnan(a) && std::isnan(b))) {
    throw Fatal{std::string(label) + ": results differ (" + std::to_string(a) +
                " vs " + std::to_string(b) + ")"};
  }
}

void CheckSameInterval(const BootstrapInterval& a, const BootstrapInterval& b,
                       const char* label) {
  CheckBitIdentical(a.point, b.point, label);
  CheckBitIdentical(a.lo, b.lo, label);
  CheckBitIdentical(a.hi, b.hi, label);
  CheckBitIdentical(a.median, b.median, label);
  if (a.replicates != b.replicates) {
    throw Fatal{std::string(label) + ": replicate sets differ"};
  }
}

/// The pre-timing correctness pass (see header comment): batched-vs-scalar
/// split scans and blocked-vs-unblocked replicate scheduling must produce
/// bit-identical intervals before any speedup is trusted.
void VerifyBatchedAgainstScalar(const IntegratedSample& sample,
                                const BucketSumEstimator& batched,
                                ThreadPool* serial) {
  const BucketSumEstimator scalar(
      std::make_shared<DynamicPartitioner>(serial, SplitScanMode::kScalar),
      std::make_shared<NaiveEstimator>());

  BootstrapOptions options;
  options.replicates = 48;
  options.pool = serial;
  options.evaluation = ReplicateEvaluation::kColumnar;
  const BootstrapInterval batched_bs =
      BootstrapCorrectedSum(sample, batched, options);
  const BootstrapInterval scalar_bs =
      BootstrapCorrectedSum(sample, scalar, options);
  CheckSameInterval(batched_bs, scalar_bs,
                    "verify bootstrap batched-vs-scalar scan");

  options.replicate_block = 1;
  const BootstrapInterval unblocked =
      BootstrapCorrectedSum(sample, batched, options);
  CheckSameInterval(batched_bs, unblocked,
                    "verify bootstrap blocked-vs-unblocked replicates");

  const JackknifeInterval jk_batched = JackknifeCorrectedSum(
      sample, batched, 1.96, serial, ReplicateEvaluation::kColumnar);
  const JackknifeInterval jk_scalar = JackknifeCorrectedSum(
      sample, scalar, 1.96, serial, ReplicateEvaluation::kColumnar);
  CheckBitIdentical(jk_batched.point, jk_scalar.point,
                    "verify jackknife batched-vs-scalar scan (point)");
  CheckBitIdentical(jk_batched.standard_error, jk_scalar.standard_error,
                    "verify jackknife batched-vs-scalar scan (se)");
  CheckBitIdentical(jk_batched.lo, jk_scalar.lo,
                    "verify jackknife batched-vs-scalar scan (lo)");
  CheckBitIdentical(jk_batched.hi, jk_scalar.hi,
                    "verify jackknife batched-vs-scalar scan (hi)");
  std::printf("verify pass OK: batched == scalar scan, blocked == "
              "unblocked replicates (bit-identical intervals)\n");
}

/// Adaptive-vs-fixed leg of the verify pass: pin both ends of the
/// pilot-then-refine range. An unreachable epsilon must escalate to the cap
/// and reproduce the fixed-cap interval bit for bit; a trivially-met
/// epsilon must stop at the pilot and reproduce the fixed-pilot interval.
void VerifyAdaptiveAgainstFixed(const IntegratedSample& sample,
                                const BucketSumEstimator& bucket,
                                ThreadPool* serial) {
  BootstrapOptions fixed;
  fixed.replicates = 48;
  fixed.pool = serial;
  fixed.evaluation = ReplicateEvaluation::kColumnar;

  BootstrapOptions adaptive = fixed;
  adaptive.adaptive.enabled = true;
  adaptive.adaptive.epsilon = 1e-9;  // unreachable: must escalate to the cap
  adaptive.adaptive.max_replicates = 48;
  const BootstrapInterval at_cap =
      BootstrapCorrectedSum(sample, bucket, adaptive);
  if (!at_cap.adaptive.precision_degraded ||
      at_cap.adaptive.replicates_used != 48) {
    throw Fatal{"verify adaptive cap: expected precision_degraded at 48 "
                "replicates, got " +
                std::to_string(at_cap.adaptive.replicates_used)};
  }
  CheckSameInterval(at_cap, BootstrapCorrectedSum(sample, bucket, fixed),
                    "verify adaptive(cap)-vs-fixed-48");

  adaptive.adaptive.epsilon = std::numeric_limits<double>::max();
  const BootstrapInterval at_pilot =
      BootstrapCorrectedSum(sample, bucket, adaptive);
  fixed.replicates = adaptive.adaptive.pilot_replicates;
  if (!at_pilot.adaptive.target_met ||
      at_pilot.adaptive.replicates_used != fixed.replicates) {
    throw Fatal{"verify adaptive pilot: expected early stop at the pilot "
                "block, got " +
                std::to_string(at_pilot.adaptive.replicates_used)};
  }
  CheckSameInterval(at_pilot, BootstrapCorrectedSum(sample, bucket, fixed),
                    "verify adaptive(pilot)-vs-fixed-pilot");
  std::printf("verify pass OK: adaptive budget == fixed budget at both the "
              "pilot early-stop and the escalation cap\n");
}

}  // namespace
}  // namespace uuq

int main() {
  using namespace uuq;
  using bench::BenchRow;

  const int reps = bench::RepsFromEnv(3);
  const bool enforce = std::getenv("UUQ_BENCH_ENFORCE") != nullptr;

  bench::PrintHeader(
      "Columnar bootstrap engine (SampleView replicates vs materializing "
      "reference)",
      ">=3x replicate throughput over the materializing path; bit-identical "
      "intervals across evaluation modes and thread counts");
  std::printf("reps=%d (best-of)%s\n\n", reps,
              enforce ? "  [UUQ_BENCH_ENFORCE]" : "");

  const Scenario scenario = scenarios::UsTechEmployment();
  IntegratedSample sample;
  for (int64_t i = 0;
       i < 500 && i < static_cast<int64_t>(scenario.stream.size()); ++i) {
    sample.Add(scenario.stream[i]);
  }
  const BucketSumEstimator bucket;
  std::vector<BenchRow> rows;
  double speedup = 0.0;

  try {
    ThreadPool serial(1);

    // Correctness before speed: the timing loop re-seeds identically each
    // rep, so it cannot catch a wrong-answer speedup by itself.
    const char* verify_env = std::getenv("UUQ_BENCH_VERIFY");
    if (verify_env == nullptr || std::strcmp(verify_env, "0") != 0) {
      VerifyBatchedAgainstScalar(sample, bucket, &serial);
      VerifyAdaptiveAgainstFixed(sample, bucket, &serial);
    } else {
      std::printf("verify pass SKIPPED (UUQ_BENCH_VERIFY=0)\n");
    }

    BootstrapOptions options;
    options.replicates = 48;
    options.pool = &serial;

    // ---- materializing reference (the pre-columnar hot path) -------------
    options.evaluation = ReplicateEvaluation::kMaterialized;
    double ref_lo = 0.0;
    const int64_t ref_ns = BestOfRepsNs(reps, [&] {
      ref_lo = BootstrapCorrectedSum(sample, bucket, options).lo;
    });
    rows.push_back({"bootstrap[bucket]", "eval=materialized,B=48,n=500",
                    static_cast<double>(ref_ns), 1.0});
    std::printf("%-34s %10.3f ms\n", "bootstrap materialized (B=48)",
                ref_ns / 1e6);

    // ---- columnar engine --------------------------------------------------
    options.evaluation = ReplicateEvaluation::kColumnar;
    double col_lo = 0.0;
    const int64_t col_ns = BestOfRepsNs(reps, [&] {
      col_lo = BootstrapCorrectedSum(sample, bucket, options).lo;
    });

    // Ratio-gate guard: on a machine fast enough that the materializing
    // reference finishes near the clock's resolution, the speedup ratio is
    // dominated by timer quantization (a 0 ns reference would even divide
    // to inf). Require a minimum reference duration before computing or
    // enforcing any ratio; correctness checks below still run.
    constexpr int64_t kMinRatioRefNs = 200 * 1000;  // 0.2 ms
    const bool ratio_usable = ref_ns >= kMinRatioRefNs && col_ns > 0;
    // An unusable ratio is recorded as the no-ratio convention (1.0, like
    // reference rows) with a marker in the config string, NOT as 0.0 —
    // artifact consumers would read 0.0 as a catastrophic regression.
    speedup = ratio_usable
                  ? static_cast<double>(ref_ns) / static_cast<double>(col_ns)
                  : 1.0;
    if (!ratio_usable) {
      std::printf(
          "WARNING: materialized reference ran %.3f ms (< %.1f ms floor); "
          "speedup ratio not meaningful on this machine — ratio gates "
          "skipped\n",
          ref_ns / 1e6, kMinRatioRefNs / 1e6);
    }
    rows.push_back({"bootstrap[bucket]",
                    ratio_usable ? "eval=columnar,B=48,n=500"
                                 : "eval=columnar,B=48,n=500,ratio=skipped",
                    static_cast<double>(col_ns), speedup});
    std::printf("%-34s %10.3f ms   %6.2fx vs materialized\n",
                "bootstrap columnar (B=48)", col_ns / 1e6, speedup);

    CheckBitIdentical(ref_lo, col_lo, "bootstrap columnar-vs-materialized");

    // ---- scalar-scan columnar (the PR 4-style split scan, for the
    // ---- batched-kernel trajectory row) ----------------------------------
    const BucketSumEstimator scalar_bucket(
        std::make_shared<DynamicPartitioner>(&serial, SplitScanMode::kScalar),
        std::make_shared<NaiveEstimator>());
    double sc_lo = 0.0;
    const int64_t sc_ns = BestOfRepsNs(reps, [&] {
      sc_lo = BootstrapCorrectedSum(sample, scalar_bucket, options).lo;
    });
    CheckBitIdentical(col_lo, sc_lo, "bootstrap batched-vs-scalar scan");
    const double scan_speedup =
        col_ns > 0 ? static_cast<double>(sc_ns) / static_cast<double>(col_ns)
                   : 1.0;
    rows.push_back({"bootstrap[bucket]", "eval=columnar,scan=scalar,B=48,n=500",
                    static_cast<double>(sc_ns), scan_speedup});
    std::printf("%-34s %10.3f ms   %6.2fx batched-vs-scalar scan\n",
                "bootstrap columnar (scalar scan)", sc_ns / 1e6,
                scan_speedup);

    // ---- adaptive replicate budget (pilot-then-refine) --------------------
    // Easy-target workload: epsilon = the fixed-48 interval's full width,
    // comfortably met by the pilot's spread estimate — the adaptive budget
    // must answer with STRICTLY fewer replicates than the fixed B=48 spend
    // while staying bit-identical to the fixed run of its settled size.
    const BootstrapInterval fixed48 =
        BootstrapCorrectedSum(sample, bucket, options);
    BootstrapOptions adaptive_options = options;
    adaptive_options.adaptive.enabled = true;
    adaptive_options.adaptive.epsilon = fixed48.hi - fixed48.lo;
    adaptive_options.adaptive.max_replicates = 48;
    BootstrapInterval adaptive_ci;
    const int64_t ad_ns = BestOfRepsNs(reps, [&] {
      adaptive_ci = BootstrapCorrectedSum(sample, bucket, adaptive_options);
    });
    const int adaptive_used = adaptive_ci.adaptive.replicates_used;
    if (!adaptive_ci.adaptive.target_met || adaptive_used >= 48) {
      throw Fatal{"adaptive budget did not beat the fixed B=48 spend on the "
                  "easy-target workload (used " +
                  std::to_string(adaptive_used) + " replicates)"};
    }
    BootstrapOptions prefix_options = options;
    prefix_options.replicates = adaptive_used;
    CheckSameInterval(adaptive_ci,
                      BootstrapCorrectedSum(sample, bucket, prefix_options),
                      "adaptive-vs-fixed at the settled budget");
    const double adaptive_speedup =
        ad_ns > 0 ? static_cast<double>(col_ns) / static_cast<double>(ad_ns)
                  : 1.0;
    rows.push_back({"bootstrap[bucket]",
                    "pr=10,mode=adaptive,eps=width48,cap=48,n=500,"
                    "metric=replicates",
                    static_cast<double>(adaptive_used),
                    48.0 / static_cast<double>(adaptive_used)});
    rows.push_back({"bootstrap[bucket]",
                    "pr=10,mode=adaptive,eps=width48,cap=48,n=500,"
                    "metric=time_to_eps",
                    static_cast<double>(ad_ns), adaptive_speedup});
    std::printf("%-34s %10.3f ms   %6.2fx vs fixed B=48 (%d replicates, "
                "half-width %.1f <= eps %.1f)\n",
                "bootstrap adaptive (easy target)", ad_ns / 1e6,
                adaptive_speedup, adaptive_used,
                adaptive_ci.adaptive.half_width,
                adaptive_options.adaptive.epsilon);

    // ---- determinism across thread counts --------------------------------
    ThreadPool pair(2);
    options.pool = &pair;
    const double pair_lo = BootstrapCorrectedSum(sample, bucket, options).lo;
    CheckBitIdentical(col_lo, pair_lo, "bootstrap threads=1-vs-2");
    options.pool = &serial;

    // ---- jackknife --------------------------------------------------------
    double jk_col = 0.0, jk_ref = 0.0;
    const int64_t jk_col_ns = BestOfRepsNs(reps, [&] {
      jk_col = JackknifeCorrectedSum(sample, bucket, 1.96, &serial,
                                     ReplicateEvaluation::kColumnar)
                   .standard_error;
    });
    const int64_t jk_ref_ns = BestOfRepsNs(reps, [&] {
      jk_ref = JackknifeCorrectedSum(sample, bucket, 1.96, &serial,
                                     ReplicateEvaluation::kMaterialized)
                   .standard_error;
    });
    CheckBitIdentical(jk_ref, jk_col, "jackknife columnar-vs-materialized");
    // Same timer-quantization guard as the bootstrap ratio: a reference
    // under the floor (or a columnar time quantized to 0, which would
    // divide to inf and corrupt the JSON artifact) records the no-ratio
    // convention instead.
    const bool jk_ratio_usable = jk_ref_ns >= kMinRatioRefNs && jk_col_ns > 0;
    const double jk_speedup =
        jk_ratio_usable
            ? static_cast<double>(jk_ref_ns) / static_cast<double>(jk_col_ns)
            : 1.0;
    rows.push_back({"jackknife[bucket]", "eval=materialized,n=500",
                    static_cast<double>(jk_ref_ns), 1.0});
    rows.push_back({"jackknife[bucket]",
                    jk_ratio_usable ? "eval=columnar,n=500"
                                    : "eval=columnar,n=500,ratio=skipped",
                    static_cast<double>(jk_col_ns), jk_speedup});
    std::printf("%-34s %10.3f ms\n", "jackknife materialized",
                jk_ref_ns / 1e6);
    std::printf("%-34s %10.3f ms   %6.2fx vs materialized\n",
                "jackknife columnar", jk_col_ns / 1e6, jk_speedup);

    // ---- replicate throughput ---------------------------------------------
    const double reps_per_sec = 48.0 / (static_cast<double>(col_ns) / 1e9);
    rows.push_back({"bootstrap[bucket]", "ns_per_replicate,B=48,n=500",
                    static_cast<double>(col_ns) / 48.0, speedup});
    std::printf("%-34s %10.0f replicates/s\n\n", "columnar throughput",
                reps_per_sec);

    if (ratio_usable && speedup < 3.0) {
      const std::string msg =
          "columnar speedup " + std::to_string(speedup) +
          "x is below the 3x acceptance target";
      if (enforce) throw Fatal{msg};
      std::printf("WARNING: %s (not enforced without UUQ_BENCH_ENFORCE)\n",
                  msg.c_str());
    }

    // ---- regression gate vs committed baseline ----------------------------
    if (const char* baseline_path = std::getenv("UUQ_BENCH_BASELINE");
        baseline_path != nullptr && ratio_usable) {
      const double baseline =
          bench::ReadBaselineNumber(baseline_path, "bootstrap_columnar_speedup");
      if (std::isnan(baseline)) {
        std::printf("WARNING: no bootstrap_columnar_speedup in %s; gate "
                    "skipped\n",
                    baseline_path);
      } else if (speedup < 0.8 * baseline) {
        throw Fatal{"columnar-vs-materialized speedup regressed >20%: " +
                    std::to_string(speedup) + "x vs committed baseline " +
                    std::to_string(baseline) +
                    "x (re-measure the baseline if the reference path was "
                    "deliberately changed)"};
      } else {
        std::printf("baseline gate OK: %.2fx vs committed %.2fx (>=80%%)\n",
                    speedup, baseline);
      }
    }
  } catch (const Fatal& fatal) {
    std::fprintf(stderr, "FATAL: %s\n", fatal.what.c_str());
    return 1;
  }

  const std::string path = bench::BenchJsonPath();
  if (!bench::AppendBenchJson(path, rows)) return 1;
  std::printf("appended %zu rows to %s\n", rows.size(), path.c_str());
  return 0;
}
