// Figure 9 (Appendix B): static bucket ablation on the uniform synthetic
// workload Sum(10:10:1000) — λ = 0, no publicity-value correlation.
//
// Paper shape: with uniform publicity, splitting HURTS (Eq. 13: every split
// can only raise the count estimate, and there is no correlation for
// buckets to exploit), so naive (1 bucket) is best among the statics and
// small static bucket counts show missing (infinite) data points; the
// dynamic strategy recognizes this and keeps a single bucket.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTruth = 50500.0;

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(20);
  const auto factory = [](uint64_t seed) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = 0.0;  // uniform publicity
    pop.rho = 0.0;
    pop.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = 20;
    crowd.answers_per_worker = 25;
    crowd.seed = seed * 73 + 11;
    return scenarios::Synthetic(pop, crowd).stream;
  };

  const auto naive_inner = std::make_shared<NaiveEstimator>();
  std::vector<std::unique_ptr<BucketSumEstimator>> estimators;
  estimators.push_back(std::make_unique<BucketSumEstimator>());  // dynamic
  for (int nb : {2, 6, 10}) {
    estimators.push_back(std::make_unique<BucketSumEstimator>(
        std::make_shared<EquiWidthPartitioner>(nb), naive_inner));
    estimators.push_back(std::make_unique<BucketSumEstimator>(
        std::make_shared<EquiHeightPartitioner>(nb), naive_inner));
  }
  NaiveEstimator naive;
  EstimatorSet set{&naive};
  for (const auto& est : estimators) set.push_back(est.get());

  const auto series = RunAveragedConvergence(
      factory, set, MakeCheckpoints(500, 50), reps, 9000);

  bench::PrintHeader(
      "Figure 9 (App. B): static buckets on uniform Sum(10:10:1000)",
      "splitting hurts under uniform publicity: naive best among statics, "
      "many-bucket statics show inf points; dynamic ~= naive");
  bench::PrintTable(SeriesToTable("Figure 9 series", series, kTruth, true));
}

void BM_DynamicOnUniform(benchmark::State& state) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 0.0;
  pop.rho = 0.0;
  pop.seed = 1;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 25;
  crowd.seed = 2;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const BucketSumEstimator dynamic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_DynamicOnUniform);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
