// Figure 7(c): the §4 estimation-error upper bound on the synthetic
// workload (λ=1, ρ=1, 20 sources).
//
// Paper shape: the bound is very loose at small n (often unbounded until
// the Good-Turing tail term drops below 1) and tightens steadily as data
// accumulates, always sitting above the truth and every point estimate.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/bound.h"
#include "core/naive.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTruth = 50500.0;

std::vector<Observation> MakeStream(uint64_t seed) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 30;
  crowd.seed = seed * 211 + 5;
  return scenarios::Synthetic(pop, crowd).stream;
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(50);
  const std::vector<int64_t> checkpoints =
      MakeCheckpoints(600, 60);

  struct Acc {
    double observed = 0, naive = 0, bound = 0, bucketed = 0;
    int bound_finite = 0, bucketed_finite = 0;
  };
  std::vector<Acc> acc(checkpoints.size());

  for (int rep = 0; rep < reps; ++rep) {
    const auto stream = MakeStream(4000 + rep);
    IntegratedSample sample;
    size_t next = 0;
    for (size_t i = 0; i < stream.size() && next < checkpoints.size(); ++i) {
      sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
      if (static_cast<int64_t>(i) + 1 != checkpoints[next]) continue;
      const SampleStats stats = SampleStats::FromSample(sample);
      acc[next].observed += stats.value_sum;
      const Estimate naive = NaiveEstimator().FromStats(stats);
      if (std::isfinite(naive.corrected_sum)) {
        acc[next].naive += naive.corrected_sum;
      }
      const SumUpperBound bound = ComputeSumUpperBound(stats);
      if (bound.finite) {
        acc[next].bound += bound.phi_upper;
        acc[next].bound_finite += 1;
      }
      // Our tighter per-bucket (Bonferroni-corrected) extension.
      const SumUpperBound bucketed = ComputeBucketedSumUpperBound(sample);
      if (bucketed.finite) {
        acc[next].bucketed += bucketed.phi_upper;
        acc[next].bucketed_finite += 1;
      }
      ++next;
    }
  }

  bench::PrintHeader(
      "Figure 7(c): §4 worst-case upper bound (99% count bound, 3-sigma "
      "value bound)",
      "bound is loose early (or unbounded), tightens with n, and always "
      "dominates truth and estimates. The per-bucket extension (bucketed) "
      "can only tighten when every bucket's Good-Turing tail term "
      "(2sqrt2+sqrt3)*sqrt(ln(3k/d)/n_b) stays below 1 - at these sample "
      "sizes it falls back to the global bound, confirming the paper's "
      "remark that genuinely tighter bounds need new machinery");
  SeriesTable table("Figure 7(c) series",
                    {"n", "observed", "naive", "bound", "bound/truth",
                     "bucketed", "bucketed/truth", "finite_frac", "truth"});
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const double denom = static_cast<double>(reps);
    const double bound_avg =
        acc[i].bound_finite > 0 ? acc[i].bound / acc[i].bound_finite
                                : std::numeric_limits<double>::infinity();
    const double bucketed_avg =
        acc[i].bucketed_finite > 0
            ? acc[i].bucketed / acc[i].bucketed_finite
            : std::numeric_limits<double>::infinity();
    table.AddRow({static_cast<double>(checkpoints[i]),
                  acc[i].observed / denom, acc[i].naive / denom, bound_avg,
                  bound_avg / kTruth, bucketed_avg, bucketed_avg / kTruth,
                  acc[i].bound_finite / denom, kTruth});
  }
  bench::PrintTable(table);
}

void BM_UpperBound(benchmark::State& state) {
  const auto stream = MakeStream(1);
  IntegratedSample sample;
  for (const Observation& obs : stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const SampleStats stats = SampleStats::FromSample(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSumUpperBound(stats).phi_upper);
  }
}
BENCHMARK(BM_UpperBound);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
