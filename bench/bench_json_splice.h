// Shared string-level JSON-array splice helpers for the bench artifacts.
//
// Both writers of bench_out.json-shaped files — AppendBenchJson
// (bench_util.h) and the uuq_bench_history trajectory merger — embed or
// extend row arrays at the string level: find the outermost brackets, keep
// the body, refuse files whose last non-whitespace byte is not the closing
// bracket (a truncated write, e.g. a cancelled CI job, may still contain a
// ']' inside an estimator name like "bootstrap[bucket]"; building on it
// would corrupt the artifact forever instead of self-healing). Keeping the
// rule in ONE place guarantees the merger and the writer can never drift
// apart. No uuq dependencies — tools include this standalone.
#ifndef UUQ_BENCH_BENCH_JSON_SPLICE_H_
#define UUQ_BENCH_BENCH_JSON_SPLICE_H_

#include <cstdio>
#include <string>

namespace uuq {
namespace bench {

/// Appends the file's bytes to *out; false when it cannot be opened.
inline bool ReadFileInto(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return false;
  char chunk[4096];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    out->append(chunk, got);
  }
  std::fclose(file);
  return true;
}

/// Extracts the contents between the outermost '[' and ']' (trailing
/// whitespace trimmed); false when the content is not a well-terminated
/// JSON array per the truncation guard above.
inline bool ExtractJsonArrayBody(const std::string& content,
                                 std::string* body) {
  const size_t open = content.find('[');
  const size_t close = content.rfind(']');
  const size_t tail = content.find_last_not_of(" \t\r\n");
  if (open == std::string::npos || close == std::string::npos ||
      close <= open || tail != close) {
    return false;
  }
  *body = content.substr(open + 1, close - open - 1);
  while (!body->empty() &&
         (body->back() == '\n' || body->back() == ' ' ||
          body->back() == '\r')) {
    body->pop_back();
  }
  return true;
}

}  // namespace bench
}  // namespace uuq

#endif  // UUQ_BENCH_BENCH_JSON_SPLICE_H_
