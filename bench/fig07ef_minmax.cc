// Figure 7(e)(f): MAX and MIN queries — report the observed extreme only
// when the extreme bucket's unknown-unknowns count estimate is zero.
//
// Paper shape: whenever the technique DOES claim the extreme, the claimed
// value is almost exactly the true extreme (1000 for MAX, 10 for MIN); the
// claim rate rises with sample size. Rare extreme values can still be
// missed — the technique raises confidence, it cannot eliminate doubt.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/minmax.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTrueMax = 1000.0;
constexpr double kTrueMin = 10.0;

std::vector<Observation> MakeStream(uint64_t seed) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;  // larger values are more likely to be sampled
  pop.seed = seed;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 30;
  crowd.seed = seed * 401 + 3;
  return scenarios::Synthetic(pop, crowd).stream;
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(200);
  const std::vector<int64_t> checkpoints = MakeCheckpoints(600, 60);

  struct Acc {
    int max_claims = 0;
    double max_claimed_value = 0;
    int min_claims = 0;
    double min_claimed_value = 0;
  };
  std::vector<Acc> acc(checkpoints.size());

  const MinMaxEstimator minmax;
  for (int rep = 0; rep < reps; ++rep) {
    const auto stream = MakeStream(6000 + rep);
    IntegratedSample sample;
    size_t next = 0;
    for (size_t i = 0; i < stream.size() && next < checkpoints.size(); ++i) {
      sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
      if (static_cast<int64_t>(i) + 1 != checkpoints[next]) continue;
      const ExtremeEstimate max_est = minmax.EstimateMax(sample);
      if (max_est.claim_true_extreme) {
        acc[next].max_claims += 1;
        acc[next].max_claimed_value += max_est.observed_extreme;
      }
      const ExtremeEstimate min_est = minmax.EstimateMin(sample);
      if (min_est.claim_true_extreme) {
        acc[next].min_claims += 1;
        acc[next].min_claimed_value += min_est.observed_extreme;
      }
      ++next;
    }
  }

  bench::PrintHeader(
      "Figure 7(e)(f): MAX/MIN trust reporting (λ=1, ρ=1; true MAX 1000, "
      "true MIN 10)",
      "claim rate rises with n; the average claimed value is almost exactly "
      "the true extreme (MAX from early on, MIN takes longer under ρ=1)");
  SeriesTable table("Figure 7(e)(f) series",
                    {"n", "max_claim_rate", "avg_claimed_max",
                     "min_claim_rate", "avg_claimed_min"});
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    table.AddRow({static_cast<double>(checkpoints[i]),
                  static_cast<double>(acc[i].max_claims) / reps,
                  acc[i].max_claims > 0
                      ? acc[i].max_claimed_value / acc[i].max_claims
                      : 0.0,
                  static_cast<double>(acc[i].min_claims) / reps,
                  acc[i].min_claims > 0
                      ? acc[i].min_claimed_value / acc[i].min_claims
                      : 0.0});
  }
  bench::PrintTable(table);
  std::printf("Reference: true MAX = %.0f, true MIN = %.0f\n\n", kTrueMax,
              kTrueMin);
}

void BM_MinMaxEstimate(benchmark::State& state) {
  const auto stream = MakeStream(1);
  IntegratedSample sample;
  for (const Observation& obs : stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const MinMaxEstimator minmax;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minmax.EstimateMax(sample).claim_true_extreme);
  }
}
BENCHMARK(BM_MinMaxEstimate);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
