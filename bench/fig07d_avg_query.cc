// Figure 7(d): SELECT AVG(attr) — correcting the publicity-value bias.
//
// Paper shape: with ρ = 1 popular items are high-valued, so the observed
// average starts far ABOVE the true mean (505) and drifts down slowly; mean
// substitution keeps the estimate identical to the observed AVG (that is
// why only bucket is plotted); the bucket-weighted correction pulls the
// estimate near the truth much earlier.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/avg.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTrueAvg = 505.0;

std::vector<Observation> MakeStream(uint64_t seed) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 1.0;
  pop.rho = 1.0;
  pop.seed = seed;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 30;
  crowd.seed = seed * 313 + 9;
  return scenarios::Synthetic(pop, crowd).stream;
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(50);
  const std::vector<int64_t> checkpoints = MakeCheckpoints(600, 60);

  struct Acc {
    double observed_avg = 0;
    double bucket_avg = 0;
    int bucket_finite = 0;
  };
  std::vector<Acc> acc(checkpoints.size());

  const AvgEstimator avg;
  for (int rep = 0; rep < reps; ++rep) {
    const auto stream = MakeStream(5000 + rep);
    IntegratedSample sample;
    size_t next = 0;
    for (size_t i = 0; i < stream.size() && next < checkpoints.size(); ++i) {
      sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
      if (static_cast<int64_t>(i) + 1 != checkpoints[next]) continue;
      const SampleStats stats = SampleStats::FromSample(sample);
      acc[next].observed_avg += stats.ValueMean();
      const Estimate est = avg.EstimateAvg(sample);
      if (est.finite && std::isfinite(est.corrected_sum)) {
        acc[next].bucket_avg += est.corrected_sum;
        acc[next].bucket_finite += 1;
      }
      ++next;
    }
  }

  bench::PrintHeader(
      "Figure 7(d): AVG query under publicity-value correlation",
      "observed AVG biased high (popular = high value); bucket-weighted "
      "correction lands near the true mean 505 early");
  SeriesTable table("Figure 7(d) series",
                    {"n", "observed_avg", "bucket_avg", "true_avg"});
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    table.AddRow(
        {static_cast<double>(checkpoints[i]),
         acc[i].observed_avg / reps,
         acc[i].bucket_finite > 0 ? acc[i].bucket_avg / acc[i].bucket_finite
                                  : 0.0,
         kTrueAvg});
  }
  bench::PrintTable(table);
}

void BM_AvgCorrection(benchmark::State& state) {
  const auto stream = MakeStream(1);
  IntegratedSample sample;
  for (const Observation& obs : stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const AvgEstimator avg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(avg.EstimateAvg(sample).corrected_sum);
  }
}
BENCHMARK(BM_AvgCorrection);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
