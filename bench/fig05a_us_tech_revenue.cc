// Figure 5(a): SELECT SUM(revenue) FROM us_tech_companies.
//
// Paper shape: naive and frequency overestimate significantly (stronger
// publicity-value correlation than the employment data); Monte-Carlo
// overestimates less; the bucket estimator is almost perfect by ~240
// answers (with a slight overshoot possible late).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::UsTechRevenue();
  bench::PaperEstimators estimators;
  const auto series = RunConvergence(scenario.stream, estimators.All(),
                                     MakeCheckpoints(500, 40));

  bench::PrintHeader(
      "Figure 5(a): SELECT SUM(revenue) FROM us_tech_companies",
      "naive >> freq > truth; monte-carlo overestimates less than naive; "
      "bucket near-perfect from ~240 answers");
  bench::PrintTable(SeriesToTable("Figure 5(a) series", series,
                                  scenario.ground_truth_sum, true));

  const double truth = scenario.ground_truth_sum;
  for (const SeriesPoint& point : series) {
    if (point.n == 240) {
      std::printf("At n=240: bucket/truth = %.3f (paper: ~1.0)\n",
                  point.estimates.at("bucket[dynamic]") / truth);
    }
  }
  const auto& last = series.back();
  std::printf("At n=%lld: naive/truth = %.2f, freq/truth = %.2f, "
              "mc/truth = %.2f, bucket/truth = %.2f\n\n",
              static_cast<long long>(last.n),
              last.estimates.at("naive") / truth,
              last.estimates.at("freq") / truth,
              last.estimates.at("monte-carlo") / truth,
              last.estimates.at("bucket[dynamic]") / truth);
}

void BM_RevenueBucket(benchmark::State& state) {
  const Scenario scenario = scenarios::UsTechRevenue();
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const BucketSumEstimator bucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_RevenueBucket);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
