// Figure 5(c): SELECT SUM(participants) FROM proton_beam_studies.
//
// Paper shape: no streakers; unique articles keep arriving steadily; naive
// and frequency drift to overestimates as uniques accumulate; the bucket
// estimator converges to ≈ 95k participants (the paper's best estimate —
// this data set has no external ground truth).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::ProtonBeam();
  bench::PaperEstimators estimators;
  const auto series = RunConvergence(
      scenario.stream, estimators.All(),
      MakeCheckpoints(static_cast<int64_t>(scenario.stream.size()), 96));

  bench::PrintHeader(
      "Figure 5(c): SELECT SUM(participants) FROM proton_beam_studies",
      "steady unique-article arrival; bucket converges near 95k (the "
      "paper's reference estimate); naive/freq sit above bucket");
  bench::PrintTable(SeriesToTable("Figure 5(c) series", series,
                                  scenario.ground_truth_sum, true));

  const auto& last = series.back();
  std::printf("Final bucket estimate: %.0f (reference ~95000, ratio %.3f)\n\n",
              last.estimates.at("bucket[dynamic]"),
              last.estimates.at("bucket[dynamic]") / 95000.0);
}

void BM_ProtonBucketVsNaive(benchmark::State& state) {
  const Scenario scenario = scenarios::ProtonBeam();
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const BucketSumEstimator bucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_ProtonBucketVsNaive);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
