// §6.1.5 runtime comparison: on the paper's hardware Monte-Carlo took
// ≈3.5 s versus ≈0.2 s for the bucket estimator at ~500 crowd answers, and
// MC run time scales linearly with sample size (the Algorithm 2 inner loop
// samples n items per run).
//
// Expected shape here: MC is 2-4 orders of magnitude slower than bucket and
// grows roughly linearly in n; naive/freq are effectively free.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

const Scenario& BenchScenario() {
  static const Scenario scenario = scenarios::UsTechEmployment();
  return scenario;
}

IntegratedSample SamplePrefix(int64_t n) {
  const Scenario& scenario = BenchScenario();
  IntegratedSample sample;
  for (int64_t i = 0;
       i < n && i < static_cast<int64_t>(scenario.stream.size()); ++i) {
    const Observation& obs = scenario.stream[i];
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  return sample;
}

void BM_Naive(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const NaiveEstimator naive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_Naive)->Arg(100)->Arg(300)->Arg(500);

void BM_Frequency(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const FrequencyEstimator freq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(freq.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_Frequency)->Arg(100)->Arg(300)->Arg(500);

void BM_Bucket(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const BucketSumEstimator bucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_Bucket)->Arg(100)->Arg(300)->Arg(500);

void BM_MonteCarlo(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const MonteCarloEstimator mc(bench::FastMcOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.EstimateImpact(sample).delta);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MonteCarlo)
    ->Arg(100)
    ->Arg(200)
    ->Arg(300)
    ->Arg(400)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_IncrementalIngest(benchmark::State& state) {
  const Scenario& scenario = BenchScenario();
  for (auto _ : state) {
    IntegratedSample sample;
    for (const Observation& obs : scenario.stream) {
      sample.Add(obs.source_id, obs.entity_key, obs.value);
    }
    benchmark::DoNotOptimize(sample.Fstats().c());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scenario.stream.size()));
}
BENCHMARK(BM_IncrementalIngest);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  std::printf(
      "================================================================\n"
      "Runtime comparison (paper §6.1.5): monte-carlo ~3.5s vs bucket ~0.2s\n"
      "Paper-shape expectation: MC orders of magnitude slower than bucket,\n"
      "scaling ~linearly with sample size; naive/freq are negligible.\n"
      "================================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
