// Figure 5(b): SELECT SUM(gdp) FROM us_states — the streaker data set.
//
// Paper shape: a single worker reports almost all answers first; the
// unusually high f1 throws off every Chao92-based estimator (here: infinite
// estimates while everything is a singleton), only Monte-Carlo stays
// reasonable early, and all estimators converge after ~60 samples (N = 50).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::UsGdp();
  bench::PaperEstimators estimators;
  const auto series = RunConvergence(
      scenario.stream, estimators.All(),
      {10, 20, 30, 40, 45, 50, 60, 70, 80, 95});

  bench::PrintHeader(
      "Figure 5(b): SELECT SUM(gdp) FROM us_states (streaker present)",
      "Chao92-based estimators blow up (inf) while the streaker keeps f1 = "
      "n; monte-carlo tracks the observed sum; everyone converges by n≈60");
  bench::PrintTable(SeriesToTable("Figure 5(b) series", series,
                                  scenario.ground_truth_sum, true));

  const double truth = scenario.ground_truth_sum;
  for (const SeriesPoint& point : series) {
    if (point.n != 45) continue;
    std::printf(
        "At n=45 (streaker only): observed/truth = %.3f, monte-carlo/truth "
        "= %.3f, naive = %s\n",
        point.observed / truth, point.estimates.at("monte-carlo") / truth,
        std::isfinite(point.estimates.at("naive")) ? "finite" : "inf");
  }
  const auto& last = series.back();
  std::printf("At n=%lld: every estimator within %.1f%% of truth\n\n",
              static_cast<long long>(last.n),
              100.0 * std::max({std::fabs(last.estimates.at("naive") / truth - 1.0),
                                std::fabs(last.estimates.at("freq") / truth - 1.0),
                                std::fabs(last.estimates.at("bucket[dynamic]") /
                                              truth -
                                          1.0)}));
}

void BM_GdpMonteCarlo(benchmark::State& state) {
  const Scenario scenario = scenarios::UsGdp();
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const MonteCarloEstimator mc(bench::FastMcOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_GdpMonteCarlo)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
