// Scenario-matrix accuracy harness + regression gate (the "second
// trajectory": ROADMAP item 5, simulation/accuracy_matrix.h).
//
// Runs the default (scenario × estimator) grid — 4 calibrated paper
// workloads + 6 synthetic pathology axes, × 5 estimators — over
// UUQ_ACCURACY_SEEDS seeded trials per cell (default 12) with bootstrap
// intervals attached, prints the coverage / N̂-bias / SUM-error /
// clamp-rate table, and emits one row per (cell × metric) into the shared
// bench_out.json trajectory artifact:
//
//   {"estimator": "accuracy[bucket]",
//    "config": "pr=8,scenario=us-gdp,seeds=12,B=24,metric=coverage",
//    "ns_per_op": 0.916667, "speedup": 1.0}
//
// ns_per_op carries the METRIC VALUE (the field the history merger and
// plots track), not a duration; the one "accuracy[matrix]" row records the
// wall time so grid cost stays on the perf trajectory too.
//
// VERIFY PASS. Before anything is measured, a reduced sub-grid runs twice —
// 1-thread pool vs multi-thread pool — and every metric must match bit for
// bit (the Split()-stream determinism contract). A scheduling change that
// silently broke seed derivation would otherwise shift metrics within
// tolerance and poison the baseline.
//
// Regression gate — the check CI enforces:
//   UUQ_ACCURACY_BASELINE=<path to bench/accuracy_baseline.json>
// compares every cell metric against the committed value with the
// per-metric tolerances from AccuracyTolerances (ONE header:
// simulation/accuracy_matrix.h) and fails on any deviation — the matrix is
// deterministic, so an unchanged engine reproduces the baseline exactly.
// The gate only fires when the baseline's recorded seeds/replicates match
// this run (a reduced or widened sweep is a different measurement, not a
// regression); it then warns and skips.
//
// Knobs:
//   UUQ_ACCURACY_SEEDS=<n>            trials per cell (full-sweep override)
//   UUQ_ACCURACY_WRITE_BASELINE=<p>   write the baseline JSON and skip the
//                                     gate (the re-baseline workflow)
//   UUQ_ACCURACY_INJECT=<metric>:<d>  add <d> to every cell's <metric>
//                                     AFTER measuring, BEFORE gating — CI's
//                                     negative self-test proves the gate
//                                     trips on a perturbed trajectory
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "simulation/accuracy_matrix.h"

namespace uuq {
namespace {

struct Fatal {
  std::string what;
};

/// The bit-identity pre-pass: a 2×2 sub-grid, 2 seeds, serial vs parallel.
void VerifyThreadCountDeterminism(
    const std::vector<AccuracyScenarioSpec>& scenarios,
    const std::vector<AccuracyEstimatorSpec>& estimators) {
  std::vector<AccuracyScenarioSpec> sub_scenarios(scenarios.begin(),
                                                  scenarios.begin() + 2);
  std::vector<AccuracyEstimatorSpec> sub_estimators(estimators.begin(),
                                                    estimators.begin() + 2);
  AccuracyMatrixOptions options;
  options.seeds_per_cell = 2;
  ThreadPool serial(1);
  ThreadPool wide(4);
  options.pool = &serial;
  const auto a = RunAccuracyMatrix(sub_scenarios, sub_estimators, options);
  options.pool = &wide;
  const auto b = RunAccuracyMatrix(sub_scenarios, sub_estimators, options);
  for (size_t i = 0; i < a.size(); ++i) {
    for (AccuracyMetric metric : kAccuracyMetrics) {
      const double va = AccuracyMetricValue(a[i], metric);
      const double vb = AccuracyMetricValue(b[i], metric);
      if (va != vb) {
        throw Fatal{"determinism verify: " +
                    AccuracyBaselineKey(a[i].scenario, a[i].estimator,
                                        metric) +
                    " differs across thread counts (" + std::to_string(va) +
                    " vs " + std::to_string(vb) + ")"};
      }
    }
  }
  std::printf("verify pass OK: sub-grid metrics bit-identical across "
              "1- and 4-thread pools\n\n");
}

bool WriteBaseline(const std::string& path,
                   const std::vector<AccuracyCell>& cells, int seeds,
                   int replicates) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"seeds\": %d,\n  \"replicates\": %d", seeds,
               replicates);
  for (const AccuracyCell& cell : cells) {
    for (AccuracyMetric metric : kAccuracyMetrics) {
      std::fprintf(file, ",\n  \"%s\": %.6f",
                   AccuracyBaselineKey(cell.scenario, cell.estimator, metric)
                       .c_str(),
                   AccuracyMetricValue(cell, metric));
    }
  }
  std::fputs("\n}\n", file);
  std::fclose(file);
  return true;
}

}  // namespace
}  // namespace uuq

int main() {
  using namespace uuq;
  using bench::BenchRow;

  const int seeds = AccuracySeedsFromEnv(12);
  AccuracyMatrixOptions options;
  options.seeds_per_cell = seeds;

  bench::PrintHeader(
      "Scenario-matrix accuracy trajectory (coverage / N-hat bias / "
      "SUM error / clamp rate)",
      "bucket most accurate on the calibrated workloads; MC conservative "
      "under streakers; clamp confined to the sparse-singleton axis");
  std::printf("seeds=%d per cell, B=%d bootstrap replicates\n\n", seeds,
              options.bootstrap_replicates);

  const auto scenarios = DefaultAccuracyScenarios();
  const auto estimators = DefaultAccuracyEstimators();
  std::vector<BenchRow> rows;

  try {
    VerifyThreadCountDeterminism(scenarios, estimators);

    const auto start = std::chrono::steady_clock::now();
    auto cells = RunAccuracyMatrix(scenarios, estimators, options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double elapsed_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                elapsed)
                                .count());

    std::printf("%-20s %-12s %9s %10s %9s %10s\n", "scenario", "estimator",
                "coverage", "nhat_bias", "sum_err", "clamp_rate");
    const std::string config_suffix =
        ",seeds=" + std::to_string(seeds) +
        ",B=" + std::to_string(options.bootstrap_replicates);
    for (const AccuracyCell& cell : cells) {
      std::printf("%-20s %-12s %9.3f %+10.3f %9.3f %10.3f\n",
                  cell.scenario.c_str(), cell.estimator.c_str(), cell.coverage,
                  cell.nhat_bias, cell.sum_err, cell.clamp_rate);
      for (AccuracyMetric metric : kAccuracyMetrics) {
        rows.push_back({"accuracy[" + cell.estimator + "]",
                        "pr=8,scenario=" + cell.scenario + config_suffix +
                            ",metric=" + AccuracyMetricName(metric),
                        AccuracyMetricValue(cell, metric), 1.0});
      }
    }
    rows.push_back({"accuracy[matrix]",
                    "pr=8,grid=" + std::to_string(scenarios.size()) + "x" +
                        std::to_string(estimators.size()) + config_suffix,
                    elapsed_ns, 1.0});
    std::printf("\nmatrix wall time: %.1f ms (%zu cells)\n", elapsed_ns / 1e6,
                cells.size());

    // Re-baseline workflow: write and skip the gate.
    if (const char* out = std::getenv("UUQ_ACCURACY_WRITE_BASELINE");
        out != nullptr) {
      if (!WriteBaseline(out, cells, seeds, options.bootstrap_replicates)) {
        return 1;
      }
      std::printf("wrote baseline %s (gate skipped)\n", out);
    } else if (const char* baseline_path =
                   std::getenv("UUQ_ACCURACY_BASELINE");
               baseline_path != nullptr) {
      // The negative self-test hook: perturb AFTER measuring (rows above
      // carry the true values) so the gate must notice.
      if (const char* inject = std::getenv("UUQ_ACCURACY_INJECT");
          inject != nullptr) {
        const char* colon = std::strchr(inject, ':');
        if (colon == nullptr) throw Fatal{"UUQ_ACCURACY_INJECT wants <metric>:<delta>"};
        const std::string metric_name(inject, colon - inject);
        const double delta = std::atof(colon + 1);
        bool known = false;
        for (AccuracyCell& cell : cells) {
          if (metric_name == "coverage") cell.coverage += delta, known = true;
          if (metric_name == "nhat_bias") cell.nhat_bias += delta, known = true;
          if (metric_name == "sum_err") cell.sum_err += delta, known = true;
          if (metric_name == "clamp_rate") cell.clamp_rate += delta, known = true;
        }
        if (!known) throw Fatal{"UUQ_ACCURACY_INJECT: unknown metric " + metric_name};
        std::printf("INJECTED %+f into every cell's %s (self-test mode)\n",
                    delta, metric_name.c_str());
      }

      const double base_seeds =
          bench::ReadBaselineNumber(baseline_path, "seeds");
      const double base_reps =
          bench::ReadBaselineNumber(baseline_path, "replicates");
      if (base_seeds != seeds || base_reps != options.bootstrap_replicates) {
        std::printf(
            "WARNING: baseline %s recorded seeds=%.0f,replicates=%.0f but "
            "this run used %d,%d — different measurement, gate skipped\n",
            baseline_path, base_seeds, base_reps, seeds,
            options.bootstrap_replicates);
      } else {
        const auto failures = AccuracyGateFailures(
            cells,
            [&](const std::string& key) {
              return bench::ReadBaselineNumber(baseline_path, key);
            },
            AccuracyTolerances{});
        if (!failures.empty()) {
          for (const std::string& failure : failures) {
            std::fprintf(stderr, "GATE: %s\n", failure.c_str());
          }
          throw Fatal{std::to_string(failures.size()) +
                      " accuracy metrics deviate from " + baseline_path +
                      " (re-measure the baseline only for a deliberate "
                      "estimator change)"};
        }
        std::printf("accuracy gate OK: %zu cells x 4 metrics within "
                    "tolerance of %s\n",
                    cells.size(), baseline_path);
      }
    }
  } catch (const Fatal& fatal) {
    std::fprintf(stderr, "FATAL: %s\n", fatal.what.c_str());
    return 1;
  }

  const std::string path = bench::BenchJsonPath();
  if (!bench::AppendBenchJson(path, rows)) return 1;
  std::printf("appended %zu rows to %s\n", rows.size(), path.c_str());
  return 0;
}
