// Figure 2 (§1.2, the running example): the observed SUM(employees) grows
// with a diminishing rate and a persistent gap to the ground truth — the
// impact of the unknown unknowns.
//
// Paper shape: the observed line climbs steeply, flattens, and is still well
// below the red ground-truth line after 500 crowd answers.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::UsTechEmployment();
  const auto series =
      RunConvergence(scenario.stream, {}, MakeCheckpoints(500, 25));

  bench::PrintHeader(
      "Figure 2: observed SUM(employees) vs ground truth",
      "diminishing-returns accumulation; a persistent gap (the unknown-"
      "unknowns impact) remains at n=500");

  SeriesTable table("Figure 2 series",
                    {"n", "observed", "truth", "gap", "gap_pct", "coverage"});
  for (const SeriesPoint& point : series) {
    const double gap = scenario.ground_truth_sum - point.observed;
    table.AddRow({static_cast<double>(point.n), point.observed,
                  scenario.ground_truth_sum, gap,
                  100.0 * gap / scenario.ground_truth_sum, point.coverage});
  }
  bench::PrintTable(table);

  // Diminishing returns: first-half gain vs second-half gain.
  const double mid = series[series.size() / 2].observed;
  const double end = series.back().observed;
  std::printf("First-half gain: %.0f, second-half gain: %.0f (ratio %.2f; "
              "> 1 means diminishing returns)\n\n",
              mid, end - mid, mid / (end - mid));
}

void BM_StreamIntegration(benchmark::State& state) {
  const Scenario scenario = scenarios::UsTechEmployment();
  for (auto _ : state) {
    IntegratedSample sample;
    for (const Observation& obs : scenario.stream) {
      sample.Add(obs.source_id, obs.entity_key, obs.value);
    }
    benchmark::DoNotOptimize(sample.ObservedSum());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scenario.stream.size()));
}
BENCHMARK(BM_StreamIntegration);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
