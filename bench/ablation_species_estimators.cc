// Ablation: WHY Chao92? (DESIGN.md §4, paper §3.1.1: "we choose Chao92
// since it is more robust to a skewed publicity distribution").
//
// Compares the count estimate N̂ of every implemented species estimator
// (Chao92, Good-Turing, Chao1, Jackknife-1/2, ACE) against the true N = 100
// on a uniform workload (λ = 0) and a heavily skewed one (λ = 4).
//
// Expected shape: all estimators are fine under uniform publicity; under
// heavy skew the estimators without a CV correction (Good-Turing, Chao1,
// jackknifes) lag Chao92/ACE, converging noticeably slower toward N.
#include <benchmark/benchmark.h>

#include <cmath>
#include <limits>

#include "bench_util.h"
#include "core/species.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void RunPanel(double lambda, int reps) {
  const std::vector<int64_t> checkpoints = MakeCheckpoints(600, 75);
  const std::vector<SpeciesEstimator> estimators{
      SpeciesEstimator::kChao92,     SpeciesEstimator::kGoodTuring,
      SpeciesEstimator::kChao1,      SpeciesEstimator::kJackknife1,
      SpeciesEstimator::kJackknife2, SpeciesEstimator::kAce};

  std::vector<std::vector<double>> sums(
      checkpoints.size(), std::vector<double>(estimators.size(), 0.0));
  std::vector<std::vector<int>> finite(
      checkpoints.size(), std::vector<int>(estimators.size(), 0));

  for (int rep = 0; rep < reps; ++rep) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = lambda;
    pop.rho = 0.0;
    pop.seed = 700 + rep;
    CrowdConfig crowd;
    crowd.num_workers = 20;
    crowd.answers_per_worker = 30;
    crowd.seed = 7000 + rep;
    const Scenario scenario = scenarios::Synthetic(pop, crowd);

    IntegratedSample sample;
    size_t next = 0;
    for (size_t i = 0;
         i < scenario.stream.size() && next < checkpoints.size(); ++i) {
      sample.Add(scenario.stream[i]);
      if (static_cast<int64_t>(i) + 1 != checkpoints[next]) continue;
      const FrequencyStatistics fstats = sample.Fstats();
      for (size_t e = 0; e < estimators.size(); ++e) {
        const double n_hat = SpeciesNhat(estimators[e], fstats);
        if (std::isfinite(n_hat)) {
          sums[next][e] += n_hat;
          finite[next][e] += 1;
        }
      }
      ++next;
    }
  }

  char title[96];
  std::snprintf(title, sizeof(title),
                "Species-estimator ablation: lambda=%.0f, true N=100 (%d reps)",
                lambda, reps);
  std::vector<std::string> columns{"n"};
  for (SpeciesEstimator est : estimators) {
    columns.push_back(SpeciesEstimatorName(est));
  }
  SeriesTable table(title, columns);
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    std::vector<double> row{static_cast<double>(checkpoints[i])};
    for (size_t e = 0; e < estimators.size(); ++e) {
      row.push_back(finite[i][e] > 0
                        ? sums[i][e] / finite[i][e]
                        : std::numeric_limits<double>::infinity());
    }
    table.AddRow(std::move(row));
  }
  bench::PrintTable(table);
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(25);
  bench::PrintHeader(
      "Ablation: Chao92 vs classical species estimators (COUNT N-hat)",
      "all comparable under uniform publicity; under heavy skew the CV-"
      "corrected estimators (chao92, ace) converge to N=100 faster");
  RunPanel(0.0, reps);
  RunPanel(4.0, reps);
}

void BM_SpeciesEstimate(benchmark::State& state) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 4.0;
  pop.seed = 2;
  CrowdConfig crowd;
  crowd.num_workers = 20;
  crowd.answers_per_worker = 30;
  crowd.seed = 3;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) sample.Add(obs);
  const FrequencyStatistics fstats = sample.Fstats();
  const auto estimator = static_cast<SpeciesEstimator>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpeciesNhat(estimator, fstats));
  }
  state.SetLabel(SpeciesEstimatorName(estimator));
}
BENCHMARK(BM_SpeciesEstimate)
    ->Arg(static_cast<int>(SpeciesEstimator::kChao92))
    ->Arg(static_cast<int>(SpeciesEstimator::kChao1))
    ->Arg(static_cast<int>(SpeciesEstimator::kAce));

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
