// Figure 7(a): "streakers only" — every source successively dumps ALL
// N = 100 items (synthetic λ=1, ρ=1).
//
// Paper shape: sampling-with-replacement is violated as hard as possible.
// Chao92-based estimators fail (right after a dump every item has equal
// multiplicity k and f1 spikes whenever a new dump begins); Monte-Carlo
// simply follows the observed sum, which IS the truth after the first dump.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTruth = 50500.0;

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(10);
  const auto factory = [](uint64_t seed) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = 1.0;
    pop.rho = 1.0;
    pop.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = 5;
    crowd.sequential_full_dump = true;  // each source provides all 100 items
    crowd.seed = seed * 31 + 7;
    return scenarios::Synthetic(pop, crowd).stream;
  };

  bench::PaperEstimators estimators;
  const auto series = RunAveragedConvergence(
      factory, estimators.All(),
      {50, 100, 150, 200, 250, 300, 350, 400, 450, 500}, reps, 2000);

  bench::PrintHeader(
      "Figure 7(a): streakers only — every source dumps all 100 items",
      "monte-carlo ≈ observed (= truth after the first dump); Chao92-based "
      "estimators overestimate right after each new dump starts");
  bench::PrintTable(SeriesToTable("Figure 7(a) series", series, kTruth, true));

  // Mid-dump checkpoint (n=150): 50 fresh singletons from source 2.
  for (const SeriesPoint& point : series) {
    if (point.n != 150) continue;
    std::printf("At n=150 (mid second dump): naive/truth = %.2f vs "
                "monte-carlo/truth = %.2f\n\n",
                point.estimates.at("naive") / kTruth,
                point.estimates.at("monte-carlo") / kTruth);
  }
}

void BM_FullDumpIntegration(benchmark::State& state) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.seed = 3;
  CrowdConfig crowd;
  crowd.num_workers = 5;
  crowd.sequential_full_dump = true;
  crowd.seed = 4;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  for (auto _ : state) {
    IntegratedSample sample;
    for (const Observation& obs : scenario.stream) {
      sample.Add(obs.source_id, obs.entity_key, obs.value);
    }
    benchmark::DoNotOptimize(sample.c());
  }
}
BENCHMARK(BM_FullDumpIntegration);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
