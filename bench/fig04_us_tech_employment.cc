// Figure 4 (and the grey "observed" line of Figure 2): US tech-sector
// employment, SELECT SUM(employees) FROM us_tech_companies.
//
// Paper shape: naive and frequency heavily overestimate; frequency slightly
// below naive; Monte-Carlo tracks well then falls back toward the observed
// line; the dynamic bucket estimator lands within a few percent of the
// ground truth (paper: +2.5% at 500 answers vs truth 3,951,730).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::UsTechEmployment();
  bench::PaperEstimators estimators;
  const auto series = RunConvergence(scenario.stream, estimators.All(),
                                     MakeCheckpoints(500, 50));
  bench::PrintHeader(
      "Figure 4: SELECT SUM(employees) FROM us_tech_companies",
      "naive > freq >> truth; bucket within a few % of truth at n=500; "
      "monte-carlo falls back toward observed");
  bench::PrintTable(SeriesToTable("Figure 4 series (corrected SUM estimates)",
                                  series, scenario.ground_truth_sum, true));

  const auto& last = series.back();
  const double truth = scenario.ground_truth_sum;
  std::printf("At n=%lld: observed/truth = %.3f, bucket/truth = %.3f, "
              "naive/truth = %.3f, freq/truth = %.3f, mc/truth = %.3f\n\n",
              static_cast<long long>(last.n), last.observed / truth,
              last.estimates.at("bucket[dynamic]") / truth,
              last.estimates.at("naive") / truth,
              last.estimates.at("freq") / truth,
              last.estimates.at("monte-carlo") / truth);
}

// --- google-benchmark timings over the same workload ---

const Scenario& BenchScenario() {
  static const Scenario scenario = scenarios::UsTechEmployment();
  return scenario;
}

IntegratedSample SamplePrefix(int64_t n) {
  const Scenario& scenario = BenchScenario();
  IntegratedSample sample;
  for (int64_t i = 0; i < n && i < static_cast<int64_t>(scenario.stream.size());
       ++i) {
    const Observation& obs = scenario.stream[i];
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  return sample;
}

void BM_BucketEstimator(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const BucketSumEstimator bucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_BucketEstimator)->Arg(100)->Arg(250)->Arg(500);

void BM_NaiveEstimator(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const NaiveEstimator naive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_NaiveEstimator)->Arg(500);

void BM_MonteCarloEstimator(benchmark::State& state) {
  const IntegratedSample sample = SamplePrefix(state.range(0));
  const MonteCarloEstimator mc(bench::FastMcOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_MonteCarloEstimator)->Arg(250)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
