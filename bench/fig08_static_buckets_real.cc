// Figure 8 (Appendix B): static bucket ablation on the US tech-sector
// employment data.
//
// Paper shape: on this skewed, correlated data, MORE buckets improve the
// static estimates (naive = 1 bucket is worst); equi-width with 6/10
// buckets has missing data points (singleton-only buckets -> infinite
// estimates); the dynamic bucket estimator matches or beats every static
// configuration without tuning.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::UsTechEmployment();

  const auto naive_inner = std::make_shared<NaiveEstimator>();
  std::vector<std::unique_ptr<BucketSumEstimator>> estimators;
  estimators.push_back(std::make_unique<BucketSumEstimator>());  // dynamic
  for (int nb : {2, 6, 10}) {
    estimators.push_back(std::make_unique<BucketSumEstimator>(
        std::make_shared<EquiWidthPartitioner>(nb), naive_inner));
    estimators.push_back(std::make_unique<BucketSumEstimator>(
        std::make_shared<EquiHeightPartitioner>(nb), naive_inner));
  }
  NaiveEstimator naive;  // the 1-bucket baseline
  EstimatorSet set{&naive};
  for (const auto& est : estimators) set.push_back(est.get());

  const auto series =
      RunConvergence(scenario.stream, set, MakeCheckpoints(500, 50));

  bench::PrintHeader(
      "Figure 8 (App. B): static buckets on US tech employment",
      "more buckets help on skewed+correlated data; eq-width 6/10 show inf "
      "(singleton-only buckets); dynamic needs no tuning and is best");
  bench::PrintTable(SeriesToTable("Figure 8 series", series,
                                  scenario.ground_truth_sum, true));
}

void BM_StaticVsDynamicPartition(benchmark::State& state) {
  const Scenario scenario = scenarios::UsTechEmployment();
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  const BucketSumEstimator eq_width(
      std::make_shared<EquiWidthPartitioner>(static_cast<int>(state.range(0))),
      std::make_shared<NaiveEstimator>());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eq_width.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_StaticVsDynamicPartition)->Arg(2)->Arg(10);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
