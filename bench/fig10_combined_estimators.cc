// Figure 10 (Appendix D): combined estimators on the US tech-sector
// employment data — a negative result the paper reports.
//
// Paper shape: frequency-inside-buckets barely differs from plain dynamic
// bucket (per-bucket publicity looks uniform), and Monte-Carlo-inside-
// buckets UNDERPERFORMS (each bucket's sample is too small for the MC
// search, which then hugs the per-bucket observed count: N̂_MC ~ c).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "core/combined.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

void PrintReproduction() {
  const Scenario scenario = scenarios::UsTechEmployment();

  BucketSumEstimator bucket;  // dynamic + naive (the reference)
  const BucketSumEstimator freq_bucket(
      std::make_shared<DynamicPartitioner>(),
      std::make_shared<FrequencyEstimator>());
  MonteCarloOptions mc_options = bench::FastMcOptions();
  mc_options.runs_per_point = 2;  // per-bucket MC is expensive
  const MonteCarloBucketEstimator mc_bucket(mc_options);

  const EstimatorSet set{&bucket, &freq_bucket, &mc_bucket};
  const auto series = RunConvergence(scenario.stream, set,
                                     {100, 200, 300, 400, 500});

  bench::PrintHeader(
      "Figure 10 (App. D): combined estimators on US tech employment",
      "freq-in-bucket ~= plain bucket; mc-bucket underperforms (per-bucket "
      "samples starve the MC search, N-hat collapses toward c)");
  bench::PrintTable(SeriesToTable("Figure 10 series", series,
                                  scenario.ground_truth_sum, true));

  const auto& last = series.back();
  const double truth = scenario.ground_truth_sum;
  std::printf("At n=%lld: bucket/truth = %.3f, freq-bucket/truth = %.3f, "
              "mc-bucket/truth = %.3f (mc-bucket closest to observed %.3f)\n\n",
              static_cast<long long>(last.n),
              last.estimates.at("bucket[dynamic]") / truth,
              last.estimates.at("bucket[dynamic,freq]") / truth,
              last.estimates.at("mc-bucket") / truth, last.observed / truth);
}

void BM_McBucket(benchmark::State& state) {
  const Scenario scenario = scenarios::UsTechEmployment();
  IntegratedSample sample;
  for (size_t i = 0; i < 250; ++i) {
    const Observation& obs = scenario.stream[i];
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  MonteCarloOptions mc_options = bench::FastMcOptions();
  mc_options.runs_per_point = 2;
  const MonteCarloBucketEstimator mc_bucket(mc_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_bucket.EstimateImpact(sample).delta);
  }
}
BENCHMARK(BM_McBucket)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
