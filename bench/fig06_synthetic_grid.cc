// Figure 6: the 3×3 synthetic grid. Rows: (λ=0, ρ=0) "ideal", (λ=4, ρ=1)
// "realistic", (λ=4, ρ=0) "rare events". Columns: w = 100, 10, 5 workers.
// N = 100 items with values 10..1000 (truth 50,500); repeated trials,
// averaged (paper: 50 reps; default here 15 — raise with UUQ_REPS).
//
// Paper shape:
//  * ideal row: every estimator is accurate from early on; fewer workers ->
//    slight overestimation,
//  * realistic row: bucket best and does not over-estimate; freq also good,
//  * rare-events row: ALL estimators underestimate (black swans in the
//    uncorrelated tail are unpredictable); bucket is not the best here.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr double kTruth = 50500.0;

void RunCell(double lambda, double rho, int workers, int reps) {
  const auto factory = [lambda, rho, workers](uint64_t seed) {
    SyntheticPopulationConfig pop;
    pop.num_items = 100;
    pop.lambda = lambda;
    pop.rho = rho;
    pop.seed = seed;
    CrowdConfig crowd;
    crowd.num_workers = workers;
    crowd.answers_per_worker = 400 / workers;
    crowd.seed = seed * 7919 + 13;
    return scenarios::Synthetic(pop, crowd).stream;
  };

  bench::PaperEstimators estimators;
  const auto series = RunAveragedConvergence(
      factory, estimators.All(), MakeCheckpoints(400, 50), reps, 1000);

  char title[128];
  std::snprintf(title, sizeof(title),
                "Figure 6 cell: lambda=%.0f rho=%.0f workers=%d (%d reps)",
                lambda, rho, workers, reps);
  bench::PrintTable(SeriesToTable(title, series, kTruth, true));
}

void PrintReproduction() {
  const int reps = bench::RepsFromEnv(15);
  bench::PrintHeader(
      "Figure 6: synthetic grid, SUM over N=100 items (truth 50500)",
      "ideal (0,0): all estimators good; realistic (4,1): bucket best, no "
      "overestimation; rare events (4,0): everyone underestimates");
  for (const auto& [lambda, rho] :
       std::vector<std::pair<double, double>>{{0, 0}, {4, 1}, {4, 0}}) {
    for (int workers : {100, 10, 5}) {
      RunCell(lambda, rho, workers, reps);
    }
  }
}

void BM_GridCellAllEstimators(benchmark::State& state) {
  SyntheticPopulationConfig pop;
  pop.num_items = 100;
  pop.lambda = 4.0;
  pop.rho = 1.0;
  pop.seed = 5;
  CrowdConfig crowd;
  crowd.num_workers = 10;
  crowd.answers_per_worker = 40;
  crowd.seed = 6;
  const Scenario scenario = scenarios::Synthetic(pop, crowd);
  IntegratedSample sample;
  for (const Observation& obs : scenario.stream) {
    sample.Add(obs.source_id, obs.entity_key, obs.value);
  }
  bench::PaperEstimators estimators;
  for (auto _ : state) {
    for (const SumEstimator* est : estimators.NoMc()) {
      benchmark::DoNotOptimize(est->EstimateImpact(sample).delta);
    }
  }
}
BENCHMARK(BM_GridCellAllEstimators);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
