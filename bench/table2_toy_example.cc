// Table 2 (Appendix F): the toy walkthrough of SELECT SUM(employee) FROM K
// over five companies {A, B, C, D, E}, before and after adding source s5.
//
// Paper rows (ground truth 14200):
//   observed: 13000 -> 13300
//   naive:    ~16009 -> ~14962
//   freq:     ~13694 -> 13450
//   bucket:   14500  -> 13950   (most accurate both times)
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/frequency.h"
#include "core/naive.h"
#include "integration/sample.h"

namespace uuq {
namespace {

IntegratedSample BeforeS5() {
  IntegratedSample sample;
  sample.Add("s1", "A", 1000);
  sample.Add("s1", "B", 2000);
  sample.Add("s1", "D", 10000);
  sample.Add("s2", "B", 2000);
  sample.Add("s2", "D", 10000);
  sample.Add("s3", "D", 10000);
  sample.Add("s4", "D", 10000);
  return sample;
}

IntegratedSample AfterS5() {
  IntegratedSample sample = BeforeS5();
  sample.Add("s5", "A", 1000);
  sample.Add("s5", "E", 300);
  return sample;
}

void PrintReproduction() {
  const IntegratedSample before = BeforeS5();
  const IntegratedSample after = AfterS5();
  const NaiveEstimator naive;
  const FrequencyEstimator freq;
  const BucketSumEstimator bucket;

  bench::PrintHeader(
      "Table 2 (App. F): toy example, ground truth 14200",
      "bucket most accurate before AND after s5; naive worst; adding s5 "
      "moves naive/bucket toward truth");

  SeriesTable table("Table 2 rows",
                    {"before_s5", "after_s5", "paper_before", "paper_after"});
  std::printf("rows: observed / naive / freq / bucket\n");
  table.AddRow({before.ObservedSum(), after.ObservedSum(), 13000, 13300});
  table.AddRow({naive.EstimateImpact(before).corrected_sum,
                naive.EstimateImpact(after).corrected_sum, 16009, 14962});
  table.AddRow({freq.EstimateImpact(before).corrected_sum,
                freq.EstimateImpact(after).corrected_sum, 13694, 13450});
  table.AddRow({bucket.EstimateImpact(before).corrected_sum,
                bucket.EstimateImpact(after).corrected_sum, 14500, 13950});
  bench::PrintTable(table);

  const SampleStats stats_before = SampleStats::FromSample(before);
  const SampleStats stats_after = SampleStats::FromSample(after);
  std::printf("stats before: n=%lld c=%lld f1=%lld gamma2=%.4f (paper: "
              "n=7 c=3 f1=1 0.1667)\n",
              static_cast<long long>(stats_before.n),
              static_cast<long long>(stats_before.c),
              static_cast<long long>(stats_before.f1), stats_before.Gamma2());
  std::printf("stats after:  n=%lld c=%lld f1=%lld gamma2=%.4f (paper "
              "computes with n=9 c=4 f1=1 0)\n\n",
              static_cast<long long>(stats_after.n),
              static_cast<long long>(stats_after.c),
              static_cast<long long>(stats_after.f1), stats_after.Gamma2());
}

void BM_ToyEstimators(benchmark::State& state) {
  const IntegratedSample sample = AfterS5();
  const BucketSumEstimator bucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.EstimateImpact(sample).corrected_sum);
  }
}
BENCHMARK(BM_ToyEstimators);

}  // namespace
}  // namespace uuq

int main(int argc, char** argv) {
  uuq::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
