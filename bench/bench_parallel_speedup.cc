// Parallel-engine speedup harness: times the three pooled hot paths —
// Monte-Carlo grid estimation, source bootstrap, dynamic bucket search —
// at thread counts 1, 2, 4, ..., hardware_concurrency, verifies that every
// parallel result is BIT-IDENTICAL to the serial one (the Rng::Split()
// stream-per-task contract), and writes machine-readable rows to
// bench_out.json (see BenchRow in bench_util.h) for cross-PR trajectory
// tracking.
//
// Expected shape: near-linear Monte-Carlo scaling up to the physical core
// count (the grid points are uniform-cost and allocation-free), good
// bootstrap scaling (replicates evaluate over the columnar SampleView —
// see bench_bootstrap for the columnar-vs-materialized comparison), and
// modest dynamic-bucket gains (the scan is memory-bound closed-form math).
// UUQ_REPS raises the repetition count; timings report the best rep.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/bootstrap.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

int64_t BestOfRepsNs(int reps, const std::function<void()>& op) {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    op();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    best = std::min<int64_t>(
        best,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  return best;
}

std::vector<int> ThreadCounts() {
  // 1, 2, 4, ... up to hardware concurrency (always at least {1, 2} so the
  // equivalence assertions exercise a real multi-threaded pool even on a
  // single-core machine).
  const int hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<int> counts{1};
  for (int t = 2; t < hw; t *= 2) counts.push_back(t);
  counts.push_back(hw);
  return counts;
}

IntegratedSample ScenarioPrefix(int64_t n) {
  static const Scenario scenario = scenarios::UsTechEmployment();
  IntegratedSample sample;
  for (int64_t i = 0;
       i < n && i < static_cast<int64_t>(scenario.stream.size()); ++i) {
    sample.Add(scenario.stream[i]);
  }
  return sample;
}

struct Fatal {
  std::string what;
};

void CheckBitIdentical(double serial, double parallel, const char* label) {
  if (serial != parallel && !(std::isnan(serial) && std::isnan(parallel))) {
    throw Fatal{std::string(label) + ": parallel result differs from serial (" +
                std::to_string(serial) + " vs " + std::to_string(parallel) +
                ")"};
  }
}

}  // namespace
}  // namespace uuq

int main() {
  using namespace uuq;
  using bench::BenchRow;

  const int reps = bench::RepsFromEnv(3);
  const std::vector<int> thread_counts = ThreadCounts();
  std::vector<BenchRow> rows;

  bench::PrintHeader(
      "Parallel estimation engine speedup (thread-pooled MC grid, bootstrap, "
      "dynamic buckets)",
      "near-linear MC scaling to the core count; identical estimates at "
      "every thread count");
  std::printf("hardware_concurrency=%u  reps=%d (best-of)\n\n",
              std::thread::hardware_concurrency(), reps);

  try {
    // ---- Monte-Carlo grid -------------------------------------------------
    const IntegratedSample mc_sample = ScenarioPrefix(400);
    double mc_serial_ns = 0.0;
    double mc_serial_delta = 0.0;
    std::printf("%-14s %-12s %14s %9s\n", "estimator", "config", "ms/op",
                "speedup");
    for (int threads : thread_counts) {
      ThreadPool pool(threads);
      MonteCarloOptions options = bench::FastMcOptions();
      options.pool = &pool;
      const MonteCarloEstimator mc(options);
      double delta = 0.0;
      const int64_t ns =
          BestOfRepsNs(reps, [&] { delta = mc.EstimateImpact(mc_sample).delta; });
      if (threads == 1) {
        mc_serial_ns = static_cast<double>(ns);
        mc_serial_delta = delta;
      }
      CheckBitIdentical(mc_serial_delta, delta, "monte-carlo");
      const double speedup = mc_serial_ns / static_cast<double>(ns);
      rows.push_back({"monte-carlo",
                      "threads=" + std::to_string(threads) + ",n=400",
                      static_cast<double>(ns), speedup});
      std::printf("%-14s threads=%-4d %14.3f %8.2fx\n", "monte-carlo", threads,
                  ns / 1e6, speedup);
    }

    // ---- real multi-core scaling assertion (the CI multicore entry) -------
    // UUQ_BENCH_REQUIRE_SPEEDUP=<x> demands the Monte-Carlo grid reach an
    // x-fold speedup at 4 threads (the grid is the embarrassingly parallel
    // uniform-cost path, so this is the honest scaling gate; bootstrap and
    // bucket rows stay informational). Hard-fails when the machine has
    // fewer than 4 hardware threads: the assertion exists precisely so a
    // mis-provisioned "multicore" runner cannot silently pass.
    if (const char* require_env = std::getenv("UUQ_BENCH_REQUIRE_SPEEDUP")) {
      const double required = std::atof(require_env);
      if (required > 0.0) {
        double at4 = 0.0;
        for (const BenchRow& row : rows) {
          if (row.estimator == "monte-carlo" &&
              row.config.rfind("threads=4,", 0) == 0) {
            at4 = row.speedup;
          }
        }
        if (at4 == 0.0) {
          throw Fatal{"UUQ_BENCH_REQUIRE_SPEEDUP set but no 4-thread row was "
                      "measured — the runner has fewer than 4 hardware "
                      "threads (hardware_concurrency=" +
                      std::to_string(std::thread::hardware_concurrency()) +
                      "); fix the runner, don't skip the gate"};
        }
        if (at4 < required) {
          throw Fatal{"monte-carlo speedup at 4 threads is " +
                      std::to_string(at4) + "x, below the required " +
                      std::to_string(required) +
                      "x (UUQ_BENCH_REQUIRE_SPEEDUP)"};
        }
        std::printf("scaling gate OK: monte-carlo %.2fx at 4 threads "
                    "(required %.2fx)\n",
                    at4, required);
      }
    }

    // ---- MC grid regression gate vs committed baseline --------------------
    // Mirrors bench_bootstrap's gate, but the MC grid has no same-process
    // reference path, so the gated quantity is the SERIAL wall time against
    // bench/mc_grid_baseline.json with a generous slowdown factor: it trips
    // on catastrophic regressions (an accidentally quadratic loop, a lost
    // allocation-free path) while tolerating shared-runner jitter. The
    // bit-identity assertions above remain the hard correctness gate.
    if (const char* baseline_path = std::getenv("UUQ_BENCH_MC_BASELINE")) {
      const double baseline_ms =
          bench::ReadBaselineNumber(baseline_path, "mc_serial_ms");
      const double max_slowdown =
          bench::ReadBaselineNumber(baseline_path, "mc_max_slowdown");
      const double measured_ms = mc_serial_ns / 1e6;
      if (std::isnan(baseline_ms) || std::isnan(max_slowdown)) {
        std::printf("WARNING: no mc_serial_ms/mc_max_slowdown in %s; MC gate "
                    "skipped\n",
                    baseline_path);
      } else if (measured_ms > baseline_ms * max_slowdown) {
        throw Fatal{"MC grid serial time regressed: " +
                    std::to_string(measured_ms) + " ms vs committed " +
                    std::to_string(baseline_ms) + " ms (allowed up to " +
                    std::to_string(max_slowdown) +
                    "x; re-measure bench/mc_grid_baseline.json if the grid "
                    "was deliberately changed)"};
      } else {
        std::printf("MC baseline gate OK: %.1f ms vs committed %.1f ms "
                    "(<= %.1fx)\n",
                    measured_ms, baseline_ms, max_slowdown);
      }
    }

    // ---- Bootstrap replication -------------------------------------------
    const IntegratedSample bs_sample = ScenarioPrefix(500);
    const BucketSumEstimator bucket;
    double bs_serial_ns = 0.0;
    double bs_serial_lo = 0.0;
    for (int threads : thread_counts) {
      ThreadPool pool(threads);
      BootstrapOptions options;
      options.replicates = 48;
      options.pool = &pool;
      double lo = 0.0;
      const int64_t ns = BestOfRepsNs(reps, [&] {
        lo = BootstrapCorrectedSum(bs_sample, bucket, options).lo;
      });
      if (threads == 1) {
        bs_serial_ns = static_cast<double>(ns);
        bs_serial_lo = lo;
      }
      CheckBitIdentical(bs_serial_lo, lo, "bootstrap");
      const double speedup = bs_serial_ns / static_cast<double>(ns);
      rows.push_back({"bootstrap[bucket]",
                      "threads=" + std::to_string(threads) + ",B=48",
                      static_cast<double>(ns), speedup});
      std::printf("%-14s threads=%-4d %14.3f %8.2fx\n", "bootstrap", threads,
                  ns / 1e6, speedup);
    }

    // ---- Dynamic bucket search -------------------------------------------
    // A wide value range with hundreds of distinct values so the candidate
    // scan crosses the parallel threshold.
    IntegratedSample wide;
    {
      Rng rng(99);
      for (int e = 0; e < 600; ++e) {
        const double value = rng.NextUniform(0, 1e6);
        const int copies = 1 + static_cast<int>(rng.NextBounded(4));
        for (int m = 0; m < copies; ++m) {
          wide.Add("w" + std::to_string(m), "e" + std::to_string(e), value);
        }
      }
    }
    const SortedEntityIndex wide_index(wide.entities());
    const NaiveEstimator naive;
    double dp_serial_ns = 0.0;
    std::vector<size_t> dp_serial_bounds;
    for (int threads : thread_counts) {
      ThreadPool pool(threads);
      const DynamicPartitioner partitioner(&pool);
      std::vector<size_t> bounds;
      const int64_t ns = BestOfRepsNs(
          reps, [&] { bounds = partitioner.Partition(wide_index, naive); });
      if (threads == 1) {
        dp_serial_ns = static_cast<double>(ns);
        dp_serial_bounds = bounds;
      }
      if (bounds != dp_serial_bounds) {
        throw Fatal{"dynamic-bucket: parallel partition differs from serial "
                    "at threads=" +
                    std::to_string(threads)};
      }
      const double speedup = dp_serial_ns / static_cast<double>(ns);
      rows.push_back({"dynamic-bucket",
                      "threads=" + std::to_string(threads) + ",entities=600",
                      static_cast<double>(ns), speedup});
      std::printf("%-14s threads=%-4d %14.3f %8.2fx\n", "dynamic-bucket",
                  threads, ns / 1e6, speedup);
    }
  } catch (const Fatal& fatal) {
    std::fprintf(stderr, "FATAL: %s\n", fatal.what.c_str());
    return 1;
  }

  const std::string path = bench::BenchJsonPath();
  if (!bench::WriteBenchJson(path, rows)) return 1;
  std::printf("\nwrote %zu rows to %s\n", rows.size(), path.c_str());
  return 0;
}
