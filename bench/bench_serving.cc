// Serving-layer throughput/latency harness: drives the QueryService with
// open-loop concurrent load (all queries submitted up front from competing
// submitter threads, no coordination with completions) and reports
// corrected-queries/s plus p50/p99 end-to-end latency, with and without
// injected faults. Rows land in bench_out.json for the cross-PR perf
// trajectory:
//   estimator="serving", config="pr=6,workers=W,faults=off,metric=p50",
//   ns_per_op=<latency>  — plus a metric=throughput row where ns_per_op is
//   wall-clock ns per completed query.
//
// Expected shape: p50 close to a single query's corrector latency while
// the queue stays shallow; p99 dominated by queueing; the faulted run
// (slow replicates + queue stalls) degrades latency but never correctness
// — every result is either OK or a typed failure status, and the run
// aborts if anything else surfaces.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serving/fault_injector.h"
#include "serving/query_service.h"
#include "simulation/scenarios.h"

namespace uuq {
namespace {

constexpr char kSql[] = "SELECT SUM(value) FROM integrated";

struct LoadResult {
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int completed = 0;
  int failed = 0;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

LoadResult RunLoad(const std::shared_ptr<const IntegratedSample>& sample,
                   int workers, int queries, FaultInjector* faults) {
  ServingOptions options;
  options.workers = workers;
  options.max_queue = queries + 1;  // admission never sheds in this bench
  options.default_deadline = std::chrono::seconds(60);
  options.full_interval_budget = std::chrono::milliseconds(1);
  options.full_replicates = 24;
  options.faults = faults;
  QueryService service(options);
  service.RegisterSample("bench", sample);

  const auto start = std::chrono::steady_clock::now();
  // Open loop: 4 submitter threads race the full query count in, then
  // every ticket is awaited. Submission never waits on completions.
  constexpr int kSubmitters = 4;
  std::vector<std::vector<QueryService::Ticket>> tickets(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      const int share = queries / kSubmitters + (s == 0 ? queries % kSubmitters : 0);
      tickets[s].reserve(static_cast<size_t>(share));
      for (int q = 0; q < share; ++q) {
        auto ticket = service.Submit("bench", kSql);
        if (ticket.ok()) tickets[s].push_back(ticket.value());
      }
    });
  }
  for (auto& t : submitters) t.join();

  LoadResult out;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(queries));
  for (auto& shard : tickets) {
    for (auto& ticket : shard) {
      ServedResult result = ticket.Wait();
      if (result.status.ok()) {
        ++out.completed;
        latencies_ms.push_back(result.queue_ms + result.run_ms);
      } else {
        ++out.failed;
        // The robustness contract: failures are typed, never anything else.
        switch (result.status.code()) {
          case StatusCode::kUnavailable:
          case StatusCode::kResourceExhausted:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kCancelled:
            break;
          default:
            std::fprintf(stderr, "FATAL: untyped serving failure: %s\n",
                         result.status.ToString().c_str());
            std::exit(1);
        }
      }
    }
  }
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  out.p50_ms = Percentile(latencies_ms, 0.50);
  out.p99_ms = Percentile(latencies_ms, 0.99);
  return out;
}

}  // namespace
}  // namespace uuq

int main() {
  using namespace uuq;
  using bench::BenchRow;

  bench::PrintHeader(
      "Serving throughput/latency under open-loop concurrent load",
      "p50 near single-query latency, p99 queue-dominated; faulted run "
      "slower but every failure typed");

  const Scenario scenario = scenarios::UsTechEmployment();
  auto sample = std::make_shared<IntegratedSample>();
  for (const Observation& obs : scenario.stream) sample->Add(obs);

  const int queries = bench::RepsFromEnv(1) * 64;
  const int workers =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()) / 2);

  std::vector<BenchRow> rows;
  const auto report = [&](const char* faults_tag, const LoadResult& r) {
    const double qps = r.completed / std::max(1e-9, r.wall_s);
    std::printf(
        "workers=%d queries=%d faults=%s: %.1f corrected-queries/s, "
        "p50 %.2f ms, p99 %.2f ms (%d ok, %d typed failures)\n",
        workers, queries, faults_tag, qps, r.p50_ms, r.p99_ms, r.completed,
        r.failed);
    const std::string base = "pr=6,workers=" + std::to_string(workers) +
                             ",queries=" + std::to_string(queries) +
                             ",faults=" + faults_tag;
    rows.push_back({"serving", base + ",metric=throughput",
                    r.completed > 0 ? r.wall_s * 1e9 / r.completed : 0.0,
                    1.0});
    rows.push_back({"serving", base + ",metric=p50", r.p50_ms * 1e6, 1.0});
    rows.push_back({"serving", base + ",metric=p99", r.p99_ms * 1e6, 1.0});
  };

  report("off", RunLoad(sample, workers, queries, nullptr));

  auto faults = FaultInjector::Parse(
      0xC4A05, "slow_replicate=0.05:2ms,queue_stall=0.1:1ms,source_load=0.02");
  if (!faults.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", faults.status().ToString().c_str());
    return 1;
  }
  report("on", RunLoad(sample, workers, queries, &faults.value()));

  if (!bench::AppendBenchJson(bench::BenchJsonPath(), rows)) return 1;
  std::printf("\nwrote %zu rows to %s\n", rows.size(),
              bench::BenchJsonPath().c_str());
  return 0;
}
