// Serving-layer throughput/latency harness: drives the QueryService with
// open-loop concurrent load (all queries submitted up front from competing
// submitter threads, no coordination with completions) and reports
// corrected-queries/s plus p50/p99 end-to-end latency — cached vs uncached
// sample artifacts, with and without injected faults. Rows land in
// bench_out.json for the cross-PR perf trajectory:
//   estimator="serving",
//   config="pr=7,workers=W,cache=on,faults=off,metric=throughput",
//   ns_per_op=<wall-clock ns per completed query> — plus metric=p50/p99
//   rows where ns_per_op is the latency percentile. The cache=on throughput
//   row's `speedup` field is (uncached ns/op) / (cached ns/op).
//
// Correctness before speed: a pre-timing verify pass (skippable with
// UUQ_BENCH_VERIFY=0, debugging only — CI always runs it) executes the same
// query sequentially on a cache-enabled and a cache-disabled service and
// requires every answer field to be bit-identical, and pins the adaptive
// replicate budget against fixed budgets at both ends of its range
// (pilot early-stop == fixed-pilot service, cap escalation == fixed-cap
// service, bit for bit). A wrong-answer speedup exits 1, it does not ship.
//
// The pr=10 adaptive comparison: the same open-loop load runs once with the
// fixed B=48 interval budget and once with a precision target epsilon equal
// to the fixed run's achieved interval width — equal delivered precision,
// strictly fewer replicates (the pilot meets the target). Expected shape:
// >=1.3x corrected-queries/s for the adaptive run (warn-only off-CI boxes,
// hard under UUQ_BENCH_ENFORCE).
//
// Expected shape: p50 close to a single query's corrector latency while
// the queue stays shallow; p99 dominated by queueing; the cached run
// strictly faster (it skips the per-query flatten/sort/stats/advise); the
// faulted run (slow replicates + queue stalls) degrades latency but never
// correctness — every result is either OK or a typed failure status, and
// the run aborts if anything else surfaces.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serving/fault_injector.h"
#include "serving/query_service.h"
#include "simulation/scenarios.h"
#include "stats/descriptive.h"

namespace uuq {
namespace {

constexpr char kSql[] = "SELECT SUM(value) FROM integrated";

struct LoadResult {
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int completed = 0;
  int failed = 0;

  double ns_per_query() const {
    return completed > 0 ? wall_s * 1e9 / completed : 0.0;
  }
};

ServingOptions BenchOptions(int workers, int queries, bool cache,
                            FaultInjector* faults,
                            int full_replicates = 24) {
  ServingOptions options;
  options.workers = workers;
  options.cache_artifacts = cache;
  options.max_queue = queries + 1;  // admission never sheds in this bench
  options.default_deadline = std::chrono::seconds(60);
  options.full_interval_budget = std::chrono::milliseconds(1);
  options.full_replicates = full_replicates;
  options.faults = faults;
  return options;
}

LoadResult RunLoad(const std::shared_ptr<const IntegratedSample>& sample,
                   int workers, int queries, bool cache,
                   FaultInjector* faults, int full_replicates = 24,
                   double epsilon = 0.0) {
  QueryService service(
      BenchOptions(workers, queries, cache, faults, full_replicates));
  service.RegisterSample("bench", sample);

  const auto start = std::chrono::steady_clock::now();
  // Open loop: 4 submitter threads race the full query count in, then
  // every ticket is awaited. Submission never waits on completions.
  constexpr int kSubmitters = 4;
  std::vector<std::vector<QueryService::Ticket>> tickets(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      const int share = queries / kSubmitters + (s == 0 ? queries % kSubmitters : 0);
      tickets[s].reserve(static_cast<size_t>(share));
      for (int q = 0; q < share; ++q) {
        auto ticket =
            service.Submit("bench", kSql, std::chrono::nanoseconds(0),
                           /*want_interval=*/true, epsilon);
        if (ticket.ok()) tickets[s].push_back(ticket.value());
      }
    });
  }
  for (auto& t : submitters) t.join();

  LoadResult out;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(queries));
  for (auto& shard : tickets) {
    for (auto& ticket : shard) {
      ServedResult result = ticket.Wait();
      if (result.status.ok()) {
        ++out.completed;
        latencies_ms.push_back(result.queue_ms + result.run_ms);
      } else {
        ++out.failed;
        // The robustness contract: failures are typed, never anything else.
        switch (result.status.code()) {
          case StatusCode::kUnavailable:
          case StatusCode::kResourceExhausted:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kCancelled:
            break;
          default:
            std::fprintf(stderr, "FATAL: untyped serving failure: %s\n",
                         result.status.ToString().c_str());
            std::exit(1);
        }
      }
    }
  }
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  // stats/descriptive.h nearest-rank percentile over the sorted latencies.
  out.p50_ms = latencies_ms.empty() ? 0.0 : SortedPercentile(latencies_ms, 0.50);
  out.p99_ms = latencies_ms.empty() ? 0.0 : SortedPercentile(latencies_ms, 0.99);
  return out;
}

void CheckBitIdentical(double cached, double uncached, const char* label) {
  if (cached != uncached &&
      !(std::isnan(cached) && std::isnan(uncached))) {
    std::fprintf(stderr,
                 "FATAL: verify cached-vs-uncached: %s differs "
                 "(cached %.17g vs uncached %.17g)\n",
                 label, cached, uncached);
    std::exit(1);
  }
}

/// The pre-timing correctness pass (header comment): the same queries run
/// sequentially on a cache-enabled and a cache-disabled service must yield
/// bit-identical answers — point, bound, and bootstrap interval alike.
void VerifyCachedAgainstUncached(
    const std::shared_ptr<const IntegratedSample>& sample) {
  const char* queries[] = {
      "SELECT SUM(value) FROM integrated",
      "SELECT COUNT(*) FROM integrated",
      "SELECT AVG(value) FROM integrated",
      "SELECT MAX(value) FROM integrated",
  };
  QueryService cached(BenchOptions(/*workers=*/1, /*queries=*/8,
                                   /*cache=*/true, nullptr));
  QueryService uncached(BenchOptions(/*workers=*/1, /*queries=*/8,
                                     /*cache=*/false, nullptr));
  if (!cached.cache_enabled()) {
    std::printf("verify pass SKIPPED (cache disabled via UUQ_SERVE_CACHE)\n");
    return;
  }
  cached.RegisterSample("bench", sample);
  uncached.RegisterSample("bench", sample);
  for (const char* sql : queries) {
    const ServedResult a = cached.Execute("bench", sql);
    const ServedResult b = uncached.Execute("bench", sql);
    if (!a.status.ok() || !b.status.ok() ||
        a.degraded != DegradeLevel::kNone ||
        b.degraded != DegradeLevel::kNone) {
      std::fprintf(stderr,
                   "FATAL: verify pass could not get two level-0 answers "
                   "for %s (%s vs %s)\n",
                   sql, a.status.ToString().c_str(),
                   b.status.ToString().c_str());
      std::exit(1);
    }
    CheckBitIdentical(a.answer.observed, b.answer.observed, sql);
    CheckBitIdentical(a.answer.corrected, b.answer.corrected, sql);
    CheckBitIdentical(a.answer.estimate.delta, b.answer.estimate.delta, sql);
    CheckBitIdentical(a.answer.estimate.n_hat, b.answer.estimate.n_hat, sql);
    if (a.answer.bound_valid != b.answer.bound_valid) {
      std::fprintf(stderr, "FATAL: verify: bound_valid differs for %s\n", sql);
      std::exit(1);
    }
    if (a.answer.bootstrap_valid != b.answer.bootstrap_valid ||
        a.replicates_used != b.replicates_used) {
      std::fprintf(stderr, "FATAL: verify: interval shape differs for %s\n",
                   sql);
      std::exit(1);
    }
    if (a.answer.bootstrap_valid) {
      CheckBitIdentical(a.answer.bootstrap.point, b.answer.bootstrap.point,
                        sql);
      CheckBitIdentical(a.answer.bootstrap.lo, b.answer.bootstrap.lo, sql);
      CheckBitIdentical(a.answer.bootstrap.hi, b.answer.bootstrap.hi, sql);
      CheckBitIdentical(a.answer.bootstrap.median, b.answer.bootstrap.median,
                        sql);
    }
  }
  std::printf(
      "verify pass OK: cached == uncached answers, bit-identical across "
      "SUM/COUNT/AVG/MAX (points, bounds, intervals)\n");
}

void CheckSameServedInterval(const ServedResult& adaptive,
                             const ServedResult& fixed, const char* label) {
  if (!adaptive.status.ok() || !fixed.status.ok() ||
      !adaptive.answer.bootstrap_valid || !fixed.answer.bootstrap_valid ||
      adaptive.replicates_used != fixed.replicates_used) {
    std::fprintf(stderr,
                 "FATAL: verify adaptive-vs-fixed: %s shape differs "
                 "(%d vs %d replicates)\n",
                 label, adaptive.replicates_used, fixed.replicates_used);
    std::exit(1);
  }
  CheckBitIdentical(adaptive.answer.bootstrap.point,
                    fixed.answer.bootstrap.point, label);
  CheckBitIdentical(adaptive.answer.bootstrap.lo, fixed.answer.bootstrap.lo,
                    label);
  CheckBitIdentical(adaptive.answer.bootstrap.hi, fixed.answer.bootstrap.hi,
                    label);
  CheckBitIdentical(adaptive.answer.bootstrap.median,
                    fixed.answer.bootstrap.median, label);
}

/// Adaptive-vs-fixed leg of the verify pass, end to end through the
/// service: a trivially-met epsilon must stop at the pilot and serve the
/// exact answer of a fixed-pilot-budget service; an unreachable epsilon
/// must escalate to the cap, come back precision_degraded, and serve the
/// exact answer of a fixed-cap-budget service.
void VerifyAdaptiveAgainstFixed(
    const std::shared_ptr<const IntegratedSample>& sample) {
  ServingOptions base =
      BenchOptions(/*workers=*/1, /*queries=*/8, /*cache=*/false, nullptr);
  QueryService adaptive_service(base);
  adaptive_service.RegisterSample("bench", sample);

  QueryService pilot_service(BenchOptions(
      1, 8, false, nullptr, /*full_replicates=*/base.adaptive_pilot_replicates));
  pilot_service.RegisterSample("bench", sample);
  const ServedResult at_pilot = adaptive_service.Execute(
      "bench", kSql, std::chrono::nanoseconds(0), /*want_interval=*/true,
      /*epsilon=*/std::numeric_limits<double>::max());
  if (at_pilot.precision_degraded ||
      at_pilot.replicates_used != base.adaptive_pilot_replicates) {
    std::fprintf(stderr,
                 "FATAL: verify adaptive pilot: expected early stop at %d "
                 "replicates, used %d\n",
                 base.adaptive_pilot_replicates, at_pilot.replicates_used);
    std::exit(1);
  }
  CheckSameServedInterval(at_pilot, pilot_service.Execute("bench", kSql),
                          "adaptive(pilot)-vs-fixed-pilot");

  QueryService cap_service(BenchOptions(
      1, 8, false, nullptr, /*full_replicates=*/base.adaptive_max_replicates));
  cap_service.RegisterSample("bench", sample);
  const ServedResult at_cap = adaptive_service.Execute(
      "bench", kSql, std::chrono::nanoseconds(0), /*want_interval=*/true,
      /*epsilon=*/1e-12);
  if (!at_cap.precision_degraded ||
      at_cap.replicates_used != base.adaptive_max_replicates) {
    std::fprintf(stderr,
                 "FATAL: verify adaptive cap: expected precision_degraded at "
                 "%d replicates, used %d\n",
                 base.adaptive_max_replicates, at_cap.replicates_used);
    std::exit(1);
  }
  CheckSameServedInterval(at_cap, cap_service.Execute("bench", kSql),
                          "adaptive(cap)-vs-fixed-cap");
  std::printf(
      "verify pass OK: adaptive budget == fixed budget end to end (pilot "
      "early-stop and escalation cap, bit-identical served intervals)\n");
}

}  // namespace
}  // namespace uuq

int main() {
  using namespace uuq;
  using bench::BenchRow;

  bench::PrintHeader(
      "Serving throughput/latency under open-loop concurrent load, cached "
      "vs uncached sample artifacts",
      "cached run faster at identical answers (verify pass pins "
      "bit-identity); p50 near single-query latency, p99 queue-dominated; "
      "faulted run slower but every failure typed");

  const Scenario scenario = scenarios::UsTechEmployment();
  auto sample = std::make_shared<IntegratedSample>();
  for (const Observation& obs : scenario.stream) sample->Add(obs);

  const char* verify_env = std::getenv("UUQ_BENCH_VERIFY");
  if (verify_env == nullptr || std::strcmp(verify_env, "0") != 0) {
    VerifyCachedAgainstUncached(sample);
    VerifyAdaptiveAgainstFixed(sample);
  } else {
    std::printf("verify pass SKIPPED (UUQ_BENCH_VERIFY=0)\n");
  }

  const int queries = bench::RepsFromEnv(1) * 64;
  // The acceptance scenario is a small serving box: two workers splitting
  // the engine budget. More workers only dilute the per-query slice.
  const int workers = 2;

  std::vector<BenchRow> rows;
  const auto report = [&](const char* cache_tag, const char* faults_tag,
                          const LoadResult& r, double speedup) {
    const double qps = r.completed / std::max(1e-9, r.wall_s);
    std::printf(
        "workers=%d queries=%d cache=%s faults=%s: %.1f corrected-queries/s, "
        "p50 %.2f ms, p99 %.2f ms (%d ok, %d typed failures)\n",
        workers, queries, cache_tag, faults_tag, qps, r.p50_ms, r.p99_ms,
        r.completed, r.failed);
    const std::string base = "pr=7,workers=" + std::to_string(workers) +
                             ",queries=" + std::to_string(queries) +
                             ",cache=" + cache_tag + ",faults=" + faults_tag;
    rows.push_back({"serving", base + ",metric=throughput", r.ns_per_query(),
                    speedup});
    rows.push_back({"serving", base + ",metric=p50", r.p50_ms * 1e6, 1.0});
    rows.push_back({"serving", base + ",metric=p99", r.p99_ms * 1e6, 1.0});
  };

  const LoadResult uncached =
      RunLoad(sample, workers, queries, /*cache=*/false, nullptr);
  report("off", "off", uncached, 1.0);

  const LoadResult cached =
      RunLoad(sample, workers, queries, /*cache=*/true, nullptr);
  const double cache_speedup =
      cached.ns_per_query() > 0.0 && uncached.ns_per_query() > 0.0
          ? uncached.ns_per_query() / cached.ns_per_query()
          : 1.0;
  report("on", "off", cached, cache_speedup);
  std::printf("artifact-cache speedup at %d workers: %.2fx\n", workers,
              cache_speedup);

  // ---- adaptive replicate budget at equal precision (pr=10) --------------
  // Derive the precision target from what the fixed B=48 budget actually
  // delivers on this sample, then serve the identical load both ways: the
  // adaptive run meets the same Monte Carlo precision target using only
  // the pilot block, so equal precision costs strictly fewer replicates. Artifact
  // caching is off for both runs so the only difference is replicate work
  // (the answer memo would otherwise short-circuit the fixed run's repeats).
  double easy_epsilon = 0.0;
  int adaptive_replicates = 0;
  {
    QueryService probe(
        BenchOptions(1, 8, /*cache=*/false, nullptr, /*full_replicates=*/48));
    probe.RegisterSample("bench", sample);
    const ServedResult fixed48 = probe.Execute("bench", kSql);
    if (!fixed48.status.ok() || !fixed48.answer.bootstrap_valid) {
      std::fprintf(stderr, "FATAL: could not probe the fixed-48 interval\n");
      return 1;
    }
    easy_epsilon = fixed48.answer.bootstrap.hi - fixed48.answer.bootstrap.lo;
    const ServedResult probe_adaptive =
        probe.Execute("bench", kSql, std::chrono::nanoseconds(0),
                      /*want_interval=*/true, easy_epsilon);
    adaptive_replicates = probe_adaptive.replicates_used;
    if (probe_adaptive.precision_degraded || adaptive_replicates >= 48) {
      std::fprintf(stderr,
                   "FATAL: adaptive budget did not beat the fixed B=48 spend "
                   "at equal precision (used %d replicates)\n",
                   adaptive_replicates);
      return 1;
    }
  }
  const LoadResult fixed48_load = RunLoad(sample, workers, queries,
                                          /*cache=*/false, nullptr,
                                          /*full_replicates=*/48);
  const LoadResult adaptive_load =
      RunLoad(sample, workers, queries, /*cache=*/false, nullptr,
              /*full_replicates=*/48, easy_epsilon);
  const double adaptive_speedup =
      adaptive_load.ns_per_query() > 0.0 && fixed48_load.ns_per_query() > 0.0
          ? fixed48_load.ns_per_query() / adaptive_load.ns_per_query()
          : 1.0;
  const std::string adaptive_base =
      "pr=10,workers=" + std::to_string(workers) +
      ",queries=" + std::to_string(queries) + ",cache=off,faults=off";
  rows.push_back({"serving", adaptive_base + ",mode=fixed,B=48,"
                                             "metric=throughput",
                  fixed48_load.ns_per_query(), 1.0});
  rows.push_back({"serving", adaptive_base + ",mode=adaptive,eps=width48,"
                                             "metric=throughput",
                  adaptive_load.ns_per_query(), adaptive_speedup});
  rows.push_back({"serving", adaptive_base + ",mode=adaptive,eps=width48,"
                                             "metric=replicates",
                  static_cast<double>(adaptive_replicates),
                  48.0 / static_cast<double>(adaptive_replicates)});
  std::printf(
      "adaptive-vs-fixed at equal precision (eps=%.1f): %.1f vs %.1f "
      "corrected-queries/s (%.2fx, %d vs 48 replicates)\n",
      easy_epsilon,
      adaptive_load.completed / std::max(1e-9, adaptive_load.wall_s),
      fixed48_load.completed / std::max(1e-9, fixed48_load.wall_s),
      adaptive_speedup, adaptive_replicates);
  if (adaptive_speedup < 1.3) {
    const char* msg = "adaptive equal-precision speedup below the 1.3x "
                      "acceptance target";
    if (std::getenv("UUQ_BENCH_ENFORCE") != nullptr) {
      std::fprintf(stderr, "FATAL: %s (%.2fx)\n", msg, adaptive_speedup);
      return 1;
    }
    std::printf("WARNING: %s (%.2fx, not enforced without "
                "UUQ_BENCH_ENFORCE)\n",
                msg, adaptive_speedup);
  }

  auto faults = FaultInjector::Parse(
      0xC4A05, "slow_replicate=0.05:2ms,queue_stall=0.1:1ms,source_load=0.02");
  if (!faults.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", faults.status().ToString().c_str());
    return 1;
  }
  report("on", "on",
         RunLoad(sample, workers, queries, /*cache=*/true, &faults.value()),
         1.0);

  if (!bench::AppendBenchJson(bench::BenchJsonPath(), rows)) return 1;
  std::printf("\nwrote %zu rows to %s\n", rows.size(),
              bench::BenchJsonPath().c_str());
  return 0;
}
