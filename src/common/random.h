// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in uuq (crowd simulation, Monte-Carlo
// estimation, synthetic populations) takes an explicit Rng so experiments are
// reproducible run-to-run and across platforms. The generator is
// xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit state and
// passes BigCrush; we deliberately avoid std::mt19937 + std::*_distribution
// because their outputs differ across standard libraries.
#ifndef UUQ_COMMON_RANDOM_H_
#define UUQ_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace uuq {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second draw).
  double NextGaussian();

  /// Exponential with rate `lambda` (> 0); mean 1/lambda.
  double NextExponential(double lambda);

  /// Bernoulli draw with probability p in [0, 1].
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for per-trial streams).
  Rng Split();

  /// Derives `count` child generators in order — the canonical way to give
  /// each parallel task (bootstrap replicate, Monte-Carlo grid point) its
  /// own pre-derived stream so results are bit-identical for any thread
  /// count. Stream i is always the i-th Split() of this generator.
  std::vector<Rng> SplitStreams(int count);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace uuq

#endif  // UUQ_COMMON_RANDOM_H_
