#include "common/cancel.h"

#include <limits>

namespace uuq {

Status CancelToken::ToStatus(const std::string& what) const {
  if (!Fired()) return Status::OK();
  if (reason() == StatusCode::kCancelled) {
    return Status::Cancelled(what + ": cancelled by caller");
  }
  return Status::DeadlineExceeded(what + ": deadline exceeded");
}

double CancelToken::SecondsRemaining() const {
  if (state_ == nullptr) return std::numeric_limits<double>::infinity();
  const int64_t deadline = state_->deadline_ns.load(std::memory_order_relaxed);
  if (deadline == internal::CancelShared::kNoDeadline) {
    return std::numeric_limits<double>::infinity();
  }
  if (state_->reason.load(std::memory_order_relaxed) != 0) return 0.0;
  const int64_t now = internal::CancelShared::NowNs();
  if (now >= deadline) return 0.0;
  return static_cast<double>(deadline - now) * 1e-9;
}

}  // namespace uuq
