#include "common/cancel.h"

#include <limits>

namespace uuq {

Status CancelToken::ToStatus(const std::string& what) const {
  if (!Fired()) return Status::OK();
  if (reason() == StatusCode::kCancelled) {
    return Status::Cancelled(what + ": cancelled by caller");
  }
  return Status::DeadlineExceeded(what + ": deadline exceeded");
}

double CancelToken::SecondsRemaining() const {
  if (state_ == nullptr || !state_->has_deadline) {
    return std::numeric_limits<double>::infinity();
  }
  if (state_->reason.load(std::memory_order_relaxed) != 0) return 0.0;
  const auto now = std::chrono::steady_clock::now();
  if (now >= state_->deadline) return 0.0;
  return std::chrono::duration<double>(state_->deadline - now).count();
}

}  // namespace uuq
