#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace uuq {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // All-zero state is the one invalid configuration for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  UUQ_CHECK(bound > 0);
  // Lemire's rejection method without division on the fast path.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    // Use the high bits via 128-bit multiply.
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<uint64_t>(m) >= threshold) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  UUQ_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextExponential(double lambda) {
  UUQ_CHECK(lambda > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split() {
  // A fresh generator seeded from this stream; streams are statistically
  // independent for xoshiro-family generators seeded via SplitMix64.
  return Rng(NextUint64());
}

std::vector<Rng> Rng::SplitStreams(int count) {
  std::vector<Rng> streams;
  streams.reserve(count > 0 ? static_cast<size_t>(count) : 0);
  for (int i = 0; i < count; ++i) streams.push_back(Split());
  return streams;
}

}  // namespace uuq
