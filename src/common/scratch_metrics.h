// Process-wide accounting and cooperative trimming of long-lived engine
// scratch (the replicate hot path's thread_local IndexScratch instances and
// per-thread SampleArena pools).
//
// Those scratches deliberately never shrink while a workload runs — that is
// what makes a warm replicate allocation-free. In a LONG-LIVED SERVER,
// though, the high-water sticks around forever: one query against a huge
// sample pins every worker's scratch at that sample's size even after the
// sample is replaced by a small one. Two hooks fix that without ever
// touching a scratch from a foreign thread:
//
//  * RESIDENT-BYTES GAUGE — each scratch reports its approximate resident
//    capacity (AddResidentBytes deltas); ResidentBytes() is the process
//    total, surfaced through QueryService::Stats for observability.
//  * TRIM EPOCH — RequestTrim() bumps a global epoch. Every scratch
//    remembers the epoch it last observed and, at its next use ON ITS
//    OWNING THREAD, releases its capacity before rebuilding (shrink-to-fit
//    of every pooled buffer). Trimming is therefore race-free by
//    construction, costs one relaxed atomic load per use when idle, and
//    converges as soon as each worker touches its scratch once. A trimmed
//    scratch rebuilds from empty — results are bit-identical (the scratch
//    contract already guarantees independence from prior contents), only
//    the warm-up allocations are paid again.
//
// The serving layer calls RequestTrim() when a registered sample is
// replaced by a meaningfully smaller one (query_service.cc).
#ifndef UUQ_COMMON_SCRATCH_METRICS_H_
#define UUQ_COMMON_SCRATCH_METRICS_H_

#include <cstdint>

namespace uuq {
namespace scratch {

/// Adjusts the process-wide resident-scratch gauge (negative on release).
void AddResidentBytes(int64_t delta);

/// Approximate bytes currently held by registered scratches, process-wide.
int64_t ResidentBytes();

/// Asks every registered scratch to release its capacity at next use.
void RequestTrim();

/// The current trim epoch (monotone; bumped by RequestTrim).
uint64_t TrimEpoch();

}  // namespace scratch
}  // namespace uuq

#endif  // UUQ_COMMON_SCRATCH_METRICS_H_
