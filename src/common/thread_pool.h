// Fixed-size thread pool with ParallelFor/ParallelMap helpers.
//
// The Monte-Carlo grid search, bootstrap replication, and dynamic bucket
// split scans are embarrassingly parallel: many independent evaluations whose
// results are written to disjoint slots. This pool serves exactly that shape:
//
//  * `num_threads` is the TOTAL parallelism, caller included — the pool
//    spawns num_threads−1 workers and the calling thread participates in
//    every ParallelFor, so ThreadPool(1) runs fully inline with no threads
//    (the debugging / determinism-check configuration).
//  * ParallelFor(b, e, fn) runs fn(i) for i in [b, e) with dynamic index
//    claiming, blocks until every claimed index finished, and rethrows the
//    first exception fn threw. Remaining indices are abandoned after an
//    exception (like a serial loop that threw).
//  * Nested ParallelFor on the SAME pool runs inline on the worker thread —
//    no deadlock, no oversubscription. Nested use across different pools is
//    allowed.
//  * Determinism contract: ParallelFor imposes no ordering, so callers that
//    need run-to-run stable results must give each index its own
//    pre-derived state (e.g. one Rng::Split() stream per index) and write
//    only to slot i. Every parallel call site in uuq follows this rule, so
//    results are bit-identical for ANY thread count, including 1.
//
// The process-wide default pool is sized by the UUQ_THREADS environment
// variable when set (UUQ_THREADS=1 forces serial execution everywhere), else
// by std::thread::hardware_concurrency().
//
// POOL SHARING ACROSS CONCURRENT QUERIES (the serving layer's scheme).
// Engines written against this pool assume they own ALL of it — a
// ParallelFor fans out to every worker plus the caller. When W serving
// workers each drive engines on the shared Default() pool, total live
// parallelism is W callers + (num_threads − 1) workers, i.e. the box is
// oversubscribed by almost a factor of two (and worse once W grows). The
// serving layer therefore multiplexes by BOUNDED PER-QUERY SLICES instead:
// it clamps its worker count to DefaultNumThreads() and gives each worker a
// PRIVATE slice pool, sizing the slices so they sum to exactly
// DefaultNumThreads() (each serving worker is its slice's caller-
// participant, so a slice of size k contributes exactly k live threads).
// Whatever the configured worker count, total live engine parallelism never
// exceeds DefaultNumThreads(). Slice sizing only changes scheduling, never
// results: every engine is bit-identical at any thread count.
//
// The occupancy gauge below (CurrentOccupancy / MaxOccupancy) instruments
// that invariant: it counts, process-wide, the threads currently executing
// ParallelFor work — pool workers and calling threads, inline calls
// included, nested calls counted once — so a test can drive concurrent load
// and assert the high-water mark stays within budget.
#ifndef UUQ_COMMON_THREAD_POOL_H_
#define UUQ_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace uuq {

class ThreadPool {
 public:
  /// Spawns num_threads−1 workers; values < 1 are clamped to 1 (inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of ParallelFor (workers + the calling thread).
  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [begin, end); returns when all have finished.
  /// The calling thread participates. Rethrows the first exception raised by
  /// fn; later indices are then skipped. Empty or inverted ranges no-op.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

  /// True when a ParallelFor over `n` items from the CURRENT thread would
  /// take the inline serial path (1-thread pool, single item, or a nested
  /// call from one of this pool's own workers). Hot paths check this first
  /// and run a raw loop instead, skipping even the std::function closure —
  /// the allocation-free guarantee of the replicate engine depends on it.
  bool WouldRunInline(int64_t n) const;

  /// Maps fn over [0, n) into a vector with out[i] = fn(i). The result type
  /// must be default-constructible and must not be bool: std::vector<bool>
  /// packs neighbouring elements into one byte, so concurrent slot writes
  /// would race. Map to int/char instead.
  template <typename Fn>
  auto ParallelMap(int64_t n, Fn&& fn) -> std::vector<decltype(fn(int64_t{}))> {
    static_assert(!std::is_same_v<decltype(fn(int64_t{})), bool>,
                  "ParallelMap<bool> would race on std::vector<bool>'s "
                  "bit-packed storage; return int instead");
    std::vector<decltype(fn(int64_t{}))> out(n > 0 ? static_cast<size_t>(n)
                                                   : 0);
    ParallelFor(0, n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); });
    return out;
  }

  /// The lazily-created process-wide pool, sized by DefaultNumThreads().
  /// Never destroyed (workers must outlive static teardown).
  static ThreadPool* Default();

  /// Resolves an optional per-call pool: `pool` when non-null, else Default().
  static ThreadPool* OrDefault(ThreadPool* pool) {
    return pool != nullptr ? pool : Default();
  }

  /// UUQ_THREADS when set to a positive integer, else hardware_concurrency
  /// (minimum 1). Read on every call so tests can vary the environment; the
  /// Default() pool samples it once at first use.
  static int DefaultNumThreads();

  /// Process-wide engine-occupancy gauge (see header comment): the number
  /// of threads currently executing ParallelFor work across ALL pools —
  /// callers and pool workers alike, the inline serial path included, each
  /// thread counted once however deeply its calls nest. Relaxed atomics:
  /// exact under quiescence, a faithful high-water under load.
  static int64_t CurrentOccupancy();
  /// High-water mark of CurrentOccupancy() since the last reset.
  static int64_t MaxOccupancy();
  static void ResetMaxOccupancy();

 private:
  struct ForState;

  void WorkerLoop();
  /// Claims and runs indices from `state` until none remain.
  static void Drain(ForState* state);

  const int num_threads_;
  /// Written only by the constructor and joined by the destructor; workers
  /// never touch it, so it needs no guard.
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_available_;
  std::deque<std::function<void()>> queue_ UUQ_GUARDED_BY(mu_);
  bool shutting_down_ UUQ_GUARDED_BY(mu_) = false;
};

}  // namespace uuq

#endif  // UUQ_COMMON_THREAD_POOL_H_
