#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace uuq {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  // Trim trailing zeros but keep at least one decimal digit.
  std::string s(buf);
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    s.erase(last + 1);
  }
  return s;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(s.begin(), width - s.size(), ' ');
  return s;
}

}  // namespace uuq
