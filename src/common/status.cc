#include "common/status.h"

namespace uuq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace uuq
