// Small string utilities used by the SQL parser, report writers and tests.
#ifndef UUQ_COMMON_STRINGS_H_
#define UUQ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace uuq {

/// Lower-cases ASCII characters only (sufficient for SQL keywords).
std::string AsciiToLower(std::string_view s);

/// Strips leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on a delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double compactly: integers without trailing ".0", otherwise up
/// to `precision` significant decimal digits.
std::string FormatDouble(double v, int precision = 6);

/// Right-pads or truncates to exactly `width` characters (for ASCII tables).
std::string PadRight(std::string s, size_t width);

/// Left-pads to at least `width` characters.
std::string PadLeft(std::string s, size_t width);

}  // namespace uuq

#endif  // UUQ_COMMON_STRINGS_H_
