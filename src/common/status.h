// Error handling for uuq.
//
// The library does not throw exceptions (Google C++ style). Fallible
// operations return Status, or Result<T> when they produce a value. Both are
// cheap value types; the error branch allocates only when a message is set.
#ifndef UUQ_COMMON_STATUS_H_
#define UUQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace uuq {

/// Error categories used across the library. The last four are the serving
/// layer's robustness vocabulary (src/serving): admission control sheds load
/// with kResourceExhausted, cooperative cancellation surfaces as kCancelled
/// or kDeadlineExceeded, and injected/real backend outages as kUnavailable.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kNumericError,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Default constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error, in the spirit of absl::StatusOr / std::expected.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites readable:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("x"); return 3; }
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    UUQ_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Aborts when holding an error; call ok()
  /// first, exactly like absl::StatusOr.
  const T& value() const& {
    UUQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    UUQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    UUQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace uuq

#endif  // UUQ_COMMON_STATUS_H_
