// Clang thread-safety-analysis annotations (no-ops on other compilers).
//
// These macros let -Wthread-safety prove, at COMPILE time, the locking
// contracts that the bit-identity suites can only check at run time: every
// UUQ_GUARDED_BY member access must happen with its mutex held, every
// UUQ_REQUIRES function must be entered with the lock, and an acquire
// without a matching release is a build error. The CI `clang-safety` lane
// compiles the whole tree with clang and -Werror=thread-safety, so an
// unguarded access to annotated state cannot merge (README, "Static
// analysis").
//
// The analysis only understands capabilities it can see attributes on, and
// libstdc++'s std::mutex carries none — which is why uuq code takes locks
// through the annotated wrappers in common/mutex.h, never raw std::mutex.
//
// Macro set and semantics (mirrors the standard clang/Abseil vocabulary,
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   UUQ_GUARDED_BY(mu)     data member readable/writable only with mu held
//   UUQ_PT_GUARDED_BY(mu)  pointer member whose POINTEE is guarded by mu
//   UUQ_REQUIRES(mu)       function must be called with mu already held
//   UUQ_ACQUIRE(...)       function acquires the capability (not held on
//                          entry, held on return)
//   UUQ_RELEASE(...)       function releases the capability
//   UUQ_EXCLUDES(mu)       function must NOT be called with mu held
//                          (deadlock guard for self-locking public APIs)
//   UUQ_CAPABILITY(name)   class is a capability (the mutex wrapper itself)
//   UUQ_SCOPED_CAPABILITY  RAII class that acquires in its constructor and
//                          releases in its destructor
//   UUQ_ACQUIRED_BEFORE / UUQ_ACQUIRED_AFTER
//                          documented lock-ordering edges
//   UUQ_RETURN_CAPABILITY(mu)
//                          accessor returning a reference to the capability
//   UUQ_NO_THREAD_SAFETY_ANALYSIS
//                          opt-out for a function whose safety argument the
//                          analysis cannot express; every use must carry a
//                          comment justifying WHY it is safe
#ifndef UUQ_COMMON_THREAD_ANNOTATIONS_H_
#define UUQ_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define UUQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define UUQ_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

#define UUQ_CAPABILITY(name) UUQ_THREAD_ANNOTATION_(capability(name))
#define UUQ_SCOPED_CAPABILITY UUQ_THREAD_ANNOTATION_(scoped_lockable)
#define UUQ_GUARDED_BY(x) UUQ_THREAD_ANNOTATION_(guarded_by(x))
#define UUQ_PT_GUARDED_BY(x) UUQ_THREAD_ANNOTATION_(pt_guarded_by(x))
#define UUQ_REQUIRES(...) \
  UUQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define UUQ_ACQUIRE(...) \
  UUQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define UUQ_RELEASE(...) \
  UUQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define UUQ_TRY_ACQUIRE(...) \
  UUQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define UUQ_EXCLUDES(...) UUQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define UUQ_ACQUIRED_BEFORE(...) \
  UUQ_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define UUQ_ACQUIRED_AFTER(...) \
  UUQ_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define UUQ_RETURN_CAPABILITY(x) UUQ_THREAD_ANNOTATION_(lock_returned(x))
#define UUQ_NO_THREAD_SAFETY_ANALYSIS \
  UUQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // UUQ_COMMON_THREAD_ANNOTATIONS_H_
