// Lightweight assertion and utility macros shared by every uuq module.
//
// UUQ_CHECK is an always-on invariant check (it survives release builds):
// estimator math silently producing NaN/garbage is far more expensive to
// debug than the cost of a predictable branch. UUQ_DCHECK compiles away in
// release builds and is used on hot per-observation paths.
#ifndef UUQ_COMMON_MACROS_H_
#define UUQ_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define UUQ_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "UUQ_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define UUQ_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "UUQ_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define UUQ_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define UUQ_DCHECK(cond) UUQ_CHECK(cond)
#endif

// Marks intentionally unused parameters (e.g. interface defaults).
#define UUQ_UNUSED(x) (void)(x)

// No-alias hint for hot columnar loops (the bootstrap replicate builder
// indexes several dense arrays that provably never overlap).
#if defined(__GNUC__) || defined(__clang__)
#define UUQ_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define UUQ_RESTRICT __restrict
#else
#define UUQ_RESTRICT
#endif

// Multi-versions a division-bound lane kernel for wider vector units with
// runtime dispatch (the batched split-scan kernels: 4-wide vdivpd roughly
// doubles division throughput over baseline SSE2, and the avx512f clone
// runs 8-wide on machines that have it — the large-B adaptive-budget
// escalation path is where the extra width pays). Every clone executes the
// identical IEEE operations per lane, so results never depend on which
// clone the resolver picks; the kernel files are compiled with
// -ffp-contract=off so the FMA-capable clones cannot contract a*b+c into
// a differently-rounded fused op that the default clone lacks (see
// CMakeLists.txt). No-op where the toolchain/arch lacks target_clones +
// ifunc support, and under ThreadSanitizer: target_clones dispatches
// through an IRELATIVE ifunc resolver that the dynamic linker runs before
// the TSan runtime has initialized, which segfaults any binary linking a
// cloned kernel before main. Dropping the clones under TSan costs only
// vector division throughput — every clone is bit-identical.
#if defined(__SANITIZE_THREAD__)
#define UUQ_VECTOR_CLONES
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define UUQ_VECTOR_CLONES
#endif
#endif
#if !defined(UUQ_VECTOR_CLONES)
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define UUQ_VECTOR_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define UUQ_VECTOR_CLONES
#endif
#endif

#endif  // UUQ_COMMON_MACROS_H_
