#include "common/scratch_metrics.h"

#include <atomic>

namespace uuq {
namespace scratch {
namespace {

// Relaxed-contract gauges (header): the byte gauge is observability only,
// and the trim epoch is a monotone "please trim at next use" hint each
// scratch compares against ON ITS OWNING THREAD — neither orders any other
// memory, so no site below may need more than std::memory_order_relaxed.
std::atomic<int64_t> g_resident_bytes{0};
std::atomic<uint64_t> g_trim_epoch{0};

}  // namespace

void AddResidentBytes(int64_t delta) {
  g_resident_bytes.fetch_add(delta, std::memory_order_relaxed);
}

int64_t ResidentBytes() {
  return g_resident_bytes.load(std::memory_order_relaxed);
}

void RequestTrim() { g_trim_epoch.fetch_add(1, std::memory_order_relaxed); }

uint64_t TrimEpoch() { return g_trim_epoch.load(std::memory_order_relaxed); }

}  // namespace scratch
}  // namespace uuq
