// Annotated mutex / condition-variable wrappers for clang -Wthread-safety.
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so clang's analysis cannot see them acquire anything — every
// UUQ_GUARDED_BY member would warn on every access. These thin wrappers add
// exactly the attributes the analysis needs and nothing else: Mutex is a
// std::mutex declared as a capability, MutexLock is a scoped acquisition,
// and CondVar waits through a MutexLock. Zero-overhead — every method is a
// one-line inline forwarder.
//
// Condition-variable idiom: std::condition_variable's predicate overload
// takes a lambda, and the analysis checks lambda bodies as separate
// functions — guarded reads inside the predicate would warn even though the
// lock IS held there. uuq therefore writes wait loops manually, in the
// scope where the analysis can see the capability:
//
//   MutexLock lock(&mu_);
//   while (!done_) cv_.Wait(lock);   // guarded read of done_: lock held
//
// CondVar::Wait releases and reacquires the mutex internally, but from the
// caller's static view the capability is held before and after — the same
// convention Abseil's annotated CondVar uses.
#ifndef UUQ_COMMON_MUTEX_H_
#define UUQ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace uuq {

/// std::mutex as a clang thread-safety capability. Lock/Unlock are for the
/// rare hand-over-hand pattern; prefer scoped MutexLock.
class UUQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UUQ_ACQUIRE() { mu_.lock(); }
  void Unlock() UUQ_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped acquisition of a Mutex (RAII; also the handle CondVar waits on).
class UUQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) UUQ_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() UUQ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock (header comment for the manual
/// wait-loop idiom the thread-safety analysis requires).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; the mutex is reacquired
  /// before returning (spurious wakeups possible — always wait in a loop).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace uuq

#endif  // UUQ_COMMON_MUTEX_H_
