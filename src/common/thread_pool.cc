#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/macros.h"

namespace uuq {
namespace {

// The pool whose worker loop the current thread belongs to, if any. Used to
// run nested ParallelFor calls on the same pool inline instead of
// deadlocking on the pool's own (busy) workers.
// thread_local: per-thread pool identity by definition — each worker thread
// marks itself; a shared variable could not distinguish callers.
thread_local const ThreadPool* current_pool = nullptr;

// Engine-occupancy gauge (thread_pool.h): how many threads are currently
// executing ParallelFor work, and the high-water since the last reset.
// `occupancy_depth` keeps nested participation (a worker task running a
// nested inline ParallelFor) from double-counting its thread.
std::atomic<int64_t> g_occupancy{0};
std::atomic<int64_t> g_max_occupancy{0};
// thread_local: nesting depth is a property of the current thread's call
// stack; it is read/written only by that thread (no atomicity needed).
thread_local int occupancy_depth = 0;

// RAII participation marker around every stretch of ParallelFor execution
// (a Drain() participant or an inline serial loop).
struct OccupancyScope {
  OccupancyScope() {
    if (occupancy_depth++ != 0) return;
    const int64_t now = g_occupancy.fetch_add(1, std::memory_order_relaxed) + 1;
    int64_t max = g_max_occupancy.load(std::memory_order_relaxed);
    while (now > max && !g_max_occupancy.compare_exchange_weak(
                            max, now, std::memory_order_relaxed)) {
    }
  }
  ~OccupancyScope() {
    if (--occupancy_depth == 0) {
      g_occupancy.fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace

// Shared between the caller and its helper tasks. Helper tasks hold a
// shared_ptr so a helper scheduled behind other work can still run (and
// immediately find the range exhausted) after the caller has returned.
//
// Completion protocol: a participant registers in `active` (under mu) BEFORE
// claiming its first index, so once the caller has drained the range itself
// (next >= end, permanently — next is monotone), `active == 0` under mu
// implies every claimed fn(i) has finished and recorded any exception. A
// helper that dequeues late just registers, finds the range empty, and
// unregisters.
struct ThreadPool::ForState {
  int64_t end = 0;
  std::function<void(int64_t)> fn;

  // Next unclaimed index. All operations are relaxed: the claim only needs
  // RMW atomicity (each index handed to exactly one participant) — the
  // RESULTS of fn(i) are published to the caller through `mu` below (the
  // participant's `--active` under the lock happens-before the caller's
  // `active == 0` observation), never through this counter.
  std::atomic<int64_t> next{0};

  Mutex mu;
  CondVar all_done;
  int active UUQ_GUARDED_BY(mu) = 0;  // participants currently inside Drain
  std::exception_ptr first_exception UUQ_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Drain(ForState* state) {
  {
    MutexLock lock(&state->mu);
    ++state->active;
  }
  const OccupancyScope occupancy;
  std::exception_ptr exception;
  for (;;) {
    // Relaxed claim: uniqueness comes from RMW atomicity; result publication
    // comes from state->mu at the bottom (ForState comment).
    const int64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->end) break;
    try {
      state->fn(i);
    } catch (...) {
      if (!exception) exception = std::current_exception();
      // Abandon the remaining range, as a serial loop would. Storing exactly
      // `end` keeps every later claim >= end even if next had overshot.
      // Relaxed: only stops FUTURE claims — a concurrently-claimed index may
      // still run, exactly as it may under any ordering.
      state->next.store(state->end, std::memory_order_relaxed);
    }
  }
  {
    MutexLock lock(&state->mu);
    if (exception && !state->first_exception) {
      state->first_exception = exception;
    }
    --state->active;
  }
  state->all_done.NotifyAll();
}

bool ThreadPool::WouldRunInline(int64_t n) const {
  return num_threads_ == 1 || n <= 1 || current_pool == this;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;

  // Serial paths: a 1-thread pool, a single item, or a nested call from one
  // of this pool's own workers (whose siblings may all be blocked in the
  // outer ParallelFor — queueing would deadlock).
  if (WouldRunInline(n)) {
    const OccupancyScope occupancy;
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->end = end;
  state->fn = fn;
  state->next.store(begin, std::memory_order_relaxed);

  const int helpers =
      static_cast<int>(std::min<int64_t>(num_threads_ - 1, n - 1));
  {
    MutexLock lock(&mu_);
    UUQ_CHECK_MSG(!shutting_down_, "ParallelFor on a destroyed ThreadPool");
    for (int i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] { Drain(state.get()); });
    }
  }
  work_available_.NotifyAll();

  Drain(state.get());

  // All indices are claimed once the caller's Drain returns (it only exits
  // when next >= end); wait for those still running on registered helpers.
  MutexLock lock(&state->mu);
  while (state->active != 0) state->all_done.Wait(lock);
  if (state->first_exception) std::rethrow_exception(state->first_exception);
}

int ThreadPool::DefaultNumThreads() {
  const char* env = std::getenv("UUQ_THREADS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return pool;
}

int64_t ThreadPool::CurrentOccupancy() {
  return g_occupancy.load(std::memory_order_relaxed);
}

int64_t ThreadPool::MaxOccupancy() {
  return g_max_occupancy.load(std::memory_order_relaxed);
}

void ThreadPool::ResetMaxOccupancy() {
  g_max_occupancy.store(g_occupancy.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

}  // namespace uuq
