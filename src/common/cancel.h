// Cooperative cancellation and deadlines.
//
// The serving layer (src/serving) runs queries with a wall-clock budget and
// lets callers abandon them; the long-running engines — the bootstrap
// replicate loop, the Monte-Carlo (θN, θλ) grid, the dynamic bucket split
// scan — must therefore be interruptible WITHOUT ever abandoning ThreadPool
// tasks mid-flight (a task killed while it holds thread_local scratch or a
// result-slot pointer would leave the pool poisoned for the next query).
//
// The model is purely cooperative:
//
//  * A `CancelSource` owns the shared cancellation state: an optional
//    steady-clock deadline plus an explicit cancel flag.
//  * A `CancelToken` is a cheap copyable view of that state. Engines poll
//    `token.Fired()` at natural task boundaries (one bootstrap replicate,
//    one MC grid point, one split-scan bucket) and, when it fires, finish
//    the current unit normally, skip the remaining ones, and return through
//    the ordinary join path. ParallelFor still waits for every claimed
//    index, so by the time a cancelled engine call returns, NO task of that
//    call is running anywhere — scratch reuse stays safe by construction.
//  * A default-constructed token is inert (never fires, costs one null
//    check) — the offline single-query path pays nothing and computes
//    bit-identical results, token or no token.
//
// Deadline expiry LATCHES: the first poll past the deadline promotes the
// state to kDeadlineExceeded, and every later poll is a single relaxed
// atomic load (no clock read). Explicit cancellation wins over a
// concurrently-expiring deadline only if its store lands first; either way
// the state never reverts and every observer agrees on the final reason.
#ifndef UUQ_COMMON_CANCEL_H_
#define UUQ_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/status.h"

namespace uuq {

namespace internal {
struct CancelShared {
  /// Sentinel for "no deadline armed".
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  // 0 = live, else the terminal StatusCode (kCancelled / kDeadlineExceeded).
  // Relaxed everywhere: the latch is monotone (0 → terminal, via CAS whose
  // RMW atomicity alone guarantees exactly one winner), it carries no
  // payload other threads must observe, and engines only use it to SKIP
  // work — so no acquire/release edge is load-bearing. Every observer
  // agrees on the final reason because the CAS can only succeed once.
  std::atomic<int> reason{0};

  /// Deadline as steady_clock nanoseconds-since-epoch (kNoDeadline when
  /// unarmed). Atomic so SetDeadline can race with Fired()/
  /// SecondsRemaining() pollers on other threads without a data race — the
  /// pre-annotation layout (a plain bool + time_point pair) relied on a
  /// documented arm-before-poll convention that nothing enforced. Relaxed:
  /// a poller sees either kNoDeadline or one complete armed value (no
  /// tearing), and the terminal reason is still decided solely by the
  /// `reason` CAS.
  std::atomic<int64_t> deadline_ns{kNoDeadline};

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};
}  // namespace internal

/// Cheap copyable view of a CancelSource's state; see header comment.
class CancelToken {
 public:
  /// Inert token: Fired() is always false, reason() is kOk.
  CancelToken() = default;

  /// Polls the state: true once the source was cancelled or its deadline
  /// passed. The deadline check latches (at most one clock read per token
  /// family after expiry; thereafter a relaxed load).
  bool Fired() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) != 0) return true;
    const int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline != internal::CancelShared::kNoDeadline &&
        internal::CancelShared::NowNs() >= deadline) {
      // Racing an explicit RequestCancel: whichever CAS lands first decides
      // the terminal reason; the loser's store is dropped, so the state
      // never reverts and every observer agrees (CancelShared comment).
      int expected = 0;
      state_->reason.compare_exchange_strong(
          expected, static_cast<int>(StatusCode::kDeadlineExceeded),
          std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Terminal reason; kOk while live (does NOT poll the clock — call
  /// Fired() first when deadline latching matters).
  StatusCode reason() const {
    if (state_ == nullptr) return StatusCode::kOk;
    return static_cast<StatusCode>(
        state_->reason.load(std::memory_order_relaxed));
  }

  /// The fired token as a typed Status: Cancelled/DeadlineExceeded with
  /// `what` as context, or OK when live. Polls (latches a passed deadline).
  Status ToStatus(const std::string& what) const;

  /// Remaining wall-clock budget; infinity for no deadline, never negative.
  double SecondsRemaining() const;

  /// False for the inert default-constructed token (can never fire). Lets
  /// plumbing layers skip overriding an engine's own token with an inert
  /// one.
  bool can_fire() const { return state_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<internal::CancelShared> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::CancelShared> state_;
};

/// Owner side: create one per query, hand token() to the engines.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelShared>()) {}

  /// Sets/overwrites the deadline. Safe to call while tokens are being
  /// polled from other threads (the deadline is a single atomic — a
  /// concurrent poller sees either the old value or the new one, never a
  /// torn mix); the serving layer arms it at admission, before the query
  /// runs.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  /// Explicit cancellation (idempotent; loses against an already-latched
  /// deadline, which is the honest reason the engines saw).
  void RequestCancel() {
    int expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(StatusCode::kCancelled),
        std::memory_order_relaxed);
  }

  CancelToken token() const { return CancelToken(state_); }
  bool Fired() const { return token().Fired(); }

 private:
  std::shared_ptr<internal::CancelShared> state_;
};

}  // namespace uuq

#endif  // UUQ_COMMON_CANCEL_H_
