// Cooperative cancellation and deadlines.
//
// The serving layer (src/serving) runs queries with a wall-clock budget and
// lets callers abandon them; the long-running engines — the bootstrap
// replicate loop, the Monte-Carlo (θN, θλ) grid, the dynamic bucket split
// scan — must therefore be interruptible WITHOUT ever abandoning ThreadPool
// tasks mid-flight (a task killed while it holds thread_local scratch or a
// result-slot pointer would leave the pool poisoned for the next query).
//
// The model is purely cooperative:
//
//  * A `CancelSource` owns the shared cancellation state: an optional
//    steady-clock deadline plus an explicit cancel flag.
//  * A `CancelToken` is a cheap copyable view of that state. Engines poll
//    `token.Fired()` at natural task boundaries (one bootstrap replicate,
//    one MC grid point, one split-scan bucket) and, when it fires, finish
//    the current unit normally, skip the remaining ones, and return through
//    the ordinary join path. ParallelFor still waits for every claimed
//    index, so by the time a cancelled engine call returns, NO task of that
//    call is running anywhere — scratch reuse stays safe by construction.
//  * A default-constructed token is inert (never fires, costs one null
//    check) — the offline single-query path pays nothing and computes
//    bit-identical results, token or no token.
//
// Deadline expiry LATCHES: the first poll past the deadline promotes the
// state to kDeadlineExceeded, and every later poll is a single relaxed
// atomic load (no clock read). Explicit cancellation wins over a
// concurrently-expiring deadline only if its store lands first; either way
// the state never reverts and every observer agrees on the final reason.
#ifndef UUQ_COMMON_CANCEL_H_
#define UUQ_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace uuq {

namespace internal {
struct CancelShared {
  // 0 = live, else the terminal StatusCode (kCancelled / kDeadlineExceeded).
  std::atomic<int> reason{0};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};
}  // namespace internal

/// Cheap copyable view of a CancelSource's state; see header comment.
class CancelToken {
 public:
  /// Inert token: Fired() is always false, reason() is kOk.
  CancelToken() = default;

  /// Polls the state: true once the source was cancelled or its deadline
  /// passed. The deadline check latches (at most one clock read per token
  /// family after expiry; thereafter a relaxed load).
  bool Fired() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) != 0) return true;
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      int expected = 0;
      state_->reason.compare_exchange_strong(
          expected, static_cast<int>(StatusCode::kDeadlineExceeded),
          std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Terminal reason; kOk while live (does NOT poll the clock — call
  /// Fired() first when deadline latching matters).
  StatusCode reason() const {
    if (state_ == nullptr) return StatusCode::kOk;
    return static_cast<StatusCode>(
        state_->reason.load(std::memory_order_relaxed));
  }

  /// The fired token as a typed Status: Cancelled/DeadlineExceeded with
  /// `what` as context, or OK when live. Polls (latches a passed deadline).
  Status ToStatus(const std::string& what) const;

  /// Remaining wall-clock budget; infinity for no deadline, never negative.
  double SecondsRemaining() const;

  /// False for the inert default-constructed token (can never fire). Lets
  /// plumbing layers skip overriding an engine's own token with an inert
  /// one.
  bool can_fire() const { return state_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<internal::CancelShared> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::CancelShared> state_;
};

/// Owner side: create one per query, hand token() to the engines.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelShared>()) {}

  /// Sets/overwrites the deadline. Must be called before tokens are polled
  /// from other threads (the serving layer arms it at admission, before the
  /// query runs).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->has_deadline = true;
    state_->deadline = deadline;
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  /// Explicit cancellation (idempotent; loses against an already-latched
  /// deadline, which is the honest reason the engines saw).
  void RequestCancel() {
    int expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(StatusCode::kCancelled),
        std::memory_order_relaxed);
  }

  CancelToken token() const { return CancelToken(state_); }
  bool Fired() const { return token().Fired(); }

 private:
  std::shared_ptr<internal::CancelShared> state_;
};

}  // namespace uuq

#endif  // UUQ_COMMON_CANCEL_H_
