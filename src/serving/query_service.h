// Deadline-aware concurrent query serving over the correction engine.
//
// QueryService is the robustness front end ROADMAP item 1 asks for: it
// wraps the offline path (sql_parser → predicate pushdown → aggregate →
// QueryCorrector) with the three behaviours a production deployment needs
// when queries arrive faster than B bootstrap replicates can run:
//
//  * ADMISSION CONTROL — a bounded request queue. Submit() on a full queue
//    sheds the request immediately with kResourceExhausted instead of
//    letting latency grow without bound; nothing is ever silently dropped
//    after admission.
//
//  * COOPERATIVE CANCELLATION — every admitted query carries a CancelSource
//    armed with its deadline (common/cancel.h). The token is threaded into
//    the bootstrap loop (per replicate), the MC grid (per point), and the
//    dynamic split scan (per bucket), so an expired or cancelled query
//    aborts within roughly one replicate's latency — and because every
//    engine still joins its ParallelFor, no pool task ever outlives the
//    query or touches freed scratch.
//
//  * GRACEFUL DEGRADATION — the interval work is the expensive, optional
//    part, so it steps down a documented ladder chosen from the budget
//    REMAINING AT DEQUEUE (queueing time already spent):
//      level 0 (kNone)              remaining ≥ full_interval_budget →
//                                   full_replicates bootstrap interval;
//                                   bit-identical to the offline corrector
//                                   run with the same options
//      level 1 (kReducedReplicates) remaining ≥ reduced_interval_budget →
//                                   reduced_replicates interval, marked
//                                   degraded
//      level 2 (kPointOnly)         point estimate only, no interval
//    A deadline that expires INSIDE a level-0/1 interval degrades the
//    result to point-only on the fly (the point estimate is already exact);
//    one that expires during the point estimate itself fails the query with
//    kDeadlineExceeded. Caller cancellation surfaces as kCancelled.
//
// Failure semantics are typed, never exceptional: kResourceExhausted (shed
// or injected allocation failure), kDeadlineExceeded, kCancelled,
// kUnavailable (injected source-load outage), kNotFound (unknown sample),
// kInvalidArgument (malformed precision target at Submit), plus the
// parser's own error codes. No request field can reach a process-aborting
// CHECK: request-supplied values are validated at admission. The
// deterministic FaultInjector (fault_injector.h) drives the chaos tests
// that pin this contract.
#ifndef UUQ_SERVING_QUERY_SERVICE_H_
#define UUQ_SERVING_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/query_correction.h"
#include "serving/fault_injector.h"
#include "serving/sample_cache.h"

namespace uuq {

/// How far down the ladder a served result stepped (header comment).
enum class DegradeLevel : int {
  kNone = 0,               ///< full-replicate interval (or none requested)
  kReducedReplicates = 1,  ///< interval over reduced_replicates
  kPointOnly = 2,          ///< point estimate only, interval dropped
};

const char* DegradeLevelName(DegradeLevel level);

struct ServingOptions {
  /// Serving worker threads (each runs one query at a time). The service
  /// CLAMPS this to `engine_threads`: each worker drives its engines on a
  /// PRIVATE ThreadPool slice and the slices sum to exactly engine_threads
  /// (thread_pool.h, POOL SHARING), so total live engine parallelism never
  /// exceeds the engine budget no matter how many workers are configured —
  /// a worker beyond that count could never hold a hardware thread anyway,
  /// it would only oversubscribe the box and inflate p99.
  int workers = 2;
  /// Total engine parallelism budget shared by all workers; 0 means
  /// ThreadPool::DefaultNumThreads() (the UUQ_THREADS contract). Slice
  /// sizing is pure scheduling — every engine is bit-identical at any
  /// thread count — so this knob never changes results.
  int engine_threads = 0;
  /// Build + reuse per-registered-sample artifacts (sample_cache.h): the
  /// flattened SampleView, sorted entity index, whole-sample stats, and
  /// advisor verdict are computed once at RegisterSample and shared by
  /// every query on that sample. Cached results are bit-identical to the
  /// uncached path. The UUQ_SERVE_CACHE=0 environment escape hatch
  /// overrides this to off at service construction.
  bool cache_artifacts = true;
  /// Admitted-but-not-finished requests beyond which Submit() sheds.
  int max_queue = 64;
  /// Deadline budget for requests that do not bring their own.
  std::chrono::nanoseconds default_deadline = std::chrono::milliseconds(1000);
  /// Degradation ladder thresholds on the budget remaining at dequeue.
  std::chrono::nanoseconds full_interval_budget =
      std::chrono::milliseconds(250);
  std::chrono::nanoseconds reduced_interval_budget =
      std::chrono::milliseconds(50);
  int full_replicates = 48;
  int reduced_replicates = 12;
  /// Pilot-then-refine replicate budgeting (core/adaptive_budget.h) for
  /// queries that carry a precision target (Submit's `epsilon`). A targeted
  /// query at level 0 runs a pilot of `adaptive_pilot_replicates`, then
  /// escalates in blocks of `adaptive_escalation_block` until the
  /// replicate-mean Monte Carlo half-width z·s/√B meets ±epsilon or
  /// `adaptive_max_replicates` trips (reported as
  /// ServedResult::precision_degraded). Epsilon bounds the replicate
  /// budget's own Monte Carlo noise — the resolution at which B replicates
  /// pin down the corrected answer — not the reported percentile
  /// interval's width, which reflects the data's sampling variability and
  /// does not shrink with B (adaptive_budget.h, WHAT ε BOUNDS). The final
  /// answer is bit-identical
  /// to a fixed-budget run at the settled replicate count; queries without a
  /// target — and queries already degraded below level 0, whose budget is
  /// the ladder's business — never enter this path.
  int adaptive_pilot_replicates = 16;
  int adaptive_escalation_block = 16;
  int adaptive_max_replicates = 192;
  /// Base corrector configuration. Per query the service overrides only:
  /// `cancel` (the query's token), `attach_bootstrap` and
  /// `bootstrap.replicates` (the ladder), and `bootstrap.replicate_probe`
  /// (fault injection) — everything else, including every seed, is shared
  /// with the offline path, which is what makes level-0 results
  /// bit-identical to it.
  QueryCorrector::Options correction;
  /// nullptr → the process-wide FaultInjector::FromEnv() (inert unless the
  /// UUQ_FAULT_* env knobs are set).
  FaultInjector* faults = nullptr;
};

struct ServedResult {
  Status status;            ///< kOk when `answer` is valid
  CorrectedAnswer answer;   ///< meaningful only when status.ok()
  DegradeLevel degraded = DegradeLevel::kNone;
  int replicates_used = 0;  ///< bootstrap replicates behind the interval
  /// True when the query carried a precision target (epsilon) that the
  /// adaptive budget could not meet before its replicate cap or deadline —
  /// the interval is still valid, just resolved from fewer replicates (a
  /// noisier Monte Carlo estimate) than the target asked for. Distinct
  /// from `degraded`, which tracks the deadline ladder.
  bool precision_degraded = false;
  double queue_ms = 0.0;    ///< admission → dequeue
  double run_ms = 0.0;      ///< dequeue → completion
  uint64_t query_id = 0;
};

class QueryService {
 public:
  explicit QueryService(ServingOptions options);
  ~QueryService();  // Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers (or replaces) a named sample; queries reference it by name.
  /// With the artifact cache on, the sample's artifacts are built HERE
  /// (once), and replacement atomically evicts the old entry: queries
  /// already in flight keep the snapshot they pinned at admission (and
  /// finish bit-identical on it), new admissions see only the new sample.
  /// Replacing a sample with a meaningfully smaller one also requests a
  /// cooperative engine-scratch trim (common/scratch_metrics.h), so a
  /// long-lived server does not pin the largest-ever sample's scratch
  /// high-water forever.
  void RegisterSample(const std::string& name,
                      std::shared_ptr<const IntegratedSample> sample)
      UUQ_EXCLUDES(mu_);

  /// Handle to one admitted query.
  class Ticket {
   public:
    Ticket() = default;
    /// Blocks until the query finishes (idempotent). On a
    /// default-constructed Ticket (no query behind it) this returns a
    /// ServedResult with kFailedPrecondition instead of crashing.
    ServedResult Wait();
    /// Requests cooperative cancellation (kCancelled unless already done).
    /// No-op on a default-constructed Ticket.
    void Cancel();
    uint64_t id() const;

   private:
    friend class QueryService;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Admission: sheds with kResourceExhausted when the queue is full,
  /// kNotFound for an unregistered sample, kFailedPrecondition after
  /// Shutdown. `deadline_budget` <= 0 uses options.default_deadline; the
  /// deadline clock starts NOW (queueing time counts against it).
  /// `want_interval` false pins the query to the point-only level without
  /// marking it degraded. `epsilon` > 0 requests an adaptive replicate
  /// budget that stops once the replicate-mean Monte Carlo half-width
  /// meets ±epsilon at `confidence` (<= 0 uses the bootstrap confidence) —
  /// see ServingOptions::adaptive_pilot_replicates. Malformed targets
  /// (negative or non-finite epsilon, confidence >= 1 or NaN) are rejected
  /// HERE with kInvalidArgument: request fields are validated at admission
  /// so they can never reach an engine CHECK and abort the process.
  Result<Ticket> Submit(const std::string& sample_name, const std::string& sql,
                        std::chrono::nanoseconds deadline_budget =
                            std::chrono::nanoseconds(0),
                        bool want_interval = true, double epsilon = 0.0,
                        double confidence = 0.0) UUQ_EXCLUDES(mu_);

  /// Submit + Wait. Admission failures come back in ServedResult::status.
  ServedResult Execute(const std::string& sample_name, const std::string& sql,
                       std::chrono::nanoseconds deadline_budget =
                           std::chrono::nanoseconds(0),
                       bool want_interval = true, double epsilon = 0.0,
                       double confidence = 0.0);

  /// Monotonic counters since construction (plus two point-in-time gauges).
  struct Stats {
    int64_t admitted = 0;
    int64_t shed = 0;        ///< rejected at Submit (queue full)
    int64_t completed = 0;   ///< finished with kOk
    int64_t degraded = 0;    ///< finished kOk below level 0
    int64_t failed = 0;      ///< finished with any non-OK status
    /// Gauge: approximate bytes currently held by engine scratch
    /// process-wide (thread_local IndexScratch + SampleArena pools; see
    /// common/scratch_metrics.h). Falls after a smaller-sample replacement
    /// once the workers' next queries trigger the cooperative trim.
    int64_t resident_scratch_bytes = 0;
    /// Gauge: entries currently in the sample-artifact cache (0 when the
    /// cache is disabled).
    int64_t cached_samples = 0;
  };
  Stats stats() const UUQ_EXCLUDES(mu_);

  /// True when the artifact cache is active (options + UUQ_SERVE_CACHE).
  bool cache_enabled() const { return cache_ != nullptr; }

  /// Drains: pending queries finish with kCancelled, workers join.
  /// Idempotent; Submit afterwards returns kFailedPrecondition. The FIRST
  /// caller joins the workers; a concurrent second caller returns without
  /// waiting for the drain (the destructor's call is the definitive join).
  void Shutdown() UUQ_EXCLUDES(mu_);

 private:
  void WorkerLoop(ThreadPool* slice);
  ServedResult RunQuery(const std::shared_ptr<Ticket::State>& state,
                        ThreadPool* slice);
  static void Finish(const std::shared_ptr<Ticket::State>& state,
                     ServedResult result);

  const ServingOptions options_;
  FaultInjector* faults_;  // never null after construction
  /// Non-null when artifact caching is active. Owned; entries are shared
  /// snapshots pinned by in-flight queries (sample_cache.h). The pointer is
  /// set once in the constructor and never changes; SampleCache locks
  /// itself.
  std::unique_ptr<SampleCache> cache_;

  mutable Mutex mu_;
  CondVar work_available_;
  std::deque<std::shared_ptr<Ticket::State>> queue_ UUQ_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<const IntegratedSample>> samples_
      UUQ_GUARDED_BY(mu_);
  bool shutting_down_ UUQ_GUARDED_BY(mu_) = false;
  /// Dequeued but not finished (admission accounting).
  int in_flight_ UUQ_GUARDED_BY(mu_) = 0;
  uint64_t next_query_id_ UUQ_GUARDED_BY(mu_) = 1;
  Stats stats_ UUQ_GUARDED_BY(mu_);

  /// One private engine-pool slice per worker, sized so the slices sum to
  /// engine_threads (header comment on ServingOptions::workers). Declared
  /// before workers_ and destroyed after them — workers always outlive the
  /// pools they drive. Both vectors are filled by the constructor before
  /// any concurrency and drained only by Shutdown under mu_; the worker
  /// threads themselves never touch them (each holds a raw slice pointer).
  std::vector<std::unique_ptr<ThreadPool>> slice_pools_;
  std::vector<std::thread> workers_ UUQ_GUARDED_BY(mu_);
};

}  // namespace uuq

#endif  // UUQ_SERVING_QUERY_SERVICE_H_
