#include "serving/sample_cache.h"

#include <utility>

#include "common/macros.h"

namespace uuq {
namespace {

std::shared_ptr<const IntegratedSample> CheckedSample(
    std::shared_ptr<const IntegratedSample> sample) {
  UUQ_CHECK(sample != nullptr);
  return sample;
}

}  // namespace

SampleArtifacts::SampleArtifacts(
    std::shared_ptr<const IntegratedSample> sample_in,
    const EstimatorAdvisor::Options& advisor)
    : sample(CheckedSample(std::move(sample_in))),
      view(*sample),
      index(sample->entities()),
      stats(SampleStats::FromSample(*sample)),
      advice(EstimatorAdvisor(advisor).Advise(*sample)) {}

std::string SampleArtifacts::AnswerKey(const std::string& sql, int replicates,
                                       bool attach_interval) {
  if (!attach_interval) replicates = 0;
  return sql + "|B=" + std::to_string(replicates) +
         (attach_interval ? "|interval" : "|point");
}

bool SampleArtifacts::LookupAnswer(const std::string& key,
                                   CorrectedAnswer* out) const {
  MutexLock lock(&memo_mu_);
  const auto it = memo_.find(key);
  if (it == memo_.end()) return false;
  *out = it->second;
  return true;
}

void SampleArtifacts::MemoizeAnswer(const std::string& key,
                                    const CorrectedAnswer& answer) const {
  UUQ_DCHECK(!answer.bootstrap_aborted);
  MutexLock lock(&memo_mu_);
  if (memo_.size() >= kAnswerMemoCapacity) return;
  memo_.emplace(key, answer);  // first writer wins (identical by contract)
}

std::shared_ptr<const SampleArtifacts> SampleCache::Put(
    const std::string& name, std::shared_ptr<const IntegratedSample> sample) {
  auto artifacts =
      std::make_shared<const SampleArtifacts>(std::move(sample),
                                              advisor_options_);
  Install(name, artifacts);
  return artifacts;
}

void SampleCache::Install(const std::string& name,
                          std::shared_ptr<const SampleArtifacts> artifacts) {
  UUQ_CHECK(artifacts != nullptr);
  MutexLock lock(&mu_);
  entries_[name] = std::move(artifacts);
}

std::shared_ptr<const SampleArtifacts> SampleCache::Get(
    const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second : nullptr;
}

void SampleCache::Erase(const std::string& name) {
  MutexLock lock(&mu_);
  entries_.erase(name);
}

size_t SampleCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace uuq
