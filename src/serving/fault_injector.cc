#include "serving/fault_injector.h"

#include <cerrno>
#include <cstdlib>
#include <thread>

#include "common/macros.h"
#include "common/strings.h"

namespace uuq {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSourceLoad:
      return "source_load";
    case FaultSite::kArenaAlloc:
      return "arena_alloc";
    case FaultSite::kSlowReplicate:
      return "slow_replicate";
    case FaultSite::kQueueStall:
      return "queue_stall";
  }
  return "unknown";
}

namespace {

/// SplitMix64 finalizer: the (seed, site, probe) triple hashes to a uniform
/// 64-bit word, whose top 53 bits become the probe's uniform in [0, 1).
/// Same mixing quality as Rng's seeding, without carrying generator state
/// per site.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double ProbeUniform(uint64_t seed, FaultSite site, int64_t probe) {
  uint64_t h = Mix(seed ^ Mix(static_cast<uint64_t>(site) + 1));
  h = Mix(h ^ static_cast<uint64_t>(probe));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Result<FaultSite> ParseSite(std::string_view name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    if (name == FaultSiteName(site)) return site;
  }
  return Status::InvalidArgument("unknown fault site '" + std::string(name) +
                                 "'");
}

Result<std::chrono::nanoseconds> ParseDelay(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double magnitude = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || errno != 0 || magnitude < 0.0) {
    return Status::InvalidArgument("bad fault delay '" + text + "'");
  }
  const std::string_view unit = StripWhitespace(end);
  double to_ns;
  if (unit.empty() || unit == "ms") {
    to_ns = 1e6;
  } else if (unit == "ns") {
    to_ns = 1.0;
  } else if (unit == "us") {
    to_ns = 1e3;
  } else if (unit == "s") {
    to_ns = 1e9;
  } else {
    return Status::InvalidArgument("bad fault delay unit '" + text + "'");
  }
  return std::chrono::nanoseconds(
      static_cast<int64_t>(magnitude * to_ns));
}

}  // namespace

Result<FaultInjector> FaultInjector::Parse(uint64_t seed,
                                           const std::string& spec) {
  std::array<FaultSpec, kNumFaultSites> specs{};
  for (const std::string& raw : Split(spec, ',')) {
    const std::string entry(StripWhitespace(raw));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' is not site=prob[:delay]");
    }
    auto site = ParseSite(StripWhitespace(entry.substr(0, eq)));
    if (!site.ok()) return site.status();
    std::string rest = entry.substr(eq + 1);
    std::string delay_text;
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      delay_text = rest.substr(colon + 1);
      rest.resize(colon);
    }
    errno = 0;
    char* end = nullptr;
    const double probability = std::strtod(rest.c_str(), &end);
    if (end == rest.c_str() || !StripWhitespace(end).empty() ||
        errno != 0 || probability < 0.0 || probability > 1.0) {
      return Status::InvalidArgument("fault probability '" + rest +
                                     "' must be in [0, 1]");
    }
    FaultSpec& slot = specs[static_cast<size_t>(site.value())];
    slot.probability = probability;
    if (!delay_text.empty()) {
      auto delay = ParseDelay(delay_text);
      if (!delay.ok()) return delay.status();
      slot.delay = delay.value();
    }
  }
  return FaultInjector(seed, specs);
}

FaultInjector* FaultInjector::FromEnv() {
  static FaultInjector* injector = [] {
    const char* spec = std::getenv("UUQ_FAULT_SPEC");
    const char* seed_text = std::getenv("UUQ_FAULT_SEED");
    const uint64_t seed =
        seed_text != nullptr ? std::strtoull(seed_text, nullptr, 10) : 0;
    if (spec == nullptr || *spec == '\0') {
      return new FaultInjector();  // inert; intentionally leaked (static)
    }
    auto parsed = Parse(seed, spec);
    UUQ_CHECK_MSG(parsed.ok(),
                  "malformed UUQ_FAULT_SPEC (a chaos run with a typo would "
                  "silently test nothing)");
    return new FaultInjector(std::move(parsed).value());
  }();
  return injector;
}

bool FaultInjector::ShouldFire(FaultSite site) {
  const size_t s = static_cast<size_t>(site);
  if (specs_[s].probability <= 0.0) return false;
  // Relaxed claim: schedule determinism needs only that each probe gets a
  // DISTINCT counter value (RMW atomicity); the header's contract is per
  // SITE, independent of cross-site or cross-thread ordering.
  const int64_t probe = counters_[s].fetch_add(1, std::memory_order_relaxed);
  const bool fire = ProbeUniform(seed_, site, probe) < specs_[s].probability;
  if (fire) fired_[s].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool FaultInjector::MaybeStall(FaultSite site) {
  if (!ShouldFire(site)) return false;
  const auto stall = delay(site);
  if (stall.count() > 0) std::this_thread::sleep_for(stall);
  return true;
}

}  // namespace uuq
