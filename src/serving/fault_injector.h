// Deterministic, seeded fault injection for the serving layer.
//
// Robustness claims are only testable if failures can be produced on
// demand and REPRODUCED exactly. This injector models the serving stack's
// failure surface as a small set of named sites; whether probe k of site s
// fires is a pure function of (seed, s, k) — a per-site atomic counter
// indexes into a SplitMix-style hash stream — so a fault schedule depends
// only on the seed and the order of probes at each site, never on timing,
// thread interleaving across sites, or what other sites did. Re-running a
// failing seed replays the exact same schedule.
//
// Sites and the typed status each one surfaces as (README "Serving &
// failure semantics"):
//   source_load    — a sample/source failed to load     → kUnavailable
//   arena_alloc    — allocation failure at an arena
//                    boundary (scratch/materialization) → kResourceExhausted
//   slow_replicate — one bootstrap replicate stalls for
//                    `delay` (BootstrapOptions::replicate_probe)
//   queue_stall    — the worker stalls for `delay` at dequeue
//
// Configuration comes from two env knobs read once per process:
//   UUQ_FAULT_SEED  — uint64 schedule seed (default 0 — still deterministic)
//   UUQ_FAULT_SPEC  — comma list of site=probability[:delay], e.g.
//                     "source_load=0.1,slow_replicate=0.05:2ms,queue_stall=0.01:500us"
// Unset/empty UUQ_FAULT_SPEC means a fully inert injector (every probe is
// one relaxed load). Delays accept ns/us/ms/s suffixes (default ms).
#ifndef UUQ_SERVING_FAULT_INJECTOR_H_
#define UUQ_SERVING_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace uuq {

enum class FaultSite : int {
  kSourceLoad = 0,
  kArenaAlloc,
  kSlowReplicate,
  kQueueStall,
};
inline constexpr int kNumFaultSites = 4;

const char* FaultSiteName(FaultSite site);

/// Per-site configuration: fire probability and (for the stall sites) how
/// long a fired probe sleeps.
struct FaultSpec {
  double probability = 0.0;
  std::chrono::nanoseconds delay{0};
};

class FaultInjector {
 public:
  /// Inert injector: no site ever fires.
  FaultInjector() : FaultInjector(0, {}) {}
  FaultInjector(uint64_t seed, std::array<FaultSpec, kNumFaultSites> specs)
      : seed_(seed), specs_(specs) {
    // Relaxed: construction publishes the injector to other threads through
    // whatever hands them the pointer (Result copy, the FromEnv static init,
    // a ThreadPool task queue) — never through these counters themselves.
    for (auto& counter : counters_) {
      counter.store(0, std::memory_order_relaxed);
    }
  }
  /// Copyable so Parse can hand one back through Result; the atomics'
  /// snapshots carry over (a copy continues the original's probe schedule).
  FaultInjector(const FaultInjector& other)
      : seed_(other.seed_), specs_(other.specs_) {
    for (size_t i = 0; i < static_cast<size_t>(kNumFaultSites); ++i) {
      counters_[i].store(other.counters_[i].load(std::memory_order_relaxed));
      fired_[i].store(other.fired_[i].load(std::memory_order_relaxed));
    }
  }

  /// Parses "site=prob[:delay],..." into an injector. Unknown sites,
  /// probabilities outside [0, 1], and malformed delays are errors; an
  /// empty spec yields the inert injector.
  static Result<FaultInjector> Parse(uint64_t seed, const std::string& spec);

  /// The process-wide injector configured from UUQ_FAULT_SEED /
  /// UUQ_FAULT_SPEC, built on first use (aborts on a malformed spec —
  /// a chaos run with a typo must not silently test nothing). Inert when
  /// the spec env is unset.
  static FaultInjector* FromEnv();

  /// One probe at `site`: deterministically decides from (seed, site,
  /// per-site probe counter) whether this probe fires. Thread-safe; the
  /// counter gives every probe of a site a distinct decision.
  bool ShouldFire(FaultSite site);

  /// The configured stall for `site` (zero when none).
  std::chrono::nanoseconds delay(FaultSite site) const {
    return specs_[static_cast<size_t>(site)].delay;
  }

  /// Probe + sleep convenience for the stall sites: sleeps `delay` when the
  /// probe fires and returns whether it did.
  bool MaybeStall(FaultSite site);

  /// True when no site can ever fire (fast path for callers that want to
  /// skip probe bookkeeping entirely).
  bool inert() const {
    for (const FaultSpec& spec : specs_) {
      if (spec.probability > 0.0) return false;
    }
    return true;
  }

  /// Probes fired per site so far (test/bench introspection).
  int64_t fired_count(FaultSite site) const {
    return fired_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
  }

 private:
  uint64_t seed_ = 0;
  std::array<FaultSpec, kNumFaultSites> specs_{};
  std::array<std::atomic<int64_t>, kNumFaultSites> counters_{};
  std::array<std::atomic<int64_t>, kNumFaultSites> fired_{};
};

}  // namespace uuq

#endif  // UUQ_SERVING_FAULT_INJECTOR_H_
