// Cross-query cache of per-registered-sample artifacts (the tentpole of
// ROADMAP item 1's performance half).
//
// Every correction over a sample starts by recomputing things that depend
// only on the sample, never on the query: the flattened columnar SampleView
// (three construction sites in core/bootstrap.cc before this cache), the
// value-sorted SortedEntityIndex behind the bucket estimator's point
// estimate, the whole-sample SampleStats fold, and the advisor's estimator
// verdict. In a serving deployment the same registered sample answers
// thousands of queries, so that work is pure waste after the first one —
// "millions of users" hit the replicate loop, not the flatten.
//
// SampleArtifacts bundles those four artifacts plus a shared_ptr that pins
// the sample itself — and, because every engine is deterministic under the
// shared corrector options, a capacity-capped memo of completed per-query
// answers (see "answer memo" below): the second identical query on a
// snapshot skips replicate evaluation entirely. SampleCache maps
// registered-sample names to immutable shared snapshots. The concurrency contract mirrors "Aggregate Estimation
// Over Dynamic Hidden Web Databases" (PAPERS.md): registered samples get
// REPLACED over time, so replacement must atomically evict the cached entry
// for new admissions while in-flight queries keep the snapshot they pinned
// at admission — shared_ptr's refcount is the whole mechanism. The
// artifacts themselves are never mutated after construction (the answer
// memo is the one internally-locked exception), so no locks are held while
// a query uses its snapshot, and a replaced snapshot dies exactly when its
// last in-flight query finishes (ASan-pinned by tests/serving_test.cc's
// replacement tests).
//
// BIT-IDENTITY CONTRACT. Every artifact is a pure deterministic function of
// the sample (and, for the advice, of the advisor options the cache was
// built with), so cached answers are byte-for-byte the answers the uncached
// path computes. Tests pin this, and bench_serving's UUQ_BENCH_VERIFY pass
// re-checks it end-to-end before timing — a wrong-answer cache speedup
// fails the build, it does not ship. `UUQ_SERVE_CACHE=0` is the runtime
// escape hatch (query_service.h).
#ifndef UUQ_SERVING_SAMPLE_CACHE_H_
#define UUQ_SERVING_SAMPLE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/advisor.h"
#include "core/bucket.h"
#include "core/estimate.h"
#include "core/query_correction.h"
#include "integration/sample.h"
#include "integration/sample_view.h"

namespace uuq {

/// Immutable bundle of the query-independent artifacts of one sample.
/// Construction does all the work once; afterwards the bundle is read-only
/// and safe to share across any number of concurrent queries.
struct SampleArtifacts {
  /// Builds every artifact from `sample` (which must be non-null). `advisor`
  /// must be the advisor configuration queries will run with — the cached
  /// advice is only valid under the same options (SamplePrecomp's contract).
  SampleArtifacts(std::shared_ptr<const IntegratedSample> sample,
                  const EstimatorAdvisor::Options& advisor);

  // Declaration order is construction order: the view/index/stats/advice
  // all borrow from *sample, which the bundle pins for its whole lifetime.
  std::shared_ptr<const IntegratedSample> sample;
  SampleView view;          ///< flattened columns of *sample
  SortedEntityIndex index;  ///< over sample->entities()
  SampleStats stats;        ///< SampleStats::FromSample(*sample)
  Advice advice;            ///< advisor verdict under the ctor's options

  /// The non-owning pointer bundle the core layer consumes. Valid only
  /// while this SampleArtifacts is alive — callers keep their shared_ptr
  /// snapshot pinned for at least as long as any SamplePrecomp use.
  SamplePrecomp precomp() const {
    SamplePrecomp pre;
    pre.view = &view;
    pre.index = &index;
    pre.stats = &stats;
    pre.advice = &advice;
    return pre;
  }

  // ---- answer memo (the cross-query half of the cache) -------------------
  //
  // Every engine under the corrector is deterministic: the replicate seeds
  // live in the shared corrector options, so two queries with the same text,
  // replicate count, and interval flag compute THE SAME CorrectedAnswer on
  // this snapshot, bit for bit. The serving layer memoizes each COMPLETED
  // answer here, so a repeat query — the "millions of users ask the same
  // aggregate" serving axis — returns the byte-identical answer without
  // re-running replicate evaluation at all. Replacement hygiene is free:
  // the memo lives on the snapshot, so RegisterSample's new snapshot starts
  // empty and the old memo dies with the old snapshot's last pin.
  //
  // The memo is capacity-capped (kAnswerMemoCapacity distinct keys); once
  // full, new keys are computed fresh every time rather than evicting —
  // serving workloads repeat a small query set, and a bounded memo can
  // never become a memory leak shaped like a query log.

  /// Canonical memo key. `replicates` is ignored (normalized to 0) when
  /// `attach_interval` is false — a point-only answer does not depend on it.
  static std::string AnswerKey(const std::string& sql, int replicates,
                               bool attach_interval);

  /// Copies the memoized answer for `key` into `*out`; false on miss.
  bool LookupAnswer(const std::string& key, CorrectedAnswer* out) const
      UUQ_EXCLUDES(memo_mu_);

  /// Memoizes `answer` under `key` (first writer wins; silently dropped at
  /// capacity). Callers must only pass answers from COMPLETE computations —
  /// never one whose interval was abandoned mid-loop (bootstrap_aborted).
  void MemoizeAnswer(const std::string& key,
                     const CorrectedAnswer& answer) const
      UUQ_EXCLUDES(memo_mu_);

 private:
  static constexpr size_t kAnswerMemoCapacity = 64;
  mutable Mutex memo_mu_;
  mutable std::map<std::string, CorrectedAnswer> memo_
      UUQ_GUARDED_BY(memo_mu_);
};

/// Name → artifact-snapshot registry. Thread-safe; the lock covers only the
/// map, never artifact construction or use.
class SampleCache {
 public:
  explicit SampleCache(EstimatorAdvisor::Options advisor_options)
      : advisor_options_(std::move(advisor_options)) {}

  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// Builds artifacts for `sample` (outside the lock — registration of a
  /// large sample never blocks concurrent lookups) and installs them under
  /// `name`, atomically replacing any previous entry. The previous snapshot
  /// is not invalidated — queries that pinned it keep computing on it.
  /// Returns the new snapshot.
  std::shared_ptr<const SampleArtifacts> Put(
      const std::string& name,
      std::shared_ptr<const IntegratedSample> sample) UUQ_EXCLUDES(mu_);

  /// Installs an already-built snapshot under `name` (same replacement
  /// semantics as Put). Lets a caller build artifacts outside its own lock
  /// and then publish them together with other state under that lock —
  /// QueryService::RegisterSample uses this so the sample map and the cache
  /// entry always change atomically with respect to Submit.
  void Install(const std::string& name,
               std::shared_ptr<const SampleArtifacts> artifacts)
      UUQ_EXCLUDES(mu_);

  /// The current snapshot for `name`, or nullptr when absent.
  std::shared_ptr<const SampleArtifacts> Get(const std::string& name) const
      UUQ_EXCLUDES(mu_);

  /// Drops the entry (pinned snapshots stay alive until released).
  void Erase(const std::string& name) UUQ_EXCLUDES(mu_);

  /// Registered entries — observability for tests and Stats.
  size_t size() const UUQ_EXCLUDES(mu_);

 private:
  const EstimatorAdvisor::Options advisor_options_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const SampleArtifacts>> entries_
      UUQ_GUARDED_BY(mu_);
};

}  // namespace uuq

#endif  // UUQ_SERVING_SAMPLE_CACHE_H_
