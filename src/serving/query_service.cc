#include "serving/query_service.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/macros.h"
#include "common/scratch_metrics.h"

namespace uuq {

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNone:
      return "none";
    case DegradeLevel::kReducedReplicates:
      return "reduced-replicates";
    case DegradeLevel::kPointOnly:
      return "point-only";
  }
  return "unknown";
}

/// Shared between the submitting thread (Ticket) and the worker that runs
/// the query. The worker writes `result` exactly once under `mu` and flips
/// `done`; Wait() blocks on that. The CancelSource is the query's single
/// cancellation authority — armed with the deadline at admission, fired
/// early by Ticket::Cancel() or Shutdown().
struct QueryService::Ticket::State {
  // Immutable after admission.
  uint64_t id = 0;
  std::shared_ptr<const IntegratedSample> sample;
  /// Artifact snapshot pinned AT ADMISSION (null when the cache is off).
  /// RegisterSample replacing the sample mid-flight cannot invalidate it:
  /// this query finishes — bit-identically — on the snapshot it started
  /// with, and the snapshot is freed when the last pin drops.
  std::shared_ptr<const SampleArtifacts> artifacts;
  std::string sql;
  bool want_interval = true;
  /// Precision target (> 0 requests an adaptive replicate budget; bounds
  /// the replicate-mean Monte Carlo half-width, adaptive_budget.h) and the
  /// confidence it is measured at (<= 0 → bootstrap default). Both are
  /// validated at Submit — only well-formed values are stored here.
  double epsilon = 0.0;
  double confidence = 0.0;
  std::chrono::steady_clock::time_point admitted{};
  CancelSource cancel;

  Mutex mu;
  CondVar done_cv;
  bool done UUQ_GUARDED_BY(mu) = false;
  ServedResult result UUQ_GUARDED_BY(mu);
};

ServedResult QueryService::Ticket::Wait() {
  // A default-constructed Ticket has no query behind it. The original
  // UUQ_CHECK here turned a recoverable caller mistake (waiting on a ticket
  // that was never assigned from Submit) into a process abort; a typed
  // failure matches the service's never-exceptional contract.
  if (state_ == nullptr) {
    ServedResult result;
    result.status = Status::FailedPrecondition(
        "Wait() on a default-constructed Ticket (no submitted query)");
    return result;
  }
  MutexLock lock(&state_->mu);
  while (!state_->done) state_->done_cv.Wait(lock);
  return state_->result;
}

void QueryService::Ticket::Cancel() {
  if (state_ != nullptr) state_->cancel.RequestCancel();
}

uint64_t QueryService::Ticket::id() const {
  return state_ != nullptr ? state_->id : 0;
}

namespace {

/// UUQ_SERVE_CACHE=0 disables artifact caching regardless of options — the
/// operational escape hatch (any other value, or unset, leaves it on).
bool ServeCacheEnvEnabled() {
  const char* env = std::getenv("UUQ_SERVE_CACHE");
  return env == nullptr || env[0] != '0' || env[1] != '\0';
}

}  // namespace

QueryService::QueryService(ServingOptions options)
    : options_(std::move(options)),
      faults_(options_.faults != nullptr ? options_.faults
                                         : FaultInjector::FromEnv()) {
  if (options_.cache_artifacts && ServeCacheEnvEnabled()) {
    cache_ = std::make_unique<SampleCache>(options_.correction.advisor);
  }

  // Pool multiplexing (thread_pool.h, POOL SHARING): clamp the worker count
  // to the engine budget and give every worker a private slice pool, sizing
  // the slices so they sum to exactly engine_threads. Each worker is its
  // slice's caller-participant, so a slice of k contributes exactly k live
  // engine threads — total live parallelism never exceeds the budget,
  // whatever `workers` was configured to.
  const int engine_threads = std::max(
      1, options_.engine_threads > 0 ? options_.engine_threads
                                     : ThreadPool::DefaultNumThreads());
  const int workers = std::min(std::max(1, options_.workers), engine_threads);
  const int base = engine_threads / workers;
  const int extra = engine_threads % workers;
  slice_pools_.reserve(static_cast<size_t>(workers));
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    slice_pools_.push_back(
        std::make_unique<ThreadPool>(base + (i < extra ? 1 : 0)));
    ThreadPool* slice = slice_pools_.back().get();
    workers_.emplace_back([this, slice] { WorkerLoop(slice); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::RegisterSample(
    const std::string& name, std::shared_ptr<const IntegratedSample> sample) {
  UUQ_CHECK(sample != nullptr);
  // Artifact construction (flatten + sort + stats + advice) runs OUTSIDE
  // the service lock — registering a huge sample never stalls admissions or
  // workers. Only the map swaps below happen under mu_, atomically pairing
  // the sample with its artifacts for every future admission.
  std::shared_ptr<const SampleArtifacts> artifacts;
  if (cache_ != nullptr) {
    artifacts = std::make_shared<const SampleArtifacts>(
        sample, options_.correction.advisor);
  }
  bool request_trim = false;
  {
    MutexLock lock(&mu_);
    const auto it = samples_.find(name);
    // Replacement by a smaller sample: the engines' thread_local scratches
    // and arenas still hold the old sample's high-water; ask them to
    // release it at next use (cooperative — see scratch_metrics.h).
    request_trim = it != samples_.end() &&
                   it->second->entities().size() > sample->entities().size();
    samples_[name] = std::move(sample);
    if (cache_ != nullptr) cache_->Install(name, std::move(artifacts));
  }
  if (request_trim) scratch::RequestTrim();
}

Result<QueryService::Ticket> QueryService::Submit(
    const std::string& sample_name, const std::string& sql,
    std::chrono::nanoseconds deadline_budget, bool want_interval,
    double epsilon, double confidence) {
  // Request-supplied precision targets are validated at the admission
  // boundary, as typed failures. Past this point the adaptive engine may
  // CHECK its configuration, so a malformed request value that slipped
  // through would abort the whole serving process — a request must never
  // be able to do that.
  if (!std::isfinite(epsilon) || epsilon < 0.0) {
    return Status::InvalidArgument(
        "precision target epsilon must be finite and >= 0 (0 = fixed "
        "replicate budget)");
  }
  if (!(confidence < 1.0)) {  // also rejects NaN
    return Status::InvalidArgument(
        "precision target confidence must be < 1 (<= 0 = bootstrap "
        "default)");
  }
  auto state = std::make_shared<Ticket::State>();
  state->sql = sql;
  state->want_interval = want_interval;
  state->epsilon = epsilon;
  state->confidence = confidence;
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("QueryService is shut down");
    }
    const auto it = samples_.find(sample_name);
    if (it == samples_.end()) {
      return Status::NotFound("no sample registered as '" + sample_name + "'");
    }
    // Load shedding: pending = queued + dequeued-but-running. Shedding at
    // admission keeps the tail bounded — a request the service cannot start
    // within its deadline is better rejected in microseconds than timed out
    // after the full budget.
    const int pending = static_cast<int>(queue_.size()) + in_flight_;
    if (pending >= std::max(1, options_.max_queue)) {
      ++stats_.shed;
      return Status::ResourceExhausted(
          "serving queue full (" + std::to_string(pending) + " pending)");
    }
    state->id = next_query_id_++;
    state->sample = it->second;
    if (cache_ != nullptr) {
      // Pin the artifact snapshot now, under the same lock that installed
      // it with the sample: the pair can never be observed mismatched, and
      // a replacement after this point affects only future admissions.
      state->artifacts = cache_->Get(sample_name);
      UUQ_DCHECK(state->artifacts == nullptr ||
                 state->artifacts->sample.get() == state->sample.get());
    }
    state->admitted = std::chrono::steady_clock::now();
    state->cancel.SetDeadlineAfter(deadline_budget.count() > 0
                                       ? deadline_budget
                                       : options_.default_deadline);
    queue_.push_back(state);
    ++stats_.admitted;
  }
  work_available_.NotifyOne();
  Ticket ticket;
  ticket.state_ = std::move(state);
  return ticket;
}

ServedResult QueryService::Execute(const std::string& sample_name,
                                   const std::string& sql,
                                   std::chrono::nanoseconds deadline_budget,
                                   bool want_interval, double epsilon,
                                   double confidence) {
  auto ticket = Submit(sample_name, sql, deadline_budget, want_interval,
                       epsilon, confidence);
  if (!ticket.ok()) {
    ServedResult shed;
    shed.status = ticket.status();
    return shed;
  }
  return ticket.value().Wait();
}

QueryService::Stats QueryService::stats() const {
  MutexLock lock(&mu_);
  Stats out = stats_;
  out.resident_scratch_bytes = scratch::ResidentBytes();
  out.cached_samples =
      cache_ != nullptr ? static_cast<int64_t>(cache_->size()) : 0;
  return out;
}

void QueryService::Shutdown() {
  std::deque<std::shared_ptr<Ticket::State>> orphaned;
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
    orphaned.swap(queue_);
    // Claiming the worker handles under the lock makes Shutdown safe to
    // race with itself (and with the destructor's call): exactly one caller
    // ends up joining each thread — the old unguarded loop let two
    // concurrent callers join the same std::thread, which is UB.
    to_join.swap(workers_);
  }
  work_available_.NotifyAll();
  // Queued-but-never-started queries resolve with kCancelled — after
  // admission nothing is silently dropped. Queries a worker already picked
  // up run to completion (their tokens still fire on deadline), which is
  // what lets join() below guarantee no engine work survives Shutdown.
  for (const auto& state : orphaned) {
    state->cancel.RequestCancel();
    ServedResult result;
    result.status = Status::Cancelled("service shut down before execution");
    result.query_id = state->id;
    Finish(state, std::move(result));
    MutexLock lock(&mu_);
    ++stats_.failed;
  }
  for (std::thread& worker : to_join) {
    if (worker.joinable()) worker.join();
  }
}

void QueryService::Finish(const std::shared_ptr<Ticket::State>& state,
                          ServedResult result) {
  {
    MutexLock lock(&state->mu);
    state->result = std::move(result);
    state->done = true;
  }
  state->done_cv.NotifyAll();
}

void QueryService::WorkerLoop(ThreadPool* slice) {
  for (;;) {
    std::shared_ptr<Ticket::State> state;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down and drained
      state = queue_.front();
      queue_.pop_front();
      ++in_flight_;
    }
    // Injected dequeue stall: models a descheduled/overloaded worker. It
    // burns the query's own budget, so its observable effect is more
    // degradation / deadline misses — exactly the production failure mode.
    faults_->MaybeStall(FaultSite::kQueueStall);

    ServedResult result = RunQuery(state, slice);
    result.query_id = state->id;
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (result.status.ok()) {
        ++stats_.completed;
        if (result.degraded != DegradeLevel::kNone) ++stats_.degraded;
      } else {
        ++stats_.failed;
      }
    }
    Finish(state, std::move(result));
  }
}

ServedResult QueryService::RunQuery(
    const std::shared_ptr<Ticket::State>& state, ThreadPool* slice) {
  ServedResult result;
  const auto started = std::chrono::steady_clock::now();
  result.queue_ms =
      std::chrono::duration<double, std::milli>(started - state->admitted)
          .count();
  const CancelToken token = state->cancel.token();

  // Injected infrastructure faults, probed before any engine runs. Each
  // class surfaces as its documented typed status — never an exception,
  // never a crash.
  if (faults_->ShouldFire(FaultSite::kSourceLoad)) {
    result.status = Status::Unavailable(
        "injected fault: source load failed for query " +
        std::to_string(state->id));
    return result;
  }
  if (faults_->ShouldFire(FaultSite::kArenaAlloc)) {
    result.status = Status::ResourceExhausted(
        "injected fault: arena allocation failed for query " +
        std::to_string(state->id));
    return result;
  }

  // Pick the degradation level from the budget REMAINING now — queueing
  // already spent part of it. want_interval=false callers sit at the
  // point-only rung by choice, not degradation.
  const double remaining = token.SecondsRemaining();
  DegradeLevel level = DegradeLevel::kPointOnly;
  bool by_choice = !state->want_interval;
  if (!by_choice) {
    const double full_needed =
        std::chrono::duration<double>(options_.full_interval_budget).count();
    const double reduced_needed =
        std::chrono::duration<double>(options_.reduced_interval_budget)
            .count();
    if (remaining >= full_needed) {
      level = DegradeLevel::kNone;
    } else if (remaining >= reduced_needed) {
      level = DegradeLevel::kReducedReplicates;
    }
  }

  QueryCorrector::Options correction = options_.correction;
  correction.cancel = token;
  // Every engine this query drives — split scans, MC grid, bootstrap loop —
  // runs on this worker's private slice pool, never the process default:
  // that is what keeps concurrent queries inside the engine_threads budget.
  // An explicitly configured correction pool (options_.correction.pool)
  // wins — the caller opted out of slicing.
  if (correction.pool == nullptr) correction.pool = slice;
  correction.attach_bootstrap = level != DegradeLevel::kPointOnly;
  correction.bootstrap.replicates = level == DegradeLevel::kReducedReplicates
                                        ? options_.reduced_replicates
                                        : options_.full_replicates;
  // Precision-targeted queries run the adaptive budget — but only at level
  // 0: a query the ladder already degraded has a budget problem the pilot
  // loop cannot fix, and the reduced/point rungs stay exactly what the
  // ladder promises.
  const bool adaptive = state->epsilon > 0.0 && state->want_interval &&
                        level == DegradeLevel::kNone;
  if (adaptive) {
    correction.bootstrap.adaptive.enabled = true;
    correction.bootstrap.adaptive.epsilon = state->epsilon;
    correction.bootstrap.adaptive.confidence =
        state->confidence > 0.0 ? state->confidence
                                : correction.bootstrap.confidence;
    correction.bootstrap.adaptive.pilot_replicates =
        options_.adaptive_pilot_replicates;
    correction.bootstrap.adaptive.escalation_block =
        options_.adaptive_escalation_block;
    correction.bootstrap.adaptive.max_replicates =
        options_.adaptive_max_replicates;
  }
  if (!faults_->inert()) {
    FaultInjector* faults = faults_;
    correction.bootstrap.replicate_probe = [faults](int64_t) {
      faults->MaybeStall(FaultSite::kSlowReplicate);
    };
  }

  // Answer memo (sample_cache.h): the whole computation this query is about
  // to run is a deterministic function of (snapshot, sql, replicates,
  // interval flag) — the seeds are in the shared options — so a prior
  // identical query's completed answer IS this query's answer, bit for bit.
  // Adaptive queries bypass the memo entirely (lookup AND store): the key
  // does not encode the precision target, and the settled replicate count
  // is a function of epsilon — two targeted queries with different epsilons
  // must not alias, and a fixed-budget query must not inherit an adaptive
  // interval (or vice versa).
  std::string memo_key;
  if (state->artifacts != nullptr && !adaptive) {
    memo_key = SampleArtifacts::AnswerKey(state->sql,
                                          correction.bootstrap.replicates,
                                          correction.attach_bootstrap);
    CorrectedAnswer memoized;
    if (state->artifacts->LookupAnswer(memo_key, &memoized)) {
      result.answer = std::move(memoized);
      result.degraded = by_choice ? DegradeLevel::kNone : level;
      if (result.answer.bootstrap_valid) {
        result.replicates_used = correction.bootstrap.replicates;
      }
      result.run_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - started)
                          .count();
      return result;
    }
  }

  // Cached artifacts (pinned at admission) let the correction skip the
  // per-query flatten / sort / stats / advice; the SamplePrecomp contract
  // keeps the answer bit-identical to the uncached path.
  SamplePrecomp pre;
  const SamplePrecomp* pre_ptr = nullptr;
  if (state->artifacts != nullptr) {
    pre = state->artifacts->precomp();
    pre_ptr = &pre;
  }
  const QueryCorrector corrector(correction);
  auto answer = corrector.CorrectSql(*state->sample, state->sql, pre_ptr);
  result.run_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  if (!answer.ok()) {
    result.status = answer.status();
    return result;
  }
  result.answer = std::move(answer).value();
  result.degraded = by_choice ? DegradeLevel::kNone : level;
  if (result.answer.bootstrap_aborted) {
    // The deadline expired inside the interval loop: the point estimate is
    // exact, the interval is gone — the on-the-fly point-only rung.
    result.degraded = DegradeLevel::kPointOnly;
  } else if (!memo_key.empty()) {
    // Complete answer (interval not abandoned): safe to memoize. Injected
    // replicate stalls only sleep, they never change values, so even a
    // faulted run's completed answer is the canonical one.
    state->artifacts->MemoizeAnswer(memo_key, result.answer);
  }
  if (result.answer.bootstrap_valid) {
    // Adaptive runs report the budget they actually settled on (and whether
    // the target was abandoned at the cap/deadline); fixed runs used the
    // ladder's configured count.
    const AdaptiveBudgetReport& report = result.answer.bootstrap.adaptive;
    result.replicates_used =
        report.enabled ? report.replicates_used : correction.bootstrap.replicates;
    result.precision_degraded = report.enabled && report.precision_degraded;
  }
  return result;
}

}  // namespace uuq
