#include "serving/query_service.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace uuq {

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNone:
      return "none";
    case DegradeLevel::kReducedReplicates:
      return "reduced-replicates";
    case DegradeLevel::kPointOnly:
      return "point-only";
  }
  return "unknown";
}

/// Shared between the submitting thread (Ticket) and the worker that runs
/// the query. The worker writes `result` exactly once under `mu` and flips
/// `done`; Wait() blocks on that. The CancelSource is the query's single
/// cancellation authority — armed with the deadline at admission, fired
/// early by Ticket::Cancel() or Shutdown().
struct QueryService::Ticket::State {
  // Immutable after admission.
  uint64_t id = 0;
  std::shared_ptr<const IntegratedSample> sample;
  std::string sql;
  bool want_interval = true;
  std::chrono::steady_clock::time_point admitted{};
  CancelSource cancel;

  std::mutex mu;
  std::condition_variable done_cv;
  bool done = false;
  ServedResult result;
};

ServedResult QueryService::Ticket::Wait() {
  UUQ_CHECK_MSG(state_ != nullptr, "Wait() on a default-constructed Ticket");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

void QueryService::Ticket::Cancel() {
  if (state_ != nullptr) state_->cancel.RequestCancel();
}

uint64_t QueryService::Ticket::id() const {
  return state_ != nullptr ? state_->id : 0;
}

QueryService::QueryService(ServingOptions options)
    : options_(std::move(options)),
      faults_(options_.faults != nullptr ? options_.faults
                                         : FaultInjector::FromEnv()) {
  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::RegisterSample(
    const std::string& name, std::shared_ptr<const IntegratedSample> sample) {
  UUQ_CHECK(sample != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  samples_[name] = std::move(sample);
}

Result<QueryService::Ticket> QueryService::Submit(
    const std::string& sample_name, const std::string& sql,
    std::chrono::nanoseconds deadline_budget, bool want_interval) {
  auto state = std::make_shared<Ticket::State>();
  state->sql = sql;
  state->want_interval = want_interval;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("QueryService is shut down");
    }
    const auto it = samples_.find(sample_name);
    if (it == samples_.end()) {
      return Status::NotFound("no sample registered as '" + sample_name + "'");
    }
    // Load shedding: pending = queued + dequeued-but-running. Shedding at
    // admission keeps the tail bounded — a request the service cannot start
    // within its deadline is better rejected in microseconds than timed out
    // after the full budget.
    const int pending = static_cast<int>(queue_.size()) + in_flight_;
    if (pending >= std::max(1, options_.max_queue)) {
      ++stats_.shed;
      return Status::ResourceExhausted(
          "serving queue full (" + std::to_string(pending) + " pending)");
    }
    state->id = next_query_id_++;
    state->sample = it->second;
    state->admitted = std::chrono::steady_clock::now();
    state->cancel.SetDeadlineAfter(deadline_budget.count() > 0
                                       ? deadline_budget
                                       : options_.default_deadline);
    queue_.push_back(state);
    ++stats_.admitted;
  }
  work_available_.notify_one();
  Ticket ticket;
  ticket.state_ = std::move(state);
  return ticket;
}

ServedResult QueryService::Execute(const std::string& sample_name,
                                   const std::string& sql,
                                   std::chrono::nanoseconds deadline_budget,
                                   bool want_interval) {
  auto ticket = Submit(sample_name, sql, deadline_budget, want_interval);
  if (!ticket.ok()) {
    ServedResult shed;
    shed.status = ticket.status();
    return shed;
  }
  return ticket.value().Wait();
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryService::Shutdown() {
  std::deque<std::shared_ptr<Ticket::State>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
    orphaned.swap(queue_);
  }
  work_available_.notify_all();
  // Queued-but-never-started queries resolve with kCancelled — after
  // admission nothing is silently dropped. Queries a worker already picked
  // up run to completion (their tokens still fire on deadline), which is
  // what lets join() below guarantee no engine work survives Shutdown.
  for (const auto& state : orphaned) {
    state->cancel.RequestCancel();
    ServedResult result;
    result.status = Status::Cancelled("service shut down before execution");
    result.query_id = state->id;
    Finish(state, std::move(result));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void QueryService::Finish(const std::shared_ptr<Ticket::State>& state,
                          ServedResult result) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(result);
    state->done = true;
  }
  state->done_cv.notify_all();
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Ticket::State> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      state = queue_.front();
      queue_.pop_front();
      ++in_flight_;
    }
    // Injected dequeue stall: models a descheduled/overloaded worker. It
    // burns the query's own budget, so its observable effect is more
    // degradation / deadline misses — exactly the production failure mode.
    faults_->MaybeStall(FaultSite::kQueueStall);

    ServedResult result = RunQuery(state);
    result.query_id = state->id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (result.status.ok()) {
        ++stats_.completed;
        if (result.degraded != DegradeLevel::kNone) ++stats_.degraded;
      } else {
        ++stats_.failed;
      }
    }
    Finish(state, std::move(result));
  }
}

ServedResult QueryService::RunQuery(
    const std::shared_ptr<Ticket::State>& state) {
  ServedResult result;
  const auto started = std::chrono::steady_clock::now();
  result.queue_ms =
      std::chrono::duration<double, std::milli>(started - state->admitted)
          .count();
  const CancelToken token = state->cancel.token();

  // Injected infrastructure faults, probed before any engine runs. Each
  // class surfaces as its documented typed status — never an exception,
  // never a crash.
  if (faults_->ShouldFire(FaultSite::kSourceLoad)) {
    result.status = Status::Unavailable(
        "injected fault: source load failed for query " +
        std::to_string(state->id));
    return result;
  }
  if (faults_->ShouldFire(FaultSite::kArenaAlloc)) {
    result.status = Status::ResourceExhausted(
        "injected fault: arena allocation failed for query " +
        std::to_string(state->id));
    return result;
  }

  // Pick the degradation level from the budget REMAINING now — queueing
  // already spent part of it. want_interval=false callers sit at the
  // point-only rung by choice, not degradation.
  const double remaining = token.SecondsRemaining();
  DegradeLevel level = DegradeLevel::kPointOnly;
  bool by_choice = !state->want_interval;
  if (!by_choice) {
    const double full_needed =
        std::chrono::duration<double>(options_.full_interval_budget).count();
    const double reduced_needed =
        std::chrono::duration<double>(options_.reduced_interval_budget)
            .count();
    if (remaining >= full_needed) {
      level = DegradeLevel::kNone;
    } else if (remaining >= reduced_needed) {
      level = DegradeLevel::kReducedReplicates;
    }
  }

  QueryCorrector::Options correction = options_.correction;
  correction.cancel = token;
  correction.attach_bootstrap = level != DegradeLevel::kPointOnly;
  correction.bootstrap.replicates = level == DegradeLevel::kReducedReplicates
                                        ? options_.reduced_replicates
                                        : options_.full_replicates;
  if (!faults_->inert()) {
    FaultInjector* faults = faults_;
    correction.bootstrap.replicate_probe = [faults](int64_t) {
      faults->MaybeStall(FaultSite::kSlowReplicate);
    };
  }

  const QueryCorrector corrector(correction);
  auto answer = corrector.CorrectSql(*state->sample, state->sql);
  result.run_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  if (!answer.ok()) {
    result.status = answer.status();
    return result;
  }
  result.answer = std::move(answer).value();
  result.degraded = by_choice ? DegradeLevel::kNone : level;
  if (result.answer.bootstrap_aborted) {
    // The deadline expired inside the interval loop: the point estimate is
    // exact, the interval is gone — the on-the-fly point-only rung.
    result.degraded = DegradeLevel::kPointOnly;
  }
  if (result.answer.bootstrap_valid) {
    result.replicates_used = correction.bootstrap.replicates;
  }
  return result;
}

}  // namespace uuq
