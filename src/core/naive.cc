#include "core/naive.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/chao92.h"
#include "stats/coverage.h"

namespace uuq {

Estimate NaiveEstimator::FromStats(const SampleStats& stats) const {
  Estimate est;
  est.estimator = name();
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }
  const double n_hat = Chao92Nhat(stats);
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);
  est.missing_value = stats.ValueMean();
  est.delta = est.missing_value * est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = stats.value_sum + est.delta;
  return est;
}

double NaiveEstimator::DeltaFromStats(const SampleStats& stats) const {
  // Same expression/operation order as FromStats — bit-identical delta.
  if (stats.empty()) return 0.0;
  const double missing_count =
      Chao92Nhat(stats) - static_cast<double>(stats.c);
  return stats.ValueMean() * missing_count;
}

namespace {

/// The batched naive chain: one branch-free pass over the SoA columns, every
/// conditional of the scalar path rewritten as a value-equivalent blend (the
/// blends select among the SAME IEEE expression results, so each lane is
/// bit-identical to NormalizedAbsDelta(DeltaFromStats(stats))). The fused
/// coverage/γ²/N̂ chain itself lives in Chao92NhatLane (chao92.h — the one
/// shared copy); this adds the naive-specific tail:
///
///  * n == 0 → 0.0 (the empty-stats convention), blended last;
///  * the final NormalizedAbsDelta via |δ| ≤ DBL_MAX (NaN compares false →
///    +inf, matching the isfinite branch).
///
/// With `needed` non-null the multiplication-form pre-filter
/// (Chao92PreFilterCertifies, scaled_mass = |φK|·f1) blends NaN over
/// certified lanes. Cloned for AVX2: the chain is division-bound and the
/// 4-wide vdivpd clone roughly doubles its throughput; both clones run the
/// identical IEEE operations per lane, so results never depend on the
/// dispatch (the file is compiled with -fno-trapping-math, which licenses
/// the if-conversion without changing any value).
inline double NaiveLane(double nd, double cd, double f1d, double mm1d,
                        double sum) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kMaxFinite = std::numeric_limits<double>::max();
  const double n_hat = Chao92NhatLane(nd, cd, f1d, mm1d).n_hat;
  const double missing = n_hat - cd;
  const double mean = cd == 0.0 ? 0.0 : sum / cd;
  double abs_delta = std::fabs(mean * missing);
  abs_delta = abs_delta <= kMaxFinite ? abs_delta : kInf;
  return nd == 0.0 ? 0.0 : abs_delta;
}

// The two loops are separate functions (not one with an in-loop null
// check) because any control flow in the loop body defeats the
// vectorizer's if-conversion.
UUQ_VECTOR_CLONES void NaiveBatchKernel(size_t size,
                                        const double* UUQ_RESTRICT n_col,
                                        const double* UUQ_RESTRICT c_col,
                                        const double* UUQ_RESTRICT f1_col,
                                        const double* UUQ_RESTRICT mm1_col,
                                        const double* UUQ_RESTRICT sum_col,
                                        double* UUQ_RESTRICT out) {
  for (size_t i = 0; i < size; ++i) {
    out[i] = NaiveLane(n_col[i], c_col[i], f1_col[i], mm1_col[i], sum_col[i]);
  }
}

UUQ_VECTOR_CLONES void NaiveBatchKernelFiltered(
    size_t size, const double* UUQ_RESTRICT n_col,
    const double* UUQ_RESTRICT c_col, const double* UUQ_RESTRICT f1_col,
    const double* UUQ_RESTRICT mm1_col, const double* UUQ_RESTRICT sum_col,
    const double* UUQ_RESTRICT needed, double* UUQ_RESTRICT out) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < size; ++i) {
    const double nd = n_col[i];
    const double f1d = f1_col[i];
    const double sum = sum_col[i];
    const double abs_delta =
        NaiveLane(nd, c_col[i], f1d, mm1_col[i], sum);
    // nd > 0 guard: an empty lane's exact value is the 0.0 convention,
    // which no certificate may override (its mass column is meaningless).
    const bool certified =
        (nd > 0.0) &
        Chao92PreFilterCertifies(std::fabs(sum) * f1d, nd, f1d, needed[i]);
    out[i] = certified ? kNaN : abs_delta;
  }
}

}  // namespace

void NaiveEstimator::DeltaFromStatsBatch(const StatsBatchView& batch,
                                         const double* min_needed,
                                         double* out) const {
  if (min_needed == nullptr) {
    NaiveBatchKernel(batch.size, batch.n, batch.c, batch.f1, batch.sum_mm1,
                     batch.value_sum, out);
  } else {
    NaiveBatchKernelFiltered(batch.size, batch.n, batch.c, batch.f1,
                             batch.sum_mm1, batch.value_sum, min_needed, out);
  }
}

}  // namespace uuq
