#include "core/naive.h"

#include <cmath>

#include "core/chao92.h"

namespace uuq {

Estimate NaiveEstimator::FromStats(const SampleStats& stats) const {
  Estimate est;
  est.estimator = name();
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }
  const double n_hat = Chao92Nhat(stats);
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);
  est.missing_value = stats.ValueMean();
  est.delta = est.missing_value * est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = stats.value_sum + est.delta;
  return est;
}

double NaiveEstimator::DeltaFromStats(const SampleStats& stats) const {
  // Same expression/operation order as FromStats — bit-identical delta.
  if (stats.empty()) return 0.0;
  const double missing_count =
      Chao92Nhat(stats) - static_cast<double>(stats.c);
  return stats.ValueMean() * missing_count;
}

}  // namespace uuq
