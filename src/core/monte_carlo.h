// The Monte-Carlo estimator (paper §3.4, Algorithms 2 and 3).
//
// Chao92-based estimators assume S is (approximately) a sample with
// replacement; with few sources or uneven contributions ("streakers") the
// assumption breaks. The MC estimator instead SIMULATES the actual sampling
// process — l sources of the observed sizes n_1..n_l each sampling without
// replacement from a hypothesized population (θN items, exponential
// publicity skew θλ) — and picks the (θN, θλ) whose simulated samples best
// match the observed one under a rank-aligned KL divergence.
//
// The search is a coarse grid (θN: c..N̂_Chao92 in (N̂−c)/10 steps; θλ:
// −0.4..0.4 in 0.1 steps) followed by a least-squares quadratic surface fit
// and an argmin on the fitted surface (robust to simulation noise).
//
// The final Δ uses mean substitution with the MC count: Δ = φK/c·(N̂MC − c).
// Because unmatched simulated uniques are penalized by the divergence, the
// estimator systematically favors N̂MC close to c — the conservative
// behaviour the paper reports.
//
// PARALLELISM AND DETERMINISM: the (θN, θλ) grid points are independent, so
// EstimateNhat evaluates them concurrently on a ThreadPool. Each grid point
// gets its own Rng stream, derived by Rng::Split() from the seed in grid
// order BEFORE the parallel section, and writes only its own result slot —
// so for a fixed MonteCarloOptions::seed the Estimate is BIT-IDENTICAL for
// every thread count, including the UUQ_THREADS=1 serial override. The
// per-point simulation loop is allocation-free: a per-thread
// SimulationScratch reuses the histogram/permutation/key buffers across
// runs, and uniform grid rows (θλ = 0) sample via a partial Fisher-Yates
// shuffle of only the first n_i positions instead of a full pass.
#ifndef UUQ_CORE_MONTE_CARLO_H_
#define UUQ_CORE_MONTE_CARLO_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "core/estimate.h"

namespace uuq {

class ThreadPool;
struct SimulationScratch;

struct MonteCarloOptions {
  /// Simulation runs averaged per grid point (Algorithm 2's nbRuns).
  int runs_per_point = 5;
  /// θN grid resolution: step = (N̂_Chao92 − c) / n_grid_steps.
  int n_grid_steps = 10;
  /// θλ grid: [lambda_lo, lambda_hi] in lambda_step increments.
  double lambda_lo = -0.4;
  double lambda_hi = 0.4;
  double lambda_step = 0.1;
  /// Smoothing mass for missing uniques in the KL comparison.
  double smoothing_epsilon = 1e-6;
  /// When Chao92 is infinite (all singletons) the grid upper end is capped
  /// at c × this factor so the search stays finite.
  double infinite_nhat_cap_factor = 10.0;
  /// Deterministic seed for the simulation streams. The same seed produces
  /// the same Estimate on every thread count (see header comment).
  uint64_t seed = 0xC0FFEEull;
  /// Pool for the grid evaluation; nullptr means ThreadPool::Default().
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation, polled before every grid point. A fired
  /// token skips the remaining points' simulations (their distances become
  /// +inf) and the search returns the conservative N̂ = c clamp — finite,
  /// deterministic given where the token fired, but NOT the converged
  /// estimate; callers must discard the result via the token's status. The
  /// inert default token leaves results bit-identical.
  CancelToken cancel;
};

class MonteCarloEstimator final : public SumEstimator {
 public:
  MonteCarloEstimator() : MonteCarloEstimator(MonteCarloOptions{}) {}
  explicit MonteCarloEstimator(MonteCarloOptions options)
      : options_(options) {}

  std::string name() const override { return "monte-carlo"; }
  Estimate EstimateImpact(const IntegratedSample& sample) const override;

  /// Columnar replicate path: the grid search needs only the multiplicity
  /// column and the per-source sizes, both carried by ReplicateSample, so a
  /// bootstrap replicate never materializes an IntegratedSample. The seed
  /// derivation and per-source Rng consumption order match EstimateImpact
  /// on the materialized replicate exactly (bit-identical results).
  bool SupportsReplicates() const override { return true; }
  Estimate EstimateReplicate(const ReplicateSample& rep) const override;

  /// Algorithm 3: the count estimate N̂_MC alone.
  double EstimateNhat(const IntegratedSample& sample) const;
  double EstimateNhat(const ReplicateSample& rep) const;

  /// Algorithm 2: average KL distance between the observed multiplicities
  /// and `runs_per_point` simulations at (θN, θλ). Exposed for tests.
  double SimulatedDistance(int64_t theta_n, double theta_lambda,
                           const std::vector<int64_t>& observed_multiplicities,
                           const std::vector<int64_t>& source_sizes,
                           Rng* rng) const;

  const MonteCarloOptions& options() const { return options_; }

 private:
  /// Scratch-reusing core of SimulatedDistance: `observed_desc` must be the
  /// observed multiplicities sorted descending and `observed_sum` their sum
  /// (hoisted out because they are identical for every grid point).
  double SimulatedDistanceSorted(int64_t theta_n, double theta_lambda,
                                 const std::vector<double>& observed_desc,
                                 double observed_sum,
                                 const std::vector<int64_t>& source_sizes,
                                 Rng* rng, SimulationScratch* scratch) const;

  /// Algorithm 3 over bare columns (shared by the sample and replicate
  /// entry points). `observed_desc` is consumed (sorted descending inside).
  double NhatFromColumns(const SampleStats& stats,
                         std::vector<double> observed_desc,
                         const std::vector<int64_t>& source_sizes) const;

  MonteCarloOptions options_;
};

}  // namespace uuq

#endif  // UUQ_CORE_MONTE_CARLO_H_
