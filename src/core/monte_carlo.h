// The Monte-Carlo estimator (paper §3.4, Algorithms 2 and 3).
//
// Chao92-based estimators assume S is (approximately) a sample with
// replacement; with few sources or uneven contributions ("streakers") the
// assumption breaks. The MC estimator instead SIMULATES the actual sampling
// process — l sources of the observed sizes n_1..n_l each sampling without
// replacement from a hypothesized population (θN items, exponential
// publicity skew θλ) — and picks the (θN, θλ) whose simulated samples best
// match the observed one under a rank-aligned KL divergence.
//
// The search is a coarse grid (θN: c..N̂_Chao92 in (N̂−c)/10 steps; θλ:
// −0.4..0.4 in 0.1 steps) followed by a least-squares quadratic surface fit
// and an argmin on the fitted surface (robust to simulation noise).
//
// The final Δ uses mean substitution with the MC count: Δ = φK/c·(N̂MC − c).
// Because unmatched simulated uniques are penalized by the divergence, the
// estimator systematically favors N̂MC close to c — the conservative
// behaviour the paper reports.
#ifndef UUQ_CORE_MONTE_CARLO_H_
#define UUQ_CORE_MONTE_CARLO_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/estimate.h"

namespace uuq {

struct MonteCarloOptions {
  /// Simulation runs averaged per grid point (Algorithm 2's nbRuns).
  int runs_per_point = 5;
  /// θN grid resolution: step = (N̂_Chao92 − c) / n_grid_steps.
  int n_grid_steps = 10;
  /// θλ grid: [lambda_lo, lambda_hi] in lambda_step increments.
  double lambda_lo = -0.4;
  double lambda_hi = 0.4;
  double lambda_step = 0.1;
  /// Smoothing mass for missing uniques in the KL comparison.
  double smoothing_epsilon = 1e-6;
  /// When Chao92 is infinite (all singletons) the grid upper end is capped
  /// at c × this factor so the search stays finite.
  double infinite_nhat_cap_factor = 10.0;
  /// Deterministic seed for the simulation streams.
  uint64_t seed = 0xC0FFEEull;
};

class MonteCarloEstimator final : public SumEstimator {
 public:
  MonteCarloEstimator() : MonteCarloEstimator(MonteCarloOptions{}) {}
  explicit MonteCarloEstimator(MonteCarloOptions options)
      : options_(options) {}

  std::string name() const override { return "monte-carlo"; }
  Estimate EstimateImpact(const IntegratedSample& sample) const override;

  /// Algorithm 3: the count estimate N̂_MC alone.
  double EstimateNhat(const IntegratedSample& sample) const;

  /// Algorithm 2: average KL distance between the observed multiplicities
  /// and `runs_per_point` simulations at (θN, θλ). Exposed for tests.
  double SimulatedDistance(int64_t theta_n, double theta_lambda,
                           const std::vector<int64_t>& observed_multiplicities,
                           const std::vector<int64_t>& source_sizes,
                           Rng* rng) const;

  const MonteCarloOptions& options() const { return options_; }

 private:
  MonteCarloOptions options_;
};

}  // namespace uuq

#endif  // UUQ_CORE_MONTE_CARLO_H_
