// Convergence monitoring: "have I collected enough answers?"
//
// The paper's Figure 2 narrative (diminishing returns of additional crowd
// answers) implies a practical control question the original system leaves
// to the analyst. Two signals make it answerable:
//  * the Good-Turing unseen mass f1/n — which IS the probability that the
//    next observation is a brand-new entity (pay-as-you-go value of one
//    more answer), and
//  * the stability of the corrected estimate over a trailing window of
//    checkpoints (relative spread below a threshold = converged).
#ifndef UUQ_CORE_MONITOR_H_
#define UUQ_CORE_MONITOR_H_

#include <deque>

#include "core/estimate.h"

namespace uuq {

struct MonitorOptions {
  int window = 5;                   ///< checkpoints considered for stability
  double stability_threshold = 0.02;  ///< max relative spread to declare stable
};

class ConvergenceMonitor {
 public:
  ConvergenceMonitor() : ConvergenceMonitor(MonitorOptions{}) {}
  explicit ConvergenceMonitor(MonitorOptions options);

  /// Records one checkpoint's corrected estimate. Non-finite estimates
  /// clear the window (the estimator regressed, e.g. a streaker arrived).
  void Record(double corrected_estimate);

  /// True once `window` consecutive finite estimates lie within
  /// `stability_threshold` relative spread of each other.
  bool IsStable() const;

  /// (max − min) / |mid| over the current window; +inf until the window is
  /// full.
  double RelativeSpread() const;

  /// P(next observation is a previously unseen entity) = Good-Turing unseen
  /// mass f1/n of the sample. The marginal "new information" of one more
  /// answer; near 0 means additional collection mostly buys duplicates.
  static double MarginalNewEntityRate(const IntegratedSample& sample);

  /// Expected number of additional answers needed to discover one more new
  /// entity (1 / MarginalNewEntityRate); +inf when the rate is 0.
  static double AnswersPerNewEntity(const IntegratedSample& sample);

  int recorded() const { return recorded_; }
  void Reset();

 private:
  MonitorOptions options_;
  std::deque<double> window_;
  int recorded_ = 0;
};

}  // namespace uuq

#endif  // UUQ_CORE_MONITOR_H_
