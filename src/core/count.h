// COUNT queries under unknown unknowns (paper §5).
//
// COUNT needs only the missing-item count, not values: Δ_count = N̂ − c with
// N̂ from Chao92, plain Good-Turing, or the Monte-Carlo search.
#ifndef UUQ_CORE_COUNT_H_
#define UUQ_CORE_COUNT_H_

#include "core/estimate.h"
#include "core/monte_carlo.h"

namespace uuq {

enum class CountMethod { kChao92, kGoodTuring, kMonteCarlo };

const char* CountMethodName(CountMethod method);

class CountEstimator {
 public:
  explicit CountEstimator(CountMethod method = CountMethod::kChao92,
                          MonteCarloOptions mc_options = {})
      : method_(method), mc_(mc_options) {}

  /// delta = N̂ − c; corrected_sum holds the corrected COUNT (= N̂).
  Estimate EstimateCount(const IntegratedSample& sample) const;

  /// Columnar replicate form (bootstrap intervals on corrected COUNT):
  /// Chao92 and Good-Turing read only the sufficient statistics; the
  /// Monte-Carlo method reads the multiplicity and source-size columns.
  Estimate EstimateCount(const ReplicateSample& rep) const;

  CountMethod method() const { return method_; }

 private:
  template <typename Input>
  Estimate EstimateCountImpl(const Input& input,
                             const SampleStats& stats) const;

  CountMethod method_;
  MonteCarloEstimator mc_;
};

}  // namespace uuq

#endif  // UUQ_CORE_COUNT_H_
