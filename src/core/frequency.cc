#include "core/frequency.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/chao92.h"
#include "stats/coverage.h"

namespace uuq {

Estimate FrequencyEstimator::FromStats(const SampleStats& stats) const {
  Estimate est;
  est.estimator = name();
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }

  const double n_hat =
      assume_uniform_ ? GoodTuringNhat(stats) : Chao92Nhat(stats);
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);

  if (stats.f1 == 0) {
    // No singletons: Δ_freq = φf1·(...)/(n−f1) = 0 — the sample looks
    // complete to this estimator (missing_count is also 0 since Ĉ = 1 and
    // γ̂-correction is n·0/Ĉ·γ̂² = 0).
    est.missing_value = 0.0;
    est.delta = 0.0;
    est.corrected_sum = stats.value_sum;
    return est;
  }

  est.missing_value = stats.singleton_sum / static_cast<double>(stats.f1);
  est.delta = est.missing_value * est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = stats.value_sum + est.delta;
  return est;
}

double FrequencyEstimator::DeltaFromStats(const SampleStats& stats) const {
  // Same expression/operation order as FromStats — bit-identical delta.
  if (stats.empty() || stats.f1 == 0) return 0.0;
  const double n_hat =
      assume_uniform_ ? GoodTuringNhat(stats) : Chao92Nhat(stats);
  const double missing_count = n_hat - static_cast<double>(stats.c);
  const double missing_value =
      stats.singleton_sum / static_cast<double>(stats.f1);
  return missing_value * missing_count;
}

namespace {

/// The batched frequency chain — the naive kernel's structure (see
/// naive.cc for the blend-by-blend bit-identity argument; the shared fused
/// chain is Chao92NhatLane in chao92.h) with the frequency estimator's two
/// differences: the value proxy is φf1/f1 (f1 == 0 lanes blend to 0.0, the
/// "sample looks complete" convention) and `kUniform` selects the γ̂²-free
/// Good-Turing N̂ (the Eq. 10 form; the dead skew computation folds away at
/// compile time). Pre-filter scaled_mass = |φf1|·c.
template <bool kUniform>
inline double FrequencyLane(double nd, double cd, double f1d, double mm1d,
                            double phi) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kMaxFinite = std::numeric_limits<double>::max();
  const Chao92Lane lane = Chao92NhatLane(nd, cd, f1d, mm1d);
  const double n_hat = kUniform ? lane.good_turing_n_hat : lane.n_hat;
  const double missing_count = n_hat - cd;
  const double missing_value = phi / f1d;
  double abs_delta = std::fabs(missing_value * missing_count);
  abs_delta = abs_delta <= kMaxFinite ? abs_delta : kInf;
  abs_delta = nd == 0.0 ? 0.0 : abs_delta;
  return f1d == 0.0 ? 0.0 : abs_delta;
}

// Separate loops per (uniform, filtered) combination: any control flow in
// the loop body defeats the vectorizer's if-conversion (see naive.cc).
template <bool kUniform>
UUQ_VECTOR_CLONES void FrequencyBatchKernel(
    size_t size, const double* UUQ_RESTRICT n_col,
    const double* UUQ_RESTRICT c_col, const double* UUQ_RESTRICT f1_col,
    const double* UUQ_RESTRICT mm1_col, const double* UUQ_RESTRICT phi_col,
    double* UUQ_RESTRICT out) {
  for (size_t i = 0; i < size; ++i) {
    out[i] = FrequencyLane<kUniform>(n_col[i], c_col[i], f1_col[i],
                                     mm1_col[i], phi_col[i]);
  }
}

template <bool kUniform>
UUQ_VECTOR_CLONES void FrequencyBatchKernelFiltered(
    size_t size, const double* UUQ_RESTRICT n_col,
    const double* UUQ_RESTRICT c_col, const double* UUQ_RESTRICT f1_col,
    const double* UUQ_RESTRICT mm1_col, const double* UUQ_RESTRICT phi_col,
    const double* UUQ_RESTRICT needed, double* UUQ_RESTRICT out) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < size; ++i) {
    const double nd = n_col[i];
    const double cd = c_col[i];
    const double f1d = f1_col[i];
    const double phi = phi_col[i];
    const double abs_delta =
        FrequencyLane<kUniform>(nd, cd, f1d, mm1_col[i], phi);
    // nd/f1d > 0 guards: those lanes' exact value is the 0.0 convention,
    // which no certificate may override.
    const bool certified =
        (nd > 0.0) & (f1d > 0.0) &
        Chao92PreFilterCertifies(std::fabs(phi) * cd, nd, f1d, needed[i]);
    out[i] = certified ? kNaN : abs_delta;
  }
}

}  // namespace

void FrequencyEstimator::DeltaFromStatsBatch(const StatsBatchView& batch,
                                             const double* min_needed,
                                             double* out) const {
  if (min_needed == nullptr) {
    if (assume_uniform_) {
      FrequencyBatchKernel<true>(batch.size, batch.n, batch.c, batch.f1,
                                 batch.sum_mm1, batch.singleton_sum, out);
    } else {
      FrequencyBatchKernel<false>(batch.size, batch.n, batch.c, batch.f1,
                                  batch.sum_mm1, batch.singleton_sum, out);
    }
    return;
  }
  if (assume_uniform_) {
    FrequencyBatchKernelFiltered<true>(batch.size, batch.n, batch.c,
                                       batch.f1, batch.sum_mm1,
                                       batch.singleton_sum, min_needed, out);
  } else {
    FrequencyBatchKernelFiltered<false>(batch.size, batch.n, batch.c,
                                        batch.f1, batch.sum_mm1,
                                        batch.singleton_sum, min_needed, out);
  }
}

}  // namespace uuq
