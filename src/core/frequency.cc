#include "core/frequency.h"

#include <cmath>
#include <limits>

#include "core/chao92.h"

namespace uuq {

Estimate FrequencyEstimator::FromStats(const SampleStats& stats) const {
  Estimate est;
  est.estimator = name();
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }

  const double n_hat =
      assume_uniform_ ? GoodTuringNhat(stats) : Chao92Nhat(stats);
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);

  if (stats.f1 == 0) {
    // No singletons: Δ_freq = φf1·(...)/(n−f1) = 0 — the sample looks
    // complete to this estimator (missing_count is also 0 since Ĉ = 1 and
    // γ̂-correction is n·0/Ĉ·γ̂² = 0).
    est.missing_value = 0.0;
    est.delta = 0.0;
    est.corrected_sum = stats.value_sum;
    return est;
  }

  est.missing_value = stats.singleton_sum / static_cast<double>(stats.f1);
  est.delta = est.missing_value * est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = stats.value_sum + est.delta;
  return est;
}

double FrequencyEstimator::DeltaFromStats(const SampleStats& stats) const {
  // Same expression/operation order as FromStats — bit-identical delta.
  if (stats.empty() || stats.f1 == 0) return 0.0;
  const double n_hat =
      assume_uniform_ ? GoodTuringNhat(stats) : Chao92Nhat(stats);
  const double missing_count = n_hat - static_cast<double>(stats.c);
  const double missing_value =
      stats.singleton_sum / static_cast<double>(stats.f1);
  return missing_value * missing_count;
}

}  // namespace uuq
