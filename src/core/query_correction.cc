#include "core/query_correction.h"

#include <cmath>
#include <memory>

#include "common/strings.h"
#include "core/avg.h"
#include "core/correction_telemetry.h"
#include "core/bucket.h"
#include "core/count.h"
#include "core/frequency.h"
#include "core/monte_carlo.h"
#include "core/naive.h"
#include "db/sql_parser.h"

namespace uuq {

std::string CorrectedAnswer::ToString() const {
  std::string out;
  if (!query_text.empty()) out += query_text + "\n";
  out += "  observed  (closed world): " + FormatDouble(observed, 2) + "\n";
  out += "  corrected (+unknown unknowns via " + estimate.estimator +
         "): " + FormatDouble(corrected, 2) + "\n";
  if (unconstrained) {
    out += "  correction UNCONSTRAINED at this sample size (species estimate "
           "diverged; reporting the observed answer)\n";
  }
  if (aggregate == AggregateKind::kMin || aggregate == AggregateKind::kMax) {
    out += claim_true_extreme
               ? "  the observed extreme is likely the TRUE extreme "
                 "(estimated unknowns in the extreme bucket: " +
                     FormatDouble(extreme.extreme_bucket_missing, 2) + ")\n"
               : "  the observed extreme is NOT yet trustworthy (estimated "
                 "unknowns in the extreme bucket: " +
                     FormatDouble(extreme.extreme_bucket_missing, 2) + ")\n";
  } else {
    out += "  estimated missing entities: " +
           FormatDouble(estimate.missing_count, 1) +
           " (N-hat = " + FormatDouble(estimate.n_hat, 1) + ")\n";
  }
  if (bound_valid) {
    out += bound.finite
               ? "  99% worst-case bound on the true answer: " +
                     FormatDouble(bound.phi_upper, 2) + "\n"
               : "  99% worst-case bound: unbounded at this sample size\n";
  }
  if (bootstrap_valid) {
    out += "  " + FormatDouble(bootstrap_confidence * 100.0, 0) +
           "% bootstrap interval (source resampling): [" +
           FormatDouble(bootstrap.lo, 2) + ", " +
           FormatDouble(bootstrap.hi, 2) + "] over " +
           std::to_string(bootstrap.finite_replicates) + " replicates\n";
  }
  if (bootstrap_aborted) {
    out += "  bootstrap interval ABORTED (deadline/cancellation) — point "
           "estimate only\n";
  }
  out += "  advice: " + std::string(EstimatorChoiceName(advice.choice)) +
         " — " + advice.rationale + "\n";
  return out;
}

namespace {

/// Instantiates the SUM estimator with Options::cancel threaded into its
/// long-running engines. `recommended` is the already-computed §6.5 advice,
/// so kAuto resolves without re-running the advisor (same decision —
/// Advise() is deterministic over the same sample and options — and one
/// fewer diagnostic pass). With the inert default token every branch
/// constructs the exact configuration the pre-cancellation code did.
std::unique_ptr<SumEstimator> MakeSumEstimator(
    const QueryCorrector::Options& options, EstimatorChoice recommended) {
  const auto monte_carlo = [&options] {
    MonteCarloOptions mc = options.advisor.mc_options;
    if (options.cancel.can_fire()) mc.cancel = options.cancel;
    if (mc.pool == nullptr) mc.pool = options.pool;
    return std::make_unique<MonteCarloEstimator>(mc);
  };
  const auto bucket = [&options] {
    return std::make_unique<BucketSumEstimator>(
        std::make_shared<DynamicPartitioner>(
            options.pool, SplitScanMode::kBatched, options.cancel),
        std::make_shared<NaiveEstimator>());
  };
  switch (options.estimator) {
    case CorrectionEstimator::kAuto:
      if (recommended == EstimatorChoice::kMonteCarlo) return monte_carlo();
      return bucket();
    case CorrectionEstimator::kBucket:
      return bucket();
    case CorrectionEstimator::kMonteCarlo:
      return monte_carlo();
    case CorrectionEstimator::kNaive:
      return std::make_unique<NaiveEstimator>();
    case CorrectionEstimator::kFreq:
      return std::make_unique<FrequencyEstimator>();
  }
  return bucket();
}

}  // namespace

Result<CorrectedAnswer> QueryCorrector::CorrectFiltered(
    const IntegratedSample& sample, AggregateKind aggregate,
    std::string query_text, const SamplePrecomp* pre) const {
  // A token that fired before any work (queue time ate the whole budget)
  // fails fast with the typed status — no engine spins up at all.
  if (options_.cancel.Fired()) {
    return options_.cancel.ToStatus("correction");
  }

  CorrectedAnswer answer;
  answer.aggregate = aggregate;
  answer.query_text = std::move(query_text);

  // Precomputed advice/stats are the exact outputs of the expressions below
  // on the same sample (SamplePrecomp's contract), so consuming them is
  // bit-identical — the per-query advisor pass and stats fold are what the
  // sample cache exists to skip.
  if (pre != nullptr && pre->advice != nullptr) {
    answer.advice = *pre->advice;
  } else {
    const EstimatorAdvisor advisor(options_.advisor);
    answer.advice = advisor.Advise(sample);
  }
  const SampleStats stats = pre != nullptr && pre->stats != nullptr
                                ? *pre->stats
                                : SampleStats::FromSample(sample);

  // Degenerate species estimates (coverage <= 0 sends Chao92's N̂ — and
  // with it Δ̂ and the corrected answer — to +inf, or to NaN once an inf
  // flows through 0-weighted arithmetic) must not leak out of the
  // correction layer: flag the answer unconstrained and report the observed
  // value. Runs before attach() so the bootstrap's point estimate (and the
  // degenerate [point, point] interval of an all-non-finite replicate set)
  // is the clamped, finite answer.
  const auto clamp_unconstrained = [&answer] {
    if (!std::isfinite(answer.corrected)) {
      answer.unconstrained = true;
      answer.corrected = answer.observed;
    }
  };

  // Optional mega-batch evaluator for the bootstrap loop, set by aggregate
  // cases whose estimator shares work across replicates (kSum's bucket
  // estimator gathers every replicate's root split scan into one
  // DeltaFromStatsBatch call); finish() threads it into the engine. The
  // batch contract (estimate.h) pins it bit-identical to `columnar`.
  std::function<void(const ReplicateSample* const*, size_t, double*)>
      replicate_batch;

  // Shared tail of every aggregate case: first the cancellation gate — a
  // token that fired during the POINT estimate invalidates the whole
  // answer (the engines' under-cancellation outputs are clamps, not
  // estimates), so the typed status is all the caller gets — then the
  // optional bootstrap interval. A token firing inside the interval loop
  // keeps the exact point estimate and marks bootstrap_aborted: the
  // serving layer's point-only degradation level.
  const auto finish = [&](const std::function<double(const ReplicateSample&)>&
                              columnar,
                          const std::function<double(const IntegratedSample&)>&
                              materialized) -> Result<CorrectedAnswer> {
    if (options_.cancel.Fired()) {
      return options_.cancel.ToStatus("correction");
    }
    if (options_.attach_bootstrap && !sample.empty()) {
      BootstrapOptions bootstrap_options = options_.bootstrap;
      if (options_.cancel.can_fire()) bootstrap_options.cancel = options_.cancel;
      if (bootstrap_options.pool == nullptr) {
        bootstrap_options.pool = options_.pool;
      }
      if (bootstrap_options.columnar_batch == nullptr) {
        bootstrap_options.columnar_batch = replicate_batch;
      }
      answer.bootstrap = BootstrapAggregate(
          sample, pre != nullptr ? pre->view : nullptr, answer.corrected,
          columnar, materialized, bootstrap_options);
      if (answer.bootstrap.aborted) {
        // Deadline expiry degrades (a late caller still wants the exact
        // point estimate); explicit cancellation means nobody is waiting
        // for ANY answer, so it fails the query even this late.
        if (options_.cancel.reason() == StatusCode::kCancelled) {
          return options_.cancel.ToStatus("correction");
        }
        answer.bootstrap_aborted = true;
      } else {
        answer.bootstrap_confidence = bootstrap_options.confidence;
        answer.bootstrap_valid = true;
      }
    }
    // Every produced answer — clamped or not — feeds the process-wide
    // clamp/coverage counters the accuracy trajectory reads; typed-status
    // failures above return without counting.
    internal::RecordCorrection(answer);
    return answer;
  };

  switch (aggregate) {
    case AggregateKind::kSum: {
      auto estimator = MakeSumEstimator(options_, answer.advice.choice);
      answer.estimate = estimator->EstimateImpact(sample, pre);
      answer.observed = stats.value_sum;
      answer.corrected = answer.estimate.corrected_sum;
      answer.bound = ComputeSumUpperBound(stats, options_.bound);
      answer.bound_valid = true;
      clamp_unconstrained();
      // answer.corrected already holds the point estimate, so go through
      // finish() (which reuses it) rather than BootstrapCorrectedSum (which
      // would re-run the estimator on the full sample).
      const SumEstimator* sum_estimator = estimator.get();
      std::function<double(const ReplicateSample&)> columnar;
      if (sum_estimator->SupportsReplicates()) {
        columnar = [sum_estimator](const ReplicateSample& rep) {
          return sum_estimator->EstimateReplicate(rep).corrected_sum;
        };
        if (sum_estimator->SupportsReplicateBatch()) {
          replicate_batch = [sum_estimator](
                                const ReplicateSample* const* reps,
                                size_t count, double* out) {
            sum_estimator->EstimateReplicateBatch(reps, count, out);
          };
        }
      }
      return finish(columnar,
                    [sum_estimator](const IntegratedSample& resampled) {
                      return sum_estimator->EstimateImpact(resampled)
                          .corrected_sum;
                    });
    }
    case AggregateKind::kCount: {
      const bool use_mc =
          answer.advice.choice == EstimatorChoice::kMonteCarlo &&
          options_.estimator != CorrectionEstimator::kBucket;
      MonteCarloOptions mc_options = options_.advisor.mc_options;
      if (options_.cancel.can_fire()) mc_options.cancel = options_.cancel;
      if (mc_options.pool == nullptr) mc_options.pool = options_.pool;
      const CountEstimator count(
          use_mc ? CountMethod::kMonteCarlo : CountMethod::kChao92,
          mc_options);
      answer.estimate = count.EstimateCount(sample);
      answer.observed = static_cast<double>(stats.c);
      answer.corrected = answer.estimate.corrected_sum;
      clamp_unconstrained();
      return finish(
          [&count](const ReplicateSample& rep) {
            return count.EstimateCount(rep).corrected_sum;
          },
          [&count](const IntegratedSample& resampled) {
            return count.EstimateCount(resampled).corrected_sum;
          });
    }
    case AggregateKind::kAvg: {
      // Pool threading only (the inert default cancel token preserves the
      // point-estimate semantics AVG always had); slice scheduling never
      // changes partition results.
      const AvgEstimator avg(std::make_shared<BucketSumEstimator>(
          std::make_shared<DynamicPartitioner>(options_.pool),
          std::make_shared<NaiveEstimator>()));
      answer.estimate = avg.EstimateAvg(sample);
      answer.observed = stats.ValueMean();
      answer.corrected = answer.estimate.corrected_sum;
      clamp_unconstrained();
      return finish(
          [&avg](const ReplicateSample& rep) {
            return avg.EstimateAvg(rep).corrected_sum;
          },
          [&avg](const IntegratedSample& resampled) {
            return avg.EstimateAvg(resampled).corrected_sum;
          });
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      const MinMaxEstimator minmax(
          std::make_shared<BucketSumEstimator>(
              std::make_shared<DynamicPartitioner>(options_.pool),
              std::make_shared<NaiveEstimator>()),
          options_.minmax_claim_threshold);
      const bool want_max = aggregate == AggregateKind::kMax;
      answer.extreme = want_max ? minmax.EstimateMax(sample)
                                : minmax.EstimateMin(sample);
      answer.observed = answer.extreme.observed_extreme;
      answer.corrected = answer.extreme.observed_extreme;
      answer.claim_true_extreme = answer.extreme.claim_true_extreme;
      answer.estimate.estimator = "minmax[bucket]";
      answer.estimate.missing_count = answer.extreme.extreme_bucket_missing;
      return finish(
          [&minmax, want_max](const ReplicateSample& rep) {
            return (want_max ? minmax.EstimateMax(rep)
                             : minmax.EstimateMin(rep))
                .observed_extreme;
          },
          [&minmax, want_max](const IntegratedSample& resampled) {
            return (want_max ? minmax.EstimateMax(resampled)
                             : minmax.EstimateMin(resampled))
                .observed_extreme;
          });
    }
  }
  return Status::InvalidArgument("unsupported aggregate");
}

Result<CorrectedAnswer> QueryCorrector::Correct(
    const IntegratedSample& sample, AggregateKind aggregate,
    const SamplePrecomp* pre) const {
  AggregateQuery query;
  query.aggregate = aggregate;
  query.attribute = "value";
  query.table_name = "integrated";
  query.predicate = MakeTrue();
  return CorrectFiltered(sample, aggregate, query.ToString(), pre);
}

namespace {

Schema IntegratedViewSchema() {
  return Schema({{"entity", ValueType::kString},
                 {"value", ValueType::kDouble},
                 {"observations", ValueType::kInt64},
                 {"category", ValueType::kString}});
}

Row EntityToViewRow(const EntityStat& entity) {
  return Row{Value(entity.key), Value(entity.value),
             Value(entity.multiplicity),
             entity.category.empty() ? Value::Null()
                                     : Value(entity.category)};
}

/// Applies the query predicate to the sample; returns the filtered sample
/// (or the original when the predicate is trivially true).
Result<IntegratedSample> ApplyPredicate(const IntegratedSample& sample,
                                        const AggregateQuery& query,
                                        const Schema& view_schema) {
  Status eval_error = Status::OK();
  IntegratedSample filtered = sample.Filter([&](const EntityStat& entity) {
    auto match = query.predicate->Eval(EntityToViewRow(entity), view_schema);
    if (!match.ok()) {
      eval_error = match.status();
      return false;
    }
    return match.value();
  });
  if (!eval_error.ok()) return eval_error;
  return filtered;
}

}  // namespace

Result<CorrectedAnswer> QueryCorrector::CorrectSql(
    const IntegratedSample& sample, const std::string& sql,
    const SamplePrecomp* pre) const {
  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) return parsed.status();
  const AggregateQuery& query = parsed.value();
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped queries go through CorrectGroupedSql");
  }

  // Predicates are evaluated against the integrated view's schema.
  const Schema view_schema = IntegratedViewSchema();
  if (query.predicate != nullptr) {
    Status valid = query.predicate->Validate(view_schema);
    if (!valid.ok()) return valid;
  }

  const std::string pred_text =
      query.predicate != nullptr ? query.predicate->ToString() : "TRUE";
  if (pred_text == "TRUE") {
    // The precomp (if any) describes exactly this unfiltered sample, so the
    // cached artifacts apply — the serving fast path.
    return CorrectFiltered(sample, query.aggregate, query.ToString(), pre);
  }

  // A real predicate produces a fresh filtered sample the precomp does not
  // describe; run uncached (SamplePrecomp's same-sample contract).
  auto filtered = ApplyPredicate(sample, query, view_schema);
  if (!filtered.ok()) return filtered.status();
  return CorrectFiltered(filtered.value(), query.aggregate, query.ToString(),
                         /*pre=*/nullptr);
}

std::string QueryCorrector::GroupedCorrectedAnswer::ToString() const {
  std::string out = query_text + "\n";
  for (const auto& [category, answer] : groups) {
    out += "[" + (category.empty() ? std::string("(uncategorized)") : category)
           + "] observed " + FormatDouble(answer.observed, 2) +
           " -> corrected " + FormatDouble(answer.corrected, 2) + " (" +
           answer.estimate.estimator + ")" +
           (answer.unconstrained ? " UNCONSTRAINED" : "") + "\n";
  }
  return out;
}

Result<QueryCorrector::GroupedCorrectedAnswer> QueryCorrector::CorrectGroupedSql(
    const IntegratedSample& sample, const std::string& sql) const {
  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) return parsed.status();
  const AggregateQuery& query = parsed.value();
  if (query.group_by.empty()) {
    return Status::InvalidArgument("query has no GROUP BY clause");
  }
  if (!EqualsIgnoreCase(query.group_by, "category")) {
    return Status::InvalidArgument(
        "corrected grouping is only supported on the 'category' column");
  }
  const Schema view_schema = IntegratedViewSchema();
  if (query.predicate != nullptr) {
    Status valid = query.predicate->Validate(view_schema);
    if (!valid.ok()) return valid;
  }

  auto filtered = ApplyPredicate(sample, query, view_schema);
  if (!filtered.ok()) return filtered.status();
  const IntegratedSample& base = filtered.value();

  GroupedCorrectedAnswer out;
  out.query_text = query.ToString();
  std::vector<std::string> categories = base.Categories();
  // Entities without a category form their own group (SQL NULL group).
  bool has_uncategorized = false;
  for (const EntityStat& entity : base.entities()) {
    if (entity.category.empty()) {
      has_uncategorized = true;
      break;
    }
  }
  if (has_uncategorized) categories.push_back("");

  for (const std::string& category : categories) {
    const IntegratedSample group = base.Filter(
        [&category](const EntityStat& e) { return e.category == category; });
    auto answer = CorrectFiltered(group, query.aggregate, "", /*pre=*/nullptr);
    if (!answer.ok()) return answer.status();
    out.groups.emplace_back(category, std::move(answer).value());
  }
  return out;
}

}  // namespace uuq
