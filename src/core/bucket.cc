#include "core/bucket.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/naive.h"
#include "integration/sample_view.h"

namespace uuq {

SortedEntityIndex::SortedEntityIndex(const std::vector<EntityStat>& entities) {
  points_.reserve(entities.size());
  for (const EntityStat& e : entities) {
    points_.push_back({e.value, e.multiplicity});
  }
  Finalize(/*nearly_sorted=*/false);
}

SortedEntityIndex::SortedEntityIndex(std::vector<EntityPoint> points)
    : points_(std::move(points)) {
  Finalize(/*nearly_sorted=*/false);
}

void SortedEntityIndex::Finalize(bool nearly_sorted) {
  if (!nearly_sorted) {
    std::sort(points_.begin(), points_.end(), PointLess);
  } else {
    // Adaptive insertion sort: a rank-order gather leaves only local
    // inversions (entities whose replicate value moved, multiplicity ties
    // within an equal-value run), so this is O(points + inversions). A
    // pathological replicate burns through the shift budget and falls back
    // to std::sort — same canonical content, bounded worst case.
    size_t budget = 8 * points_.size() + 16;
    bool fell_back = false;
    for (size_t i = 1; !fell_back && i < points_.size(); ++i) {
      if (!PointLess(points_[i], points_[i - 1])) continue;
      const EntityPoint point = points_[i];
      size_t j = i;
      while (j > 0 && PointLess(point, points_[j - 1])) {
        points_[j] = points_[j - 1];
        --j;
        if (--budget == 0) {
          fell_back = true;
          break;
        }
      }
      points_[j] = point;  // restore before any fallback: same multiset
      if (fell_back) std::sort(points_.begin(), points_.end(), PointLess);
    }
  }

  prefix_.resize(points_.size() + 1);
  prefix_[0] = SampleStats{};
  for (size_t i = 0; i < points_.size(); ++i) {
    prefix_[i + 1] = prefix_[i];
    prefix_[i + 1].Add(points_[i]);
  }
}

SampleStats SortedEntityIndex::Slice(size_t begin, size_t end) const {
  UUQ_DCHECK(begin <= end && end <= points_.size());
  SampleStats out = prefix_[end];
  const SampleStats& lo = prefix_[begin];
  out.n -= lo.n;
  out.c -= lo.c;
  out.f1 -= lo.f1;
  out.sum_mm1 -= lo.sum_mm1;
  out.value_sum -= lo.value_sum;
  out.value_sum_sq -= lo.value_sum_sq;
  out.singleton_sum -= lo.singleton_sum;
  return out;
}

size_t SortedEntityIndex::UpperBoundOfValueAt(size_t i) const {
  UUQ_DCHECK(i < points_.size());
  const double v = points_[i].value;
  size_t j = i + 1;
  while (j < points_.size() && points_[j].value == v) ++j;
  return j;
}

const SortedEntityIndex& IndexScratch::RebuildIndex(
    const ReplicateSample& rep) {
  index_.Clear();
  const SampleView* view = rep.view;
  const bool incremental =
      view != nullptr && rep.entity_indices.size() == rep.entities.size() &&
      static_cast<size_t>(view->num_entities()) >= rep.entities.size();
  if (!incremental) {
    for (const EntityPoint& point : rep.entities) index_.Append(point);
    index_.Finalize(/*nearly_sorted=*/false);
    return index_;
  }

  // Scatter the replicate into dense per-original-entity columns, then
  // gather in the view's rank order: the result is nearly sorted by
  // replicate value (a replicate perturbs multiplicities, not the entity
  // ordering), so Finalize only fixes up the few points that moved.
  const size_t num_entities = static_cast<size_t>(view->num_entities());
  if (scatter_mult_.size() < num_entities) {
    scatter_mult_.resize(num_entities, 0);
    scatter_value_.resize(num_entities, 0.0);
  }
  int64_t* UUQ_RESTRICT mult = scatter_mult_.data();
  double* UUQ_RESTRICT value = scatter_value_.data();
  for (size_t i = 0; i < rep.entities.size(); ++i) {
    const size_t e = static_cast<size_t>(rep.entity_indices[i]);
    // Build* keeps entity_indices inside the view's entity space; a
    // hand-assembled replicate that sets `view` owns this invariant.
    UUQ_DCHECK(e < num_entities);
    mult[e] = rep.entities[i].multiplicity;
    value[e] = rep.entities[i].value;
  }
  for (int32_t e : view->entity_rank_order()) {
    const size_t idx = static_cast<size_t>(e);
    if (mult[idx] == 0) continue;
    index_.Append({value[idx], mult[idx]});
    mult[idx] = 0;  // restore the resting invariant as we go
  }
  index_.Finalize(/*nearly_sorted=*/true);
  return index_;
}

namespace {

/// |Δ| of a slice, treating non-finite estimates as +infinity so that
/// singleton-only buckets are never attractive to the split search. Uses
/// the delta-only path: no Estimate (and no string) per candidate slice.
double AbsDelta(const StatsSumEstimator& inner, const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  const double delta = inner.DeltaFromStats(stats);
  if (!std::isfinite(delta)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(delta);
}

void SingleBucket(size_t size, std::vector<size_t>* bounds) {
  bounds->clear();
  bounds->push_back(0);
  bounds->push_back(size);
}

}  // namespace

std::vector<size_t> BucketPartitioner::Partition(
    const SortedEntityIndex& index, const StatsSumEstimator& inner) const {
  PartitionScratch scratch;
  std::vector<size_t> bounds;
  PartitionInto(index, inner, &scratch, &bounds);
  return bounds;
}

EquiWidthPartitioner::EquiWidthPartitioner(int num_buckets)
    : num_buckets_(num_buckets) {
  UUQ_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
}

std::string EquiWidthPartitioner::name() const {
  return "eq-width-" + std::to_string(num_buckets_);
}

void EquiWidthPartitioner::PartitionInto(const SortedEntityIndex& index,
                                         const StatsSumEstimator& inner,
                                         PartitionScratch* scratch,
                                         std::vector<size_t>* bounds) const {
  UUQ_UNUSED(inner);
  UUQ_UNUSED(scratch);
  const auto& entities = index.entities();
  if (entities.empty()) return SingleBucket(0, bounds);
  const double lo = entities.front().value;
  const double hi = entities.back().value;
  if (num_buckets_ == 1 || hi == lo) {
    return SingleBucket(entities.size(), bounds);
  }

  const double width = (hi - lo) / num_buckets_;
  bounds->clear();
  bounds->push_back(0);
  size_t pos = 0;
  for (int b = 1; b < num_buckets_; ++b) {
    const double boundary = lo + width * b;
    while (pos < entities.size() && entities[pos].value <= boundary) ++pos;
    // Empty buckets collapse (duplicate boundaries are dropped).
    if (pos > bounds->back()) bounds->push_back(pos);
  }
  if (entities.size() > bounds->back()) bounds->push_back(entities.size());
}

EquiHeightPartitioner::EquiHeightPartitioner(int num_buckets)
    : num_buckets_(num_buckets) {
  UUQ_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
}

std::string EquiHeightPartitioner::name() const {
  return "eq-height-" + std::to_string(num_buckets_);
}

void EquiHeightPartitioner::PartitionInto(const SortedEntityIndex& index,
                                          const StatsSumEstimator& inner,
                                          PartitionScratch* scratch,
                                          std::vector<size_t>* bounds) const {
  UUQ_UNUSED(inner);
  UUQ_UNUSED(scratch);
  const size_t size = index.size();
  if (size == 0) return SingleBucket(0, bounds);
  const int k = std::min<int>(num_buckets_, static_cast<int>(size));
  bounds->clear();
  bounds->push_back(0);
  for (int b = 1; b < k; ++b) {
    size_t pos = size * static_cast<size_t>(b) / static_cast<size_t>(k);
    // Entities with equal values must not straddle a boundary (a bucket is a
    // value range); advance to the end of the tied run.
    if (pos > 0 && pos < size &&
        index.entities()[pos].value == index.entities()[pos - 1].value) {
      pos = index.UpperBoundOfValueAt(pos - 1);
    }
    if (pos > bounds->back() && pos < size) bounds->push_back(pos);
  }
  bounds->push_back(size);
}

void DynamicPartitioner::PartitionInto(const SortedEntityIndex& index,
                                       const StatsSumEstimator& inner,
                                       PartitionScratch* scratch,
                                       std::vector<size_t>* bounds) const {
  UUQ_CHECK(scratch != nullptr && bounds != nullptr);
  const size_t size = index.size();
  if (size == 0) return SingleBucket(0, bounds);

  constexpr double kUnknown = std::numeric_limits<double>::quiet_NaN();
  constexpr double kPruned = std::numeric_limits<double>::infinity();
  auto& todo = scratch->todo;
  auto& done = scratch->done;
  auto& cuts = scratch->cuts;
  auto& left_half = scratch->left_half;
  auto& right_half = scratch->right_half;
  auto& candidates = scratch->candidates;
  auto& memo_cuts = scratch->memo_cuts;
  auto& memo_delta = scratch->memo_delta;
  todo.clear();
  done.clear();
  memo_cuts.clear();
  memo_delta.clear();

  // delta_min tracks the global objective Σ|Δ(b)| over all current buckets
  // (todo + finalized), exactly as Algorithm 1's δmin. done_delta_sum is
  // the Σ|Δ| of the finalized buckets, accumulated in done-push order —
  // the same left-fold a recomputation loop over `done` would run.
  double delta_min = AbsDelta(inner, index.Slice(0, size));
  double done_delta_sum = 0.0;
  todo.push_back({0, size, delta_min, 0, 0, false, false});

  // FIFO worklist on a flat vector: `head` plays the deque's pop_front, so
  // the split order — and with it every tie-break — matches the historical
  // deque-based traversal while staying allocation-free on reuse.
  for (size_t head = 0; head < todo.size(); ++head) {
    const PartitionScratch::Bucket work = todo[head];  // copy: todo may grow
    const size_t b_begin = work.begin;
    const size_t b_end = work.end;
    // |Δ| of this bucket was evaluated when it was a candidate slice of the
    // parent's scan (same Slice, same DeltaFromStats — bit-identical to
    // recomputing it); the root computed it above.
    const double b_delta = work.delta;
    // Objective contribution of everything except bucket b. Infinity-aware:
    // if b_delta is infinite, the remainder is what other buckets
    // contribute — rebuilt from the memoized per-bucket deltas (bit-
    // identical to re-evaluating every stored range, per the memo
    // invariant) rather than subtracting inf; O(#pending) additions, no
    // slice re-evaluation even on all-infinite inputs.
    double delta_rest;
    if (std::isinf(b_delta) || std::isinf(delta_min)) {
      delta_rest = done_delta_sum;
      for (size_t i = head + 1; i < todo.size(); ++i) {
        delta_rest += todo[i].delta;
      }
      delta_min = delta_rest + b_delta;
    } else {
      delta_rest = delta_min - b_delta;
    }

    // Candidate split points: after each run of equal values. A split never
    // changes run boundaries, so a child inherits its cut list (and the
    // known half-deltas) from the parent scan; only the root walks the
    // index. The arena is append-only and only grows in the split phase
    // below, so these pointers stay valid for the whole scan.
    if (!work.has_memo) {
      cuts.clear();
      size_t cut = b_begin < size ? index.UpperBoundOfValueAt(b_begin) : b_end;
      while (cut < b_end) {
        cuts.push_back(cut);
        cut = index.UpperBoundOfValueAt(cut);
      }
    }
    const size_t num_cuts =
        work.has_memo ? work.memo_end - work.memo_begin : cuts.size();
    // No UUQ_RESTRICT here: cut_at aliases memo_cuts' storage in the memo
    // case, and the split phase below mutates memo_cuts (every read after
    // an append re-resolves by index instead of going through cut_at).
    const size_t* cut_at =
        work.has_memo ? memo_cuts.data() + work.memo_begin : cuts.data();
    const double* known =
        work.has_memo ? memo_delta.data() + work.memo_begin : nullptr;
    const bool known_is_left = work.memo_is_left;

    left_half.resize(num_cuts);
    right_half.resize(num_cuts);
    double* UUQ_RESTRICT lhalf = left_half.data();
    double* UUQ_RESTRICT rhalf = right_half.data();

    bool found = false;
    size_t best_index = 0;
    // PRUNING. Every candidate total is (delta_rest + |Δ(left)|) +
    // |Δ(right)| with both halves nonnegative, so delta_rest plus any
    // already-known half is a lower bound (in FP too: fl is monotone and
    // adding a nonnegative term never shrinks the sum). A candidate whose
    // bound cannot go strictly below δmin can neither win the argmin nor
    // move δmin, so its missing half is never computed (its slots stay NaN
    // and its total reads +inf, which the argmin ignores); when even
    // delta_rest ≥ δmin — e.g. a singleton-free bucket with Δ == 0 — the
    // whole scan is skipped.
    if (delta_rest < delta_min && num_cuts > 0) {
      // Evaluates candidate i against `prune_min`, records both halves
      // (NaN where skipped) for the children, and returns the candidate
      // total (+inf when pruned).
      const auto evaluate = [&, b_begin, b_end](size_t i,
                                                double prune_min) -> double {
        const size_t cut = cut_at[i];
        double left = kUnknown;
        double right = kUnknown;
        if (known != nullptr) (known_is_left ? left : right) = known[i];
        const bool left_known = !std::isnan(left);
        const bool right_known = !std::isnan(right);
        const double bound = delta_rest + (left_known ? left : 0.0) +
                             (right_known ? right : 0.0);
        if (bound >= prune_min) {
          lhalf[i] = left;
          rhalf[i] = right;
          return kPruned;
        }
        if (!left_known) {
          left = AbsDelta(inner, index.Slice(b_begin, cut));
          if (!right_known && delta_rest + left >= prune_min) {
            lhalf[i] = left;
            rhalf[i] = right;
            return kPruned;
          }
        }
        if (!right_known) right = AbsDelta(inner, index.Slice(cut, b_end));
        lhalf[i] = left;
        rhalf[i] = right;
        return delta_rest + left + right;
      };
      // Wide scans fan out over the pool (pruning against the scan-start
      // δmin, which every worker can read race-free); each candidate writes
      // only its own slots and the serial argmin keeps the first-minimum
      // tie-break, so the result never depends on the thread count. Below
      // ~64 candidates the closed-form slice math is cheaper than the
      // dispatch; and when the dispatch would run inline anyway (1-thread
      // pool, or nested inside a pool worker — every bootstrap replicate)
      // skip even the std::function construction: the scan stays heap-free
      // and the running δmin prunes harder, with the identical outcome.
      ThreadPool* pool = ThreadPool::OrDefault(pool_);
      const int64_t n64 = static_cast<int64_t>(num_cuts);
      if (n64 >= 64 && !pool->WouldRunInline(n64)) {
        candidates.resize(num_cuts);
        const double prune_min = delta_min;
        pool->ParallelFor(0, n64, [&](int64_t i) {
          candidates[static_cast<size_t>(i)] =
              evaluate(static_cast<size_t>(i), prune_min);
        });
        for (size_t i = 0; i < num_cuts; ++i) {
          if (candidates[i] < delta_min) {
            delta_min = candidates[i];
            best_index = i;
            found = true;
          }
        }
      } else {
        for (size_t i = 0; i < num_cuts; ++i) {
          const double total = evaluate(i, delta_min);
          if (total < delta_min) {
            delta_min = total;
            best_index = i;
            found = true;
          }
        }
      }
    }

    if (found) {
      // The winner was fully evaluated, so both of its halves are the
      // children's bucket deltas; the other candidates hand their
      // child-side halves (NaN where pruned) down through the arena.
      // (Appends read only the scan-local half arrays plus `cut_at`
      // re-resolved by index, so arena reallocation is safe.)
      //
      // ARENA CAP. The arena is append-only and finished slices are never
      // reclaimed, so a pathological peel-one-run-per-split partition would
      // grow it to O(runs²). Past a generous O(size) budget, children are
      // pushed WITHOUT a memo slice instead — they re-walk their cuts and
      // evaluate both halves fresh, which is bit-identical (the memoized
      // values ARE those expressions' results), just slower — bounding the
      // thread_local scratch's high-water mark. The per-bucket delta is a
      // scalar and is always carried.
      const size_t best_cut = cut_at[best_index];
      const size_t cut_base = work.has_memo ? work.memo_begin : 0;
      const std::vector<size_t>& cut_source = work.has_memo ? memo_cuts : cuts;
      const bool memoize_children = memo_cuts.size() <= 32 * size + 1024;

      PartitionScratch::Bucket left_child;
      left_child.begin = b_begin;
      left_child.end = best_cut;
      left_child.delta = left_half[best_index];
      if (memoize_children) {
        left_child.memo_begin = memo_cuts.size();
        for (size_t i = 0; i < best_index; ++i) {
          const size_t cut = cut_source[cut_base + i];
          memo_cuts.push_back(cut);
          memo_delta.push_back(left_half[i]);
        }
        left_child.memo_end = memo_cuts.size();
        left_child.memo_is_left = true;
        left_child.has_memo = true;
      }

      PartitionScratch::Bucket right_child;
      right_child.begin = best_cut;
      right_child.end = b_end;
      right_child.delta = right_half[best_index];
      if (memoize_children) {
        right_child.memo_begin = memo_cuts.size();
        for (size_t i = best_index + 1; i < num_cuts; ++i) {
          const size_t cut = cut_source[cut_base + i];
          memo_cuts.push_back(cut);
          memo_delta.push_back(right_half[i]);
        }
        right_child.memo_end = memo_cuts.size();
        right_child.memo_is_left = false;
        right_child.has_memo = true;
      }

      todo.push_back(left_child);
      todo.push_back(right_child);
    } else {
      done_delta_sum += b_delta;
      done.push_back({b_begin, b_end});
    }
  }

  std::sort(done.begin(), done.end());
  bounds->clear();
  bounds->push_back(0);
  for (const auto& r : done) bounds->push_back(r.second);
}

BucketSumEstimator::BucketSumEstimator()
    : BucketSumEstimator(std::make_shared<DynamicPartitioner>(),
                         std::make_shared<NaiveEstimator>()) {}

BucketSumEstimator::BucketSumEstimator(
    std::shared_ptr<const BucketPartitioner> partitioner,
    std::shared_ptr<const StatsSumEstimator> inner)
    : partitioner_(std::move(partitioner)), inner_(std::move(inner)) {
  UUQ_CHECK(partitioner_ != nullptr && inner_ != nullptr);
  name_ = "bucket[" + partitioner_->name();
  if (inner_->name() != "naive") name_ += "," + inner_->name();
  name_ += "]";
}

std::string BucketSumEstimator::name() const { return name_; }

void BucketSumEstimator::ComputeBucketsInto(
    const SortedEntityIndex& index, PartitionScratch* partition_scratch,
    std::vector<size_t>* bounds, std::vector<ValueBucket>* out) const {
  partitioner_->PartitionInto(index, *inner_, partition_scratch, bounds);
  out->clear();
  for (size_t i = 0; i + 1 < bounds->size(); ++i) {
    const size_t begin = (*bounds)[i];
    const size_t end = (*bounds)[i + 1];
    if (begin == end) continue;
    out->emplace_back();
    ValueBucket& bucket = out->back();
    bucket.lo = index.entities()[begin].value;
    bucket.hi = index.entities()[end - 1].value;
    bucket.stats = index.Slice(begin, end);
    bucket.estimate = inner_->FromStats(bucket.stats);
  }
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const SortedEntityIndex& index) const {
  PartitionScratch partition_scratch;
  std::vector<size_t> bounds;
  std::vector<ValueBucket> buckets;
  ComputeBucketsInto(index, &partition_scratch, &bounds, &buckets);
  return buckets;
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const IntegratedSample& sample) const {
  return ComputeBuckets(SortedEntityIndex(sample.entities()));
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const ReplicateSample& rep) const {
  static thread_local IndexScratch scratch;
  return ComputeBuckets(scratch.RebuildIndex(rep));
}

namespace {

/// Eq. 11 aggregation shared by the sample and replicate paths. `whole`
/// must be the full-sample stats folded in entity order.
Estimate CombineBuckets(const std::string& estimator_name,
                        const std::vector<ValueBucket>& buckets,
                        const SampleStats& whole) {
  Estimate est;
  est.estimator = estimator_name;
  est.num_buckets = static_cast<int>(buckets.size());
  est.coverage_ok = whole.Coverage() >= 0.4;
  if (buckets.empty()) {
    est.coverage_ok = false;
    return est;
  }

  double delta = 0.0;
  double n_hat = 0.0;
  bool finite = true;
  for (const ValueBucket& b : buckets) {
    delta += b.estimate.delta;
    n_hat += b.estimate.n_hat;
    finite = finite && b.estimate.finite;
  }
  est.delta = delta;
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(whole.c);
  est.missing_value =
      est.missing_count > 0.0 ? delta / est.missing_count : 0.0;
  est.finite = finite && std::isfinite(delta);
  est.corrected_sum = whole.value_sum + delta;
  return est;
}

}  // namespace

Estimate BucketSumEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  return CombineBuckets(name_, ComputeBuckets(sample),
                        SampleStats::FromSample(sample));
}

Estimate BucketSumEstimator::EstimateReplicate(
    const ReplicateSample& rep) const {
  static thread_local IndexScratch scratch;
  return EstimateReplicate(rep, &scratch);
}

Estimate BucketSumEstimator::EstimateReplicate(const ReplicateSample& rep,
                                               IndexScratch* scratch) const {
  UUQ_CHECK(scratch != nullptr);
  const SortedEntityIndex& index = scratch->RebuildIndex(rep);
  ComputeBucketsInto(index, &scratch->partition_, &scratch->bounds_,
                     &scratch->buckets_);
  return CombineBuckets(name_, scratch->buckets_,
                        SampleStats::FromReplicate(rep));
}

}  // namespace uuq
