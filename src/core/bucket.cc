#include "core/bucket.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/macros.h"
#include "common/scratch_metrics.h"
#include "common/thread_pool.h"
#include "core/naive.h"
#include "integration/sample_view.h"

namespace uuq {

SortedEntityIndex::SortedEntityIndex(const std::vector<EntityStat>& entities) {
  points_.reserve(entities.size());
  for (const EntityStat& e : entities) {
    points_.push_back({e.value, e.multiplicity});
  }
  Finalize(/*nearly_sorted=*/false);
}

SortedEntityIndex::SortedEntityIndex(std::vector<EntityPoint> points)
    : points_(std::move(points)) {
  Finalize(/*nearly_sorted=*/false);
}

void SortedEntityIndex::Finalize(bool nearly_sorted) {
  if (!nearly_sorted) {
    std::sort(points_.begin(), points_.end(), PointLess);
  } else {
    // Adaptive insertion sort: a rank-order gather leaves only local
    // inversions (entities whose replicate value moved, multiplicity ties
    // within an equal-value run), so this is O(points + inversions). A
    // pathological replicate burns through the shift budget and falls back
    // to std::sort — same canonical content, bounded worst case.
    size_t budget = 8 * points_.size() + 16;
    bool fell_back = false;
    for (size_t i = 1; !fell_back && i < points_.size(); ++i) {
      if (!PointLess(points_[i], points_[i - 1])) continue;
      const EntityPoint point = points_[i];
      size_t j = i;
      while (j > 0 && PointLess(point, points_[j - 1])) {
        points_[j] = points_[j - 1];
        --j;
        if (--budget == 0) {
          fell_back = true;
          break;
        }
      }
      points_[j] = point;  // restore before any fallback: same multiset
      if (fell_back) std::sort(points_.begin(), points_.end(), PointLess);
    }
  }

  // Running accumulator instead of copy-then-Add: the same fold in the same
  // order (bit-identical prefixes), without re-loading the previous row.
  prefix_.resize(points_.size() + 1);
  SampleStats acc;
  prefix_[0] = acc;
  for (size_t i = 0; i < points_.size(); ++i) {
    acc.Add(points_[i]);
    prefix_[i + 1] = acc;
  }
}

SampleStats SortedEntityIndex::Slice(size_t begin, size_t end) const {
  UUQ_DCHECK(begin <= end && end <= points_.size());
  SampleStats out = prefix_[end];
  const SampleStats& lo = prefix_[begin];
  out.n -= lo.n;
  out.c -= lo.c;
  out.f1 -= lo.f1;
  out.sum_mm1 -= lo.sum_mm1;
  out.value_sum -= lo.value_sum;
  out.value_sum_sq -= lo.value_sum_sq;
  out.singleton_sum -= lo.singleton_sum;
  return out;
}

size_t SortedEntityIndex::UpperBoundOfValueAt(size_t i) const {
  UUQ_DCHECK(i < points_.size());
  const double v = points_[i].value;
  size_t j = i + 1;
  while (j < points_.size() && points_[j].value == v) ++j;
  return j;
}

void SortedEntityIndex::Release() {
  std::vector<EntityPoint>().swap(points_);
  std::vector<SampleStats>().swap(prefix_);
}

namespace {

template <typename T>
int64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.capacity() * sizeof(T));
}

template <typename T>
void ReleaseVector(std::vector<T>* v) {
  std::vector<T>().swap(*v);
}

}  // namespace

IndexScratch::~IndexScratch() {
  if (reported_bytes_ != 0) scratch::AddResidentBytes(-reported_bytes_);
}

int64_t IndexScratch::ApproxBytes() const {
  int64_t bytes = index_.ApproxBytes();
  bytes += VectorBytes(scatter_mult_) + VectorBytes(scatter_value_);
  bytes += VectorBytes(partition_.cuts) + VectorBytes(partition_.left_half) +
           VectorBytes(partition_.right_half) +
           VectorBytes(partition_.candidates) + VectorBytes(partition_.todo) +
           VectorBytes(partition_.done) + VectorBytes(partition_.memo_cuts) +
           VectorBytes(partition_.memo_delta) + VectorBytes(partition_.lane_n) +
           VectorBytes(partition_.lane_c) + VectorBytes(partition_.lane_f1) +
           VectorBytes(partition_.lane_mm1) +
           VectorBytes(partition_.lane_value_sum) +
           VectorBytes(partition_.lane_singleton_sum) +
           VectorBytes(partition_.lane_needed) +
           VectorBytes(partition_.lane_delta) +
           VectorBytes(partition_.lane_map) +
           VectorBytes(partition_.root_left_cache);
  bytes += VectorBytes(bounds_) + VectorBytes(buckets_);
  return bytes;
}

void IndexScratch::Trim() {
  index_.Release();
  ReleaseVector(&scatter_mult_);
  ReleaseVector(&scatter_value_);
  ReleaseVector(&partition_.cuts);
  ReleaseVector(&partition_.left_half);
  ReleaseVector(&partition_.right_half);
  ReleaseVector(&partition_.candidates);
  ReleaseVector(&partition_.todo);
  ReleaseVector(&partition_.done);
  ReleaseVector(&partition_.memo_cuts);
  ReleaseVector(&partition_.memo_delta);
  ReleaseVector(&partition_.lane_n);
  ReleaseVector(&partition_.lane_c);
  ReleaseVector(&partition_.lane_f1);
  ReleaseVector(&partition_.lane_mm1);
  ReleaseVector(&partition_.lane_value_sum);
  ReleaseVector(&partition_.lane_singleton_sum);
  ReleaseVector(&partition_.lane_needed);
  ReleaseVector(&partition_.lane_delta);
  ReleaseVector(&partition_.lane_map);
  ReleaseVector(&partition_.root_left_cache);
  partition_.root_left_cache_valid = false;
  partition_.root_cut_hint = 0;
  ReleaseVector(&bounds_);
  ReleaseVector(&buckets_);
  SyncResidentBytes();
}

void IndexScratch::SyncResidentBytes() {
  const int64_t now = ApproxBytes();
  if (now != reported_bytes_) {
    scratch::AddResidentBytes(now - reported_bytes_);
    reported_bytes_ = now;
  }
}

const SortedEntityIndex& IndexScratch::RebuildIndex(
    const ReplicateSample& rep) {
  // Cooperative trim (scratch_metrics.h): one relaxed load per replicate;
  // the release only runs on the owning thread, right before a rebuild —
  // the one moment dropping the buffers cannot change any result.
  const uint64_t epoch = scratch::TrimEpoch();
  if (epoch != trim_epoch_seen_) {
    trim_epoch_seen_ = epoch;
    Trim();
  }
  index_.Clear();
  const SampleView* view = rep.view;
  const bool incremental =
      view != nullptr && rep.entity_indices.size() == rep.entities.size() &&
      static_cast<size_t>(view->num_entities()) >= rep.entities.size();
  if (!incremental) {
    for (const EntityPoint& point : rep.entities) index_.Append(point);
    index_.Finalize(/*nearly_sorted=*/false);
    SyncResidentBytes();
    return index_;
  }

  // Scatter the replicate into dense per-original-entity columns, then
  // gather in the view's rank order: the result is nearly sorted by
  // replicate value (a replicate perturbs multiplicities, not the entity
  // ordering), so Finalize only fixes up the few points that moved.
  const size_t num_entities = static_cast<size_t>(view->num_entities());
  if (scatter_mult_.size() < num_entities) {
    scatter_mult_.resize(num_entities, 0);
    scatter_value_.resize(num_entities, 0.0);
  }
  int64_t* UUQ_RESTRICT mult = scatter_mult_.data();
  double* UUQ_RESTRICT value = scatter_value_.data();
  for (size_t i = 0; i < rep.entities.size(); ++i) {
    const size_t e = static_cast<size_t>(rep.entity_indices[i]);
    // Build* keeps entity_indices inside the view's entity space; a
    // hand-assembled replicate that sets `view` owns this invariant.
    UUQ_DCHECK(e < num_entities);
    mult[e] = rep.entities[i].multiplicity;
    value[e] = rep.entities[i].value;
  }
  for (int32_t e : view->entity_rank_order()) {
    const size_t idx = static_cast<size_t>(e);
    if (mult[idx] == 0) continue;
    index_.Append({value[idx], mult[idx]});
    mult[idx] = 0;  // restore the resting invariant as we go
  }
  index_.Finalize(/*nearly_sorted=*/true);
  SyncResidentBytes();
  return index_;
}

namespace {

/// |Δ| of a slice, treating non-finite estimates as +infinity so that
/// singleton-only buckets are never attractive to the split search. Uses
/// the delta-only path: no Estimate (and no string) per candidate slice.
/// Shares NormalizedAbsDelta (estimate.h) with the batched kernel contract
/// so the scalar and SoA paths normalize identically by construction.
double AbsDelta(const StatsSumEstimator& inner, const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  return NormalizedAbsDelta(inner.DeltaFromStats(stats));
}

void SingleBucket(size_t size, std::vector<size_t>* bounds) {
  bounds->clear();
  bounds->push_back(0);
  bounds->push_back(size);
}

// Below this many candidates the per-scan fixed costs of the SoA path
// (column growth checks, kernel prologue, vector epilogues) outweigh the
// kernel win; tiny scans take the scalar path instead. Both paths produce
// identical results, so the crossover is pure tuning. Shared by the root
// scan and the mega-batch precompute, which must agree on whether a root
// takes the batched path (a cache for a scalar-path root would go unread).
constexpr size_t kMinBatchCuts = 8;

}  // namespace

std::vector<size_t> BucketPartitioner::Partition(
    const SortedEntityIndex& index, const StatsSumEstimator& inner) const {
  PartitionScratch scratch;
  std::vector<size_t> bounds;
  PartitionInto(index, inner, &scratch, &bounds);
  return bounds;
}

EquiWidthPartitioner::EquiWidthPartitioner(int num_buckets)
    : num_buckets_(num_buckets) {
  UUQ_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
}

std::string EquiWidthPartitioner::name() const {
  return "eq-width-" + std::to_string(num_buckets_);
}

void EquiWidthPartitioner::PartitionInto(const SortedEntityIndex& index,
                                         const StatsSumEstimator& inner,
                                         PartitionScratch* scratch,
                                         std::vector<size_t>* bounds) const {
  UUQ_UNUSED(inner);
  UUQ_UNUSED(scratch);
  const auto& entities = index.entities();
  if (entities.empty()) return SingleBucket(0, bounds);
  const double lo = entities.front().value;
  const double hi = entities.back().value;
  if (num_buckets_ == 1 || hi == lo) {
    return SingleBucket(entities.size(), bounds);
  }

  const double width = (hi - lo) / num_buckets_;
  bounds->clear();
  bounds->push_back(0);
  size_t pos = 0;
  for (int b = 1; b < num_buckets_; ++b) {
    const double boundary = lo + width * b;
    while (pos < entities.size() && entities[pos].value <= boundary) ++pos;
    // Empty buckets collapse (duplicate boundaries are dropped).
    if (pos > bounds->back()) bounds->push_back(pos);
  }
  if (entities.size() > bounds->back()) bounds->push_back(entities.size());
}

EquiHeightPartitioner::EquiHeightPartitioner(int num_buckets)
    : num_buckets_(num_buckets) {
  UUQ_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
}

std::string EquiHeightPartitioner::name() const {
  return "eq-height-" + std::to_string(num_buckets_);
}

void EquiHeightPartitioner::PartitionInto(const SortedEntityIndex& index,
                                          const StatsSumEstimator& inner,
                                          PartitionScratch* scratch,
                                          std::vector<size_t>* bounds) const {
  UUQ_UNUSED(inner);
  UUQ_UNUSED(scratch);
  const size_t size = index.size();
  if (size == 0) return SingleBucket(0, bounds);
  const int k = std::min<int>(num_buckets_, static_cast<int>(size));
  bounds->clear();
  bounds->push_back(0);
  for (int b = 1; b < k; ++b) {
    size_t pos = size * static_cast<size_t>(b) / static_cast<size_t>(k);
    // Entities with equal values must not straddle a boundary (a bucket is a
    // value range); advance to the end of the tied run.
    if (pos > 0 && pos < size &&
        index.entities()[pos].value == index.entities()[pos - 1].value) {
      pos = index.UpperBoundOfValueAt(pos - 1);
    }
    if (pos > bounds->back() && pos < size) bounds->push_back(pos);
  }
  bounds->push_back(size);
}

void DynamicPartitioner::PartitionInto(const SortedEntityIndex& index,
                                       const StatsSumEstimator& inner,
                                       PartitionScratch* scratch,
                                       std::vector<size_t>* bounds) const {
  UUQ_CHECK(scratch != nullptr && bounds != nullptr);
  // One-shot arm: consume the mega-batch root cache unconditionally on
  // entry, whatever path the scan takes below — a cache left armed across
  // calls could describe a different index, and correctness must never
  // depend on the producer/consumer pairing (see PartitionScratch).
  const bool root_cache_armed = scratch->root_left_cache_valid;
  scratch->root_left_cache_valid = false;
  const size_t size = index.size();
  if (size == 0) return SingleBucket(0, bounds);

  constexpr double kUnknown = std::numeric_limits<double>::quiet_NaN();
  constexpr double kPruned = std::numeric_limits<double>::infinity();
  auto& todo = scratch->todo;
  auto& done = scratch->done;
  auto& cuts = scratch->cuts;
  auto& left_half = scratch->left_half;
  auto& right_half = scratch->right_half;
  auto& candidates = scratch->candidates;
  auto& memo_cuts = scratch->memo_cuts;
  auto& memo_delta = scratch->memo_delta;
  todo.clear();
  done.clear();
  memo_cuts.clear();
  memo_delta.clear();

  // delta_min tracks the global objective Σ|Δ(b)| over all current buckets
  // (todo + finalized), exactly as Algorithm 1's δmin. done_delta_sum is
  // the Σ|Δ| of the finalized buckets, accumulated in done-push order —
  // the same left-fold a recomputation loop over `done` would run.
  double delta_min = AbsDelta(inner, index.Slice(0, size));
  double done_delta_sum = 0.0;
  todo.push_back({0, size, delta_min, 0, 0, false, false});

  // FIFO worklist on a flat vector: `head` plays the deque's pop_front, so
  // the split order — and with it every tie-break — matches the historical
  // deque-based traversal while staying allocation-free on reuse.
  for (size_t head = 0; head < todo.size(); ++head) {
    // Bucket-granularity cancellation: a fired token finalizes every
    // pending bucket unsplit, so the bounds below are still a valid
    // partition (just coarser than Algorithm 1's fixpoint) and no scan —
    // and therefore no pool fan-out — starts after the token fires.
    if (cancel_.Fired()) {
      for (size_t i = head; i < todo.size(); ++i) {
        done.push_back({todo[i].begin, todo[i].end});
      }
      break;
    }
    const PartitionScratch::Bucket work = todo[head];  // copy: todo may grow
    const size_t b_begin = work.begin;
    const size_t b_end = work.end;
    // |Δ| of this bucket was evaluated when it was a candidate slice of the
    // parent's scan (same Slice, same DeltaFromStats — bit-identical to
    // recomputing it); the root computed it above.
    const double b_delta = work.delta;
    // Objective contribution of everything except bucket b. Infinity-aware:
    // if b_delta is infinite, the remainder is what other buckets
    // contribute — rebuilt from the memoized per-bucket deltas (bit-
    // identical to re-evaluating every stored range, per the memo
    // invariant) rather than subtracting inf; O(#pending) additions, no
    // slice re-evaluation even on all-infinite inputs.
    double delta_rest;
    if (std::isinf(b_delta) || std::isinf(delta_min)) {
      delta_rest = done_delta_sum;
      for (size_t i = head + 1; i < todo.size(); ++i) {
        delta_rest += todo[i].delta;
      }
      delta_min = delta_rest + b_delta;
    } else {
      delta_rest = delta_min - b_delta;
    }

    // Candidate split points: after each run of equal values. A split never
    // changes run boundaries, so a child inherits its cut list (and the
    // known half-deltas) from the parent scan; only the root walks the
    // index. The arena is append-only and only grows in the split phase
    // below, so these pointers stay valid for the whole scan.
    if (!work.has_memo) {
      cuts.clear();
      size_t cut = b_begin < size ? index.UpperBoundOfValueAt(b_begin) : b_end;
      while (cut < b_end) {
        cuts.push_back(cut);
        cut = index.UpperBoundOfValueAt(cut);
      }
    }
    const size_t num_cuts =
        work.has_memo ? work.memo_end - work.memo_begin : cuts.size();
    // No UUQ_RESTRICT here: cut_at aliases memo_cuts' storage in the memo
    // case, and the split phase below mutates memo_cuts (every read after
    // an append re-resolves by index instead of going through cut_at).
    const size_t* cut_at =
        work.has_memo ? memo_cuts.data() + work.memo_begin : cuts.data();
    const double* known =
        work.has_memo ? memo_delta.data() + work.memo_begin : nullptr;
    const bool known_is_left = work.memo_is_left;

    left_half.resize(num_cuts);
    right_half.resize(num_cuts);
    double* UUQ_RESTRICT lhalf = left_half.data();
    double* UUQ_RESTRICT rhalf = right_half.data();

    bool found = false;
    size_t best_index = 0;
    // PRUNING. Every candidate total is (delta_rest + |Δ(left)|) +
    // |Δ(right)| with both halves nonnegative, so delta_rest plus any
    // already-known half is a lower bound (in FP too: fl is monotone and
    // adding a nonnegative term never shrinks the sum). A candidate whose
    // bound cannot go strictly below δmin can neither win the argmin nor
    // move δmin, so its missing half is never computed (its slots stay NaN
    // and its total reads +inf, which the argmin ignores); when even
    // delta_rest ≥ δmin — e.g. a singleton-free bucket with Δ == 0 — the
    // whole scan is skipped. Tiny scans (< kMinBatchCuts, file scope) take
    // the scalar path instead of the SoA kernel.
    if (delta_rest < delta_min && num_cuts >= kMinBatchCuts &&
        mode_ == SplitScanMode::kBatched) {
      // BATCHED SoA EVALUATION. Three phases per candidate block:
      //
      //  1. GATHER: walk the block's candidates, record known halves, and
      //     write each fresh half's O(1) Slice stats into the SoA columns —
      //     candidate i's LEFT half at lane i, its RIGHT half at lane
      //     num_cuts + i. A half that is already known (inherited from the
      //     parent scan), or whose candidate's known-half bound already
      //     reaches δmin, marks its lane inactive with n = 0 instead; note
      //     a memoized candidate can still need BOTH halves when the
      //     parent pruned it (its inherited slot is NaN). `needed` — what
      //     a fresh half must reach for the candidate to be prunable —
      //     carries a +δmin·1e-12 cushion so a pre-filter certificate also
      //     covers the fl-association noise between the gather's bound sum
      //     and the scalar path's delta_rest + left + right order.
      //  2. KERNEL: one DeltaFromStatsBatch pass per gathered lane range
      //     (the fused, auto-vectorized coverage/γ² chain).
      //  3. FOLD: scatter active lanes back into the half arrays (NaN =
      //     certified-prunable, treated exactly like a bound-pruned half)
      //     and run the serial first-minimum argmin in candidate order.
      //
      // The serial path processes candidates in blocks and REFRESHES the
      // pruning δmin between blocks: pruning against the δmin current at a
      // candidate's block start is valid for the same reason scan-start
      // pruning is (δmin only decreases, so total ≥ block-start δmin
      // implies total ≥ every later δmin — the candidate can neither win
      // the argmin nor move δmin), and it keeps the evaluated-lane count
      // close to the scalar path's running-min sharpness while every
      // evaluation still runs through the SIMD kernel. The pool fan-out
      // path gathers everything against the scan-start δmin instead (every
      // worker reads it race-free) — different lanes evaluated, identical
      // partitions, exactly as PR 4's two pruning flavors.
      const size_t num_lanes = 2 * num_cuts;
      const auto grown = [num_lanes](std::vector<double>& column) {
        if (column.size() < num_lanes) column.resize(num_lanes);
        return column.data();
      };
      double* UUQ_RESTRICT ln = grown(scratch->lane_n);
      double* UUQ_RESTRICT lc = grown(scratch->lane_c);
      double* UUQ_RESTRICT lf1 = grown(scratch->lane_f1);
      double* UUQ_RESTRICT lmm1 = grown(scratch->lane_mm1);
      double* UUQ_RESTRICT lvs = grown(scratch->lane_value_sum);
      double* UUQ_RESTRICT lss = grown(scratch->lane_singleton_sum);
      double* UUQ_RESTRICT lneed = grown(scratch->lane_needed);
      double* lout = grown(scratch->lane_delta);

      // `store_needed` is false on the serial path, which runs the kernel
      // without the pre-filter (see PRE-FILTER ECONOMICS below) and never
      // reads the thresholds. Returns false for a degenerate n == 0 slice
      // (only zero-multiplicity points): the scalar AbsDelta convention
      // (0.0) is recorded directly and the lane must not be evaluated.
      const auto gather = [&](size_t lane, size_t slice_begin,
                              size_t slice_end, double needed,
                              double* half_slot, bool store_needed) {
        const int64_t n = index.SliceColumnsInto(slice_begin, slice_end,
                                                 lane, ln, lc, lf1, lmm1,
                                                 lvs, lss);
        if (n == 0) {
          *half_slot = 0.0;
          return false;
        }
        if (store_needed) lneed[lane] = needed;
        return true;
      };
      // Gathers candidates [cand_begin, cand_end) against `prune_min`;
      // counts the active lanes per side so a side with none (a memoized
      // scan's fully-known side) skips its kernel call outright.
      size_t active_left = 0;
      size_t active_right = 0;
      const auto gather_range = [&](size_t cand_begin, size_t cand_end,
                                    double prune_min, bool store_needed) {
        active_left = 0;
        active_right = 0;
        for (size_t i = cand_begin; i < cand_end; ++i) {
          const size_t cut = cut_at[i];
          double left = kUnknown;
          double right = kUnknown;
          if (known != nullptr) (known_is_left ? left : right) = known[i];
          const bool left_known = !std::isnan(left);
          const bool right_known = !std::isnan(right);
          lhalf[i] = left;
          rhalf[i] = right;
          const double bound = delta_rest + (left_known ? left : 0.0) +
                               (right_known ? right : 0.0);
          // Prunable on known halves alone. STRICTLY greater: prune_min may
          // be probe-seeded (a candidate total, not a folded running min),
          // and a candidate tying the eventual global minimum must stay —
          // the fold's outcome is exactly (global min, its first attainer),
          // which strict pruning can never touch.
          if (bound > prune_min) {
            ln[i] = 0;
            ln[num_cuts + i] = 0;
            continue;
          }
          const double needed = (prune_min - bound) + prune_min * 1e-12;
          if (left_known) {
            ln[i] = 0;
          } else if (gather(i, b_begin, cut, needed, &lhalf[i],
                            store_needed)) {
            ++active_left;  // degenerate n == 0 lanes stay inactive
          }
          if (right_known) {
            ln[num_cuts + i] = 0;
          } else if (gather(num_cuts + i, cut, b_end, needed, &rhalf[i],
                            store_needed)) {
            ++active_right;
          }
        }
      };
      // PRE-FILTER ECONOMICS. Passing the lane thresholds lets the kernel
      // blend NaN over candidates its multiplication-form pre-filter
      // certifies prunable (chao92.h). On the serial replicate path that is
      // a measured net LOSS: the vectorized kernel computes every lane's
      // chain regardless (masking saves no cycles), and a masked half
      // forfeits its memo inheritance — the child scan re-evaluates it as a
      // fresh lane, one extra evaluation per certified candidate that
      // splits. So the hot path passes nullptr (evaluate everything,
      // inherit everything); the wide fan-out path keeps the filter live —
      // its lanes are gathered against the stale scan-start δmin, and a
      // top-level partition runs once per estimate, not once per replicate,
      // so the certified-NaN markers cost nothing measurable there. Either
      // choice is bit-identity-neutral: NaN and bound-pruned halves are
      // handled identically, and certified candidates provably cannot win.
      const auto run_kernel = [&](size_t lane_begin, size_t lane_end,
                                  bool pre_filter) {
        StatsBatchView view;
        view.size = lane_end - lane_begin;
        view.n = ln + lane_begin;
        view.c = lc + lane_begin;
        view.f1 = lf1 + lane_begin;
        view.sum_mm1 = lmm1 + lane_begin;
        view.value_sum = lvs + lane_begin;
        view.singleton_sum = lss + lane_begin;
        inner.DeltaFromStatsBatch(
            view, pre_filter ? lneed + lane_begin : nullptr,
            lout + lane_begin);
      };
      // Scatter + argmin over [cand_begin, cand_end). An active lane's NaN
      // output stays NaN in the half slot: a certified-prunable half is
      // recorded exactly like a bound-pruned one (children recompute it
      // fresh — same expressions, same values).
      const auto fold_range = [&](size_t cand_begin, size_t cand_end) {
        for (size_t i = cand_begin; i < cand_end; ++i) {
          if (ln[i] > 0) lhalf[i] = lout[i];
          if (ln[num_cuts + i] > 0) rhalf[i] = lout[num_cuts + i];
          const double left = lhalf[i];
          const double right = rhalf[i];
          if (std::isnan(left) || std::isnan(right)) continue;  // pruned
          const double total = delta_rest + left + right;
          if (total < delta_min) {
            delta_min = total;
            best_index = i;
            found = true;
          }
        }
      };

      constexpr size_t kScanBlock = 32;
      ThreadPool* pool = ThreadPool::OrDefault(pool_);
      const int64_t pool_blocks =
          static_cast<int64_t>((num_lanes + kScanBlock - 1) / kScanBlock);
      if (pool_blocks >= 4 && !pool->WouldRunInline(pool_blocks)) {
        // Wide top-level scan: gather everything against the scan-start
        // δmin, fan the kernel out over the pool per SIDE — a side with no
        // active lanes (a memoized scan's fully-known side) skips its
        // dispatch outright — then fold serially.
        gather_range(0, num_cuts, delta_min, /*store_needed=*/true);
        const auto fan_out = [&](size_t lane_begin, size_t lane_end) {
          const int64_t blocks = static_cast<int64_t>(
              (lane_end - lane_begin + kScanBlock - 1) / kScanBlock);
          pool->ParallelFor(0, blocks, [&](int64_t blk) {
            const size_t begin =
                lane_begin + static_cast<size_t>(blk) * kScanBlock;
            run_kernel(begin, std::min(lane_end, begin + kScanBlock),
                       /*pre_filter=*/true);
          });
        };
        if (active_left > 0) fan_out(0, num_cuts);
        if (active_right > 0) fan_out(num_cuts, num_lanes);
        fold_range(0, num_cuts);
      } else {
        // Serial (the replicate hot path — no std::function, no pool):
        // block-wise gather/kernel/fold with the δmin refreshed between
        // blocks, so later blocks prune nearly as hard as the scalar
        // running-min loop.
        //
        // PROBE SEEDING. A fresh two-sided scan (the root) starts with
        // δmin = |Δ(whole bucket)|, which is far above the eventual
        // minimum, so the first blocks would evaluate nearly everything.
        // Evaluating ONE central candidate up front gives an upper bound on
        // the scan minimum to prune against from lane one. The probe total
        // is only a PRUNING reference (strictly-greater test above), never
        // folded early: found/best_index/delta_min still come from the
        // in-order fold, so the outcome is unchanged — pruning against any
        // value ≥ the global minimum, strictly, preserves (min, first
        // attainer) exactly.
        double prune_seed = delta_min;
        if (known == nullptr && num_cuts >= 2 * kScanBlock) {
          // Probe the candidate nearest the previous partition's winning
          // root cut (replicates are near-identical workloads), falling
          // back to the middle candidate on the first call.
          size_t probe_index = num_cuts / 2;
          if (scratch->root_cut_hint != 0) {
            const size_t* pos = std::lower_bound(
                cut_at, cut_at + num_cuts, scratch->root_cut_hint);
            probe_index = std::min(static_cast<size_t>(pos - cut_at),
                                   num_cuts - 1);
          }
          const size_t probe_cut = cut_at[probe_index];
          const double probe_total =
              delta_rest + AbsDelta(inner, index.Slice(b_begin, probe_cut)) +
              AbsDelta(inner, index.Slice(probe_cut, b_end));
          if (probe_total < prune_seed) prune_seed = probe_total;
        }
        // TWO-PHASE COMPACT BLOCKS: left halves first, then right lanes
        // only for candidates whose delta_rest + left can still go below
        // the pruning reference — the batched form of the scalar path's
        // intra-candidate prune (and the reason the probe seed bites: at
        // the root no half is known, so the known-half bound can never
        // prune, but a good seed kills most RIGHT halves the moment the
        // left ones come back from the kernel). Surviving lanes are packed
        // COMPACTLY from lane 0 through lane_map, so the kernel touches
        // exactly the lanes that matter. A pruned right half stays NaN,
        // exactly like the scalar path records it.
        //
        // MEGA-BATCH CACHE. When EstimateReplicateBatch precomputed this
        // root's left halves (same gather, same kernel, one call spanning
        // many replicates), phase 1 reads them instead of re-evaluating.
        // Only the root qualifies (head == 0, no inherited memo) and the
        // cut count must agree with the cache length — any mismatch means
        // the cache describes some other index and is ignored. Value-
        // identical by construction: at the root no half is known, so the
        // bound above never prunes a left lane and EVERY left half is the
        // kernel's output for its slice — exactly what the cache holds.
        const double* root_cache =
            (root_cache_armed && head == 0 && !work.has_memo &&
             scratch->root_left_cache.size() == num_cuts)
                ? scratch->root_left_cache.data()
                : nullptr;
        auto& lane_map = scratch->lane_map;
        for (size_t cand = 0; cand < num_cuts; cand += kScanBlock) {
          const size_t cand_end = std::min(num_cuts, cand + kScanBlock);
          const double prune = std::min(prune_seed, delta_min);
          // Phase 1: left lanes (and known-half bookkeeping).
          lane_map.clear();
          for (size_t i = cand; i < cand_end; ++i) {
            const size_t cut = cut_at[i];
            double left = kUnknown;
            double right = kUnknown;
            if (known != nullptr) (known_is_left ? left : right) = known[i];
            lhalf[i] = left;
            rhalf[i] = right;
            const bool left_known = !std::isnan(left);
            const bool right_known = !std::isnan(right);
            const double bound = delta_rest + (left_known ? left : 0.0) +
                                 (right_known ? right : 0.0);
            if (bound > prune || left_known) continue;
            if (root_cache != nullptr) {
              lhalf[i] = root_cache[i];
              continue;
            }
            if (gather(lane_map.size(), b_begin, cut, 0.0, &lhalf[i],
                       false)) {
              lane_map.push_back(static_cast<uint32_t>(i));
            }
          }
          if (!lane_map.empty()) {
            run_kernel(0, lane_map.size(), /*pre_filter=*/false);
            for (size_t k = 0; k < lane_map.size(); ++k) {
              lhalf[lane_map[k]] = lout[k];
            }
          }
          // Phase 2: right lanes, gated on the now-known left halves. A
          // NaN left marks a whole-pruned candidate; delta_rest + left
          // above the reference prunes the right half (the candidate total
          // only adds a nonnegative term, so it cannot come back below).
          lane_map.clear();
          for (size_t i = cand; i < cand_end; ++i) {
            if (!std::isnan(rhalf[i])) continue;  // inherited or recorded
            const double left = lhalf[i];
            if (std::isnan(left) || delta_rest + left > prune) continue;
            if (gather(lane_map.size(), cut_at[i], b_end, 0.0, &rhalf[i],
                       false)) {
              lane_map.push_back(static_cast<uint32_t>(i));
            }
          }
          if (!lane_map.empty()) {
            run_kernel(0, lane_map.size(), /*pre_filter=*/false);
            for (size_t k = 0; k < lane_map.size(); ++k) {
              rhalf[lane_map[k]] = lout[k];
            }
          }
          // Fold: pure in-order argmin (halves already scattered).
          for (size_t i = cand; i < cand_end; ++i) {
            const double left = lhalf[i];
            const double right = rhalf[i];
            if (std::isnan(left) || std::isnan(right)) continue;  // pruned
            const double total = delta_rest + left + right;
            if (total < delta_min) {
              delta_min = total;
              best_index = i;
              found = true;
            }
          }
        }
        // Remember the root's winning cut as the next partition's probe.
        if (head == 0 && found) scratch->root_cut_hint = cut_at[best_index];
      }
    } else if (delta_rest < delta_min && num_cuts > 0) {
      // Evaluates candidate i against `prune_min`, records both halves
      // (NaN where skipped) for the children, and returns the candidate
      // total (+inf when pruned).
      const auto evaluate = [&, b_begin, b_end](size_t i,
                                                double prune_min) -> double {
        const size_t cut = cut_at[i];
        double left = kUnknown;
        double right = kUnknown;
        if (known != nullptr) (known_is_left ? left : right) = known[i];
        const bool left_known = !std::isnan(left);
        const bool right_known = !std::isnan(right);
        const double bound = delta_rest + (left_known ? left : 0.0) +
                             (right_known ? right : 0.0);
        if (bound >= prune_min) {
          lhalf[i] = left;
          rhalf[i] = right;
          return kPruned;
        }
        if (!left_known) {
          left = AbsDelta(inner, index.Slice(b_begin, cut));
          if (!right_known && delta_rest + left >= prune_min) {
            lhalf[i] = left;
            rhalf[i] = right;
            return kPruned;
          }
        }
        if (!right_known) right = AbsDelta(inner, index.Slice(cut, b_end));
        lhalf[i] = left;
        rhalf[i] = right;
        return delta_rest + left + right;
      };
      // Wide scans fan out over the pool (pruning against the scan-start
      // δmin, which every worker can read race-free); each candidate writes
      // only its own slots and the serial argmin keeps the first-minimum
      // tie-break, so the result never depends on the thread count. Below
      // ~64 candidates the closed-form slice math is cheaper than the
      // dispatch; and when the dispatch would run inline anyway (1-thread
      // pool, or nested inside a pool worker — every bootstrap replicate)
      // skip even the std::function construction: the scan stays heap-free
      // and the running δmin prunes harder, with the identical outcome.
      ThreadPool* pool = ThreadPool::OrDefault(pool_);
      const int64_t n64 = static_cast<int64_t>(num_cuts);
      if (n64 >= 64 && !pool->WouldRunInline(n64)) {
        candidates.resize(num_cuts);
        const double prune_min = delta_min;
        pool->ParallelFor(0, n64, [&](int64_t i) {
          candidates[static_cast<size_t>(i)] =
              evaluate(static_cast<size_t>(i), prune_min);
        });
        for (size_t i = 0; i < num_cuts; ++i) {
          if (candidates[i] < delta_min) {
            delta_min = candidates[i];
            best_index = i;
            found = true;
          }
        }
      } else {
        for (size_t i = 0; i < num_cuts; ++i) {
          const double total = evaluate(i, delta_min);
          if (total < delta_min) {
            delta_min = total;
            best_index = i;
            found = true;
          }
        }
      }
    }

    if (found) {
      // The winner was fully evaluated, so both of its halves are the
      // children's bucket deltas; the other candidates hand their
      // child-side halves (NaN where pruned) down through the arena.
      // (Appends read only the scan-local half arrays plus `cut_at`
      // re-resolved by index, so arena reallocation is safe.)
      //
      // ARENA CAP. The arena is append-only and finished slices are never
      // reclaimed, so a pathological peel-one-run-per-split partition would
      // grow it to O(runs²). Past a generous O(size) budget, children are
      // pushed WITHOUT a memo slice instead — they re-walk their cuts and
      // evaluate both halves fresh, which is bit-identical (the memoized
      // values ARE those expressions' results), just slower — bounding the
      // thread_local scratch's high-water mark. The per-bucket delta is a
      // scalar and is always carried.
      const size_t best_cut = cut_at[best_index];
      const size_t cut_base = work.has_memo ? work.memo_begin : 0;
      const std::vector<size_t>& cut_source = work.has_memo ? memo_cuts : cuts;
      const bool memoize_children = memo_cuts.size() <= 32 * size + 1024;

      PartitionScratch::Bucket left_child;
      left_child.begin = b_begin;
      left_child.end = best_cut;
      left_child.delta = left_half[best_index];
      if (memoize_children) {
        left_child.memo_begin = memo_cuts.size();
        for (size_t i = 0; i < best_index; ++i) {
          const size_t cut = cut_source[cut_base + i];
          memo_cuts.push_back(cut);
          memo_delta.push_back(left_half[i]);
        }
        left_child.memo_end = memo_cuts.size();
        left_child.memo_is_left = true;
        left_child.has_memo = true;
      }

      PartitionScratch::Bucket right_child;
      right_child.begin = best_cut;
      right_child.end = b_end;
      right_child.delta = right_half[best_index];
      if (memoize_children) {
        right_child.memo_begin = memo_cuts.size();
        for (size_t i = best_index + 1; i < num_cuts; ++i) {
          const size_t cut = cut_source[cut_base + i];
          memo_cuts.push_back(cut);
          memo_delta.push_back(right_half[i]);
        }
        right_child.memo_end = memo_cuts.size();
        right_child.memo_is_left = false;
        right_child.has_memo = true;
      }

      todo.push_back(left_child);
      todo.push_back(right_child);
    } else {
      done_delta_sum += b_delta;
      done.push_back({b_begin, b_end});
    }
  }

  std::sort(done.begin(), done.end());
  bounds->clear();
  bounds->push_back(0);
  for (const auto& r : done) bounds->push_back(r.second);
}

BucketSumEstimator::BucketSumEstimator()
    : BucketSumEstimator(std::make_shared<DynamicPartitioner>(),
                         std::make_shared<NaiveEstimator>()) {}

BucketSumEstimator::BucketSumEstimator(
    std::shared_ptr<const BucketPartitioner> partitioner,
    std::shared_ptr<const StatsSumEstimator> inner)
    : partitioner_(std::move(partitioner)), inner_(std::move(inner)) {
  UUQ_CHECK(partitioner_ != nullptr && inner_ != nullptr);
  name_ = "bucket[" + partitioner_->name();
  if (inner_->name() != "naive") name_ += "," + inner_->name();
  name_ += "]";
}

std::string BucketSumEstimator::name() const { return name_; }

void BucketSumEstimator::ComputeBucketsInto(
    const SortedEntityIndex& index, PartitionScratch* partition_scratch,
    std::vector<size_t>* bounds, std::vector<ValueBucket>* out) const {
  partitioner_->PartitionInto(index, *inner_, partition_scratch, bounds);
  out->clear();
  for (size_t i = 0; i + 1 < bounds->size(); ++i) {
    const size_t begin = (*bounds)[i];
    const size_t end = (*bounds)[i + 1];
    if (begin == end) continue;
    out->emplace_back();
    ValueBucket& bucket = out->back();
    bucket.lo = index.entities()[begin].value;
    bucket.hi = index.entities()[end - 1].value;
    bucket.stats = index.Slice(begin, end);
    bucket.estimate = inner_->FromStats(bucket.stats);
  }
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const SortedEntityIndex& index) const {
  // Deliberately stack-local (unlike the replicate hot path's thread_local
  // IndexScratch): a one-shot point estimate on a huge index would
  // otherwise pin the memo arena's O(size) high-water allocation to the
  // thread for its lifetime.
  PartitionScratch partition_scratch;
  std::vector<size_t> bounds;
  std::vector<ValueBucket> buckets;
  ComputeBucketsInto(index, &partition_scratch, &bounds, &buckets);
  return buckets;
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const IntegratedSample& sample) const {
  return ComputeBuckets(SortedEntityIndex(sample.entities()));
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const ReplicateSample& rep) const {
  // thread_local: default warm scratch for callers that bring none — one
  // per worker thread keeps the replicate path allocation-free without
  // sharing mutable index state across threads.
  static thread_local IndexScratch scratch;
  return ComputeBuckets(scratch.RebuildIndex(rep));
}

namespace {

/// Eq. 11 aggregation shared by the sample and replicate paths. `whole`
/// must be the full-sample stats folded in entity order.
Estimate CombineBuckets(const std::string& estimator_name,
                        const std::vector<ValueBucket>& buckets,
                        const SampleStats& whole) {
  Estimate est;
  est.estimator = estimator_name;
  est.num_buckets = static_cast<int>(buckets.size());
  est.coverage_ok = whole.Coverage() >= 0.4;
  if (buckets.empty()) {
    est.coverage_ok = false;
    return est;
  }

  double delta = 0.0;
  double n_hat = 0.0;
  bool finite = true;
  for (const ValueBucket& b : buckets) {
    delta += b.estimate.delta;
    n_hat += b.estimate.n_hat;
    finite = finite && b.estimate.finite;
  }
  est.delta = delta;
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(whole.c);
  est.missing_value =
      est.missing_count > 0.0 ? delta / est.missing_count : 0.0;
  est.finite = finite && std::isfinite(delta);
  est.corrected_sum = whole.value_sum + delta;
  return est;
}

}  // namespace

Estimate BucketSumEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  return CombineBuckets(name_, ComputeBuckets(sample),
                        SampleStats::FromSample(sample));
}

Estimate BucketSumEstimator::EstimateImpact(const IntegratedSample& sample,
                                            const SamplePrecomp* pre) const {
  if (pre == nullptr || pre->index == nullptr) return EstimateImpact(sample);
  // pre->index is SortedEntityIndex(sample.entities()) built ahead of time
  // and pre->stats the FromSample fold — the exact expressions the uncached
  // overload evaluates, so this path is bit-identical by construction.
  const SampleStats whole =
      pre->stats != nullptr ? *pre->stats : SampleStats::FromSample(sample);
  return CombineBuckets(name_, ComputeBuckets(*pre->index), whole);
}

Estimate BucketSumEstimator::EstimateReplicate(
    const ReplicateSample& rep) const {
  // thread_local: default warm scratch (same ownership argument as
  // ComputeBuckets above).
  static thread_local IndexScratch scratch;
  return EstimateReplicate(rep, &scratch);
}

Estimate BucketSumEstimator::EstimateReplicate(const ReplicateSample& rep,
                                               IndexScratch* scratch) const {
  UUQ_CHECK(scratch != nullptr);
  const SortedEntityIndex& index = scratch->RebuildIndex(rep);
  ComputeBucketsInto(index, &scratch->partition_, &scratch->bounds_,
                     &scratch->buckets_);
  return CombineBuckets(name_, scratch->buckets_,
                        SampleStats::FromReplicate(rep));
}

Estimate BucketSumEstimator::EstimateReplicateBuilt(
    const ReplicateSample& rep, IndexScratch* scratch) const {
  // The mega-batch pass already rebuilt scratch->index_ for this replicate
  // (and the rebuild is the point of batching: it dominates the non-scan
  // cost); partition + evaluate straight off it.
  ComputeBucketsInto(scratch->index_, &scratch->partition_, &scratch->bounds_,
                     &scratch->buckets_);
  return CombineBuckets(name_, scratch->buckets_,
                        SampleStats::FromReplicate(rep));
}

void BucketSumEstimator::EstimateReplicateBatch(
    const ReplicateSample* const* reps, size_t count,
    double* corrected_sums) const {
  if (count == 0) return;
  // Only the batched dynamic scan can consume the root-scan cache; for any
  // other partitioner — and for a batch of one, where there is nothing to
  // amortize — the one-at-a-time path is the whole story.
  if (count == 1 || !partitioner_->SupportsRootScanCache()) {
    for (size_t i = 0; i < count; ++i) {
      corrected_sums[i] = EstimateReplicate(*reps[i]).corrected_sum;
    }
    return;
  }

  // thread_local: mega-batch scratch — one IndexScratch per in-flight
  // replicate slot plus the shared SoA gather columns and per-replicate
  // lane bookkeeping. Owned by the worker thread running the batch; every
  // rebuild starts from the scratch resting state, so results never depend
  // on prior batches, and nothing here is read cross-thread.
  static thread_local std::deque<IndexScratch> slot_pool;
  static thread_local std::vector<double> col_n, col_c, col_f1;
  static thread_local std::vector<double> col_mm1, col_vs, col_ss, col_out;
  static thread_local std::vector<size_t> lane_begin, cut_count;
  while (slot_pool.size() < count) slot_pool.emplace_back();

  // Phase A: rebuild every replicate's index and gather every root
  // candidate's LEFT slice stats into one shared lane space — the same
  // UpperBoundOfValueAt cut walk and SliceColumnsInto gather the root scan
  // itself runs, so lane values are the root scan's inputs verbatim.
  size_t lane_cap = 0;
  for (size_t k = 0; k < count; ++k) lane_cap += reps[k]->entities.size();
  if (col_n.size() < lane_cap) {
    col_n.resize(lane_cap);
    col_c.resize(lane_cap);
    col_f1.resize(lane_cap);
    col_mm1.resize(lane_cap);
    col_vs.resize(lane_cap);
    col_ss.resize(lane_cap);
    col_out.resize(lane_cap);
  }
  lane_begin.assign(count, 0);
  cut_count.assign(count, 0);
  size_t total_lanes = 0;
  for (size_t k = 0; k < count; ++k) {
    const SortedEntityIndex& index = slot_pool[k].RebuildIndex(*reps[k]);
    const size_t size = index.size();
    lane_begin[k] = total_lanes;
    size_t num_cuts = 0;
    if (size > 0) {
      for (size_t cut = index.UpperBoundOfValueAt(0); cut < size;
           cut = index.UpperBoundOfValueAt(cut)) {
        index.SliceColumnsInto(0, cut, total_lanes + num_cuts, col_n.data(),
                               col_c.data(), col_f1.data(), col_mm1.data(),
                               col_vs.data(), col_ss.data());
        ++num_cuts;
      }
    }
    cut_count[k] = num_cuts;
    total_lanes += num_cuts;
  }

  // One kernel call across every replicate's root lanes (no pre-filter:
  // every value is needed — the cache must hold the exact left halves).
  if (total_lanes > 0) {
    StatsBatchView view;
    view.size = total_lanes;
    view.n = col_n.data();
    view.c = col_c.data();
    view.f1 = col_f1.data();
    view.sum_mm1 = col_mm1.data();
    view.value_sum = col_vs.data();
    view.singleton_sum = col_ss.data();
    inner_->DeltaFromStatsBatch(view, nullptr, col_out.data());
  }

  // Phase B: hand each replicate its root column (only when the root scan
  // will actually take the batched path — below kMinBatchCuts it runs
  // scalar and the cache would go unread) and finish on the normal path,
  // minus the redundant second index rebuild.
  for (size_t k = 0; k < count; ++k) {
    IndexScratch& scratch = slot_pool[k];
    if (cut_count[k] >= kMinBatchCuts) {
      auto& cache = scratch.partition_.root_left_cache;
      cache.assign(col_out.begin() + lane_begin[k],
                   col_out.begin() + lane_begin[k] + cut_count[k]);
      scratch.partition_.root_left_cache_valid = true;
    }
    corrected_sums[k] = EstimateReplicateBuilt(*reps[k], &scratch).corrected_sum;
  }
}

}  // namespace uuq
