#include "core/bucket.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/naive.h"

namespace uuq {

SortedEntityIndex::SortedEntityIndex(const std::vector<EntityStat>& entities) {
  points_.reserve(entities.size());
  for (const EntityStat& e : entities) {
    points_.push_back({e.value, e.multiplicity});
  }
  BuildPrefix();
}

SortedEntityIndex::SortedEntityIndex(std::vector<EntityPoint> points)
    : points_(std::move(points)) {
  BuildPrefix();
}

void SortedEntityIndex::BuildPrefix() {
  std::sort(points_.begin(), points_.end(),
            [](const EntityPoint& a, const EntityPoint& b) {
              return a.value < b.value;
            });
  prefix_.resize(points_.size() + 1);
  for (size_t i = 0; i < points_.size(); ++i) {
    prefix_[i + 1] = prefix_[i];
    prefix_[i + 1].Add(points_[i]);
  }
}

SampleStats SortedEntityIndex::Slice(size_t begin, size_t end) const {
  UUQ_DCHECK(begin <= end && end <= points_.size());
  SampleStats out = prefix_[end];
  const SampleStats& lo = prefix_[begin];
  out.n -= lo.n;
  out.c -= lo.c;
  out.f1 -= lo.f1;
  out.sum_mm1 -= lo.sum_mm1;
  out.value_sum -= lo.value_sum;
  out.value_sum_sq -= lo.value_sum_sq;
  out.singleton_sum -= lo.singleton_sum;
  return out;
}

size_t SortedEntityIndex::UpperBoundOfValueAt(size_t i) const {
  UUQ_DCHECK(i < points_.size());
  const double v = points_[i].value;
  size_t j = i + 1;
  while (j < points_.size() && points_[j].value == v) ++j;
  return j;
}

namespace {

/// |Δ| of a slice, treating non-finite estimates as +infinity so that
/// singleton-only buckets are never attractive to the split search.
double AbsDelta(const StatsSumEstimator& inner, const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  const Estimate est = inner.FromStats(stats);
  if (!std::isfinite(est.delta)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(est.delta);
}

std::vector<size_t> SingleBucket(size_t size) { return {0, size}; }

}  // namespace

EquiWidthPartitioner::EquiWidthPartitioner(int num_buckets)
    : num_buckets_(num_buckets) {
  UUQ_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
}

std::string EquiWidthPartitioner::name() const {
  return "eq-width-" + std::to_string(num_buckets_);
}

std::vector<size_t> EquiWidthPartitioner::Partition(
    const SortedEntityIndex& index, const StatsSumEstimator& inner) const {
  UUQ_UNUSED(inner);
  const auto& entities = index.entities();
  if (entities.empty()) return SingleBucket(0);
  const double lo = entities.front().value;
  const double hi = entities.back().value;
  if (num_buckets_ == 1 || hi == lo) return SingleBucket(entities.size());

  const double width = (hi - lo) / num_buckets_;
  std::vector<size_t> bounds{0};
  size_t pos = 0;
  for (int b = 1; b < num_buckets_; ++b) {
    const double boundary = lo + width * b;
    while (pos < entities.size() && entities[pos].value <= boundary) ++pos;
    // Empty buckets collapse (duplicate boundaries are dropped).
    if (pos > bounds.back()) bounds.push_back(pos);
  }
  if (entities.size() > bounds.back()) bounds.push_back(entities.size());
  return bounds;
}

EquiHeightPartitioner::EquiHeightPartitioner(int num_buckets)
    : num_buckets_(num_buckets) {
  UUQ_CHECK_MSG(num_buckets >= 1, "need at least one bucket");
}

std::string EquiHeightPartitioner::name() const {
  return "eq-height-" + std::to_string(num_buckets_);
}

std::vector<size_t> EquiHeightPartitioner::Partition(
    const SortedEntityIndex& index, const StatsSumEstimator& inner) const {
  UUQ_UNUSED(inner);
  const size_t size = index.size();
  if (size == 0) return SingleBucket(0);
  const int k = std::min<int>(num_buckets_, static_cast<int>(size));
  std::vector<size_t> bounds{0};
  for (int b = 1; b < k; ++b) {
    size_t pos = size * static_cast<size_t>(b) / static_cast<size_t>(k);
    // Entities with equal values must not straddle a boundary (a bucket is a
    // value range); advance to the end of the tied run.
    if (pos > 0 && pos < size &&
        index.entities()[pos].value == index.entities()[pos - 1].value) {
      pos = index.UpperBoundOfValueAt(pos - 1);
    }
    if (pos > bounds.back() && pos < size) bounds.push_back(pos);
  }
  bounds.push_back(size);
  return bounds;
}

std::vector<size_t> DynamicPartitioner::Partition(
    const SortedEntityIndex& index, const StatsSumEstimator& inner) const {
  const size_t size = index.size();
  if (size == 0) return SingleBucket(0);

  struct Range {
    size_t begin;
    size_t end;
  };

  // delta_min tracks the global objective Σ|Δ(b)| over all current buckets
  // (todo + finalized), exactly as Algorithm 1's δmin.
  double delta_min = AbsDelta(inner, index.Slice(0, size));
  std::deque<Range> todo{{0, size}};
  std::vector<Range> final_buckets;

  while (!todo.empty()) {
    const Range b = todo.front();
    todo.pop_front();
    const double b_delta = AbsDelta(inner, index.Slice(b.begin, b.end));
    // Objective contribution of everything except bucket b. Infinity-aware:
    // if b_delta is infinite, the remainder is what other buckets contribute;
    // recompute defensively rather than subtracting inf.
    double delta_rest;
    if (std::isinf(b_delta) || std::isinf(delta_min)) {
      delta_rest = 0.0;
      for (const Range& r : final_buckets) {
        delta_rest += AbsDelta(inner, index.Slice(r.begin, r.end));
      }
      for (const Range& r : todo) {
        delta_rest += AbsDelta(inner, index.Slice(r.begin, r.end));
      }
      delta_min = delta_rest + b_delta;
    } else {
      delta_rest = delta_min - b_delta;
    }

    // Scan candidate split points: after each run of equal values. The
    // candidates are independent slice evaluations, so wide buckets fan out
    // over the pool; the serial argmin below keeps the first-minimum
    // tie-break, so the result never depends on the thread count.
    std::vector<size_t> cuts;
    {
      size_t cut = b.begin < size ? index.UpperBoundOfValueAt(b.begin) : b.end;
      while (cut < b.end) {
        cuts.push_back(cut);
        cut = index.UpperBoundOfValueAt(cut);
      }
    }
    std::vector<double> candidates(cuts.size());
    const auto evaluate = [&](int64_t i) {
      const size_t cut = cuts[static_cast<size_t>(i)];
      candidates[static_cast<size_t>(i)] =
          delta_rest + AbsDelta(inner, index.Slice(b.begin, cut)) +
          AbsDelta(inner, index.Slice(cut, b.end));
    };
    // Below ~64 candidates the closed-form slice math is cheaper than the
    // dispatch; run inline.
    if (cuts.size() >= 64) {
      ThreadPool::OrDefault(pool_)->ParallelFor(
          0, static_cast<int64_t>(cuts.size()), evaluate);
    } else {
      for (int64_t i = 0; i < static_cast<int64_t>(cuts.size()); ++i) {
        evaluate(i);
      }
    }

    bool found = false;
    Range best_left{0, 0}, best_right{0, 0};
    for (size_t i = 0; i < cuts.size(); ++i) {
      if (candidates[i] < delta_min) {
        delta_min = candidates[i];
        best_left = {b.begin, cuts[i]};
        best_right = {cuts[i], b.end};
        found = true;
      }
    }

    if (found) {
      todo.push_back(best_left);
      todo.push_back(best_right);
    } else {
      final_buckets.push_back(b);
    }
  }

  std::vector<size_t> bounds{0};
  std::sort(final_buckets.begin(), final_buckets.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  for (const Range& r : final_buckets) bounds.push_back(r.end);
  return bounds;
}

BucketSumEstimator::BucketSumEstimator()
    : BucketSumEstimator(std::make_shared<DynamicPartitioner>(),
                         std::make_shared<NaiveEstimator>()) {}

BucketSumEstimator::BucketSumEstimator(
    std::shared_ptr<const BucketPartitioner> partitioner,
    std::shared_ptr<const StatsSumEstimator> inner)
    : partitioner_(std::move(partitioner)), inner_(std::move(inner)) {
  UUQ_CHECK(partitioner_ != nullptr && inner_ != nullptr);
}

std::string BucketSumEstimator::name() const {
  std::string n = "bucket[" + partitioner_->name();
  if (inner_->name() != "naive") n += "," + inner_->name();
  return n + "]";
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const SortedEntityIndex& index) const {
  const std::vector<size_t> bounds = partitioner_->Partition(index, *inner_);
  std::vector<ValueBucket> buckets;
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    const size_t begin = bounds[i];
    const size_t end = bounds[i + 1];
    if (begin == end) continue;
    ValueBucket bucket;
    bucket.lo = index.entities()[begin].value;
    bucket.hi = index.entities()[end - 1].value;
    bucket.stats = index.Slice(begin, end);
    bucket.estimate = inner_->FromStats(bucket.stats);
    buckets.push_back(std::move(bucket));
  }
  return buckets;
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const IntegratedSample& sample) const {
  return ComputeBuckets(SortedEntityIndex(sample.entities()));
}

std::vector<ValueBucket> BucketSumEstimator::ComputeBuckets(
    const ReplicateSample& rep) const {
  return ComputeBuckets(SortedEntityIndex(rep.entities));
}

namespace {

/// Eq. 11 aggregation shared by the sample and replicate paths. `whole`
/// must be the full-sample stats folded in entity order.
Estimate CombineBuckets(const std::string& estimator_name,
                        const std::vector<ValueBucket>& buckets,
                        const SampleStats& whole) {
  Estimate est;
  est.estimator = estimator_name;
  est.num_buckets = static_cast<int>(buckets.size());
  est.coverage_ok = whole.Coverage() >= 0.4;
  if (buckets.empty()) {
    est.coverage_ok = false;
    return est;
  }

  double delta = 0.0;
  double n_hat = 0.0;
  bool finite = true;
  for (const ValueBucket& b : buckets) {
    delta += b.estimate.delta;
    n_hat += b.estimate.n_hat;
    finite = finite && b.estimate.finite;
  }
  est.delta = delta;
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(whole.c);
  est.missing_value =
      est.missing_count > 0.0 ? delta / est.missing_count : 0.0;
  est.finite = finite && std::isfinite(delta);
  est.corrected_sum = whole.value_sum + delta;
  return est;
}

}  // namespace

Estimate BucketSumEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  return CombineBuckets(name(), ComputeBuckets(sample),
                        SampleStats::FromSample(sample));
}

Estimate BucketSumEstimator::EstimateReplicate(
    const ReplicateSample& rep) const {
  return CombineBuckets(name(), ComputeBuckets(rep),
                        SampleStats::FromReplicate(rep));
}

}  // namespace uuq
