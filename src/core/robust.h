// A self-switching SUM estimator (the paper's §8 future work: "How to
// develop a robust estimator in all scenarios remains an important area").
//
// RobustSumEstimator inspects the sample with the §6.5 decision rules on
// EVERY call and delegates to the dynamic bucket estimator or the
// Monte-Carlo estimator accordingly; under the coverage gate it still
// answers (bucket) but flags the estimate via coverage_ok = false. This is
// the estimator behind QueryCorrector's kAuto mode, packaged as a reusable
// SumEstimator so it can be swept through experiments like any other.
#ifndef UUQ_CORE_ROBUST_H_
#define UUQ_CORE_ROBUST_H_

#include "core/advisor.h"
#include "core/bucket.h"
#include "core/monte_carlo.h"

namespace uuq {

class RobustSumEstimator final : public SumEstimator {
 public:
  RobustSumEstimator() : RobustSumEstimator(EstimatorAdvisor::Options{}) {}
  explicit RobustSumEstimator(EstimatorAdvisor::Options options)
      : advisor_(options), mc_(options.mc_options) {}

  std::string name() const override { return "robust"; }
  Estimate EstimateImpact(const IntegratedSample& sample) const override;

  /// Columnar replicate path: re-advises per replicate from the columns
  /// (the delegation choice can legitimately flip when a resample draws the
  /// streaker twice) and delegates to the matching columnar estimator.
  bool SupportsReplicates() const override { return true; }
  Estimate EstimateReplicate(const ReplicateSample& rep) const override;

  /// The advice that drove the most recent delegation decision for `sample`
  /// (recomputed; the estimator itself is stateless).
  Advice LastAdviceFor(const IntegratedSample& sample) const {
    return advisor_.Advise(sample);
  }

 private:
  EstimatorAdvisor advisor_;
  BucketSumEstimator bucket_;
  MonteCarloEstimator mc_;
};

}  // namespace uuq

#endif  // UUQ_CORE_ROBUST_H_
