#include "core/bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/bucket.h"

namespace uuq {

SumUpperBound ComputeSumUpperBound(const SampleStats& stats,
                                   const BoundOptions& options) {
  UUQ_CHECK_MSG(options.failure_probability > 0.0 &&
                    options.failure_probability < 1.0,
                "failure probability must be in (0,1)");
  SumUpperBound bound;
  if (stats.empty()) {
    bound.m0_upper = 1.0;
    bound.n_hat_upper = std::numeric_limits<double>::infinity();
    bound.phi_upper = std::numeric_limits<double>::infinity();
    bound.delta_upper = std::numeric_limits<double>::infinity();
    bound.finite = false;
    return bound;
  }

  const double n = static_cast<double>(stats.n);
  constexpr double kTailConstant = 2.0 * M_SQRT2 + 1.7320508075688772;  // 2√2+√3
  const double tail =
      kTailConstant * std::sqrt(std::log(3.0 / options.failure_probability) / n);
  bound.m0_upper = static_cast<double>(stats.f1) / n + tail;

  bound.value_upper = stats.ValueMean() + options.sigma_z * stats.ValueStdDev();

  if (bound.m0_upper >= 1.0) {
    bound.n_hat_upper = std::numeric_limits<double>::infinity();
    bound.phi_upper = std::numeric_limits<double>::infinity();
    bound.delta_upper = std::numeric_limits<double>::infinity();
    bound.finite = false;
    return bound;
  }

  bound.n_hat_upper = static_cast<double>(stats.c) / (1.0 - bound.m0_upper);
  bound.phi_upper = bound.value_upper * bound.n_hat_upper;
  bound.delta_upper = bound.phi_upper - stats.value_sum;
  bound.finite = std::isfinite(bound.phi_upper);
  return bound;
}

SumUpperBound ComputeSumUpperBound(const IntegratedSample& sample,
                                   const BoundOptions& options) {
  return ComputeSumUpperBound(SampleStats::FromSample(sample), options);
}

SumUpperBound ComputeBucketedSumUpperBound(const IntegratedSample& sample,
                                           const BoundOptions& options) {
  const SumUpperBound global = ComputeSumUpperBound(sample, options);
  const BucketSumEstimator bucket_estimator;
  const std::vector<ValueBucket> buckets =
      bucket_estimator.ComputeBuckets(sample);
  if (buckets.size() <= 1) return global;

  // Bonferroni: each per-bucket count bound must hold with δ/k so the sum
  // holds with ≥ 1 − δ overall.
  BoundOptions per_bucket = options;
  per_bucket.failure_probability =
      options.failure_probability / static_cast<double>(buckets.size());

  SumUpperBound combined;
  combined.finite = true;
  double m0_max = 0.0;
  for (const ValueBucket& b : buckets) {
    const SumUpperBound bound = ComputeSumUpperBound(b.stats, per_bucket);
    if (!bound.finite) {
      // A starving bucket ruins the sum; prefer whichever global answer
      // exists.
      return global;
    }
    combined.n_hat_upper += bound.n_hat_upper;
    combined.phi_upper += bound.phi_upper;
    m0_max = std::max(m0_max, bound.m0_upper);
  }
  const SampleStats whole = SampleStats::FromSample(sample);
  combined.m0_upper = m0_max;
  combined.value_upper = combined.n_hat_upper > 0.0
                             ? combined.phi_upper / combined.n_hat_upper
                             : 0.0;
  combined.delta_upper = combined.phi_upper - whole.value_sum;
  combined.finite = std::isfinite(combined.phi_upper);

  // Never report something looser than the plain §4 bound.
  if (global.finite && global.phi_upper < combined.phi_upper) return global;
  return combined;
}

}  // namespace uuq
