#include "core/advisor.h"

#include "core/bucket.h"
#include "stats/coverage.h"

namespace uuq {

const char* EstimatorChoiceName(EstimatorChoice choice) {
  switch (choice) {
    case EstimatorChoice::kCollectMoreData:
      return "collect-more-data";
    case EstimatorChoice::kBucket:
      return "bucket";
    case EstimatorChoice::kMonteCarlo:
      return "monte-carlo";
  }
  return "?";
}

Advice EstimatorAdvisor::Advise(const IntegratedSample& sample) const {
  return Decide(SampleStats::FromSample(sample),
                AnalyzeSourceImbalance(sample, options_.max_share_threshold,
                                       options_.gini_threshold));
}

Advice EstimatorAdvisor::Advise(const ReplicateSample& rep) const {
  // Source imbalance straight from the size column — the same derivation
  // AnalyzeSourceImbalance runs on the materialized source map, minus the
  // ids (the dominant source is named positionally in the rationale).
  return Decide(SampleStats::FromReplicate(rep),
                AnalyzeSourceSizes(rep.source_sizes,
                                   options_.max_share_threshold,
                                   options_.gini_threshold));
}

Advice EstimatorAdvisor::Decide(const SampleStats& stats,
                                const SourceImbalanceReport& imbalance) const {
  Advice advice;
  advice.coverage = stats.Coverage();
  advice.num_sources = imbalance.num_sources;
  advice.streaker_suspected = imbalance.streaker_suspected;

  if (advice.coverage < options_.coverage_threshold) {
    advice.choice = EstimatorChoice::kCollectMoreData;
    advice.rationale =
        "sample coverage " + std::to_string(advice.coverage) +
        " is below the 0.4 reliability gate (Chao92 is inaccurate at very "
        "low coverage); collect more overlapping sources first";
    return advice;
  }
  if (advice.streaker_suspected) {
    advice.choice = EstimatorChoice::kMonteCarlo;
    advice.rationale =
        "source contributions are uneven (dominant source '" +
        imbalance.dominant_source + "' holds " +
        std::to_string(imbalance.max_share) +
        " of observations); Chao92-based estimators assume a sample with "
        "replacement and overestimate under streakers — use Monte-Carlo";
    return advice;
  }
  if (advice.num_sources < options_.min_sources) {
    advice.choice = EstimatorChoice::kMonteCarlo;
    advice.rationale =
        "only " + std::to_string(advice.num_sources) +
        " sources; the with-replacement approximation needs ~5 or more "
        "evenly contributing sources (Appendix E) — use Monte-Carlo";
    return advice;
  }
  advice.choice = EstimatorChoice::kBucket;
  advice.rationale =
      "coverage is sufficient and sources contribute evenly; the dynamic "
      "bucket estimator is the most accurate choice";
  return advice;
}

std::unique_ptr<SumEstimator> EstimatorAdvisor::MakeRecommended(
    const IntegratedSample& sample) const {
  const Advice advice = Advise(sample);
  if (advice.choice == EstimatorChoice::kMonteCarlo) {
    return std::make_unique<MonteCarloEstimator>(options_.mc_options);
  }
  return std::make_unique<BucketSumEstimator>();
}

}  // namespace uuq
