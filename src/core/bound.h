// Estimation-error upper bound for SUM queries (paper §4, Eq. 16-19).
//
// Worst-case count: the McAllester-Schapire tail bound on the Good-Turing
// unseen-mass estimate,
//     M0 ≤ f1/n + (2√2 + √3)·sqrt(ln(3/δ)/n)   w.p. ≥ 1 − δ,
// bounds Chao92 by N̂ ≤ c / (1 − M0_upper) (the γ̂ term only accelerates
// convergence and is omitted asymptotically, per the paper).
//
// Worst-case value: by the CLT the mean-substitution value tends to normal,
// so φD/N ≤ φK/c + z·σK with the three-sigma rule (z = 3, ≈99.9%).
//
// The bound on the ground truth is the product (Eq. 19); it is intentionally
// loose for small n and tightens as data accumulates (Figure 7).
#ifndef UUQ_CORE_BOUND_H_
#define UUQ_CORE_BOUND_H_

#include "core/estimate.h"

namespace uuq {

struct BoundOptions {
  /// δ — failure probability of the Good-Turing tail bound (0.01 → 99%).
  double failure_probability = 0.01;
  /// z — value-bound width in standard deviations (3 → three-sigma rule).
  double sigma_z = 3.0;
};

struct SumUpperBound {
  double m0_upper = 1.0;      ///< worst-case unseen probability mass
  double n_hat_upper = 0.0;   ///< worst-case distinct count c/(1−M0)
  double value_upper = 0.0;   ///< worst-case per-item mean φK/c + z·σK
  double phi_upper = 0.0;     ///< worst-case ground-truth SUM (Eq. 19)
  double delta_upper = 0.0;   ///< phi_upper − φK
  bool finite = false;        ///< false when M0_upper ≥ 1 (n too small)
};

/// Computes the §4 bound from sample statistics.
SumUpperBound ComputeSumUpperBound(const SampleStats& stats,
                                   const BoundOptions& options = {});

/// Convenience overload.
SumUpperBound ComputeSumUpperBound(const IntegratedSample& sample,
                                   const BoundOptions& options = {});

/// A tighter bound in the paper's §8 future-work direction: apply Eq. 19
/// per dynamic bucket and sum. Under publicity-value correlation the
/// per-bucket value spread σ is far smaller than the global one, so the
/// value half of the product shrinks; the count half pays a Bonferroni
/// correction (per-bucket δ' = δ/k) so the SUMMED bound still holds with
/// probability ≥ 1 − δ. Falls back to the global bound when any bucket's
/// count bound is unbounded (tiny buckets) and the global one is finite.
SumUpperBound ComputeBucketedSumUpperBound(const IntegratedSample& sample,
                                           const BoundOptions& options = {});

}  // namespace uuq

#endif  // UUQ_CORE_BOUND_H_
