// Alternative species-richness estimators.
//
// The paper standardizes on Chao92 ("we choose Chao92 since it is more
// robust to a skewed publicity distribution", §3.1.1) but points at the
// wider species-estimation literature [3, 6] as drop-in alternatives for the
// count half of the problem. This module implements the classical ones so
// the choice can be ablated (see bench/ablation_species_estimators):
//
//   Chao1        N̂ = c + f1(f1−1) / (2(f2+1))          (bias-corrected)
//   Jackknife-1  N̂ = c + f1·(n−1)/n
//   Jackknife-2  N̂ = c + f1·(2n−3)/n − f2·(n−2)²/(n(n−1))
//   ACE          abundance-based coverage estimator over the rare classes
//                (counts ≤ 10), with its own CV correction
//
// All take the full f-statistics (ACE needs the whole histogram, not just
// f1/f2) and satisfy N̂ ≥ c on non-degenerate input.
#ifndef UUQ_CORE_SPECIES_H_
#define UUQ_CORE_SPECIES_H_

#include <string>

#include "stats/fstats.h"

namespace uuq {

enum class SpeciesEstimator {
  kChao92,
  kGoodTuring,
  kChao1,
  kJackknife1,
  kJackknife2,
  kAce,
};

const char* SpeciesEstimatorName(SpeciesEstimator estimator);

/// Bias-corrected Chao1 (Chao 1984): uses only f1 and f2.
double Chao1Nhat(const FrequencyStatistics& fstats);

/// First-order jackknife (Burnham & Overton 1978).
double Jackknife1Nhat(const FrequencyStatistics& fstats);

/// Second-order jackknife.
double Jackknife2Nhat(const FrequencyStatistics& fstats);

/// ACE (Chao & Lee 1992 family) with the conventional rare-class cutoff
/// k = 10. Falls back to Chao1 when every class is rare and coverage is 0.
double AceNhat(const FrequencyStatistics& fstats, int rare_cutoff = 10);

/// Dispatch by enum; kChao92/kGoodTuring route to core/chao92.h.
double SpeciesNhat(SpeciesEstimator estimator,
                   const FrequencyStatistics& fstats);

}  // namespace uuq

#endif  // UUQ_CORE_SPECIES_H_
