// Bootstrap confidence intervals for unknown-unknowns-corrected answers.
//
// The paper's §6.5 "Trust In The Results" discussion gives a point estimate
// and a loose worst-case bound; a natural strengthening (and a common
// request for production use) is a resampling interval. Sources are the
// independent sampling units of the §2.2 model, so we bootstrap at SOURCE
// granularity: draw l sources with replacement, replay their observations
// (a resampled source keeps its internal without-replacement property), and
// re-run the estimator. Percentile intervals over B replicates.
//
// ENGINE. Replicates run over the columnar SampleView (sample_view.h): the
// sample is flattened once, each replicate is a vector of source indices,
// and estimators with a columnar path (every built-in SUM estimator)
// evaluate the replicate straight from the value/multiplicity columns — no
// maps, no string keys, no per-replicate Observation copies. Every fusion
// policy folds columnar (kMajority through the per-slot report histogram);
// the bucket estimator additionally reuses a per-thread IndexScratch
// (bucket.h), so a B-replicate run performs zero per-replicate heap
// allocations once warm. Only estimators without a columnar path fall back
// to materializing each replicate (the pre-columnar behaviour,
// byte-for-byte) — and that reference path rebuilds into per-thread
// SampleArena-pooled shells (sample.h) rather than growing a fresh
// IntegratedSample per replicate.
//
// DEGENERATE INPUTS. An all-non-finite replicate set (an estimator whose
// species formula diverges on every resample) degrades the percentile
// interval to [point, point] with `replicates` empty and finite_replicates
// == 0; a sample with fewer than 2 sources short-circuits the jackknife to
// the same degenerate shape without ever evaluating an estimator on the
// empty leave-one-out view.
//
// DETERMINISM. The replicate loop is sharded across the ThreadPool with one
// Rng::Split() stream per replicate, derived in replicate order before the
// parallel section, so intervals are bit-identical for every thread count
// (including UUQ_THREADS=1). Columnar and materialized evaluations produce
// bit-identical replicate estimates for every fusion policy (see
// sample_view.h); the conformance suite pins both paths to each other
// within 1e-9 relative tolerance.
#ifndef UUQ_CORE_BOOTSTRAP_H_
#define UUQ_CORE_BOOTSTRAP_H_

#include <functional>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "core/adaptive_budget.h"
#include "core/estimate.h"
#include "integration/sample_view.h"

namespace uuq {

class ThreadPool;

/// How BootstrapCorrectedSum / JackknifeCorrectedSum evaluate a replicate.
enum class ReplicateEvaluation {
  kAuto,          ///< columnar when the estimator supports replicates, else
                  ///< materialized
  kColumnar,      ///< force the columnar path (aborts when unsupported)
  kMaterialized,  ///< force the materializing reference path
};

struct BootstrapOptions {
  int replicates = 200;
  double confidence = 0.95;  ///< central interval mass
  uint64_t seed = 0xB007ull;
  /// Pool for replicate evaluation; nullptr means ThreadPool::Default().
  /// Replicates run concurrently, each on its own Rng::Split() stream
  /// derived in replicate order, so the interval is bit-identical for every
  /// thread count. `estimator` must tolerate concurrent const calls (every
  /// uuq estimator is stateless and does).
  ThreadPool* pool = nullptr;
  /// kAuto picks the columnar fast path whenever the estimator supports
  /// replicates (every fusion policy evaluates columnar); kMaterialized is
  /// the conformance/debugging reference.
  ReplicateEvaluation evaluation = ReplicateEvaluation::kAuto;
  /// Replicates evaluated per pool task. A block > 1 amortizes the
  /// ParallelFor dispatch and keeps one worker's ReplicateScratch /
  /// IndexScratch / SampleArena hot in cache across consecutive replicates
  /// — the index-rebuild state is rebuilt per replicate either way, but a
  /// blocked task pays its task-claim and closure overhead once per block.
  /// The engine additionally caps the effective block so every pool worker
  /// gets at least ~4 tasks (a wide pool never starves on a handful of
  /// oversized blocks); values < 1 clamp to 1 (the historical
  /// one-task-per-replicate dispatch). Pure scheduling: every replicate
  /// keeps its own pre-derived Rng stream and result slot, so intervals
  /// are bit-identical for every block size and thread count
  /// (bench_bootstrap's verify pass pins block=1 against the default).
  int replicate_block = 8;
  /// Cooperative cancellation, polled before every replicate. When it fires
  /// the engine stops claiming replicates, lets in-flight ones finish
  /// normally (ParallelFor still joins — no task outlives the call), and
  /// returns the degenerate [point, point] interval with `aborted` set.
  /// The default (inert) token costs one null check per replicate and
  /// leaves results bit-identical to a run without a token.
  CancelToken cancel;
  /// Test/chaos hook: invoked with the replicate index before each
  /// replicate is evaluated (on the worker thread that runs it). The
  /// serving fault injector uses it to model slow replicates; it must not
  /// throw and must not touch the replicate's results.
  std::function<void(int64_t)> replicate_probe;
  /// Pilot-then-refine replicate budgeting (core/adaptive_budget.h). When
  /// `adaptive.enabled`, the engine runs a pilot block, estimates the
  /// replicate-mean Monte Carlo half-width z·s/√B from the replicate
  /// spread (a replicate-resolution target, NOT the percentile interval's
  /// own width — see adaptive_budget.h), and escalates B in blocks
  /// until ±epsilon is met or the cap trips. DETERMINISM: replicate b
  /// always evaluates on the b-th Rng::Split() stream of `seed` regardless
  /// of how many escalation rounds preceded it, so the pilot replicates are
  /// a bit-exact prefix of any larger run and an adaptive run that settles
  /// on B replicates is bit-identical to a fixed-B run (every thread count,
  /// every block size). Ignored when `adaptive.enabled` is false.
  AdaptiveBudgetOptions adaptive;
  /// Optional cross-replicate mega-batch evaluator: given `count` built
  /// replicates, writes their corrected estimates into `out[0..count)`.
  /// Callers whose estimator overrides SumEstimator::EstimateReplicateBatch
  /// set this so the engine can gather many replicates' root split scans
  /// into one DeltaFromStatsBatch call (amortizing per-replicate kernel
  /// setup); results MUST be bit-identical to `columnar` per replicate —
  /// the engine freely mixes the two paths. Null means one-at-a-time.
  /// Disabled at runtime by UUQ_MEGA_BATCH=0.
  std::function<void(const ReplicateSample* const*, size_t, double*)>
      columnar_batch;
};

struct BootstrapInterval {
  double point = 0.0;    ///< estimate on the original sample
  double lo = 0.0;       ///< lower percentile bound
  double hi = 0.0;       ///< upper percentile bound
  double median = 0.0;
  int finite_replicates = 0;  ///< replicates with a finite estimate
  std::vector<double> replicates;  ///< all finite replicate values (sorted)
  /// True when BootstrapOptions::cancel fired mid-run: the interval is the
  /// degenerate [point, point] shape (finite_replicates == 0) and carries
  /// no resampling information. Callers that attach intervals to answers
  /// must treat an aborted interval as absent. Exception: an adaptive run
  /// cancelled AFTER at least one escalation round completed returns the
  /// completed-prefix interval (bit-identical to a fixed-B run at that
  /// prefix) with `aborted` false and `adaptive.precision_degraded` true.
  bool aborted = false;
  /// Telemetry from the pilot-then-refine loop (enabled == false when the
  /// run used a fixed budget). See core/adaptive_budget.h.
  AdaptiveBudgetReport adaptive;
};

/// Bootstraps `estimator`'s corrected SUM over source-resampled versions of
/// `sample`. Non-finite replicate estimates (e.g. all-singleton resamples)
/// are dropped; finite_replicates reports how many survived.
///
/// CAVEAT (known cluster-bootstrap bias for richness estimation): drawing a
/// source twice duplicates its claims, which inflates multiplicities and
/// deflates f1, so replicate N̂s — and with them corrected sums — skew LOW
/// relative to the point estimate. Read the percentile interval as a
/// VARIABILITY report, not a coverage-calibrated CI; for a centered
/// interval use JackknifeCorrectedSum below.
BootstrapInterval BootstrapCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        const BootstrapOptions& options = {},
                                        const SamplePrecomp* pre = nullptr);

/// Generic percentile bootstrap over source-resampled replicates: the
/// engine behind BootstrapCorrectedSum and QueryCorrector's COUNT/AVG/
/// MIN/MAX intervals. `columnar` evaluates one replicate from its columns
/// (may be null when the statistic has no columnar form); `materialized`
/// evaluates a materialized replicate and must be provided whenever the
/// columnar path can be ruled out (null `columnar`, or evaluation ==
/// kMaterialized). `point` is the statistic on the original sample and is
/// copied into the interval.
BootstrapInterval BootstrapAggregate(
    const IntegratedSample& sample, double point,
    const std::function<double(const ReplicateSample&)>& columnar,
    const std::function<double(const IntegratedSample&)>& materialized,
    const BootstrapOptions& options = {});

/// Same, reusing an ALREADY-FLATTENED view of `sample` (`view` must have
/// been constructed from this exact sample and outlive the call; nullptr
/// falls back to flattening locally — the uncached path above). SampleView
/// construction is a pure function of the sample, so the two overloads are
/// bit-identical; skipping the per-call flatten is the point of the serving
/// layer's sample-artifact cache (serving/sample_cache.h).
BootstrapInterval BootstrapAggregate(
    const IntegratedSample& sample, const SampleView* view, double point,
    const std::function<double(const ReplicateSample&)>& columnar,
    const std::function<double(const IntegratedSample&)>& materialized,
    const BootstrapOptions& options = {});

/// Source-level resample: draws num_sources() source ids with replacement
/// and replays their observation streams under fresh source identities.
/// Thin adapter over SampleView — one-shot callers only; the bootstrap
/// engine itself reuses the view across replicates and (for supported
/// policies) never materializes at all.
IntegratedSample ResampleSources(const IntegratedSample& sample, Rng* rng);

/// Delete-one-source jackknife: re-estimates with each source left out and
/// derives a normal-approximation interval
///   point ± z · sqrt((l−1)/l · Σ_i (θ_(i) − θ̄)²).
/// Deterministic (no RNG), free of the duplicate-source artifact, O(l)
/// re-estimations run concurrently on `pool` (nullptr → default pool).
/// Leave-one-out replicates evaluate over the columnar view when the
/// estimator and policy allow (`evaluation` mirrors BootstrapOptions).
/// Needs at least 2 sources.
struct JackknifeInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double standard_error = 0.0;
  int sources = 0;
  int finite_replicates = 0;
};

/// `pre` (optional) supplies precomputed artifacts of `sample` — the
/// flattened view and whole-sample stats — which the jackknife consumes
/// instead of recomputing (bit-identical; see SamplePrecomp).
JackknifeInterval JackknifeCorrectedSum(
    const IntegratedSample& sample, const SumEstimator& estimator,
    double z = 1.96, ThreadPool* pool = nullptr,
    ReplicateEvaluation evaluation = ReplicateEvaluation::kAuto,
    const SamplePrecomp* pre = nullptr);

}  // namespace uuq

#endif  // UUQ_CORE_BOOTSTRAP_H_
