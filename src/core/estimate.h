// Estimator currency types: SampleStats (the sufficient statistics every
// estimator consumes) and Estimate (what every estimator produces), plus the
// estimator interfaces.
//
// SampleStats is deliberately a small closed-form scalar summary — n, c, f1,
// Σm(m−1), value sums — because (a) it is all the paper's formulas need and
// (b) it is additive, so the bucket estimator can evaluate value-range slices
// in O(1) from prefix sums.
#ifndef UUQ_CORE_ESTIMATE_H_
#define UUQ_CORE_ESTIMATE_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "integration/sample.h"
#include "integration/sample_view.h"
#include "stats/fstats.h"

namespace uuq {

class SortedEntityIndex;  // core/bucket.h
struct Advice;            // core/advisor.h

/// Sufficient statistics of a sample (or of a value-range slice of one).
struct SampleStats {
  int64_t n = 0;          ///< observations, duplicates included
  int64_t c = 0;          ///< distinct entities
  int64_t f1 = 0;         ///< singletons
  int64_t sum_mm1 = 0;    ///< Σ over entities of m·(m−1) == Σ i(i−1)f_i
  double value_sum = 0.0;      ///< φK over this slice
  double value_sum_sq = 0.0;   ///< Σ value² (for the §4 bound's σK)
  double singleton_sum = 0.0;  ///< φf1 over this slice

  /// Folds one entity in.
  void Add(const EntityPoint& point);
  void Add(const EntityStat& entity) {
    Add(EntityPoint{entity.value, entity.multiplicity});
  }
  /// Component-wise merge of two disjoint slices.
  void Merge(const SampleStats& other);

  static SampleStats FromSample(const IntegratedSample& sample);
  static SampleStats FromEntities(const std::vector<EntityStat>& entities);
  /// Stats of a columnar replicate, accumulated in first-touch entity order
  /// — the same fold FromSample would run on the materialized sample.
  static SampleStats FromReplicate(const ReplicateSample& rep);

  /// Good-Turing coverage Ĉ = 1 − f1/n (Eq. 4); 0 when empty.
  double Coverage() const;
  /// Squared CV estimate γ̂² (Eq. 6); 0 when undefined.
  double Gamma2() const;
  /// Mean fused value over distinct entities (φK / c); 0 when empty.
  double ValueMean() const;
  /// Sample (n−1) standard deviation of fused values; 0 for c < 2.
  double ValueStdDev() const;

  bool empty() const { return n == 0; }
};

/// Structure-of-arrays view over a batch of slice statistics — the currency
/// of the batched split-scan kernel (`StatsSumEstimator::DeltaFromStatsBatch`).
/// Lane i of every column describes one SampleStats; the columns carry
/// exactly the fields the closed-form Δ expressions read (value_sum_sq is
/// deliberately absent — no DeltaFromStats consumes it).
///
/// ALL columns are doubles — including the count fields — so the kernels
/// are single-type, branch-free, auto-vectorizable loops. A count column
/// must hold exactly `static_cast<double>(field)`; since the scalar chain's
/// first touch of every integer field is that same cast, the kernels remain
/// bit-identical to it whenever the cast is value-preserving, i.e. for
/// every count below 2^53 (a ~9·10^15-observation slice; any real sample).
/// All pointers must address at least `size` elements; the view does not
/// own them (the dynamic partitioner gathers into PartitionScratch-pooled
/// columns).
struct StatsBatchView {
  size_t size = 0;
  const double* n = nullptr;
  const double* c = nullptr;
  const double* f1 = nullptr;
  const double* sum_mm1 = nullptr;
  const double* value_sum = nullptr;
  const double* singleton_sum = nullptr;
};

/// The split scan's |Δ| normalization: fabs for finite deltas, +infinity for
/// non-finite ones (singleton-only slices must never look attractive to the
/// split search). Scalar and batched candidate evaluation share this exact
/// function, which is half of the batch kernel's bit-identity contract.
inline double NormalizedAbsDelta(double delta) {
  if (!std::isfinite(delta)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(delta);
}

/// Non-owning bundle of QUERY-INDEPENDENT artifacts derived from one
/// IntegratedSample: its flattened columnar view, the value-sorted entity
/// index, the whole-sample sufficient statistics, and the advisor's verdict.
/// Every member is a pure deterministic function of the sample, so consuming
/// a precomp instead of recomputing is always bit-identical — that is the
/// contract that lets the serving layer build these once per registered
/// sample (serving/sample_cache.h) and share them across queries. All
/// pointers are optional (nullptr = recompute) and borrowed: whoever passes
/// a precomp guarantees the artifacts outlive the call and belong to the
/// SAME sample the call receives.
struct SamplePrecomp {
  const SampleView* view = nullptr;
  const SortedEntityIndex* index = nullptr;  ///< over sample.entities()
  const SampleStats* stats = nullptr;        ///< SampleStats::FromSample
  /// EstimatorAdvisor::Advise output. Advice depends on the advisor's
  /// options too, so the producer must have run the SAME advisor
  /// configuration the consumer would (the serving layer builds artifacts
  /// with its service-wide correction options, which every query reuses).
  const Advice* advice = nullptr;
};

/// What an estimator returns. delta is the paper's Δ̂; the corrected answer
/// is φK + Δ̂ (Eq. 2).
struct Estimate {
  std::string estimator;       ///< producing estimator's name
  double delta = 0.0;          ///< Δ̂(S)
  double corrected_sum = 0.0;  ///< φK + Δ̂
  double n_hat = 0.0;          ///< N̂ (estimated ground-truth distinct count)
  double missing_count = 0.0;  ///< N̂ − c
  double missing_value = 0.0;  ///< per-missing-item value estimate
  bool finite = true;          ///< false when the formula degenerated (n = f1)
  bool coverage_ok = true;     ///< Ĉ ≥ 0.4 recommendation gate (§6.5)
  int num_buckets = 1;         ///< buckets used (1 for non-bucket estimators)
};

/// Estimators of the unknown-unknowns impact Δ on a SUM query.
class SumEstimator {
 public:
  virtual ~SumEstimator() = default;
  virtual std::string name() const = 0;
  virtual Estimate EstimateImpact(const IntegratedSample& sample) const = 0;

  /// Same estimate, optionally consuming precomputed artifacts. Overrides
  /// MUST be bit-identical to EstimateImpact(sample) — a precomp only skips
  /// recomputation of things that are pure functions of the sample. The
  /// base default ignores `pre` entirely (always correct).
  virtual Estimate EstimateImpact(const IntegratedSample& sample,
                                  const SamplePrecomp* pre) const {
    (void)pre;
    return EstimateImpact(sample);
  }

  /// Columnar replicate evaluation — the bootstrap/jackknife hot path. An
  /// estimator that returns true from SupportsReplicates() must make
  /// EstimateReplicate(rep) produce the same Estimate that EstimateImpact
  /// would produce on the materialized IntegratedSample of the same draws
  /// (bit-identical for every fusion policy, kMajority included; see
  /// sample_view.h). Estimators without an override are bootstrapped
  /// through the materializing fallback instead.
  virtual bool SupportsReplicates() const { return false; }
  /// Aborts unless SupportsReplicates() — callers must check first.
  virtual Estimate EstimateReplicate(const ReplicateSample& rep) const;

  /// Cross-replicate mega-batching: evaluate `count` already-built
  /// replicates in one call, writing corrected_sums[i] =
  /// EstimateReplicate(*reps[i]).corrected_sum. An estimator that returns
  /// true from SupportsReplicateBatch() may amortize shared work across the
  /// batch (e.g. the bucket estimator gathers every replicate's root split
  /// scan into one DeltaFromStatsBatch kernel call), but the outputs MUST
  /// be bit-identical to the one-at-a-time path — the adaptive-budget
  /// escalation loop (core/adaptive_budget.h) relies on this to keep
  /// adaptive==fixed bit-identity regardless of how replicates were
  /// grouped. The default loops the scalar path; only meaningful when
  /// SupportsReplicates() is also true.
  virtual bool SupportsReplicateBatch() const { return false; }
  virtual void EstimateReplicateBatch(const ReplicateSample* const* reps,
                                      size_t count,
                                      double* corrected_sums) const;
};

/// Estimators whose math needs only SampleStats (naive, frequency). The
/// bucket estimator runs these on value-range slices.
class StatsSumEstimator : public SumEstimator {
 public:
  virtual Estimate FromStats(const SampleStats& stats) const = 0;

  /// Δ̂ alone, bit-identical to FromStats(stats).delta. The bucket split
  /// scan evaluates thousands of candidate slices per partition and only
  /// reads |Δ|; overriding this skips the full Estimate (and its string
  /// field) on that hot path. The default is the semantics-defining
  /// fallback for estimators that never bothered to specialize.
  ///
  /// CONTRACT: this must be a pure deterministic function of `stats` — the
  /// dynamic partitioner MEMOIZES the values it computed for a parent
  /// bucket's candidate slices and reuses them verbatim in the child scans
  /// (bucket.h), so a stateful or input-order-sensitive implementation
  /// would silently break the memoized-vs-fresh bit-identity guarantee.
  /// (Any return value is legal, non-finite included; the scan's pruning
  /// bound is built on |Δ| after its own fabs/inf normalization.)
  virtual double DeltaFromStats(const SampleStats& stats) const {
    return FromStats(stats).delta;
  }

  /// Batched |Δ| evaluation over SoA columns — the split scan's hot kernel.
  /// One call evaluates every candidate slice of a scan in a single pass
  /// over the columns (auto-vectorizable; no virtual dispatch per lane).
  ///
  /// CONTRACT: for every lane i, out[i] must be the NORMALIZED |Δ| of lane
  /// i's stats — exactly NormalizedAbsDelta(DeltaFromStats(stats_i)), with
  /// 0.0 for empty stats (n == 0) — bit-identical to the scalar chain,
  /// UNLESS `min_needed` is non-null and the implementation can
  /// CONSERVATIVELY certify that the normalized |Δ| is ≥ min_needed[i]; it
  /// may then write NaN instead (the "pruned, value unknown" marker, which
  /// the scan treats exactly like its monotone pruning bound: the candidate
  /// total reads +inf and the memo records the half as never-evaluated). A
  /// certificate must never be wrong — writing NaN for a lane whose true
  /// normalized |Δ| is below its threshold would change partitions. The
  /// same purity requirements as DeltaFromStats apply lane-wise.
  ///
  /// The default loops over the scalar path with no pre-filter — the
  /// semantics-defining fallback for estimators that never specialized.
  /// `min_needed` entries may be anything (±inf, NaN ⇒ never certify).
  virtual void DeltaFromStatsBatch(const StatsBatchView& batch,
                                   const double* min_needed,
                                   double* out) const;

  Estimate EstimateImpact(const IntegratedSample& sample) const override {
    return FromStats(SampleStats::FromSample(sample));
  }
  Estimate EstimateImpact(const IntegratedSample& sample,
                          const SamplePrecomp* pre) const override {
    if (pre != nullptr && pre->stats != nullptr) return FromStats(*pre->stats);
    return EstimateImpact(sample);
  }

  bool SupportsReplicates() const override { return true; }
  Estimate EstimateReplicate(const ReplicateSample& rep) const override {
    return FromStats(SampleStats::FromReplicate(rep));
  }
};

}  // namespace uuq

#endif  // UUQ_CORE_ESTIMATE_H_
