// The headline API: run an aggregate query over an integrated sample and
// attach the unknown-unknowns correction, bound, and advice.
//
//   IntegratedSample sample = ...;                  // from the Integrator
//   QueryCorrector corrector;
//   auto answer = corrector.CorrectSql(sample,
//       "SELECT SUM(employees) FROM us_tech_companies");
//   answer.value().ToString();  // observed, corrected, bound, rationale
//
// Predicates are pushed down by filtering the sample (replaying lineage), so
// species estimation runs over exactly the predicate-satisfying entity class
// — the paper's §2.1 semantics.
#ifndef UUQ_CORE_QUERY_CORRECTION_H_
#define UUQ_CORE_QUERY_CORRECTION_H_

#include <string>

#include "common/cancel.h"
#include "core/advisor.h"
#include "core/bootstrap.h"
#include "core/bound.h"
#include "core/estimate.h"
#include "core/minmax.h"
#include "db/query.h"

namespace uuq {

/// Which SUM estimator backs the correction.
enum class CorrectionEstimator { kAuto, kBucket, kMonteCarlo, kNaive, kFreq };

struct CorrectedAnswer {
  AggregateKind aggregate = AggregateKind::kSum;
  std::string query_text;
  double observed = 0.0;   ///< φK — the closed-world answer
  double corrected = 0.0;  ///< φ̂D = φK + Δ̂
  /// True when the species estimate degenerated to a non-finite value (an
  /// all-singleton sample drives Chao92's coverage term to 0 and N̂ to +inf
  /// — see chao92.cc): nothing constrains the unknown-unknowns impact at
  /// this sample size, so `corrected` falls back to `observed` instead of
  /// reporting inf/NaN. The raw degenerate output stays in `estimate`.
  /// Every produced answer also feeds the process-wide clamp/coverage
  /// counters (core/correction_telemetry.h), so clamp frequency is a
  /// measured output — the accuracy matrix gates it in CI.
  bool unconstrained = false;
  Estimate estimate;       ///< the underlying estimator output
  Advice advice;           ///< §6.5 estimator advice + coverage warning
  /// SUM only: the §4 worst-case bound.
  SumUpperBound bound;
  bool bound_valid = false;
  /// MIN/MAX only: whether the observed extreme is claimed as true.
  bool claim_true_extreme = false;
  ExtremeEstimate extreme;
  /// Set when Options::attach_bootstrap is on: percentile interval of the
  /// corrected answer (SUM/COUNT/AVG) or of the observed extreme (MIN/MAX)
  /// over source-resampled replicates, evaluated on the columnar engine.
  bool bootstrap_valid = false;
  double bootstrap_confidence = 0.0;
  BootstrapInterval bootstrap;
  /// True when Options::cancel fired while the interval was being
  /// resampled: the point estimate above is complete and exact, but the
  /// interval was abandoned (bootstrap_valid stays false — the degenerate
  /// interval carries no information). The serving layer reports this as
  /// the point-only degradation level.
  bool bootstrap_aborted = false;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

class QueryCorrector {
 public:
  struct Options {
    CorrectionEstimator estimator = CorrectionEstimator::kAuto;
    EstimatorAdvisor::Options advisor;
    BoundOptions bound;
    double minmax_claim_threshold = 0.5;
    /// Attach a source-resampling bootstrap interval to every corrected
    /// answer (columnar replicate engine; see bootstrap.h). Off by default
    /// — B replicate re-estimations per query.
    bool attach_bootstrap = false;
    BootstrapOptions bootstrap;
    /// Pool for every parallel engine the correction drives: the dynamic
    /// split scan, the MC grid, and the bootstrap replicate loop. nullptr
    /// means ThreadPool::Default() (the standalone behaviour); the serving
    /// layer hands each worker its private slice pool here so concurrent
    /// queries share the box instead of oversubscribing it (thread_pool.h,
    /// POOL SHARING). Pure scheduling — results are bit-identical for any
    /// pool. Engine options that carry their own pool (bootstrap.pool,
    /// advisor.mc_options.pool) win when explicitly set.
    ThreadPool* pool = nullptr;
    /// Cooperative cancellation for the whole correction. The token is
    /// threaded into every long-running engine the query touches: the
    /// dynamic split scan (per bucket), the MC grid (per point), and the
    /// bootstrap loop (per replicate). Firing during the POINT estimate
    /// fails the query with the token's typed status (kCancelled /
    /// kDeadlineExceeded — there is nothing safe to report). Firing during
    /// the INTERVAL depends on the reason: deadline expiry keeps the exact
    /// point estimate and sets CorrectedAnswer::bootstrap_aborted (the
    /// caller is late but still listening), while explicit cancellation
    /// fails with kCancelled (nobody wants any answer). The inert default
    /// token leaves every result bit-identical to an uncancellable run.
    CancelToken cancel;
  };

  QueryCorrector() : QueryCorrector(Options{}) {}
  explicit QueryCorrector(Options options) : options_(std::move(options)) {}

  /// Corrects a bare aggregate (no predicate) over the sample. `pre`
  /// (optional) supplies precomputed artifacts of THIS sample — flattened
  /// view, sorted index, whole-sample stats, advisor verdict — which the
  /// correction consumes instead of recomputing. Bit-identical either way
  /// (every artifact is a pure function of the sample); the serving layer's
  /// sample cache is the intended producer (serving/sample_cache.h).
  Result<CorrectedAnswer> Correct(const IntegratedSample& sample,
                                  AggregateKind aggregate,
                                  const SamplePrecomp* pre = nullptr) const;

  /// Parses SQL of the paper's query shape; the table name is recorded but
  /// not resolved (the sample IS the table). WHERE predicates may reference
  /// the integrated view's columns: entity, value, observations, category.
  /// Grouped queries must go through CorrectGroupedSql. `pre` describes the
  /// UNFILTERED sample, so it only accelerates predicate-free queries — a
  /// WHERE clause produces a fresh filtered sample and runs uncached.
  Result<CorrectedAnswer> CorrectSql(const IntegratedSample& sample,
                                     const std::string& sql,
                                     const SamplePrecomp* pre = nullptr) const;

  /// Grouped correction: `... GROUP BY category` runs the full correction
  /// machinery once per category sub-sample — species estimation happens
  /// inside each group, extending the paper's §5 reasoning to grouped
  /// aggregates. Only the `category` column can be grouped on (grouping by
  /// `value` would conflict with the bucket estimator's own value
  /// partitioning; grouping by `entity` makes every group a single row).
  struct GroupedCorrectedAnswer {
    std::string query_text;
    std::vector<std::pair<std::string, CorrectedAnswer>> groups;
    std::string ToString() const;
  };
  Result<GroupedCorrectedAnswer> CorrectGroupedSql(
      const IntegratedSample& sample, const std::string& sql) const;

 private:
  Result<CorrectedAnswer> CorrectFiltered(const IntegratedSample& sample,
                                          AggregateKind aggregate,
                                          std::string query_text,
                                          const SamplePrecomp* pre) const;

  Options options_;
};

}  // namespace uuq

#endif  // UUQ_CORE_QUERY_CORRECTION_H_
