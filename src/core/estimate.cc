#include "core/estimate.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "stats/coverage.h"

namespace uuq {

void SampleStats::Add(const EntityPoint& point) {
  const int64_t m = point.multiplicity;
  if (m <= 0) return;
  n += m;
  c += 1;
  if (m == 1) {
    f1 += 1;
    singleton_sum += point.value;
  }
  sum_mm1 += m * (m - 1);
  value_sum += point.value;
  value_sum_sq += point.value * point.value;
}

void SampleStats::Merge(const SampleStats& other) {
  n += other.n;
  c += other.c;
  f1 += other.f1;
  sum_mm1 += other.sum_mm1;
  value_sum += other.value_sum;
  value_sum_sq += other.value_sum_sq;
  singleton_sum += other.singleton_sum;
}

SampleStats SampleStats::FromSample(const IntegratedSample& sample) {
  return FromEntities(sample.entities());
}

SampleStats SampleStats::FromEntities(
    const std::vector<EntityStat>& entities) {
  SampleStats stats;
  for (const EntityStat& e : entities) stats.Add(e);
  return stats;
}

SampleStats SampleStats::FromReplicate(const ReplicateSample& rep) {
  SampleStats stats;
  for (const EntityPoint& point : rep.entities) stats.Add(point);
  return stats;
}

void StatsSumEstimator::DeltaFromStatsBatch(const StatsBatchView& batch,
                                            const double* min_needed,
                                            double* out) const {
  // Semantics-defining fallback: the scalar chain per lane, no pre-filter
  // (ignoring min_needed is always legal — it only licenses skipping).
  // Count columns round-trip through the view's cast convention
  // (static_cast<double> of the field, exact below 2^53 — see
  // StatsBatchView), so the reconstructed stats equal the originals.
  UUQ_UNUSED(min_needed);
  for (size_t i = 0; i < batch.size; ++i) {
    if (batch.n[i] == 0.0) {
      out[i] = 0.0;
      continue;
    }
    SampleStats stats;
    stats.n = static_cast<int64_t>(batch.n[i]);
    stats.c = static_cast<int64_t>(batch.c[i]);
    stats.f1 = static_cast<int64_t>(batch.f1[i]);
    stats.sum_mm1 = static_cast<int64_t>(batch.sum_mm1[i]);
    stats.value_sum = batch.value_sum[i];
    stats.singleton_sum = batch.singleton_sum[i];
    out[i] = NormalizedAbsDelta(DeltaFromStats(stats));
  }
}

void SumEstimator::EstimateReplicateBatch(const ReplicateSample* const* reps,
                                          size_t count,
                                          double* corrected_sums) const {
  // Semantics-defining fallback: the scalar replicate path per entry. An
  // override may share work across the batch but must match this bit for
  // bit (see the header contract).
  for (size_t i = 0; i < count; ++i) {
    corrected_sums[i] = EstimateReplicate(*reps[i]).corrected_sum;
  }
}

Estimate SumEstimator::EstimateReplicate(const ReplicateSample& rep) const {
  UUQ_UNUSED(rep);
  UUQ_CHECK_MSG(false,
                "estimator has no columnar replicate path; check "
                "SupportsReplicates() and use the materializing fallback");
  return Estimate{};
}

double SampleStats::Coverage() const {
  // One division only — identical to FusedCoverageGamma's coverage field,
  // but callers that need just Ĉ (the per-bucket coverage_ok gate) should
  // not pay the chain's c/Ĉ and dispersion divisions.
  if (n == 0) return 0.0;
  return std::clamp(1.0 - static_cast<double>(f1) / static_cast<double>(n),
                    0.0, 1.0);
}

double SampleStats::Gamma2() const {
  // γ̂² consumes the whole chain, so the fused form wastes nothing here.
  return FusedCoverageGamma(n, c, f1, sum_mm1).gamma2;
}

double SampleStats::ValueMean() const {
  return c == 0 ? 0.0 : value_sum / static_cast<double>(c);
}

double SampleStats::ValueStdDev() const {
  if (c < 2) return 0.0;
  const double mean = ValueMean();
  // Guard tiny negative values from catastrophic cancellation.
  const double variance = std::max(
      (value_sum_sq - static_cast<double>(c) * mean * mean) /
          static_cast<double>(c - 1),
      0.0);
  return std::sqrt(variance);
}

}  // namespace uuq
