#include "core/estimate.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "stats/coverage.h"

namespace uuq {

void SampleStats::Add(const EntityPoint& point) {
  const int64_t m = point.multiplicity;
  if (m <= 0) return;
  n += m;
  c += 1;
  if (m == 1) {
    f1 += 1;
    singleton_sum += point.value;
  }
  sum_mm1 += m * (m - 1);
  value_sum += point.value;
  value_sum_sq += point.value * point.value;
}

void SampleStats::Merge(const SampleStats& other) {
  n += other.n;
  c += other.c;
  f1 += other.f1;
  sum_mm1 += other.sum_mm1;
  value_sum += other.value_sum;
  value_sum_sq += other.value_sum_sq;
  singleton_sum += other.singleton_sum;
}

SampleStats SampleStats::FromSample(const IntegratedSample& sample) {
  return FromEntities(sample.entities());
}

SampleStats SampleStats::FromEntities(
    const std::vector<EntityStat>& entities) {
  SampleStats stats;
  for (const EntityStat& e : entities) stats.Add(e);
  return stats;
}

SampleStats SampleStats::FromReplicate(const ReplicateSample& rep) {
  SampleStats stats;
  for (const EntityPoint& point : rep.entities) stats.Add(point);
  return stats;
}

Estimate SumEstimator::EstimateReplicate(const ReplicateSample& rep) const {
  UUQ_UNUSED(rep);
  UUQ_CHECK_MSG(false,
                "estimator has no columnar replicate path; check "
                "SupportsReplicates() and use the materializing fallback");
  return Estimate{};
}

double SampleStats::Coverage() const {
  if (n == 0) return 0.0;
  return std::clamp(1.0 - static_cast<double>(f1) / static_cast<double>(n),
                    0.0, 1.0);
}

double SampleStats::Gamma2() const {
  if (n < 2) return 0.0;
  const double coverage = Coverage();
  if (coverage <= 0.0) return 0.0;
  const double dispersion = static_cast<double>(sum_mm1) /
                            (static_cast<double>(n) * (n - 1));
  return std::max((static_cast<double>(c) / coverage) * dispersion - 1.0, 0.0);
}

double SampleStats::ValueMean() const {
  return c == 0 ? 0.0 : value_sum / static_cast<double>(c);
}

double SampleStats::ValueStdDev() const {
  if (c < 2) return 0.0;
  const double mean = ValueMean();
  // Guard tiny negative values from catastrophic cancellation.
  const double variance = std::max(
      (value_sum_sq - static_cast<double>(c) * mean * mean) /
          static_cast<double>(c - 1),
      0.0);
  return std::sqrt(variance);
}

}  // namespace uuq
