// The frequency estimator (paper §3.2, Eq. 9): like the naive estimator but
// substitutes the mean value of the SINGLETONS for missing items —
// singletons are the best proxy for what is still unobserved, and popular
// high-impact items rarely stay singletons for long.
//
//   Δ_freq = (φf1 / f1) · (N̂_Chao92 − c) = φf1 · (c + γ̂²·n) / (n − f1)
//
// With γ̂² forced to 0 this degenerates to the pure Good-Turing form
// Δ = φf1 · c / (n − f1) (Eq. 10), also provided.
#ifndef UUQ_CORE_FREQUENCY_H_
#define UUQ_CORE_FREQUENCY_H_

#include "core/estimate.h"

namespace uuq {

class FrequencyEstimator final : public StatsSumEstimator {
 public:
  /// `assume_uniform` = true forces γ̂² = 0 (the Eq. 10 Good-Turing form).
  explicit FrequencyEstimator(bool assume_uniform = false)
      : assume_uniform_(assume_uniform) {}

  std::string name() const override {
    return assume_uniform_ ? "freq-gt" : "freq";
  }
  Estimate FromStats(const SampleStats& stats) const override;
  double DeltaFromStats(const SampleStats& stats) const override;
  /// Fused coverage/γ² chain per lane + the multiplication-form pre-filter
  /// (Chao92PreFilterCertifies with scaled_mass = |φf1|·c, valid for both
  /// the Chao92 and the γ̂²-free Good-Turing form); bit-identical to the
  /// scalar chain on every evaluated lane.
  void DeltaFromStatsBatch(const StatsBatchView& batch,
                           const double* min_needed,
                           double* out) const override;

 private:
  bool assume_uniform_;
};

}  // namespace uuq

#endif  // UUQ_CORE_FREQUENCY_H_
