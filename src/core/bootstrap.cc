#include "core/bootstrap.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "stats/descriptive.h"

namespace uuq {

IntegratedSample ResampleSources(const IntegratedSample& sample, Rng* rng) {
  UUQ_CHECK(rng != nullptr);
  // Thin adapter over the columnar engine: the view supplies both the draw
  // (same Rng consumption as the historical map-based body) and the
  // materialization (same "bs<draw>" replay, any fusion policy).
  const SampleView view(sample);
  std::vector<int32_t> draws;
  view.DrawBootstrapSources(rng, &draws);
  return view.MaterializeReplicate(draws);
}

namespace {

/// Decides whether the columnar path may serve this run; aborts when the
/// caller forced an unavailable path.
bool ResolveColumnar(ReplicateEvaluation evaluation, bool estimator_supports,
                     FusionPolicy policy, bool has_materialized) {
  const bool available =
      estimator_supports && SampleView::PolicySupportsColumnar(policy);
  if (evaluation == ReplicateEvaluation::kColumnar) {
    UUQ_CHECK_MSG(available,
                  "columnar evaluation forced but the estimator has no "
                  "replicate path");
    return true;
  }
  const bool columnar =
      evaluation != ReplicateEvaluation::kMaterialized && available;
  UUQ_CHECK_MSG(columnar || has_materialized,
                "no usable replicate evaluator (columnar unavailable and no "
                "materialized fallback)");
  return columnar;
}

/// Sorts the finite replicate values into a percentile interval.
BootstrapInterval PercentileInterval(double point,
                                     const std::vector<double>& values,
                                     double confidence) {
  BootstrapInterval interval;
  interval.point = point;
  interval.replicates.reserve(values.size());
  for (double value : values) {
    if (std::isfinite(value)) interval.replicates.push_back(value);
  }
  interval.finite_replicates = static_cast<int>(interval.replicates.size());
  // Every replicate non-finite (e.g. an estimator whose species formula
  // diverges on every resample): there is nothing to take a quantile of —
  // Quantile on an empty vector would be meaningless — so degrade to the
  // degenerate [point, point] interval with `replicates` left empty and
  // finite_replicates == 0 (the caller's signal that the interval carries
  // no resampling information).
  if (interval.replicates.empty()) {
    interval.lo = interval.hi = interval.median = interval.point;
    return interval;
  }
  std::sort(interval.replicates.begin(), interval.replicates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = Quantile(interval.replicates, alpha);
  interval.hi = Quantile(interval.replicates, 1.0 - alpha);
  interval.median = Quantile(interval.replicates, 0.5);
  return interval;
}

}  // namespace

BootstrapInterval BootstrapAggregate(
    const IntegratedSample& sample, double point,
    const std::function<double(const ReplicateSample&)>& columnar,
    const std::function<double(const IntegratedSample&)>& materialized,
    const BootstrapOptions& options) {
  return BootstrapAggregate(sample, /*view=*/nullptr, point, columnar,
                            materialized, options);
}

BootstrapInterval BootstrapAggregate(
    const IntegratedSample& sample, const SampleView* pre_view, double point,
    const std::function<double(const ReplicateSample&)>& columnar,
    const std::function<double(const IntegratedSample&)>& materialized,
    const BootstrapOptions& options) {
  UUQ_CHECK_MSG(options.replicates > 0, "need at least one replicate");
  UUQ_CHECK_MSG(options.confidence > 0.0 && options.confidence < 1.0,
                "confidence must be in (0,1)");
  const bool use_columnar =
      ResolveColumnar(options.evaluation, columnar != nullptr,
                      sample.policy(), materialized != nullptr);

  // Flattened once per sample: a caller-supplied view (the serving cache's
  // per-registered-sample artifact) is reused as-is; otherwise flatten here
  // — the uncached fallback. The view is a pure function of the sample, so
  // both paths drive the exact same replicate arithmetic.
  std::optional<SampleView> local_view;
  if (pre_view == nullptr) local_view.emplace(sample);
  const SampleView& view = pre_view != nullptr ? *pre_view : *local_view;

  // One pre-derived Rng stream per replicate (derived in replicate order)
  // and one result slot per replicate: the values — and therefore the
  // percentiles — are bit-identical for any thread count. Tasks claim
  // BLOCKS of consecutive replicates (options.replicate_block) so the
  // dispatch overhead and a worker's warm scratch amortize across the
  // block; the per-replicate work is untouched, so the block size is
  // invisible in the results.
  Rng root(options.seed);
  const std::vector<Rng> streams = root.SplitStreams(options.replicates);

  const int64_t replicates = options.replicates;
  // The requested block amortizes dispatch, but must never starve a wide
  // pool: cap it so every worker gets ~4 tasks to claim (a 16-thread pool
  // with B=48 runs block=1, i.e. the historical one-task-per-replicate
  // dispatch; the 1-thread replicate hot path keeps the full block).
  ThreadPool* pool = ThreadPool::OrDefault(options.pool);
  const int64_t per_worker_cap = std::max<int64_t>(
      1, replicates / (4 * static_cast<int64_t>(pool->num_threads())));
  const int64_t block = std::min<int64_t>(
      std::max(1, options.replicate_block), per_worker_cap);
  const int64_t num_blocks = (replicates + block - 1) / block;
  std::vector<double> values(static_cast<size_t>(replicates));
  // Cooperative abort flag. Relaxed is sufficient: it only SKIPS remaining
  // replicates (a delayed observation just runs one more, same as any
  // interleaving), and the final read below happens after ParallelFor's
  // join, which already orders every task's stores before it.
  std::atomic<bool> aborted{false};
  pool->ParallelFor(0, num_blocks, [&](int64_t blk) {
        const int64_t begin = blk * block;
        const int64_t end = std::min(replicates, begin + block);
        for (int64_t b = begin; b < end; ++b) {
          // Replicate-granularity cancellation: a fired token stops this
          // task before the next replicate; replicates already in flight on
          // other workers finish normally and ParallelFor joins them all,
          // so no task ever outlives this call. The inert default token
          // makes this a null check — the uncancelled run is untouched.
          if (aborted.load(std::memory_order_relaxed) ||
              options.cancel.Fired()) {
            aborted.store(true, std::memory_order_relaxed);
            return;
          }
          if (options.replicate_probe) options.replicate_probe(b);
          Rng rng = streams[static_cast<size_t>(b)];
          if (use_columnar) {
            // thread_local: worker-local replicate buffers — resting-state
            // scratch (sample_view.h) makes reuse across replicates, views,
            // and pools safe, and per-thread ownership keeps the warm path
            // allocation-free without any locking.
            thread_local ReplicateScratch scratch;
            thread_local ReplicateSample rep;
            view.DrawBootstrapSources(&rng, &scratch.draws());
            view.BuildReplicate(scratch.draws(), &scratch, &rep);
            values[static_cast<size_t>(b)] = columnar(rep);
            continue;
          }
          // Materializing reference path: rebuild into a pooled sample
          // (identical to a fresh one through every accessor) instead of
          // growing a new IntegratedSample per replicate. The arena hands
          // nested evaluations their own sample, so a `materialized`
          // callback that itself bootstraps stays correct.
          // thread_local: per-worker arena/draw pools — LIFO lease reuse is
          // only race-free because no other thread ever touches them.
          thread_local SampleArena arena;
          thread_local std::vector<int32_t> draws;
          view.DrawBootstrapSources(&rng, &draws);
          const SampleArena::Lease lease = arena.Acquire(view.policy());
          view.MaterializeReplicateInto(draws, lease.get());
          values[static_cast<size_t>(b)] = materialized(*lease);
        }
      });
  if (aborted.load(std::memory_order_relaxed)) {
    // Skipped slots hold meaningless zeros, so never take quantiles over a
    // cancelled run: degrade to the same [point, point] shape as the
    // all-non-finite case and flag it.
    BootstrapInterval interval;
    interval.point = point;
    interval.lo = interval.hi = interval.median = point;
    interval.aborted = true;
    return interval;
  }
  return PercentileInterval(point, values, options.confidence);
}

BootstrapInterval BootstrapCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        const BootstrapOptions& options,
                                        const SamplePrecomp* pre) {
  const double point = estimator.EstimateImpact(sample, pre).corrected_sum;
  std::function<double(const ReplicateSample&)> columnar;
  if (estimator.SupportsReplicates()) {
    columnar = [&estimator](const ReplicateSample& rep) {
      return estimator.EstimateReplicate(rep).corrected_sum;
    };
  }
  return BootstrapAggregate(
      sample, pre != nullptr ? pre->view : nullptr, point, columnar,
      [&estimator](const IntegratedSample& resampled) {
        return estimator.EstimateImpact(resampled).corrected_sum;
      },
      options);
}

JackknifeInterval JackknifeCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        double z, ThreadPool* pool,
                                        ReplicateEvaluation evaluation,
                                        const SamplePrecomp* pre) {
  JackknifeInterval interval;
  interval.point = estimator.EstimateImpact(sample, pre).corrected_sum;
  interval.sources = static_cast<int>(sample.num_sources());
  interval.lo = interval.hi = interval.point;
  // num_sources() <= 1 is structurally degenerate: with one source the only
  // leave-one-out replicate is the EMPTY sample (and with zero there are no
  // replicates at all), so running estimators over an empty view would just
  // manufacture meaningless zeros for the variance sum. Return the
  // degenerate [point, point] interval (finite_replicates == 0,
  // standard_error == 0) before any view or replicate machinery spins up.
  if (interval.sources < 2) return interval;

  const bool use_columnar =
      ResolveColumnar(evaluation, estimator.SupportsReplicates(),
                      sample.policy(), /*has_materialized=*/true);
  // Reuse a cached flatten when the caller precomputed one (bit-identical;
  // see BootstrapAggregate above).
  std::optional<SampleView> local_view;
  const bool have_pre_view = pre != nullptr && pre->view != nullptr;
  if (!have_pre_view) local_view.emplace(sample);
  const SampleView& view = have_pre_view ? *pre->view : *local_view;

  // Leave-one-out estimates are independent, so they run concurrently; the
  // computation is RNG-free and each slot is written once, keeping the
  // interval identical for any thread count.
  const std::vector<double> values =
      ThreadPool::OrDefault(pool)->ParallelMap(
          static_cast<int64_t>(interval.sources), [&](int64_t i) {
            const int32_t excluded = static_cast<int32_t>(i);
            if (use_columnar) {
              // thread_local: worker-local LOO buffers (same resting-state
              // contract as the bootstrap path above).
              thread_local ReplicateScratch scratch;
              thread_local ReplicateSample rep;
              view.BuildLeaveOneOut(excluded, &scratch, &rep);
              return estimator.EstimateReplicate(rep).corrected_sum;
            }
            // Pooled leave-one-out materialization (see BootstrapAggregate).
            // thread_local: per-worker arena — same LIFO-lease ownership
            // argument as the bootstrap path above.
            thread_local SampleArena arena;
            const SampleArena::Lease lease = arena.Acquire(view.policy());
            view.MaterializeLeaveOneOutInto(excluded, lease.get());
            return estimator.EstimateImpact(*lease).corrected_sum;
          });
  std::vector<double> replicates;
  replicates.reserve(values.size());
  for (double value : values) {
    if (std::isfinite(value)) replicates.push_back(value);
  }
  interval.finite_replicates = static_cast<int>(replicates.size());
  if (replicates.size() < 2) return interval;

  const double l = static_cast<double>(replicates.size());
  const double mean = Mean(replicates);
  double ss = 0.0;
  for (double r : replicates) ss += (r - mean) * (r - mean);
  interval.standard_error = std::sqrt((l - 1.0) / l * ss);
  interval.lo = interval.point - z * interval.standard_error;
  interval.hi = interval.point + z * interval.standard_error;
  return interval;
}

}  // namespace uuq
