#include "core/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "stats/descriptive.h"

namespace uuq {

IntegratedSample ResampleSources(const IntegratedSample& sample, Rng* rng) {
  UUQ_CHECK(rng != nullptr);
  // Group the raw observation stream by source, preserving intra-source
  // order (a source's claims stay a without-replacement draw).
  std::map<std::string, std::vector<Observation>> by_source;
  for (const Observation& obs : sample.ObservationLog()) {
    by_source[obs.source_id].push_back(obs);
  }
  std::vector<const std::vector<Observation>*> sources;
  sources.reserve(by_source.size());
  for (const auto& [id, observations] : by_source) {
    sources.push_back(&observations);
  }

  IntegratedSample resampled(sample.policy());
  if (sources.empty()) return resampled;
  const size_t l = sources.size();
  for (size_t draw = 0; draw < l; ++draw) {
    const auto* source = sources[rng->NextBounded(l)];
    // Fresh identity per draw: the same original source drawn twice acts as
    // two independent sources (standard bootstrap-of-clusters semantics).
    const std::string identity = "bs" + std::to_string(draw);
    for (const Observation& obs : *source) {
      resampled.Add(identity, obs.entity_key, obs.value);
    }
  }
  return resampled;
}

BootstrapInterval BootstrapCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        const BootstrapOptions& options) {
  UUQ_CHECK_MSG(options.replicates > 0, "need at least one replicate");
  UUQ_CHECK_MSG(options.confidence > 0.0 && options.confidence < 1.0,
                "confidence must be in (0,1)");
  BootstrapInterval interval;
  interval.point = estimator.EstimateImpact(sample).corrected_sum;

  // One pre-derived Rng stream per replicate (derived in replicate order)
  // and one result slot per replicate: the values — and therefore the
  // percentiles — are bit-identical for any thread count.
  Rng root(options.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<size_t>(options.replicates));
  for (int b = 0; b < options.replicates; ++b) streams.push_back(root.Split());

  const std::vector<double> values =
      ThreadPool::OrDefault(options.pool)
          ->ParallelMap(options.replicates, [&](int64_t b) {
            Rng rng = streams[static_cast<size_t>(b)];
            const IntegratedSample resampled = ResampleSources(sample, &rng);
            return estimator.EstimateImpact(resampled).corrected_sum;
          });
  interval.replicates.reserve(values.size());
  for (double value : values) {
    if (std::isfinite(value)) interval.replicates.push_back(value);
  }
  interval.finite_replicates = static_cast<int>(interval.replicates.size());
  if (interval.replicates.empty()) {
    interval.lo = interval.hi = interval.median = interval.point;
    return interval;
  }
  std::sort(interval.replicates.begin(), interval.replicates.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  interval.lo = Quantile(interval.replicates, alpha);
  interval.hi = Quantile(interval.replicates, 1.0 - alpha);
  interval.median = Quantile(interval.replicates, 0.5);
  return interval;
}

JackknifeInterval JackknifeCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        double z, ThreadPool* pool) {
  JackknifeInterval interval;
  interval.point = estimator.EstimateImpact(sample).corrected_sum;
  interval.sources = static_cast<int>(sample.num_sources());
  interval.lo = interval.hi = interval.point;
  if (interval.sources < 2) return interval;

  std::vector<std::string> source_ids;
  source_ids.reserve(sample.source_sizes().size());
  for (const auto& [id, size] : sample.source_sizes()) {
    source_ids.push_back(id);
  }

  // Group observations once; build each leave-one-out sample by replay.
  // Leave-one-out estimates are independent, so they run concurrently; the
  // computation is RNG-free and each slot is written once, keeping the
  // interval identical for any thread count.
  const std::vector<Observation> log = sample.ObservationLog();
  const std::vector<double> values =
      ThreadPool::OrDefault(pool)->ParallelMap(
          static_cast<int64_t>(source_ids.size()), [&](int64_t i) {
            const std::string& excluded = source_ids[static_cast<size_t>(i)];
            IntegratedSample loo(sample.policy());
            for (const Observation& obs : log) {
              if (obs.source_id == excluded) continue;
              loo.Add(obs);
            }
            return estimator.EstimateImpact(loo).corrected_sum;
          });
  std::vector<double> replicates;
  replicates.reserve(values.size());
  for (double value : values) {
    if (std::isfinite(value)) replicates.push_back(value);
  }
  interval.finite_replicates = static_cast<int>(replicates.size());
  if (replicates.size() < 2) return interval;

  const double l = static_cast<double>(replicates.size());
  const double mean = Mean(replicates);
  double ss = 0.0;
  for (double r : replicates) ss += (r - mean) * (r - mean);
  interval.standard_error = std::sqrt((l - 1.0) / l * ss);
  interval.lo = interval.point - z * interval.standard_error;
  interval.hi = interval.point + z * interval.standard_error;
  return interval;
}

}  // namespace uuq
