#include "core/bootstrap.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <optional>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "stats/descriptive.h"

namespace uuq {

IntegratedSample ResampleSources(const IntegratedSample& sample, Rng* rng) {
  UUQ_CHECK(rng != nullptr);
  // Thin adapter over the columnar engine: the view supplies both the draw
  // (same Rng consumption as the historical map-based body) and the
  // materialization (same "bs<draw>" replay, any fusion policy).
  const SampleView view(sample);
  std::vector<int32_t> draws;
  view.DrawBootstrapSources(rng, &draws);
  return view.MaterializeReplicate(draws);
}

namespace {

/// Decides whether the columnar path may serve this run; aborts when the
/// caller forced an unavailable path.
bool ResolveColumnar(ReplicateEvaluation evaluation, bool estimator_supports,
                     FusionPolicy policy, bool has_materialized) {
  const bool available =
      estimator_supports && SampleView::PolicySupportsColumnar(policy);
  if (evaluation == ReplicateEvaluation::kColumnar) {
    UUQ_CHECK_MSG(available,
                  "columnar evaluation forced but the estimator has no "
                  "replicate path");
    return true;
  }
  const bool columnar =
      evaluation != ReplicateEvaluation::kMaterialized && available;
  UUQ_CHECK_MSG(columnar || has_materialized,
                "no usable replicate evaluator (columnar unavailable and no "
                "materialized fallback)");
  return columnar;
}

/// Sorts the finite replicate values into a percentile interval.
BootstrapInterval PercentileInterval(double point,
                                     const std::vector<double>& values,
                                     double confidence) {
  BootstrapInterval interval;
  interval.point = point;
  interval.replicates.reserve(values.size());
  for (double value : values) {
    if (std::isfinite(value)) interval.replicates.push_back(value);
  }
  interval.finite_replicates = static_cast<int>(interval.replicates.size());
  // Every replicate non-finite (e.g. an estimator whose species formula
  // diverges on every resample): there is nothing to take a quantile of —
  // Quantile on an empty vector would be meaningless — so degrade to the
  // degenerate [point, point] interval with `replicates` left empty and
  // finite_replicates == 0 (the caller's signal that the interval carries
  // no resampling information).
  if (interval.replicates.empty()) {
    interval.lo = interval.hi = interval.median = interval.point;
    return interval;
  }
  std::sort(interval.replicates.begin(), interval.replicates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = Quantile(interval.replicates, alpha);
  interval.hi = Quantile(interval.replicates, 1.0 - alpha);
  interval.median = Quantile(interval.replicates, 0.5);
  return interval;
}

/// Replicates built per mega-batch evaluator call. Bounds the per-thread
/// slot pool (each slot holds one built replicate's columns) while still
/// amortizing the batch kernel's per-call setup across many replicates.
constexpr int64_t kMaxBatchReplicates = 16;

/// One built replicate awaiting batch evaluation. Slots live in a
/// per-thread deque (BatchSlot is neither copyable nor cheap to move —
/// deque::emplace_back constructs in place and never relocates).
struct BatchSlot {
  ReplicateScratch scratch;
  ReplicateSample rep;
};

/// UUQ_MEGA_BATCH=0 disables cross-replicate batching (one-at-a-time
/// evaluation, the conformance reference); anything else — including unset
/// — leaves it on. Latched once: flipping the variable mid-process is not
/// a supported way to reconfigure a running service.
bool MegaBatchEnvEnabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("UUQ_MEGA_BATCH");
    return value == nullptr || value[0] != '0';
  }();
  return enabled;
}

}  // namespace

BootstrapInterval BootstrapAggregate(
    const IntegratedSample& sample, double point,
    const std::function<double(const ReplicateSample&)>& columnar,
    const std::function<double(const IntegratedSample&)>& materialized,
    const BootstrapOptions& options) {
  return BootstrapAggregate(sample, /*view=*/nullptr, point, columnar,
                            materialized, options);
}

BootstrapInterval BootstrapAggregate(
    const IntegratedSample& sample, const SampleView* pre_view, double point,
    const std::function<double(const ReplicateSample&)>& columnar,
    const std::function<double(const IntegratedSample&)>& materialized,
    const BootstrapOptions& options) {
  UUQ_CHECK_MSG(options.replicates > 0, "need at least one replicate");
  UUQ_CHECK_MSG(options.confidence > 0.0 && options.confidence < 1.0,
                "confidence must be in (0,1)");
  const bool use_columnar =
      ResolveColumnar(options.evaluation, columnar != nullptr,
                      sample.policy(), materialized != nullptr);

  // Flattened once per sample: a caller-supplied view (the serving cache's
  // per-registered-sample artifact) is reused as-is; otherwise flatten here
  // — the uncached fallback. The view is a pure function of the sample, so
  // both paths drive the exact same replicate arithmetic.
  std::optional<SampleView> local_view;
  if (pre_view == nullptr) local_view.emplace(sample);
  const SampleView& view = pre_view != nullptr ? *pre_view : *local_view;

  // One pre-derived Rng stream per replicate (derived in replicate order)
  // and one result slot per replicate: the values — and therefore the
  // percentiles — are bit-identical for any thread count. Streams grow
  // INCREMENTALLY: `root.Split()` appended one at a time is, by
  // construction, the same sequence SplitStreams(B) derives, so an
  // adaptive run that escalates in rounds sees the exact streams a fixed-B
  // run sees — the pilot is a bit-exact prefix of any larger budget.
  Rng root(options.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<size_t>(options.replicates));
  const auto ensure_streams = [&](int64_t n) {
    while (static_cast<int64_t>(streams.size()) < n) {
      streams.push_back(root.Split());
    }
  };

  ThreadPool* pool = ThreadPool::OrDefault(options.pool);
  std::vector<double> values;
  // Cooperative abort flag. Relaxed is sufficient: it only SKIPS remaining
  // replicates (a delayed observation just runs one more, same as any
  // interleaving), and the final read below happens after ParallelFor's
  // join, which already orders every task's stores before it.
  std::atomic<bool> aborted{false};
  const bool use_batch = use_columnar && options.columnar_batch != nullptr &&
                         MegaBatchEnvEnabled();

  // Evaluates replicates [r_begin, r_end) into values[r_begin..r_end).
  // Tasks claim BLOCKS of consecutive replicates (options.replicate_block)
  // so the dispatch overhead and a worker's warm scratch amortize across
  // the block; the per-replicate work is untouched, so the block size is
  // invisible in the results. The requested block must never starve a wide
  // pool: cap it so every worker gets ~4 tasks to claim (a 16-thread pool
  // with B=48 runs block=1, i.e. the historical one-task-per-replicate
  // dispatch; the 1-thread replicate hot path keeps the full block).
  const auto run_range = [&](int64_t r_begin, int64_t r_end) {
    const int64_t count = r_end - r_begin;
    if (count <= 0) return;
    const int64_t per_worker_cap = std::max<int64_t>(
        1, count / (4 * static_cast<int64_t>(pool->num_threads())));
    const int64_t block = std::min<int64_t>(
        std::max(1, options.replicate_block), per_worker_cap);
    const int64_t num_blocks = (count + block - 1) / block;
    pool->ParallelFor(0, num_blocks, [&](int64_t blk) {
      const int64_t begin = r_begin + blk * block;
      const int64_t end = std::min(r_end, begin + block);
      if (use_batch && end - begin > 1) {
        // Cross-replicate mega-batching: build a chunk of replicates into
        // per-thread slots, then hand the whole chunk to the caller's
        // batch evaluator (one DeltaFromStatsBatch sweep instead of one
        // kernel launch per replicate). Draw order, stream assignment, and
        // per-replicate arithmetic are untouched, so values are
        // bit-identical to the one-at-a-time path below.
        // thread_local: worker-local slot pool — per-thread ownership
        // keeps the warm path allocation-free without locking; deque
        // because BatchSlot must never relocate once built.
        thread_local std::deque<BatchSlot> slots;
        for (int64_t chunk = begin; chunk < end;
             chunk += kMaxBatchReplicates) {
          const int64_t chunk_end =
              std::min(end, chunk + kMaxBatchReplicates);
          while (slots.size() < static_cast<size_t>(chunk_end - chunk)) {
            slots.emplace_back();
          }
          const ReplicateSample* ptrs[kMaxBatchReplicates];
          size_t built = 0;
          for (int64_t b = chunk; b < chunk_end; ++b) {
            if (aborted.load(std::memory_order_relaxed) ||
                options.cancel.Fired()) {
              aborted.store(true, std::memory_order_relaxed);
              return;  // partial chunk discarded — aborted runs never
                       // read these slots
            }
            if (options.replicate_probe) options.replicate_probe(b);
            Rng rng = streams[static_cast<size_t>(b)];
            BatchSlot& slot = slots[built];
            view.DrawBootstrapSources(&rng, &slot.scratch.draws());
            view.BuildReplicate(slot.scratch.draws(), &slot.scratch,
                                &slot.rep);
            ptrs[built] = &slot.rep;
            ++built;
          }
          options.columnar_batch(ptrs, built,
                                 &values[static_cast<size_t>(chunk)]);
        }
        return;
      }
      for (int64_t b = begin; b < end; ++b) {
        // Replicate-granularity cancellation: a fired token stops this
        // task before the next replicate; replicates already in flight on
        // other workers finish normally and ParallelFor joins them all,
        // so no task ever outlives this call. The inert default token
        // makes this a null check — the uncancelled run is untouched.
        if (aborted.load(std::memory_order_relaxed) ||
            options.cancel.Fired()) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        if (options.replicate_probe) options.replicate_probe(b);
        Rng rng = streams[static_cast<size_t>(b)];
        if (use_columnar) {
          // thread_local: worker-local replicate buffers — resting-state
          // scratch (sample_view.h) makes reuse across replicates, views,
          // and pools safe, and per-thread ownership keeps the warm path
          // allocation-free without any locking.
          thread_local ReplicateScratch scratch;
          thread_local ReplicateSample rep;
          view.DrawBootstrapSources(&rng, &scratch.draws());
          view.BuildReplicate(scratch.draws(), &scratch, &rep);
          values[static_cast<size_t>(b)] = columnar(rep);
          continue;
        }
        // Materializing reference path: rebuild into a pooled sample
        // (identical to a fresh one through every accessor) instead of
        // growing a new IntegratedSample per replicate. The arena hands
        // nested evaluations their own sample, so a `materialized`
        // callback that itself bootstraps stays correct.
        // thread_local: per-worker arena/draw pools — LIFO lease reuse is
        // only race-free because no other thread ever touches them.
        thread_local SampleArena arena;
        thread_local std::vector<int32_t> draws;
        view.DrawBootstrapSources(&rng, &draws);
        const SampleArena::Lease lease = arena.Acquire(view.policy());
        view.MaterializeReplicateInto(draws, lease.get());
        values[static_cast<size_t>(b)] = materialized(*lease);
      }
    });
  };

  const auto aborted_interval = [&] {
    // Skipped slots hold meaningless zeros, so never take quantiles over a
    // cancelled run: degrade to the same [point, point] shape as the
    // all-non-finite case and flag it.
    BootstrapInterval interval;
    interval.point = point;
    interval.lo = interval.hi = interval.median = point;
    interval.aborted = true;
    return interval;
  };

  if (!options.adaptive.enabled) {
    const int64_t replicates = options.replicates;
    ensure_streams(replicates);
    values.resize(static_cast<size_t>(replicates));
    run_range(0, replicates);
    if (aborted.load(std::memory_order_relaxed)) return aborted_interval();
    return PercentileInterval(point, values, options.confidence);
  }

  // Pilot-then-refine (core/adaptive_budget.h): run a pilot block, read the
  // replicate spread, and escalate the budget in blocks until the target
  // Monte Carlo half-width is met or the cap trips. Each round evaluates
  // only the NEW replicates [done, target) — earlier slots keep their
  // values, and every replicate b always runs on stream b, so the final
  // `values` prefix is bit-identical to a fixed-B run at B = done for any
  // round schedule.
  UUQ_CHECK_MSG(options.adaptive.epsilon > 0.0,
                "adaptive budget needs epsilon > 0");
  UUQ_CHECK_MSG(options.adaptive.pilot_replicates > 0,
                "adaptive budget needs a pilot block");
  UUQ_CHECK_MSG(options.adaptive.escalation_block > 0,
                "adaptive budget needs a positive escalation block");
  const int64_t cap = options.adaptive.max_replicates > 0
                          ? options.adaptive.max_replicates
                          : options.replicates;
  AdaptiveBudgetReport report;
  report.enabled = true;
  report.epsilon = options.adaptive.epsilon;
  // Out-of-range confidence falls back to 0.95 (the AdaptiveBudgetOptions
  // contract) instead of CHECK-aborting: this field can carry a
  // request-supplied value, and request data must never reach a
  // process-killing assert. epsilon/pilot/escalation above stay CHECKs —
  // they are operator/program configuration, validated at the request
  // boundary (QueryService::Submit) before any request value lands here.
  const double target_confidence =
      options.adaptive.confidence > 0.0 && options.adaptive.confidence < 1.0
          ? options.adaptive.confidence
          : 0.95;

  int64_t done = 0;
  int64_t target =
      std::min<int64_t>(cap, options.adaptive.pilot_replicates);
  report.pilot_replicates = static_cast<int>(target);
  while (true) {
    ensure_streams(target);
    values.resize(static_cast<size_t>(target));
    run_range(done, target);
    if (aborted.load(std::memory_order_relaxed)) {
      if (done == 0) {
        // Cancelled inside the pilot: no completed prefix exists, so this
        // degrades exactly like a cancelled fixed-budget run.
        BootstrapInterval interval = aborted_interval();
        report.precision_degraded = true;
        interval.adaptive = report;
        return interval;
      }
      // Cancelled mid-escalation: the completed prefix IS a full fixed-B
      // run at B = done (every slot written, same streams), so return its
      // interval — typed as precision degradation, not as an abort.
      values.resize(static_cast<size_t>(done));
      report.precision_degraded = true;
      break;
    }
    done = target;
    const double half_width = EstimatedHalfWidth(
        values.data(), static_cast<int>(done), target_confidence);
    report.half_width = half_width;
    if (half_width <= options.adaptive.epsilon) {
      report.target_met = true;
      break;
    }
    if (done >= cap) {
      report.precision_degraded = true;
      break;
    }
    // Jump straight to the variance-predicted budget when it is larger
    // than one escalation block — the block floor keeps progress moving
    // when the pilot variance underestimates the tail.
    const int64_t planned =
        PlannedReplicates(values.data(), static_cast<int>(done),
                          options.adaptive.epsilon, target_confidence);
    target = std::min<int64_t>(
        cap,
        std::max<int64_t>(planned, done + options.adaptive.escalation_block));
    ++report.escalations;
  }
  report.replicates_used = static_cast<int>(done);
  BootstrapInterval interval =
      PercentileInterval(point, values, options.confidence);
  interval.adaptive = report;
  return interval;
}

BootstrapInterval BootstrapCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        const BootstrapOptions& options,
                                        const SamplePrecomp* pre) {
  const double point = estimator.EstimateImpact(sample, pre).corrected_sum;
  std::function<double(const ReplicateSample&)> columnar;
  BootstrapOptions run_options = options;
  if (estimator.SupportsReplicates()) {
    columnar = [&estimator](const ReplicateSample& rep) {
      return estimator.EstimateReplicate(rep).corrected_sum;
    };
    // Mega-batch hook: estimators that share work across replicates (the
    // bucket estimator gathers every replicate's root split scan into one
    // DeltaFromStatsBatch call) plug in here; the batch contract
    // (estimate.h) pins them bit-identical to the scalar path, so the
    // engine may mix both freely. A caller-supplied hook wins.
    if (estimator.SupportsReplicateBatch() &&
        run_options.columnar_batch == nullptr) {
      run_options.columnar_batch = [&estimator](
                                       const ReplicateSample* const* reps,
                                       size_t count, double* out) {
        estimator.EstimateReplicateBatch(reps, count, out);
      };
    }
  }
  return BootstrapAggregate(
      sample, pre != nullptr ? pre->view : nullptr, point, columnar,
      [&estimator](const IntegratedSample& resampled) {
        return estimator.EstimateImpact(resampled).corrected_sum;
      },
      run_options);
}

JackknifeInterval JackknifeCorrectedSum(const IntegratedSample& sample,
                                        const SumEstimator& estimator,
                                        double z, ThreadPool* pool,
                                        ReplicateEvaluation evaluation,
                                        const SamplePrecomp* pre) {
  JackknifeInterval interval;
  interval.point = estimator.EstimateImpact(sample, pre).corrected_sum;
  interval.sources = static_cast<int>(sample.num_sources());
  interval.lo = interval.hi = interval.point;
  // num_sources() <= 1 is structurally degenerate: with one source the only
  // leave-one-out replicate is the EMPTY sample (and with zero there are no
  // replicates at all), so running estimators over an empty view would just
  // manufacture meaningless zeros for the variance sum. Return the
  // degenerate [point, point] interval (finite_replicates == 0,
  // standard_error == 0) before any view or replicate machinery spins up.
  if (interval.sources < 2) return interval;

  const bool use_columnar =
      ResolveColumnar(evaluation, estimator.SupportsReplicates(),
                      sample.policy(), /*has_materialized=*/true);
  // Reuse a cached flatten when the caller precomputed one (bit-identical;
  // see BootstrapAggregate above).
  std::optional<SampleView> local_view;
  const bool have_pre_view = pre != nullptr && pre->view != nullptr;
  if (!have_pre_view) local_view.emplace(sample);
  const SampleView& view = have_pre_view ? *pre->view : *local_view;

  // Leave-one-out estimates are independent, so they run concurrently; the
  // computation is RNG-free and each slot is written once, keeping the
  // interval identical for any thread count.
  const std::vector<double> values =
      ThreadPool::OrDefault(pool)->ParallelMap(
          static_cast<int64_t>(interval.sources), [&](int64_t i) {
            const int32_t excluded = static_cast<int32_t>(i);
            if (use_columnar) {
              // thread_local: worker-local LOO buffers (same resting-state
              // contract as the bootstrap path above).
              thread_local ReplicateScratch scratch;
              thread_local ReplicateSample rep;
              view.BuildLeaveOneOut(excluded, &scratch, &rep);
              return estimator.EstimateReplicate(rep).corrected_sum;
            }
            // Pooled leave-one-out materialization (see BootstrapAggregate).
            // thread_local: per-worker arena — same LIFO-lease ownership
            // argument as the bootstrap path above.
            thread_local SampleArena arena;
            const SampleArena::Lease lease = arena.Acquire(view.policy());
            view.MaterializeLeaveOneOutInto(excluded, lease.get());
            return estimator.EstimateImpact(*lease).corrected_sum;
          });
  std::vector<double> replicates;
  replicates.reserve(values.size());
  for (double value : values) {
    if (std::isfinite(value)) replicates.push_back(value);
  }
  interval.finite_replicates = static_cast<int>(replicates.size());
  if (replicates.size() < 2) return interval;

  const double l = static_cast<double>(replicates.size());
  const double mean = Mean(replicates);
  double ss = 0.0;
  for (double r : replicates) ss += (r - mean) * (r - mean);
  interval.standard_error = std::sqrt((l - 1.0) / l * ss);
  interval.lo = interval.point - z * interval.standard_error;
  interval.hi = interval.point + z * interval.standard_error;
  return interval;
}

}  // namespace uuq
