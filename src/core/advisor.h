// Estimator selection advice (paper §6.5 "Which Estimator To Use").
//
// The decision rules the paper distills from its evaluation:
//  * Ĉ < 0.4                         -> estimates are unreliable; collect more
//  * streakers / uneven sources      -> Monte-Carlo (simulation-based, robust)
//  * fewer than ~5 sources           -> Monte-Carlo (with-replacement
//                                       approximation not yet valid, App. E)
//  * otherwise                       -> dynamic bucket (most accurate)
#ifndef UUQ_CORE_ADVISOR_H_
#define UUQ_CORE_ADVISOR_H_

#include <memory>
#include <string>

#include "core/estimate.h"
#include "core/monte_carlo.h"
#include "integration/diagnostics.h"

namespace uuq {

enum class EstimatorChoice { kCollectMoreData, kBucket, kMonteCarlo };

const char* EstimatorChoiceName(EstimatorChoice choice);

struct Advice {
  EstimatorChoice choice = EstimatorChoice::kCollectMoreData;
  double coverage = 0.0;
  int64_t num_sources = 0;
  bool streaker_suspected = false;
  std::string rationale;
};

class EstimatorAdvisor {
 public:
  struct Options {
    double coverage_threshold = 0.4;   // §6.5 gate
    int64_t min_sources = 5;           // Appendix E
    double max_share_threshold = 0.5;  // streaker heuristics
    double gini_threshold = 0.6;
    MonteCarloOptions mc_options;
  };

  EstimatorAdvisor() : EstimatorAdvisor(Options{}) {}
  explicit EstimatorAdvisor(Options options) : options_(std::move(options)) {}

  Advice Advise(const IntegratedSample& sample) const;

  /// Columnar form for bootstrap replicates: the §6.5 rules read only the
  /// sufficient statistics and the source-size column, both carried by
  /// ReplicateSample, so advising a replicate needs no materialization. The
  /// decision matches Advise() on the materialized replicate exactly (the
  /// rationale names sources positionally instead of by id).
  Advice Advise(const ReplicateSample& rep) const;

  /// Instantiates the recommended SUM estimator. For kCollectMoreData the
  /// bucket estimator is returned (least harmful default) — callers should
  /// still surface the low-coverage warning from Advise().
  std::unique_ptr<SumEstimator> MakeRecommended(
      const IntegratedSample& sample) const;

 private:
  /// The §6.5 decision tree over pre-derived inputs (shared by the sample
  /// and replicate entry points).
  Advice Decide(const SampleStats& stats,
                const SourceImbalanceReport& imbalance) const;

  Options options_;
};

}  // namespace uuq

#endif  // UUQ_CORE_ADVISOR_H_
