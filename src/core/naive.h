// The naive estimator (paper §3.1, Eq. 3/8): Chao92 for the count of missing
// items, mean substitution for their values.
//
//   Δ_naive = (φK / c) · (N̂_Chao92 − c)
//
// It ignores publicity-value correlation and therefore over-estimates when
// popular items are also high-valued (the common real-world case).
#ifndef UUQ_CORE_NAIVE_H_
#define UUQ_CORE_NAIVE_H_

#include "core/estimate.h"

namespace uuq {

class NaiveEstimator final : public StatsSumEstimator {
 public:
  std::string name() const override { return "naive"; }
  Estimate FromStats(const SampleStats& stats) const override;
  double DeltaFromStats(const SampleStats& stats) const override;
  /// Fused coverage/γ² chain per lane (divisions hoisted, no per-candidate
  /// virtual dispatch) + the multiplication-form pre-filter
  /// (Chao92PreFilterCertifies with scaled_mass = |φK|·f1); bit-identical
  /// to the scalar chain on every evaluated lane.
  void DeltaFromStatsBatch(const StatsBatchView& batch,
                           const double* min_needed,
                           double* out) const override;
};

}  // namespace uuq

#endif  // UUQ_CORE_NAIVE_H_
