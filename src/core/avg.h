// AVG queries under unknown unknowns (paper §5).
//
// The observed mean is consistent by the law of large numbers UNLESS
// publicity and value are correlated, which biases the sample. The bucket
// correction weights per-bucket corrected totals by per-bucket N̂:
//
//   AVG ≈ Σ_b (φ_b + Δ_b) / Σ_b N̂_b
//
// i.e. the corrected SUM over the corrected COUNT, computed bucket-wise so
// the publicity-value correlation is contained within buckets.
#ifndef UUQ_CORE_AVG_H_
#define UUQ_CORE_AVG_H_

#include <memory>

#include "core/bucket.h"
#include "core/estimate.h"

namespace uuq {

class AvgEstimator {
 public:
  /// Defaults to the dynamic-bucket estimator (the paper's Figure 7 setup).
  AvgEstimator() : bucket_(std::make_shared<BucketSumEstimator>()) {}
  explicit AvgEstimator(std::shared_ptr<const BucketSumEstimator> bucket)
      : bucket_(std::move(bucket)) {}

  /// corrected_sum holds the corrected AVG; delta the adjustment vs the
  /// observed mean. Falls back to the observed mean (delta = 0, finite =
  /// false) when a bucket count estimate degenerates to infinity.
  Estimate EstimateAvg(const IntegratedSample& sample) const;

  /// Columnar replicate form (bootstrap intervals on corrected AVG): the
  /// bucket breakdown and the mean need only the replicate's value and
  /// multiplicity columns.
  Estimate EstimateAvg(const ReplicateSample& rep) const;

 private:
  Estimate FromBuckets(const SampleStats& stats,
                       const std::vector<ValueBucket>& buckets) const;

  std::shared_ptr<const BucketSumEstimator> bucket_;
};

}  // namespace uuq

#endif  // UUQ_CORE_AVG_H_
