#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/chao92.h"
#include "stats/curve_fit.h"
#include "stats/distributions.h"
#include "stats/kl_divergence.h"
#include "stats/sampling.h"

namespace uuq {

double MonteCarloEstimator::SimulatedDistance(
    int64_t theta_n, double theta_lambda,
    const std::vector<int64_t>& observed_multiplicities,
    const std::vector<int64_t>& source_sizes, Rng* rng) const {
  UUQ_CHECK(rng != nullptr);
  UUQ_CHECK(theta_n >= 1);
  const std::vector<double> publicity =
      MonteCarloPublicity(static_cast<int>(theta_n), theta_lambda);

  std::vector<double> observed(observed_multiplicities.begin(),
                               observed_multiplicities.end());

  double total = 0.0;
  std::vector<double> simulated(static_cast<size_t>(theta_n));
  for (int run = 0; run < options_.runs_per_point; ++run) {
    std::fill(simulated.begin(), simulated.end(), 0.0);
    for (int64_t nj : source_sizes) {
      // Each source samples without replacement from the hypothesized
      // population; a source larger than θN simply exhausts it.
      const std::vector<int> drawn = WeightedSampleWithoutReplacement(
          publicity, static_cast<int>(nj), rng);
      for (int idx : drawn) simulated[idx] += 1.0;
    }
    total += AlignedKlDivergence(observed, simulated,
                                 options_.smoothing_epsilon);
  }
  return total / options_.runs_per_point;
}

double MonteCarloEstimator::EstimateNhat(const IntegratedSample& sample) const {
  if (sample.empty()) return 0.0;
  const SampleStats stats = SampleStats::FromSample(sample);
  const int64_t c = stats.c;

  double chao = Chao92Nhat(stats);
  if (!std::isfinite(chao)) {
    chao = static_cast<double>(c) * options_.infinite_nhat_cap_factor;
  }
  if (chao <= static_cast<double>(c) + 0.5) {
    // Degenerate search interval: the sample already looks complete.
    return static_cast<double>(c);
  }

  std::vector<int64_t> multiplicities;
  multiplicities.reserve(sample.entities().size());
  for (const EntityStat& e : sample.entities()) {
    multiplicities.push_back(e.multiplicity);
  }
  const std::vector<int64_t> source_sizes = sample.SourceSizeVector();

  // Grid evaluation (Algorithm 3 lines 3-10).
  Rng rng(options_.seed ^ static_cast<uint64_t>(stats.n) * 0x9E3779B9ull);
  const double step =
      (chao - static_cast<double>(c)) / options_.n_grid_steps;
  std::vector<double> xs, ys, zs;
  int64_t previous_theta_n = -1;
  for (int i = 0; i <= options_.n_grid_steps; ++i) {
    const int64_t theta_n = static_cast<int64_t>(
        std::llround(static_cast<double>(c) + step * i));
    if (theta_n == previous_theta_n) continue;  // rounding collision
    previous_theta_n = theta_n;
    for (double lambda = options_.lambda_lo;
         lambda <= options_.lambda_hi + 1e-9; lambda += options_.lambda_step) {
      const double distance = SimulatedDistance(theta_n, lambda,
                                                multiplicities, source_sizes,
                                                &rng);
      xs.push_back(static_cast<double>(theta_n));
      ys.push_back(lambda);
      zs.push_back(distance);
    }
  }
  if (xs.empty()) return static_cast<double>(c);

  // Curve fit + argmin on the fitted surface (lines 11-12); fall back to the
  // raw grid argmin when the fit is degenerate.
  auto surface = FitQuadraticSurface(xs, ys, zs);
  double n_mc;
  if (surface.ok()) {
    auto [best_n, best_lambda] =
        MinimizeOnBox(surface.value(), static_cast<double>(c), chao,
                      options_.lambda_lo, options_.lambda_hi);
    UUQ_UNUSED(best_lambda);
    n_mc = best_n;
  } else {
    size_t best = 0;
    for (size_t i = 1; i < zs.size(); ++i) {
      if (zs[i] < zs[best]) best = i;
    }
    n_mc = xs[best];
  }
  return std::clamp(n_mc, static_cast<double>(c), chao);
}

Estimate MonteCarloEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  Estimate est;
  est.estimator = name();
  const SampleStats stats = SampleStats::FromSample(sample);
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }
  const double n_hat = EstimateNhat(sample);
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);
  est.missing_value = stats.ValueMean();
  est.delta = est.missing_value * est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = stats.value_sum + est.delta;
  return est;
}

}  // namespace uuq
